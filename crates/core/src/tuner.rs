//! The §3.4 configuration tool: pick `N*` and the minimum checkpoint
//! interval `f*` that keeps checkpointing overhead under a budget `q`.
//!
//! The analysis models training runtime with checkpoints every `f`
//! iterations and `N` concurrent checkpoints:
//!
//! ```text
//! runtime_2 = f·t + max(Tw, N·f·t) · (A/(f·N) − 1) + Tw
//! ```
//!
//! In the stalling regime (`Tw > N·f·t`), bounding `runtime_2 ≤ q·runtime_0`
//! (with `runtime_0 = A·t`) and dropping the negligible `f·t` term yields
//! equation (2): `f ≥ Tw / (N·q·t)`, and the recommended interval is
//! equation (3): `f* = ceil(Tw / (N*·q·t))`.
//!
//! `N*` is found empirically: the tool measures (or accepts a model of)
//! `Tw(N)` — the per-checkpoint write time under `N`-way contention — and
//! picks the `N` minimizing `Tw(N)/N`, subject to `N ≤ S/m − 1`.
//!
//! Beyond the static tool, this module hosts two online controllers:
//! [`AdaptiveTuner`] re-solves equation (3) for the checkpoint interval as
//! `t` and `Tw` drift, and [`PersistController`] closes the loop over the
//! *persist path itself* — writer count, chunk codec, delta policy, chunk
//! sizing, and tier placement — from live telemetry snapshots.

use pccheck_telemetry::TelemetrySnapshot;
use pccheck_util::{Bandwidth, ByteSize, SimDuration};

use crate::error::PccheckError;
use crate::pipeline::{DeltaPolicy, PersistPipeline};

/// Inputs to the tuner: the "System/Model Parameters" and "User
/// Constraints" columns of Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct TunerInputs {
    /// Checkpoint size `m`.
    pub checkpoint_size: ByteSize,
    /// Iteration time `t`.
    pub iter_time: SimDuration,
    /// Storage write bandwidth `T_S`.
    pub storage_bandwidth: Bandwidth,
    /// GPU→CPU PCIe bandwidth `T_G`.
    pub pcie_bandwidth: Bandwidth,
    /// Total storage budget `S` for checkpoints.
    pub storage_budget: ByteSize,
    /// Acceptable slowdown `q ≥ 1` (e.g., 1.03 for 3% overhead).
    pub max_slowdown: f64,
}

/// The tuner's recommendation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunerRecommendation {
    /// Chosen number of concurrent checkpoints `N*`.
    pub concurrent: usize,
    /// Minimum checkpoint interval `f*` (iterations).
    pub interval: u64,
    /// The modeled per-checkpoint write time at `N*`.
    pub write_time: SimDuration,
}

/// The §3.4 configuration tool.
#[derive(Debug, Clone, PartialEq)]
pub struct Tuner {
    inputs: TunerInputs,
}

impl Tuner {
    /// Creates a tuner.
    ///
    /// # Errors
    ///
    /// Returns [`PccheckError::InvalidConfig`] if `q < 1`, the checkpoint
    /// is empty, or the storage budget cannot hold two checkpoints.
    pub fn new(inputs: TunerInputs) -> Result<Self, PccheckError> {
        if inputs.max_slowdown < 1.0 || !inputs.max_slowdown.is_finite() {
            return Err(PccheckError::InvalidConfig(format!(
                "slowdown budget q must be >= 1, got {}",
                inputs.max_slowdown
            )));
        }
        if inputs.checkpoint_size.is_zero() {
            return Err(PccheckError::InvalidConfig(
                "checkpoint size must be nonzero".into(),
            ));
        }
        if inputs.storage_budget < inputs.checkpoint_size * 2 {
            return Err(PccheckError::InvalidConfig(
                "storage budget must hold at least 2 checkpoints (N=1)".into(),
            ));
        }
        if inputs.iter_time.is_zero() {
            return Err(PccheckError::InvalidConfig(
                "iteration time must be nonzero".into(),
            ));
        }
        Ok(Tuner { inputs })
    }

    /// The inputs.
    pub fn inputs(&self) -> &TunerInputs {
        &self.inputs
    }

    /// Maximum `N` the storage budget allows: `N ≤ S/m − 1`.
    pub fn max_concurrent(&self) -> usize {
        let slots = self.inputs.storage_budget.as_u64() / self.inputs.checkpoint_size.as_u64();
        (slots.saturating_sub(1)) as usize
    }

    /// Models the end-to-end write time of one checkpoint when `n`
    /// checkpoints contend: the GPU→DRAM copy at full PCIe bandwidth plus
    /// the DRAM→storage phase at `T_S / n` (processor sharing). This is the
    /// analytic stand-in for the tool's empirical profiling round; the
    /// concrete engine's measured times can be substituted via
    /// [`recommend_with`](Self::recommend_with).
    pub fn modeled_write_time(&self, n: usize) -> SimDuration {
        let m = self.inputs.checkpoint_size;
        let copy = self.inputs.pcie_bandwidth.transfer_time(m);
        let persist = self.inputs.storage_bandwidth.shared_by(n).transfer_time(m);
        // Pipelining overlaps copy and persist; the slower phase dominates,
        // plus one chunk's worth of lead-in which we fold into the max.
        copy.max(persist)
    }

    /// Recommends `N*` and `f*` using the analytic `Tw(N)` model.
    pub fn recommend(&self) -> TunerRecommendation {
        self.recommend_with(|n| self.modeled_write_time(n))
    }

    /// Recommends `N*` and `f*` given a measured `Tw(N)` (the empirical
    /// profiling round of §3.4).
    ///
    /// Picks the `N` in `[1, S/m − 1]` minimizing `Tw(N)/N`, then applies
    /// equation (3).
    pub fn recommend_with(
        &self,
        mut write_time: impl FnMut(usize) -> SimDuration,
    ) -> TunerRecommendation {
        let max_n = self.max_concurrent().max(1);
        let mut best_n = 1;
        let mut best_tw = write_time(1);
        let mut best_ratio = best_tw.as_secs_f64();
        for n in 2..=max_n {
            let tw = write_time(n);
            let ratio = tw.as_secs_f64() / n as f64;
            if ratio < best_ratio {
                best_ratio = ratio;
                best_n = n;
                best_tw = tw;
            }
        }
        TunerRecommendation {
            concurrent: best_n,
            interval: self.min_interval(best_n, best_tw),
            write_time: best_tw,
        }
    }

    /// Equation (3): `f* = ceil(Tw / (N·q·t))`, at least 1 — combined with
    /// the sustainability floor `f ≥ m / (t·T_S)`: no matter how many
    /// checkpoints run concurrently, the device must absorb `m` bytes per
    /// interval, so demand beyond the storage bandwidth stalls training
    /// regardless of `N`. (The paper's equation (2) presumes Tw was
    /// measured at the final steady state; making the floor explicit keeps
    /// the recommendation safe even with a noisy Tw estimate.)
    pub fn min_interval(&self, n: usize, write_time: SimDuration) -> u64 {
        let q = self.inputs.max_slowdown;
        let t = self.inputs.iter_time.as_secs_f64();
        let f = write_time.as_secs_f64() / (n as f64 * q * t);
        let sustain = self.inputs.checkpoint_size.as_u64() as f64
            / (t * self.inputs.storage_bandwidth.as_bytes_per_sec() * q);
        (f.max(sustain).ceil() as u64).max(1)
    }

    /// The runtime model: `runtime_2` for `A` iterations with interval `f`
    /// and `N` concurrent checkpoints (the pre-simplification formula).
    pub fn modeled_runtime(
        &self,
        iterations: u64,
        interval: u64,
        n: usize,
        write_time: SimDuration,
    ) -> SimDuration {
        let t = self.inputs.iter_time;
        let ft = t * interval;
        let nft = ft * n as u64;
        let rounds = (iterations as f64 / (interval as f64 * n as f64) - 1.0).max(0.0);
        ft + write_time.max(nft).mul_f64(rounds) + write_time
    }

    /// Overhead of the modeled runtime vs no checkpointing.
    pub fn modeled_overhead(
        &self,
        iterations: u64,
        interval: u64,
        n: usize,
        write_time: SimDuration,
    ) -> f64 {
        let with = self.modeled_runtime(iterations, interval, n, write_time);
        let without = self.inputs.iter_time * iterations;
        with.as_secs_f64() / without.as_secs_f64()
    }
}

/// Online re-tuning of the checkpoint interval (§3.4's proposed extension:
/// "monitor training throughput and traffic between GPU, CPU, and storage,
/// and adapt (3) accordingly").
///
/// The optimal `f*` from equation (3) depends on the iteration time `t`
/// and the contended write time `Tw`, both of which drift during training
/// — vision workloads become input-bound, LLM training offloads
/// activations over the same PCIe/storage paths. [`AdaptiveTuner`] keeps
/// sliding windows of both measurements and recomputes `f*` whenever the
/// estimate moves materially.
///
/// # Examples
///
/// ```
/// use pccheck::tuner::AdaptiveTuner;
/// use pccheck_util::SimDuration;
///
/// let mut tuner = AdaptiveTuner::new(2, 1.05, 10, SimDuration::from_secs(2), 4);
/// assert_eq!(tuner.interval(), 10);
/// // The disk got busier: write times doubled. The interval stretches.
/// for _ in 0..8 {
///     tuner.record_iteration(SimDuration::from_secs(2));
///     tuner.record_write_time(SimDuration::from_secs(168));
/// }
/// assert!(tuner.interval() > 10);
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveTuner {
    n: usize,
    max_slowdown: f64,
    interval: u64,
    window: usize,
    iter_times: std::collections::VecDeque<f64>,
    write_times: std::collections::VecDeque<f64>,
    retunes: u64,
}

impl AdaptiveTuner {
    /// Hysteresis: re-tune only when the recomputed interval differs from
    /// the current one by more than this fraction.
    const RETUNE_THRESHOLD: f64 = 0.25;

    /// Creates an adaptive tuner starting from `initial_interval`, with a
    /// sliding window of `window` measurements per signal.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `q < 1`, `initial_interval == 0`, the seed
    /// iteration time is zero, or `window == 0`.
    pub fn new(
        n: usize,
        max_slowdown: f64,
        initial_interval: u64,
        seed_iter_time: SimDuration,
        window: usize,
    ) -> Self {
        assert!(n > 0, "N must be positive");
        assert!(max_slowdown >= 1.0, "q must be >= 1");
        assert!(initial_interval > 0, "interval must be positive");
        assert!(!seed_iter_time.is_zero(), "iteration time must be nonzero");
        assert!(window > 0, "window must be positive");
        let mut iter_times = std::collections::VecDeque::with_capacity(window);
        iter_times.push_back(seed_iter_time.as_secs_f64());
        AdaptiveTuner {
            n,
            max_slowdown,
            interval: initial_interval,
            window,
            iter_times,
            write_times: std::collections::VecDeque::with_capacity(window),
            retunes: 0,
        }
    }

    /// The interval currently in force.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Number of times the interval has been adjusted.
    pub fn retunes(&self) -> u64 {
        self.retunes
    }

    /// Records a measured iteration time.
    pub fn record_iteration(&mut self, t: SimDuration) {
        Self::push(&mut self.iter_times, t.as_secs_f64(), self.window);
        self.maybe_retune();
    }

    /// Records a measured end-to-end checkpoint write time (`Tw`).
    pub fn record_write_time(&mut self, tw: SimDuration) {
        Self::push(&mut self.write_times, tw.as_secs_f64(), self.window);
        self.maybe_retune();
    }

    fn push(q: &mut std::collections::VecDeque<f64>, v: f64, cap: usize) {
        if q.len() == cap {
            q.pop_front();
        }
        q.push_back(v);
    }

    fn mean(q: &std::collections::VecDeque<f64>) -> Option<f64> {
        if q.is_empty() {
            None
        } else {
            Some(q.iter().sum::<f64>() / q.len() as f64)
        }
    }

    fn maybe_retune(&mut self) {
        let (Some(t), Some(tw)) = (Self::mean(&self.iter_times), Self::mean(&self.write_times))
        else {
            return;
        };
        if t <= 0.0 {
            return;
        }
        // Equation (3) with the current estimates.
        let target = ((tw / (self.n as f64 * self.max_slowdown * t)).ceil() as u64).max(1);
        let drift = (target as f64 - self.interval as f64).abs() / self.interval as f64;
        if drift > Self::RETUNE_THRESHOLD {
            self.interval = target;
            self.retunes += 1;
        }
    }
}

/// Knob bounds and hysteresis thresholds for [`PersistController`].
///
/// Every decision is *evidence-gated* (a signal must point the same way
/// for [`evidence`](ControllerConfig::evidence) consecutive intervals),
/// *step-bounded* (writer count moves by ±1, chain bounds by ±1), and
/// *cooled down* ([`cooldown`](ControllerConfig::cooldown) intervals must
/// pass before the same knob moves again). The three gates together bound
/// the controller's worst-case oscillation: a knob can flip at most once
/// per `evidence + cooldown` intervals, and each flip moves one step, so
/// a decision that turns out wrong is undone at the same bounded rate it
/// was made.
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerConfig {
    /// Lower bound on the writer-thread count.
    pub min_writers: usize,
    /// Upper bound on the writer-thread count.
    pub max_writers: usize,
    /// Consecutive intervals a signal must persist before the controller
    /// acts on it.
    pub evidence: u32,
    /// Intervals a knob rests after moving before it may move again.
    pub cooldown: u32,
    /// Mean per-checkpoint training stall (nanoseconds) above which the
    /// persist path is too slow: scale writers up (if the device queue
    /// has headroom) or spill tiers (if it does not).
    pub stall_hi_nanos: u64,
    /// Mean stall below which the persist path has slack: scale writers
    /// down to return cores to training.
    pub stall_lo_nanos: u64,
    /// Device submission-queue depth at or above which the device — not
    /// writer parallelism — is the bottleneck.
    pub device_queue_saturated: u64,
    /// Physical/logical ratio (permille) at or above which the codec is
    /// not earning its CPU: candidates for disabling. 1000 = stored at
    /// full size.
    pub codec_off_permille: u64,
    /// Ratio below which a probe interval confirms the codec should stay
    /// enabled. Kept strictly below `codec_off_permille` so the two
    /// thresholds form a hysteresis band.
    pub codec_on_permille: u64,
    /// Intervals to wait with the codec off before probing it again
    /// (payload compressibility changes across training phases).
    pub codec_probe_interval: u32,
    /// Dirty-ratio (permille) below which sparse updates justify longer
    /// delta chains.
    pub delta_dirty_lo_permille: u64,
    /// Dirty-ratio above which chains shorten (dense updates make deltas
    /// pay a table for little saving, and long chains tax recovery).
    pub delta_dirty_hi_permille: u64,
    /// Bounds on [`DeltaPolicy::max_chain`].
    pub min_chain: u32,
    /// See [`min_chain`](ControllerConfig::min_chain).
    pub max_chain: u32,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            min_writers: 1,
            max_writers: 8,
            evidence: 2,
            cooldown: 2,
            stall_hi_nanos: 2_000_000,
            stall_lo_nanos: 200_000,
            device_queue_saturated: 16,
            codec_off_permille: 980,
            codec_on_permille: 900,
            codec_probe_interval: 8,
            delta_dirty_lo_permille: 150,
            delta_dirty_hi_permille: 600,
            min_chain: 1,
            max_chain: 15,
        }
    }
}

/// One interval's worth of persist-path signals, distilled from a
/// [`TelemetrySnapshot`]. Counter fields are *cumulative* — the
/// controller differences consecutive snapshots itself, so callers just
/// pass whatever the registry currently reads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControllerSignals {
    /// Cumulative training-stall nanoseconds (one sample per checkpoint).
    pub stall_sum_nanos: u64,
    /// Cumulative stall sample count (= checkpoints requested).
    pub stall_count: u64,
    /// Cumulative per-chunk device-write nanoseconds.
    pub write_sum_nanos: u64,
    /// Cumulative chunk-write count.
    pub write_count: u64,
    /// Current device submission-queue depth (max across tracked devices).
    pub device_queue_depth: u64,
    /// Current free-slot queue depth.
    pub queue_depth: u64,
    /// Cumulative bytes moved by the DRAM→device persist phase.
    pub persist_chunk_bytes: u64,
    /// Cumulative bytes the chunk codec avoided persisting.
    pub codec_bytes_saved: u64,
    /// Cumulative chunks persisted as dedup references.
    pub dedup_chunks: u64,
    /// Last framed commit's physical/logical ratio, permille (0 = no
    /// framed commit observed yet).
    pub compression_ratio_permille: u64,
    /// Last delta commit's dirty ratio, permille (0 = no delta observed).
    pub dirty_ratio_permille: u64,
}

impl ControllerSignals {
    /// Distills controller inputs from a full telemetry snapshot.
    pub fn from_snapshot(s: &TelemetrySnapshot) -> Self {
        ControllerSignals {
            stall_sum_nanos: s.stall.sum_nanos,
            stall_count: s.stall.count,
            write_sum_nanos: s.write_stage.sum_nanos,
            write_count: s.write_stage.count,
            device_queue_depth: s.device_queue_depth.iter().copied().max().unwrap_or(0),
            queue_depth: s.queue_depth,
            persist_chunk_bytes: s.persist_chunk_bytes,
            codec_bytes_saved: s.codec_bytes_saved,
            dedup_chunks: s.dedup_chunks,
            compression_ratio_permille: s.compression_ratio_permille,
            dirty_ratio_permille: s.dirty_ratio_permille,
        }
    }
}

/// Where checkpoint payloads should land.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierHint {
    /// Keep payloads on the fast tier (the default).
    Fast,
    /// The fast tier is saturated even at the writer ceiling: spill new
    /// checkpoints to the capacity tier.
    Capacity,
}

/// A knob movement the controller made on one tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControllerAction {
    /// Writer count raised to the contained value.
    WritersUp(usize),
    /// Writer count lowered to the contained value.
    WritersDown(usize),
    /// Chunk codec disabled (not earning its CPU).
    CodecOff,
    /// Chunk codec re-enabled for a probe window.
    CodecProbe,
    /// Delta chain bound raised to the contained value.
    ChainLengthen(u32),
    /// Delta chain bound lowered to the contained value.
    ChainShorten(u32),
    /// Tier hint flipped to [`TierHint::Capacity`].
    TierSpill,
    /// Tier hint restored to [`TierHint::Fast`].
    TierRestore,
}

/// The settings in force after a [`PersistController::tick`], plus the
/// actions that tick took.
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerDecision {
    /// Writer threads the pipeline should run.
    pub writers: usize,
    /// Whether the chunk codec should be enabled.
    pub codec_enabled: bool,
    /// Delta policy in force.
    pub delta_policy: DeltaPolicy,
    /// Advisory chunk size for the *next* engine restart (staging pools
    /// cannot be resized live): `Some` when the interval was IOPS-bound
    /// by many small chunks on a saturated device.
    pub chunk_size_hint: Option<ByteSize>,
    /// Advisory tier placement.
    pub tier_hint: TierHint,
    /// Knobs this tick moved (empty = steady state).
    pub actions: Vec<ControllerAction>,
}

/// The adaptive persist-path controller: a feedback loop that retunes
/// writer count, codec enablement, delta policy, and (advisorily) chunk
/// size and tier placement from live [`TelemetrySnapshot`] deltas.
///
/// Where [`AdaptiveTuner`] answers *when* to checkpoint (equation (3)),
/// this controller answers *how*: each interval it differences the
/// cumulative telemetry counters, extracts per-interval means, and nudges
/// one step per knob at most — see [`ControllerConfig`] for the
/// hysteresis argument. All decisions are deterministic functions of the
/// observed signal sequence, so a run can be replayed from its telemetry
/// log.
///
/// Call [`tick`](Self::tick) with distilled signals (pure, for tests and
/// simulation) or [`steer`](Self::steer) with a snapshot and a pipeline
/// to also apply the writer/codec settings.
#[derive(Debug, Clone)]
pub struct PersistController {
    cfg: ControllerConfig,
    writers: usize,
    codec: bool,
    delta: DeltaPolicy,
    tier: TierHint,
    last: Option<ControllerSignals>,
    up_evidence: u32,
    down_evidence: u32,
    codec_off_evidence: u32,
    spill_evidence: u32,
    writer_cooldown: u32,
    codec_cooldown: u32,
    delta_cooldown: u32,
    probe_countdown: u32,
    ticks: u64,
    actions_taken: u64,
}

impl PersistController {
    /// Chunks-per-interval above which (on a saturated device) the
    /// controller recommends a larger chunk size.
    const IOPS_BOUND_CHUNKS: u64 = 64;

    /// Creates a controller starting from `writers` threads and the given
    /// codec state.
    ///
    /// # Panics
    ///
    /// Panics if the config bounds are inverted or `writers` lies outside
    /// them.
    pub fn new(cfg: ControllerConfig, writers: usize, codec: bool) -> Self {
        assert!(
            cfg.min_writers >= 1 && cfg.min_writers <= cfg.max_writers,
            "writer bounds must satisfy 1 <= min <= max"
        );
        assert!(
            (cfg.min_writers..=cfg.max_writers).contains(&writers),
            "initial writers {writers} outside [{}, {}]",
            cfg.min_writers,
            cfg.max_writers
        );
        assert!(
            cfg.min_chain >= 1 && cfg.min_chain <= cfg.max_chain,
            "chain bounds must satisfy 1 <= min <= max"
        );
        assert!(
            cfg.codec_on_permille < cfg.codec_off_permille,
            "codec thresholds must form a hysteresis band"
        );
        let delta = DeltaPolicy {
            max_chain: DeltaPolicy::default()
                .max_chain
                .clamp(cfg.min_chain, cfg.max_chain),
            ..DeltaPolicy::default()
        };
        PersistController {
            cfg,
            writers,
            codec,
            delta,
            tier: TierHint::Fast,
            last: None,
            up_evidence: 0,
            down_evidence: 0,
            codec_off_evidence: 0,
            spill_evidence: 0,
            writer_cooldown: 0,
            codec_cooldown: 0,
            delta_cooldown: 0,
            probe_countdown: 0,
            ticks: 0,
            actions_taken: 0,
        }
    }

    /// The writer count currently in force.
    pub fn writers(&self) -> usize {
        self.writers
    }

    /// Whether the codec is currently enabled.
    pub fn codec_enabled(&self) -> bool {
        self.codec
    }

    /// The delta policy currently in force.
    pub fn delta_policy(&self) -> DeltaPolicy {
        self.delta
    }

    /// The tier hint currently in force.
    pub fn tier_hint(&self) -> TierHint {
        self.tier
    }

    /// Intervals observed so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Total knob movements across all ticks.
    pub fn actions_taken(&self) -> u64 {
        self.actions_taken
    }

    /// Observes one interval's signals and returns the settings now in
    /// force. The first tick only baselines the cumulative counters.
    pub fn tick(&mut self, signals: ControllerSignals) -> ControllerDecision {
        self.ticks += 1;
        let mut actions = Vec::new();
        let Some(last) = self.last.replace(signals) else {
            return self.decision(actions, None);
        };

        // Per-interval deltas of the cumulative counters. `saturating_sub`
        // tolerates a recorder reset mid-run (the interval reads as empty).
        let stall_sum = signals.stall_sum_nanos.saturating_sub(last.stall_sum_nanos);
        let checkpoints = signals.stall_count.saturating_sub(last.stall_count);
        let chunks = signals.write_count.saturating_sub(last.write_count);
        let chunk_bytes = signals
            .persist_chunk_bytes
            .saturating_sub(last.persist_chunk_bytes);
        let saved = signals
            .codec_bytes_saved
            .saturating_sub(last.codec_bytes_saved);

        self.writer_cooldown = self.writer_cooldown.saturating_sub(1);
        self.codec_cooldown = self.codec_cooldown.saturating_sub(1);
        self.delta_cooldown = self.delta_cooldown.saturating_sub(1);

        let stall_mean = if checkpoints > 0 {
            stall_sum / checkpoints
        } else {
            0
        };
        let saturated = signals.device_queue_depth >= self.cfg.device_queue_saturated;

        // --- Writer count: more writers shorten Tw only while the device
        // queue has headroom; past saturation they just contend.
        if checkpoints > 0 {
            if stall_mean > self.cfg.stall_hi_nanos && !saturated {
                self.up_evidence += 1;
                self.down_evidence = 0;
            } else if stall_mean < self.cfg.stall_lo_nanos {
                self.down_evidence += 1;
                self.up_evidence = 0;
            } else {
                self.up_evidence = 0;
                self.down_evidence = 0;
            }
            if self.writer_cooldown == 0 {
                if self.up_evidence >= self.cfg.evidence && self.writers < self.cfg.max_writers {
                    self.writers += 1;
                    self.up_evidence = 0;
                    self.writer_cooldown = self.cfg.cooldown;
                    actions.push(ControllerAction::WritersUp(self.writers));
                } else if self.down_evidence >= self.cfg.evidence
                    && self.writers > self.cfg.min_writers
                {
                    self.writers -= 1;
                    self.down_evidence = 0;
                    self.writer_cooldown = self.cfg.cooldown;
                    actions.push(ControllerAction::WritersDown(self.writers));
                }
            }
        }

        // --- Codec: disable when framed commits stopped paying (ratio at
        // or above the off threshold, or checkpoints flowed with zero
        // savings); probe periodically while off. The on/off thresholds
        // form a band, so a ratio wandering between them never flaps.
        if self.codec {
            let ratio = signals.compression_ratio_permille;
            let earning = saved > 0 && (ratio == 0 || ratio < self.cfg.codec_off_permille);
            if checkpoints > 0 && !earning {
                self.codec_off_evidence += 1;
            } else if saved > 0 && (ratio == 0 || ratio < self.cfg.codec_on_permille) {
                self.codec_off_evidence = 0;
            }
            if self.codec_cooldown == 0 && self.codec_off_evidence >= self.cfg.evidence {
                self.codec = false;
                self.codec_off_evidence = 0;
                self.codec_cooldown = self.cfg.cooldown;
                self.probe_countdown = self.cfg.codec_probe_interval;
                actions.push(ControllerAction::CodecOff);
            }
        } else if self.probe_countdown > 0 {
            self.probe_countdown -= 1;
            if self.probe_countdown == 0 {
                // Probe: one evidence window with the codec back on. If it
                // still fails to earn its keep the off-evidence path above
                // disables it again (and schedules the next probe).
                self.codec = true;
                self.codec_off_evidence = 0;
                self.codec_cooldown = 0;
                actions.push(ControllerAction::CodecProbe);
            }
        }

        // --- Delta policy: sparse updates amortize the chain's recovery
        // tax over more saved bytes, dense updates don't.
        if self.delta_cooldown == 0 && signals.dirty_ratio_permille > 0 && checkpoints > 0 {
            if signals.dirty_ratio_permille < self.cfg.delta_dirty_lo_permille
                && self.delta.max_chain < self.cfg.max_chain
            {
                self.delta.max_chain += 1;
                self.delta_cooldown = self.cfg.cooldown;
                actions.push(ControllerAction::ChainLengthen(self.delta.max_chain));
            } else if signals.dirty_ratio_permille > self.cfg.delta_dirty_hi_permille
                && self.delta.max_chain > self.cfg.min_chain
            {
                self.delta.max_chain -= 1;
                self.delta_cooldown = self.cfg.cooldown;
                actions.push(ControllerAction::ChainShorten(self.delta.max_chain));
            }
        }

        // --- Tier placement: stalls at the writer ceiling with a
        // saturated device mean the fast tier itself is the bottleneck.
        if checkpoints > 0 {
            if stall_mean > self.cfg.stall_hi_nanos
                && saturated
                && self.writers >= self.cfg.max_writers
            {
                self.spill_evidence += 1;
            } else {
                self.spill_evidence = 0;
                if self.tier == TierHint::Capacity
                    && signals.device_queue_depth < self.cfg.device_queue_saturated / 2
                {
                    self.tier = TierHint::Fast;
                    actions.push(ControllerAction::TierRestore);
                }
            }
            if self.tier == TierHint::Fast && self.spill_evidence >= self.cfg.evidence {
                self.tier = TierHint::Capacity;
                self.spill_evidence = 0;
                actions.push(ControllerAction::TierSpill);
            }
        }

        // --- Chunk-size hint: many tiny chunks on a saturated device are
        // IOPS-bound; doubling the chunk amortizes per-I/O overhead.
        let chunk_hint = if saturated && chunks > Self::IOPS_BOUND_CHUNKS && chunk_bytes > 0 {
            Some(ByteSize::from_bytes((chunk_bytes / chunks).max(1) * 2))
        } else {
            None
        };

        self.actions_taken += actions.len() as u64;
        self.decision(actions, chunk_hint)
    }

    /// Distills `snapshot`, runs [`tick`](Self::tick), and applies the
    /// writer count and codec enablement to `pipeline`. The delta policy
    /// and hints are returned for the caller to thread into its next
    /// checkpoint calls.
    pub fn steer(
        &mut self,
        snapshot: &TelemetrySnapshot,
        pipeline: &PersistPipeline,
    ) -> ControllerDecision {
        let decision = self.tick(ControllerSignals::from_snapshot(snapshot));
        pipeline.set_writers(decision.writers);
        pipeline.set_codec_enabled(decision.codec_enabled);
        decision
    }

    fn decision(
        &self,
        actions: Vec<ControllerAction>,
        chunk_size_hint: Option<ByteSize>,
    ) -> ControllerDecision {
        ControllerDecision {
            writers: self.writers,
            codec_enabled: self.codec,
            delta_policy: self.delta,
            chunk_size_hint,
            tier_hint: self.tier,
            actions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// OPT-1.3B on the GCP SSD testbed.
    fn opt13b_inputs() -> TunerInputs {
        TunerInputs {
            checkpoint_size: ByteSize::from_gb(16.2),
            iter_time: SimDuration::from_secs(2),
            storage_bandwidth: Bandwidth::from_gb_per_sec(16.0 / 37.0),
            pcie_bandwidth: Bandwidth::from_gb_per_sec(12.0),
            storage_budget: ByteSize::from_gb(100.0),
            max_slowdown: 1.05,
        }
    }

    #[test]
    fn max_concurrent_respects_storage_budget() {
        let t = Tuner::new(opt13b_inputs()).unwrap();
        // floor(100/16.2) - 1 = 6 - 1 = 5.
        assert_eq!(t.max_concurrent(), 5);
    }

    #[test]
    fn write_time_grows_with_contention() {
        let t = Tuner::new(opt13b_inputs()).unwrap();
        let tw1 = t.modeled_write_time(1);
        let tw4 = t.modeled_write_time(4);
        assert!(tw4 > tw1, "shared storage bandwidth lengthens Tw");
        // Single checkpoint: 16.2 GB at 0.4324 GB/s ≈ 37.5 s.
        assert!((tw1.as_secs_f64() - 37.46).abs() < 0.5);
    }

    #[test]
    fn equation_3_interval() {
        let t = Tuner::new(opt13b_inputs()).unwrap();
        // f* = ceil(Tw / (N q t)); N=2, Tw(2) ≈ 75 s, q=1.05, t=2:
        // 75 / (2*1.05*2) ≈ 17.8 → 18.
        let tw2 = t.modeled_write_time(2);
        let f = t.min_interval(2, tw2);
        assert!((17..=19).contains(&f), "f*={f}");
    }

    #[test]
    fn recommendation_is_consistent() {
        let t = Tuner::new(opt13b_inputs()).unwrap();
        let rec = t.recommend();
        assert!(rec.concurrent >= 1 && rec.concurrent <= t.max_concurrent());
        assert!(rec.interval >= 1);
        // At the recommended configuration, the modeled overhead over a
        // long run stays within ~q (the dropped f·t term allows slack).
        let over = t.modeled_overhead(100_000, rec.interval, rec.concurrent, rec.write_time);
        assert!(
            over <= 1.05 + 0.01,
            "overhead {over} exceeds budget at f*={}, N*={}",
            rec.interval,
            rec.concurrent
        );
    }

    #[test]
    fn measured_tw_overrides_model() {
        let t = Tuner::new(opt13b_inputs()).unwrap();
        // Pretend measurements show Tw flat in N (infinitely parallel
        // device): then the largest N wins.
        let rec = t.recommend_with(|_| SimDuration::from_secs(10));
        assert_eq!(rec.concurrent, t.max_concurrent());
        // And with Tw growing superlinearly, N=1 wins.
        let rec = t.recommend_with(|n| SimDuration::from_secs(10 * (n as u64).pow(2)));
        assert_eq!(rec.concurrent, 1);
    }

    #[test]
    fn tighter_budget_means_larger_interval() {
        let mut inputs = opt13b_inputs();
        inputs.max_slowdown = 1.01;
        let strict = Tuner::new(inputs).unwrap().recommend();
        let loose = Tuner::new(opt13b_inputs()).unwrap().recommend();
        assert!(strict.interval >= loose.interval);
    }

    #[test]
    fn runtime_model_reduces_to_ideal_without_stalls() {
        let t = Tuner::new(opt13b_inputs()).unwrap();
        // Tiny write time: runtime ≈ A·t plus edge terms.
        let rt = t.modeled_runtime(1000, 10, 2, SimDuration::from_millis(1));
        let ideal = (SimDuration::from_secs(2) * 1000).as_secs_f64();
        assert!(rt.as_secs_f64() <= ideal * 1.01 + 25.0);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let mut i = opt13b_inputs();
        i.max_slowdown = 0.9;
        assert!(Tuner::new(i).is_err());
        let mut i = opt13b_inputs();
        i.checkpoint_size = ByteSize::ZERO;
        assert!(Tuner::new(i).is_err());
        let mut i = opt13b_inputs();
        i.storage_budget = ByteSize::from_gb(20.0); // < 2m
        assert!(Tuner::new(i).is_err());
        let mut i = opt13b_inputs();
        i.iter_time = SimDuration::ZERO;
        assert!(Tuner::new(i).is_err());
    }

    #[test]
    fn adaptive_tuner_tracks_slowing_storage() {
        // Start at the static recommendation for OPT-1.3B (Tw ≈ 75 s at
        // N=2 → f* ≈ 18); then the disk degrades 3x: f* should triple.
        let mut t = AdaptiveTuner::new(2, 1.05, 18, SimDuration::from_secs(2), 5);
        for _ in 0..5 {
            t.record_iteration(SimDuration::from_secs(2));
            t.record_write_time(SimDuration::from_secs(75));
        }
        assert_eq!(t.interval(), 18, "stable inputs keep the interval");
        for _ in 0..5 {
            t.record_write_time(SimDuration::from_secs(225));
        }
        assert!((40..=60).contains(&t.interval()), "got {}", t.interval()); // hysteresis may settle just below 54
        assert!(t.retunes() >= 1);
    }

    #[test]
    fn adaptive_tuner_tightens_when_iterations_slow() {
        // Slower iterations absorb more write time per interval: f* drops.
        let mut t = AdaptiveTuner::new(2, 1.05, 18, SimDuration::from_secs(2), 4);
        for _ in 0..4 {
            t.record_write_time(SimDuration::from_secs(75));
        }
        for _ in 0..4 {
            t.record_iteration(SimDuration::from_secs(8)); // 4x slower
        }
        assert!(t.interval() < 10, "got {}", t.interval());
    }

    #[test]
    fn adaptive_tuner_has_hysteresis() {
        // Small drift (< 25%) never flaps the interval.
        let mut t = AdaptiveTuner::new(2, 1.05, 18, SimDuration::from_secs(2), 4);
        for i in 0..20u64 {
            t.record_iteration(SimDuration::from_millis(2000 + (i % 3) * 50));
            t.record_write_time(SimDuration::from_secs(75));
        }
        assert_eq!(t.retunes(), 0, "jitter must not retune");
        assert_eq!(t.interval(), 18);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn adaptive_tuner_rejects_zero_window() {
        AdaptiveTuner::new(1, 1.05, 10, SimDuration::from_secs(1), 0);
    }

    /// Signals for an interval of `checkpoints` checkpoints at a mean
    /// stall of `stall_nanos` each, with the cumulative counters advanced
    /// from `prev`.
    fn advance(
        prev: &ControllerSignals,
        checkpoints: u64,
        stall_nanos: u64,
        queue: u64,
    ) -> ControllerSignals {
        ControllerSignals {
            stall_sum_nanos: prev.stall_sum_nanos + checkpoints * stall_nanos,
            stall_count: prev.stall_count + checkpoints,
            write_sum_nanos: prev.write_sum_nanos + checkpoints * 1000,
            write_count: prev.write_count + checkpoints * 4,
            device_queue_depth: queue,
            queue_depth: 1,
            persist_chunk_bytes: prev.persist_chunk_bytes + checkpoints * 4096,
            codec_bytes_saved: prev.codec_bytes_saved,
            dedup_chunks: prev.dedup_chunks,
            compression_ratio_permille: prev.compression_ratio_permille,
            dirty_ratio_permille: prev.dirty_ratio_permille,
        }
    }

    #[test]
    fn controller_scales_writers_up_under_stall_with_queue_headroom() {
        let mut c = PersistController::new(ControllerConfig::default(), 2, false);
        let mut s = ControllerSignals::default();
        c.tick(s); // baseline
        let mut ups = 0;
        for _ in 0..12 {
            s = advance(&s, 4, 10_000_000, 2); // 10 ms stalls, shallow queue
            for a in c.tick(s).actions {
                if matches!(a, ControllerAction::WritersUp(_)) {
                    ups += 1;
                }
            }
        }
        assert!(c.writers() > 2, "sustained stall must add writers");
        assert!(ups >= 2);
        // Step-bounded: 12 intervals with evidence=2, cooldown=2 allow at
        // most one move per 2 intervals.
        assert!(c.writers() <= 2 + 6, "writers {} moved too fast", c.writers());
        assert!(c.writers() <= 8, "bounded by max_writers");
    }

    #[test]
    fn controller_does_not_add_writers_into_a_saturated_device() {
        let mut c = PersistController::new(ControllerConfig::default(), 2, false);
        let mut s = ControllerSignals::default();
        c.tick(s);
        for _ in 0..10 {
            s = advance(&s, 4, 10_000_000, 32); // stalled AND saturated
            c.tick(s);
        }
        assert_eq!(c.writers(), 2, "queue saturation means writers won't help");
    }

    #[test]
    fn controller_returns_cores_when_stall_is_negligible() {
        let mut c = PersistController::new(ControllerConfig::default(), 4, false);
        let mut s = ControllerSignals::default();
        c.tick(s);
        for _ in 0..12 {
            s = advance(&s, 4, 10_000, 1); // 10 µs stalls
            c.tick(s);
        }
        assert!(c.writers() < 4, "idle persist path must shed writers");
        assert!(c.writers() >= 1, "bounded by min_writers");
    }

    #[test]
    fn controller_jitter_does_not_flap_writers() {
        // Stalls alternating either side of the band's interior never
        // accumulate the consecutive evidence an action needs.
        let mut c = PersistController::new(ControllerConfig::default(), 3, false);
        let mut s = ControllerSignals::default();
        c.tick(s);
        for i in 0..20 {
            let stall = if i % 2 == 0 { 3_000_000 } else { 500_000 };
            s = advance(&s, 4, stall, 1);
            c.tick(s);
        }
        assert_eq!(c.writers(), 3, "jitter must not move the knob");
        assert_eq!(c.actions_taken(), 0);
    }

    #[test]
    fn controller_disables_unearning_codec_and_probes_later() {
        let cfg = ControllerConfig {
            codec_probe_interval: 3,
            ..ControllerConfig::default()
        };
        let mut c = PersistController::new(cfg, 2, true);
        let mut s = ControllerSignals {
            compression_ratio_permille: 995, // storing at ~full size
            ..ControllerSignals::default()
        };
        c.tick(s);
        let mut off_at = None;
        for i in 0..3 {
            s = advance(&s, 4, 500_000, 1);
            let d = c.tick(s);
            if d.actions.contains(&ControllerAction::CodecOff) {
                off_at = Some(i);
            }
        }
        assert!(off_at.is_some(), "incompressible payloads must disable codec");
        assert!(!c.codec_enabled());
        // After the probe interval it re-arms for one evidence window; the
        // payloads are still incompressible, so the probe fails and the
        // codec goes back off (scheduling the next probe).
        let mut probed = 0;
        let mut re_off = 0;
        for _ in 0..16 {
            s = advance(&s, 4, 500_000, 1);
            for a in c.tick(s).actions {
                match a {
                    ControllerAction::CodecProbe => {
                        probed += 1;
                        assert!(c.codec_enabled(), "probe re-enables the codec");
                    }
                    ControllerAction::CodecOff => re_off += 1,
                    _ => {}
                }
            }
        }
        assert!(probed >= 2, "codec must keep probing after backoffs, got {probed}");
        assert!(re_off >= 2, "failed probes must disable again, got {re_off}");
    }

    #[test]
    fn controller_keeps_earning_codec_enabled() {
        let mut c = PersistController::new(ControllerConfig::default(), 2, true);
        let mut s = ControllerSignals {
            compression_ratio_permille: 400, // 2.5x reduction
            ..ControllerSignals::default()
        };
        c.tick(s);
        for _ in 0..10 {
            s = advance(&s, 4, 500_000, 1);
            s.codec_bytes_saved += 4 * 2400; // framed commits keep saving
            c.tick(s);
        }
        assert!(c.codec_enabled(), "an earning codec must stay on");
    }

    #[test]
    fn controller_adapts_delta_chain_to_dirty_ratio() {
        let mut c = PersistController::new(ControllerConfig::default(), 2, false);
        let base = c.delta_policy().max_chain;
        let mut s = ControllerSignals {
            dirty_ratio_permille: 50, // very sparse updates
            ..ControllerSignals::default()
        };
        c.tick(s);
        for _ in 0..8 {
            s = advance(&s, 4, 500_000, 1);
            c.tick(s);
        }
        assert!(c.delta_policy().max_chain > base, "sparse updates lengthen chains");
        // Now the workload densifies: chains shorten again.
        s.dirty_ratio_permille = 900;
        for _ in 0..20 {
            s = advance(&s, 4, 500_000, 1);
            c.tick(s);
        }
        assert!(
            c.delta_policy().max_chain < ControllerConfig::default().max_chain,
            "dense updates shorten chains"
        );
        assert!(c.delta_policy().max_chain >= 1);
    }

    #[test]
    fn controller_spills_tier_only_at_the_writer_ceiling() {
        let cfg = ControllerConfig {
            max_writers: 2,
            ..ControllerConfig::default()
        };
        let mut c = PersistController::new(cfg, 2, false);
        let mut s = ControllerSignals::default();
        c.tick(s);
        assert_eq!(c.tier_hint(), TierHint::Fast);
        for _ in 0..4 {
            s = advance(&s, 4, 10_000_000, 32); // stalled, saturated, at max p
            c.tick(s);
        }
        assert_eq!(c.tier_hint(), TierHint::Capacity, "must spill");
        // Pressure clears: the hint returns to the fast tier.
        for _ in 0..4 {
            s = advance(&s, 4, 100_000, 2);
            c.tick(s);
        }
        assert_eq!(c.tier_hint(), TierHint::Fast);
    }

    #[test]
    fn controller_recommends_larger_chunks_when_iops_bound() {
        let mut c = PersistController::new(ControllerConfig::default(), 2, false);
        let mut s = ControllerSignals::default();
        c.tick(s);
        // 256 chunks of 64 B in one interval on a saturated device.
        s.write_count += 256;
        s.write_sum_nanos += 256_000;
        s.persist_chunk_bytes += 256 * 64;
        s.stall_count += 4;
        s.stall_sum_nanos += 4 * 500_000;
        s.device_queue_depth = 32;
        let d = c.tick(s);
        assert_eq!(d.chunk_size_hint, Some(ByteSize::from_bytes(128)));
        // A quiet device yields no hint.
        s = advance(&s, 4, 500_000, 1);
        assert_eq!(c.tick(s).chunk_size_hint, None);
    }

    #[test]
    fn controller_steers_a_real_pipeline() {
        use crate::store::CheckpointStore;
        use pccheck_device::{DeviceConfig, HostBufferPool, PersistentDevice, SsdDevice};
        use std::sync::Arc;

        let device: Arc<dyn PersistentDevice> = Arc::new(SsdDevice::new(
            DeviceConfig::fast_for_tests(ByteSize::from_kb(64)),
        ));
        let store = CheckpointStore::format(device, ByteSize::from_kb(4), 3).unwrap();
        let pipeline = crate::pipeline::PersistPipeline::new(Arc::new(store))
            .with_writers(2)
            .with_staging(HostBufferPool::new(ByteSize::from_bytes(256), 16))
            .with_codec(true);
        let telemetry = pccheck_telemetry::Telemetry::enabled();
        let mut c = PersistController::new(ControllerConfig::default(), 2, true);
        let d = c.steer(&telemetry.snapshot().unwrap(), &pipeline);
        assert_eq!(pipeline.writers(), d.writers);
        assert_eq!(pipeline.codec_enabled(), d.codec_enabled);
        assert_eq!(d.writers, 2);
        assert!(d.codec_enabled);
    }

    #[test]
    #[should_panic(expected = "hysteresis band")]
    fn controller_rejects_inverted_codec_thresholds() {
        let cfg = ControllerConfig {
            codec_on_permille: 990,
            codec_off_permille: 980,
            ..ControllerConfig::default()
        };
        PersistController::new(cfg, 2, false);
    }

    #[test]
    fn paper_guidance_modest_n_for_vgg16() {
        // §5.2.3 / §5.4.1: PCcheck picks a modest N (2–4) because storage
        // saturates. Model Tw with a contention penalty and check the pick.
        let inputs = TunerInputs {
            checkpoint_size: ByteSize::from_gb(1.1),
            iter_time: SimDuration::from_millis(60),
            storage_bandwidth: Bandwidth::from_gb_per_sec(16.0 / 37.0),
            pcie_bandwidth: Bandwidth::from_gb_per_sec(12.0),
            storage_budget: ByteSize::from_gb(50.0),
            max_slowdown: 1.05,
        };
        let t = Tuner::new(inputs).unwrap();
        // Measured-style Tw: linear sharing plus 15% per-extra-checkpoint
        // interference → diminishing returns beyond a few.
        let rec = t.recommend_with(|n| {
            let base = t.modeled_write_time(n).as_secs_f64();
            SimDuration::from_secs_f64(base * (1.0 + 0.15 * (n as f64 - 1.0)))
        });
        assert!(
            (1..=8).contains(&rec.concurrent),
            "modest N expected, got {}",
            rec.concurrent
        );
    }
}

//! The §3.4 configuration tool: pick `N*` and the minimum checkpoint
//! interval `f*` that keeps checkpointing overhead under a budget `q`.
//!
//! The analysis models training runtime with checkpoints every `f`
//! iterations and `N` concurrent checkpoints:
//!
//! ```text
//! runtime_2 = f·t + max(Tw, N·f·t) · (A/(f·N) − 1) + Tw
//! ```
//!
//! In the stalling regime (`Tw > N·f·t`), bounding `runtime_2 ≤ q·runtime_0`
//! (with `runtime_0 = A·t`) and dropping the negligible `f·t` term yields
//! equation (2): `f ≥ Tw / (N·q·t)`, and the recommended interval is
//! equation (3): `f* = ceil(Tw / (N*·q·t))`.
//!
//! `N*` is found empirically: the tool measures (or accepts a model of)
//! `Tw(N)` — the per-checkpoint write time under `N`-way contention — and
//! picks the `N` minimizing `Tw(N)/N`, subject to `N ≤ S/m − 1`.

use pccheck_util::{Bandwidth, ByteSize, SimDuration};

use crate::error::PccheckError;

/// Inputs to the tuner: the "System/Model Parameters" and "User
/// Constraints" columns of Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct TunerInputs {
    /// Checkpoint size `m`.
    pub checkpoint_size: ByteSize,
    /// Iteration time `t`.
    pub iter_time: SimDuration,
    /// Storage write bandwidth `T_S`.
    pub storage_bandwidth: Bandwidth,
    /// GPU→CPU PCIe bandwidth `T_G`.
    pub pcie_bandwidth: Bandwidth,
    /// Total storage budget `S` for checkpoints.
    pub storage_budget: ByteSize,
    /// Acceptable slowdown `q ≥ 1` (e.g., 1.03 for 3% overhead).
    pub max_slowdown: f64,
}

/// The tuner's recommendation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunerRecommendation {
    /// Chosen number of concurrent checkpoints `N*`.
    pub concurrent: usize,
    /// Minimum checkpoint interval `f*` (iterations).
    pub interval: u64,
    /// The modeled per-checkpoint write time at `N*`.
    pub write_time: SimDuration,
}

/// The §3.4 configuration tool.
#[derive(Debug, Clone, PartialEq)]
pub struct Tuner {
    inputs: TunerInputs,
}

impl Tuner {
    /// Creates a tuner.
    ///
    /// # Errors
    ///
    /// Returns [`PccheckError::InvalidConfig`] if `q < 1`, the checkpoint
    /// is empty, or the storage budget cannot hold two checkpoints.
    pub fn new(inputs: TunerInputs) -> Result<Self, PccheckError> {
        if inputs.max_slowdown < 1.0 || !inputs.max_slowdown.is_finite() {
            return Err(PccheckError::InvalidConfig(format!(
                "slowdown budget q must be >= 1, got {}",
                inputs.max_slowdown
            )));
        }
        if inputs.checkpoint_size.is_zero() {
            return Err(PccheckError::InvalidConfig(
                "checkpoint size must be nonzero".into(),
            ));
        }
        if inputs.storage_budget < inputs.checkpoint_size * 2 {
            return Err(PccheckError::InvalidConfig(
                "storage budget must hold at least 2 checkpoints (N=1)".into(),
            ));
        }
        if inputs.iter_time.is_zero() {
            return Err(PccheckError::InvalidConfig(
                "iteration time must be nonzero".into(),
            ));
        }
        Ok(Tuner { inputs })
    }

    /// The inputs.
    pub fn inputs(&self) -> &TunerInputs {
        &self.inputs
    }

    /// Maximum `N` the storage budget allows: `N ≤ S/m − 1`.
    pub fn max_concurrent(&self) -> usize {
        let slots = self.inputs.storage_budget.as_u64() / self.inputs.checkpoint_size.as_u64();
        (slots.saturating_sub(1)) as usize
    }

    /// Models the end-to-end write time of one checkpoint when `n`
    /// checkpoints contend: the GPU→DRAM copy at full PCIe bandwidth plus
    /// the DRAM→storage phase at `T_S / n` (processor sharing). This is the
    /// analytic stand-in for the tool's empirical profiling round; the
    /// concrete engine's measured times can be substituted via
    /// [`recommend_with`](Self::recommend_with).
    pub fn modeled_write_time(&self, n: usize) -> SimDuration {
        let m = self.inputs.checkpoint_size;
        let copy = self.inputs.pcie_bandwidth.transfer_time(m);
        let persist = self.inputs.storage_bandwidth.shared_by(n).transfer_time(m);
        // Pipelining overlaps copy and persist; the slower phase dominates,
        // plus one chunk's worth of lead-in which we fold into the max.
        copy.max(persist)
    }

    /// Recommends `N*` and `f*` using the analytic `Tw(N)` model.
    pub fn recommend(&self) -> TunerRecommendation {
        self.recommend_with(|n| self.modeled_write_time(n))
    }

    /// Recommends `N*` and `f*` given a measured `Tw(N)` (the empirical
    /// profiling round of §3.4).
    ///
    /// Picks the `N` in `[1, S/m − 1]` minimizing `Tw(N)/N`, then applies
    /// equation (3).
    pub fn recommend_with(
        &self,
        mut write_time: impl FnMut(usize) -> SimDuration,
    ) -> TunerRecommendation {
        let max_n = self.max_concurrent().max(1);
        let mut best_n = 1;
        let mut best_tw = write_time(1);
        let mut best_ratio = best_tw.as_secs_f64();
        for n in 2..=max_n {
            let tw = write_time(n);
            let ratio = tw.as_secs_f64() / n as f64;
            if ratio < best_ratio {
                best_ratio = ratio;
                best_n = n;
                best_tw = tw;
            }
        }
        TunerRecommendation {
            concurrent: best_n,
            interval: self.min_interval(best_n, best_tw),
            write_time: best_tw,
        }
    }

    /// Equation (3): `f* = ceil(Tw / (N·q·t))`, at least 1 — combined with
    /// the sustainability floor `f ≥ m / (t·T_S)`: no matter how many
    /// checkpoints run concurrently, the device must absorb `m` bytes per
    /// interval, so demand beyond the storage bandwidth stalls training
    /// regardless of `N`. (The paper's equation (2) presumes Tw was
    /// measured at the final steady state; making the floor explicit keeps
    /// the recommendation safe even with a noisy Tw estimate.)
    pub fn min_interval(&self, n: usize, write_time: SimDuration) -> u64 {
        let q = self.inputs.max_slowdown;
        let t = self.inputs.iter_time.as_secs_f64();
        let f = write_time.as_secs_f64() / (n as f64 * q * t);
        let sustain = self.inputs.checkpoint_size.as_u64() as f64
            / (t * self.inputs.storage_bandwidth.as_bytes_per_sec() * q);
        (f.max(sustain).ceil() as u64).max(1)
    }

    /// The runtime model: `runtime_2` for `A` iterations with interval `f`
    /// and `N` concurrent checkpoints (the pre-simplification formula).
    pub fn modeled_runtime(
        &self,
        iterations: u64,
        interval: u64,
        n: usize,
        write_time: SimDuration,
    ) -> SimDuration {
        let t = self.inputs.iter_time;
        let ft = t * interval;
        let nft = ft * n as u64;
        let rounds = (iterations as f64 / (interval as f64 * n as f64) - 1.0).max(0.0);
        ft + write_time.max(nft).mul_f64(rounds) + write_time
    }

    /// Overhead of the modeled runtime vs no checkpointing.
    pub fn modeled_overhead(
        &self,
        iterations: u64,
        interval: u64,
        n: usize,
        write_time: SimDuration,
    ) -> f64 {
        let with = self.modeled_runtime(iterations, interval, n, write_time);
        let without = self.inputs.iter_time * iterations;
        with.as_secs_f64() / without.as_secs_f64()
    }
}

/// Online re-tuning of the checkpoint interval (§3.4's proposed extension:
/// "monitor training throughput and traffic between GPU, CPU, and storage,
/// and adapt (3) accordingly").
///
/// The optimal `f*` from equation (3) depends on the iteration time `t`
/// and the contended write time `Tw`, both of which drift during training
/// — vision workloads become input-bound, LLM training offloads
/// activations over the same PCIe/storage paths. [`AdaptiveTuner`] keeps
/// sliding windows of both measurements and recomputes `f*` whenever the
/// estimate moves materially.
///
/// # Examples
///
/// ```
/// use pccheck::tuner::AdaptiveTuner;
/// use pccheck_util::SimDuration;
///
/// let mut tuner = AdaptiveTuner::new(2, 1.05, 10, SimDuration::from_secs(2), 4);
/// assert_eq!(tuner.interval(), 10);
/// // The disk got busier: write times doubled. The interval stretches.
/// for _ in 0..8 {
///     tuner.record_iteration(SimDuration::from_secs(2));
///     tuner.record_write_time(SimDuration::from_secs(168));
/// }
/// assert!(tuner.interval() > 10);
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveTuner {
    n: usize,
    max_slowdown: f64,
    interval: u64,
    window: usize,
    iter_times: std::collections::VecDeque<f64>,
    write_times: std::collections::VecDeque<f64>,
    retunes: u64,
}

impl AdaptiveTuner {
    /// Hysteresis: re-tune only when the recomputed interval differs from
    /// the current one by more than this fraction.
    const RETUNE_THRESHOLD: f64 = 0.25;

    /// Creates an adaptive tuner starting from `initial_interval`, with a
    /// sliding window of `window` measurements per signal.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `q < 1`, `initial_interval == 0`, the seed
    /// iteration time is zero, or `window == 0`.
    pub fn new(
        n: usize,
        max_slowdown: f64,
        initial_interval: u64,
        seed_iter_time: SimDuration,
        window: usize,
    ) -> Self {
        assert!(n > 0, "N must be positive");
        assert!(max_slowdown >= 1.0, "q must be >= 1");
        assert!(initial_interval > 0, "interval must be positive");
        assert!(!seed_iter_time.is_zero(), "iteration time must be nonzero");
        assert!(window > 0, "window must be positive");
        let mut iter_times = std::collections::VecDeque::with_capacity(window);
        iter_times.push_back(seed_iter_time.as_secs_f64());
        AdaptiveTuner {
            n,
            max_slowdown,
            interval: initial_interval,
            window,
            iter_times,
            write_times: std::collections::VecDeque::with_capacity(window),
            retunes: 0,
        }
    }

    /// The interval currently in force.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Number of times the interval has been adjusted.
    pub fn retunes(&self) -> u64 {
        self.retunes
    }

    /// Records a measured iteration time.
    pub fn record_iteration(&mut self, t: SimDuration) {
        Self::push(&mut self.iter_times, t.as_secs_f64(), self.window);
        self.maybe_retune();
    }

    /// Records a measured end-to-end checkpoint write time (`Tw`).
    pub fn record_write_time(&mut self, tw: SimDuration) {
        Self::push(&mut self.write_times, tw.as_secs_f64(), self.window);
        self.maybe_retune();
    }

    fn push(q: &mut std::collections::VecDeque<f64>, v: f64, cap: usize) {
        if q.len() == cap {
            q.pop_front();
        }
        q.push_back(v);
    }

    fn mean(q: &std::collections::VecDeque<f64>) -> Option<f64> {
        if q.is_empty() {
            None
        } else {
            Some(q.iter().sum::<f64>() / q.len() as f64)
        }
    }

    fn maybe_retune(&mut self) {
        let (Some(t), Some(tw)) = (Self::mean(&self.iter_times), Self::mean(&self.write_times))
        else {
            return;
        };
        if t <= 0.0 {
            return;
        }
        // Equation (3) with the current estimates.
        let target = ((tw / (self.n as f64 * self.max_slowdown * t)).ceil() as u64).max(1);
        let drift = (target as f64 - self.interval as f64).abs() / self.interval as f64;
        if drift > Self::RETUNE_THRESHOLD {
            self.interval = target;
            self.retunes += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// OPT-1.3B on the GCP SSD testbed.
    fn opt13b_inputs() -> TunerInputs {
        TunerInputs {
            checkpoint_size: ByteSize::from_gb(16.2),
            iter_time: SimDuration::from_secs(2),
            storage_bandwidth: Bandwidth::from_gb_per_sec(16.0 / 37.0),
            pcie_bandwidth: Bandwidth::from_gb_per_sec(12.0),
            storage_budget: ByteSize::from_gb(100.0),
            max_slowdown: 1.05,
        }
    }

    #[test]
    fn max_concurrent_respects_storage_budget() {
        let t = Tuner::new(opt13b_inputs()).unwrap();
        // floor(100/16.2) - 1 = 6 - 1 = 5.
        assert_eq!(t.max_concurrent(), 5);
    }

    #[test]
    fn write_time_grows_with_contention() {
        let t = Tuner::new(opt13b_inputs()).unwrap();
        let tw1 = t.modeled_write_time(1);
        let tw4 = t.modeled_write_time(4);
        assert!(tw4 > tw1, "shared storage bandwidth lengthens Tw");
        // Single checkpoint: 16.2 GB at 0.4324 GB/s ≈ 37.5 s.
        assert!((tw1.as_secs_f64() - 37.46).abs() < 0.5);
    }

    #[test]
    fn equation_3_interval() {
        let t = Tuner::new(opt13b_inputs()).unwrap();
        // f* = ceil(Tw / (N q t)); N=2, Tw(2) ≈ 75 s, q=1.05, t=2:
        // 75 / (2*1.05*2) ≈ 17.8 → 18.
        let tw2 = t.modeled_write_time(2);
        let f = t.min_interval(2, tw2);
        assert!((17..=19).contains(&f), "f*={f}");
    }

    #[test]
    fn recommendation_is_consistent() {
        let t = Tuner::new(opt13b_inputs()).unwrap();
        let rec = t.recommend();
        assert!(rec.concurrent >= 1 && rec.concurrent <= t.max_concurrent());
        assert!(rec.interval >= 1);
        // At the recommended configuration, the modeled overhead over a
        // long run stays within ~q (the dropped f·t term allows slack).
        let over = t.modeled_overhead(100_000, rec.interval, rec.concurrent, rec.write_time);
        assert!(
            over <= 1.05 + 0.01,
            "overhead {over} exceeds budget at f*={}, N*={}",
            rec.interval,
            rec.concurrent
        );
    }

    #[test]
    fn measured_tw_overrides_model() {
        let t = Tuner::new(opt13b_inputs()).unwrap();
        // Pretend measurements show Tw flat in N (infinitely parallel
        // device): then the largest N wins.
        let rec = t.recommend_with(|_| SimDuration::from_secs(10));
        assert_eq!(rec.concurrent, t.max_concurrent());
        // And with Tw growing superlinearly, N=1 wins.
        let rec = t.recommend_with(|n| SimDuration::from_secs(10 * (n as u64).pow(2)));
        assert_eq!(rec.concurrent, 1);
    }

    #[test]
    fn tighter_budget_means_larger_interval() {
        let mut inputs = opt13b_inputs();
        inputs.max_slowdown = 1.01;
        let strict = Tuner::new(inputs).unwrap().recommend();
        let loose = Tuner::new(opt13b_inputs()).unwrap().recommend();
        assert!(strict.interval >= loose.interval);
    }

    #[test]
    fn runtime_model_reduces_to_ideal_without_stalls() {
        let t = Tuner::new(opt13b_inputs()).unwrap();
        // Tiny write time: runtime ≈ A·t plus edge terms.
        let rt = t.modeled_runtime(1000, 10, 2, SimDuration::from_millis(1));
        let ideal = (SimDuration::from_secs(2) * 1000).as_secs_f64();
        assert!(rt.as_secs_f64() <= ideal * 1.01 + 25.0);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let mut i = opt13b_inputs();
        i.max_slowdown = 0.9;
        assert!(Tuner::new(i).is_err());
        let mut i = opt13b_inputs();
        i.checkpoint_size = ByteSize::ZERO;
        assert!(Tuner::new(i).is_err());
        let mut i = opt13b_inputs();
        i.storage_budget = ByteSize::from_gb(20.0); // < 2m
        assert!(Tuner::new(i).is_err());
        let mut i = opt13b_inputs();
        i.iter_time = SimDuration::ZERO;
        assert!(Tuner::new(i).is_err());
    }

    #[test]
    fn adaptive_tuner_tracks_slowing_storage() {
        // Start at the static recommendation for OPT-1.3B (Tw ≈ 75 s at
        // N=2 → f* ≈ 18); then the disk degrades 3x: f* should triple.
        let mut t = AdaptiveTuner::new(2, 1.05, 18, SimDuration::from_secs(2), 5);
        for _ in 0..5 {
            t.record_iteration(SimDuration::from_secs(2));
            t.record_write_time(SimDuration::from_secs(75));
        }
        assert_eq!(t.interval(), 18, "stable inputs keep the interval");
        for _ in 0..5 {
            t.record_write_time(SimDuration::from_secs(225));
        }
        assert!((40..=60).contains(&t.interval()), "got {}", t.interval()); // hysteresis may settle just below 54
        assert!(t.retunes() >= 1);
    }

    #[test]
    fn adaptive_tuner_tightens_when_iterations_slow() {
        // Slower iterations absorb more write time per interval: f* drops.
        let mut t = AdaptiveTuner::new(2, 1.05, 18, SimDuration::from_secs(2), 4);
        for _ in 0..4 {
            t.record_write_time(SimDuration::from_secs(75));
        }
        for _ in 0..4 {
            t.record_iteration(SimDuration::from_secs(8)); // 4x slower
        }
        assert!(t.interval() < 10, "got {}", t.interval());
    }

    #[test]
    fn adaptive_tuner_has_hysteresis() {
        // Small drift (< 25%) never flaps the interval.
        let mut t = AdaptiveTuner::new(2, 1.05, 18, SimDuration::from_secs(2), 4);
        for i in 0..20u64 {
            t.record_iteration(SimDuration::from_millis(2000 + (i % 3) * 50));
            t.record_write_time(SimDuration::from_secs(75));
        }
        assert_eq!(t.retunes(), 0, "jitter must not retune");
        assert_eq!(t.interval(), 18);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn adaptive_tuner_rejects_zero_window() {
        AdaptiveTuner::new(1, 1.05, 10, SimDuration::from_secs(1), 0);
    }

    #[test]
    fn paper_guidance_modest_n_for_vgg16() {
        // §5.2.3 / §5.4.1: PCcheck picks a modest N (2–4) because storage
        // saturates. Model Tw with a contention penalty and check the pick.
        let inputs = TunerInputs {
            checkpoint_size: ByteSize::from_gb(1.1),
            iter_time: SimDuration::from_millis(60),
            storage_bandwidth: Bandwidth::from_gb_per_sec(16.0 / 37.0),
            pcie_bandwidth: Bandwidth::from_gb_per_sec(12.0),
            storage_budget: ByteSize::from_gb(50.0),
            max_slowdown: 1.05,
        };
        let t = Tuner::new(inputs).unwrap();
        // Measured-style Tw: linear sharing plus 15% per-extra-checkpoint
        // interference → diminishing returns beyond a few.
        let rec = t.recommend_with(|n| {
            let base = t.modeled_write_time(n).as_secs_f64();
            SimDuration::from_secs_f64(base * (1.0 + 0.15 * (n as f64 - 1.0)))
        });
        assert!(
            (1..=8).contains(&rec.concurrent),
            "modest N expected, got {}",
            rec.concurrent
        );
    }
}

//! The persistent checkpoint store: device layout and the concurrent
//! commit protocol of Listing 1.
//!
//! # Device layout
//!
//! ```text
//! +--------------------+  offset 0
//! | store header (64B) |  magic, slot count, slot size
//! +--------------------+  offset 64
//! | CHECK_ADDR record  |  CheckMeta of the latest committed checkpoint
//! |        (64B)       |  (one cache line: atomically persistable)
//! +--------------------+  offset 128
//! | slot 0 meta (64B)  |
//! | slot 0 payload     |
//! +--------------------+
//! | slot 1 meta ...    |
//! +--------------------+  offset 128 + slots·(64 + slot_size)
//! | flight ring        |  optional crash-safe telemetry ring
//! | (header + records) |  (`flight_records` > 0)
//! +--------------------+
//! | digest tables      |  optional per-slot per-chunk digest tables
//! | (slots · stride)   |  (`digest_chunks` > 0; advisory, CRC-protected)
//! +--------------------+
//! | namespace directory|  optional multi-tenant directory
//! | (max_ns · 128B)    |  (`max_namespaces` > 0; descriptor + per-job
//! +--------------------+   CHECK_ADDR record per entry)
//! | slot state words   |  optional per-slot commit-state records
//! | (slots · 64B)      |  (header flag at bytes 32..36; the lattice
//! +--------------------+   Free → Claimed{c} → Committed{c})
//! ```
//!
//! The digest region holds one fixed-stride [`ChunkDigestTable`] per slot,
//! written after the payload persists but bound to a specific commit by
//! `(counter, payload_digest)` — a stale or torn table is detected and
//! ignored, dropping recovery back to the legacy whole-payload digests.
//! Stores formatted before this region existed read `digest_chunks == 0`
//! from the header and behave exactly as before.
//!
//! With `N` allowed concurrent checkpoints the store holds `N+1` slots —
//! the `(N+1)·m` storage footprint of Table 1 — guaranteeing one fully
//! persisted checkpoint exists at all times once the first commit lands.
//!
//! # Commit protocol (Listing 1, lock-free)
//!
//! 1. read the current `CHECK_ADDR` (`last_check`),
//! 2. `atomic_add` the global counter → `curr_counter`,
//! 3. dequeue a free slot from the lock-free queue (spinning if none),
//!    CAS its in-memory state word Free → Claimed{counter}, and publish
//!    the durable claim word (best-effort),
//! 4. write + persist the payload (the engine does this with `p` writer
//!    threads),
//! 5. write + persist the slot's meta record (`BARRIER(cur_check)`),
//! 6. CAS the in-memory `CHECK_ADDR` from `last_check` to
//!    `(curr_counter, slot)`:
//!    * success → publish the durable Committed{counter} state word,
//!      publish `CHECK_ADDR` (lock-free: device write + `fetch_max`
//!      watermark), store Free into each displaced slot's in-memory
//!      word, and enqueue the displaced slot(s),
//!    * failure with a newer counter installed → publish `CHECK_ADDR`
//!      (helping), store Free + enqueue *our own* slot (our checkpoint
//!      is obsolete),
//!    * failure with an older counter → reload and retry the CAS.
//!
//! No step ever holds a mutex — and in particular no mutex is held
//! across device I/O. The durable `CHECK_ADDR` write is made idempotent
//! by a `fetch_max` watermark over the last-persisted counter
//! ([`CommitPointer`]); a racing publisher can at worst re-persist a
//! *stale* record, which recovery tolerates because the slot scan takes
//! the max valid counter and a newer commit's slot record is always
//! durable before its `CHECK_ADDR` publish (see DESIGN §13).
//!
//! The invariant maintained: the slot referenced by the durable
//! `CHECK_ADDR` is never in the free queue, so no concurrent checkpoint
//! can overwrite the latest committed state.
//!
//! # The per-slot commit-state lattice
//!
//! Stores formatted by this version additionally carry one durable
//! [`SlotState`] word per slot (header flag at bytes 32..36). The claim
//! step publishes Claimed{counter}; the commit winner publishes
//! Committed{counter}; recycling deliberately leaves the durable word
//! alone (counters rank claims). After a crash every slot's outcome is
//! decidable from its state word plus the meta record's CRC —
//! [`RawStoreView::slot_outcome`] is the decision procedure — which is
//! what makes the lock-free commit *detectable* in the memento sense.
//! Legacy stores read the flag as zero and classify from meta CRCs
//! alone, exactly as before.
//!
//! # Multi-tenant namespaces
//!
//! A *service-mode* store (formatted via
//! [`CheckpointStore::format_service`]) additionally carves its slot array
//! into contiguous per-job **namespaces**. Each namespace owns a private
//! free-slot queue and a private `CHECK_ADDR` (in memory and on device, in
//! the directory at the tail of the layout), so the full Listing 1 commit
//! protocol runs independently per tenant: jobs never race each other's
//! CAS, never lease each other's slots, and recover independently. The
//! global counter stays store-wide, keeping every checkpoint's counter
//! unique across tenants (forensics and the flight ring rely on that).
//! Legacy stores carry `max_namespaces == 0` in the header and behave
//! exactly as before.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use pccheck_device::{ChunkDigestTable, PersistentDevice};
use pccheck_telemetry::{FlightEventKind, FlightRecorder, FlightRing};
use pccheck_util::ByteSize;

use crate::error::PccheckError;
use crate::meta::{
    CheckMeta, DeltaLink, NamespaceDesc, PackedCheckAddr, SlotState, META_RECORD_SIZE,
    NS_DESC_SIZE, SLOT_STATE_SIZE,
};
use crate::queue::SlotQueue;

/// Identifier of a tenant job in a multi-tenant store (matches the sim's
/// fluid-model job ids so fairness oracles line up).
pub type JobId = u64;

const STORE_MAGIC: u64 = 0x5043_6368_6543_6B31; // "PCcheCk1"
const HEADER_SIZE: u64 = 64;
const CHECK_ADDR_OFFSET: u64 = HEADER_SIZE;
const SLOTS_OFFSET: u64 = HEADER_SIZE + META_RECORD_SIZE;

/// Stride of one namespace-directory entry: the 64-byte descriptor
/// followed by that namespace's own 64-byte CHECK_ADDR record.
const NS_ENTRY_SIZE: u64 = NS_DESC_SIZE + META_RECORD_SIZE;

/// The finest chunk granularity the per-slot digest region is provisioned
/// for: a slot of `s` bytes gets room for `ceil(s / 4096)` chunk digests,
/// a fixed ~0.2% capacity overhead. Pipelines chunking finer than this on
/// a given payload simply skip the table (legacy verification applies).
const DIGEST_CHUNK_GRAIN: u64 = 4096;

/// Outcome of a commit attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitOutcome {
    /// This checkpoint became the latest committed one.
    Committed,
    /// A newer checkpoint won the race; this one was discarded (its slot
    /// returned to the free queue). Still a success: a *newer* state is
    /// durable.
    SupersededBy {
        /// Counter of the newer committed checkpoint.
        counter: u64,
    },
}

/// A checkpoint slot leased from the store for writing.
///
/// Obtained from [`CheckpointStore::begin_checkpoint`]; the holder writes
/// the payload at [`payload_offset`](SlotLease::payload_offset) and then
/// calls [`CheckpointStore::commit`].
#[derive(Debug)]
pub struct SlotLease {
    /// The global counter assigned to this checkpoint.
    pub counter: u64,
    /// The slot index leased.
    pub slot: u32,
    /// The `CHECK_ADDR` observed before the counter was taken (Listing 1
    /// line 3) — the CAS baseline.
    last_check: PackedCheckAddr,
    /// The namespace the lease was drawn from (`None` on a legacy
    /// single-tenant store): commit routes its CAS, durable CHECK_ADDR
    /// write, and slot recycling through this namespace's private state.
    ns: Option<Arc<Namespace>>,
}

impl SlotLease {
    /// The tenant this lease belongs to, or `None` on a legacy store.
    pub fn job(&self) -> Option<JobId> {
        self.ns.as_ref().map(|n| n.desc.job)
    }
}

/// The pair of atomics behind one `CHECK_ADDR`: the in-memory pointer
/// the commit CAS swings, and the `fetch_max` watermark of the highest
/// counter whose durable record has been persisted. The watermark is
/// what lets concurrent committers publish the durable record without a
/// lock: a publish is skipped when an equal-or-newer record is already
/// durable, and racing publishes are resolved by `fetch_max` — the
/// flight-ring Commit witness is recorded only by the publisher that
/// actually advanced the watermark.
#[derive(Debug)]
struct CommitPointer {
    /// In-memory CHECK_ADDR (packed counter+slot).
    addr: AtomicU64,
    /// Highest counter whose CHECK_ADDR record is known durable.
    persisted: AtomicU64,
}

impl CommitPointer {
    fn new(addr: PackedCheckAddr, persisted_counter: u64) -> Self {
        CommitPointer {
            addr: AtomicU64::new(addr.0),
            persisted: AtomicU64::new(persisted_counter),
        }
    }
}

/// One tenant's slice of a service-mode store: a contiguous slot range
/// with its own free queue and commit pointer.
#[derive(Debug)]
pub(crate) struct Namespace {
    desc: NamespaceDesc,
    /// This namespace's CHECK_ADDR pointer + durable-publish watermark.
    commit: CommitPointer,
    free_slots: SlotQueue,
    /// Device offset of this namespace's directory entry (descriptor at
    /// +0, CHECK_ADDR record at +[`NS_DESC_SIZE`]).
    dir_offset: u64,
}

impl Namespace {
    fn check_rec_offset(&self) -> u64 {
        self.dir_offset + NS_DESC_SIZE
    }

    fn slot_range(&self) -> std::ops::Range<u32> {
        self.desc.slot_start..self.desc.slot_start + self.desc.slot_count
    }
}

/// The persistent checkpoint store.
///
/// Thread-safe: any number of checkpoints proceed concurrently; the
/// whole commit protocol — slot claim, meta publish, head advance, slot
/// recycle — is lock-free, and no mutex is ever held across device I/O.
#[derive(Debug)]
pub struct CheckpointStore {
    device: Arc<dyn PersistentDevice>,
    slot_size: ByteSize,
    num_slots: u32,
    global_counter: AtomicU64,
    /// The store-wide CHECK_ADDR pointer + durable-publish watermark.
    commit: CommitPointer,
    free_slots: SlotQueue,
    /// In-memory per-slot commit-state words (packed [`SlotState`]), the
    /// volatile half of the lattice. A dequeued slot is CASed
    /// Free → Claimed{counter}; every release path stores Free *before*
    /// enqueueing, so the claim CAS can never lose.
    slot_states: Vec<AtomicU64>,
    /// Whether the device carries the durable per-slot state region
    /// (header flag; false on stores formatted before the lattice).
    state_words: bool,
    /// Persistent flight recorder appending lifecycle milestones to the
    /// ring after the slots (disabled when the store was formatted with
    /// `flight_records = 0`).
    flight: FlightRecorder,
    /// Flight-ring capacity in records (0 = no ring); part of the geometry
    /// because the digest region starts after the ring.
    flight_records: u32,
    /// Per-slot digest-table capacity in chunk digests (0 = the store was
    /// formatted without a digest region).
    digest_chunks: u32,
    /// Directory capacity in namespaces (0 = legacy single-tenant store).
    max_namespaces: u32,
    /// Allocated namespaces, in directory order. Appended under the write
    /// lock by [`allocate_namespace`](Self::allocate_namespace); the hot
    /// commit path never takes this lock (the lease carries its `Arc`).
    namespaces: RwLock<Vec<Arc<Namespace>>>,
    /// Next unallocated slot (service mode's bump allocator).
    next_free_slot: AtomicU32,
}

impl CheckpointStore {
    /// Bytes of device space needed for `slots` slots of `slot_size` each
    /// (no flight-recorder ring).
    pub fn required_capacity(slot_size: ByteSize, slots: u32) -> ByteSize {
        Self::required_capacity_with_flight(slot_size, slots, 0)
    }

    /// Bytes of device space needed for `slots` slots of `slot_size` each
    /// plus a flight-recorder ring of `flight_records` records (0 = none).
    pub fn required_capacity_with_flight(
        slot_size: ByteSize,
        slots: u32,
        flight_records: u32,
    ) -> ByteSize {
        let slots_end = ByteSize::from_bytes(SLOTS_OFFSET)
            + (ByteSize::from_bytes(META_RECORD_SIZE) + slot_size) * u64::from(slots);
        let with_flight = if flight_records == 0 {
            slots_end
        } else {
            slots_end + ByteSize::from_bytes(FlightRing::required_capacity(flight_records))
        };
        let digest_chunks = Self::default_digest_chunks(slot_size);
        with_flight
            + ByteSize::from_bytes(
                ChunkDigestTable::encoded_len_for(digest_chunks as usize) * u64::from(slots),
            )
            + ByteSize::from_bytes(SLOT_STATE_SIZE * u64::from(slots))
    }

    /// Bytes of device space a multi-tenant store needs: the legacy layout
    /// plus a namespace directory of `max_namespaces` 128-byte entries.
    pub fn required_capacity_service(
        slot_size: ByteSize,
        slots: u32,
        flight_records: u32,
        max_namespaces: u32,
    ) -> ByteSize {
        Self::required_capacity_with_flight(slot_size, slots, flight_records)
            + ByteSize::from_bytes(NS_ENTRY_SIZE * u64::from(max_namespaces))
    }

    /// Device offset where the namespace directory starts for this
    /// geometry — after the digest region, so every older region keeps its
    /// offset. `digest_chunks` is the header's value (0 on stores without
    /// a digest region).
    fn ns_dir_base_static(
        slot_size: ByteSize,
        slots: u32,
        flight_records: u32,
        digest_chunks: u32,
    ) -> u64 {
        Self::digest_base_static(slot_size, slots, flight_records)
            + ChunkDigestTable::encoded_len_for(digest_chunks as usize) * u64::from(slots)
    }

    fn ns_dir_base(&self) -> u64 {
        Self::ns_dir_base_static(
            self.slot_size,
            self.num_slots,
            self.flight_records,
            self.digest_chunks,
        )
    }

    /// Device offset where the per-slot commit-state region starts for
    /// this geometry — at the very tail, after the namespace directory,
    /// so every older region keeps its offset.
    fn slot_state_base_static(
        slot_size: ByteSize,
        slots: u32,
        flight_records: u32,
        digest_chunks: u32,
        max_namespaces: u32,
    ) -> u64 {
        Self::ns_dir_base_static(slot_size, slots, flight_records, digest_chunks)
            + NS_ENTRY_SIZE * u64::from(max_namespaces)
    }

    /// Device offset of `slot`'s durable commit-state word, or `None`
    /// when the store was formatted before the lattice existed.
    pub fn slot_state_offset(&self, slot: u32) -> Option<u64> {
        self.state_words.then(|| {
            Self::slot_state_base_static(
                self.slot_size,
                self.num_slots,
                self.flight_records,
                self.digest_chunks,
                self.max_namespaces,
            ) + u64::from(slot) * SLOT_STATE_SIZE
        })
    }

    /// Chunk-digest capacity the default format provisions per slot:
    /// enough for [`DIGEST_CHUNK_GRAIN`]-byte chunks over a full slot.
    fn default_digest_chunks(slot_size: ByteSize) -> u32 {
        slot_size
            .as_u64()
            .div_ceil(DIGEST_CHUNK_GRAIN)
            .min(u64::from(u32::MAX)) as u32
    }

    /// Device offset where the per-slot digest tables start for this
    /// geometry — after the flight ring (or after the slots when there is
    /// no ring), so both older regions keep their offsets.
    fn digest_base_static(slot_size: ByteSize, slots: u32, flight_records: u32) -> u64 {
        Self::flight_base_static(slot_size, slots)
            + if flight_records == 0 {
                0
            } else {
                FlightRing::required_capacity(flight_records)
            }
    }

    /// Device offset where the flight ring starts for this geometry — right
    /// after the last slot, so slot offsets are identical with and without
    /// a ring.
    fn flight_base_static(slot_size: ByteSize, slots: u32) -> u64 {
        SLOTS_OFFSET + u64::from(slots) * (META_RECORD_SIZE + slot_size.as_u64())
    }

    /// Formats a store on `device` with `slots` slots of `slot_size` bytes
    /// (use `N+1` slots for `N` concurrent checkpoints), without a flight
    /// recorder.
    ///
    /// # Errors
    ///
    /// Returns [`PccheckError::InvalidConfig`] if geometry is invalid or the
    /// device is too small, or a device error if formatting I/O fails.
    pub fn format(
        device: Arc<dyn PersistentDevice>,
        slot_size: ByteSize,
        slots: u32,
    ) -> Result<Self, PccheckError> {
        Self::format_with_flight(device, slot_size, slots, 0)
    }

    /// Formats a store on `device` with `slots` slots of `slot_size` bytes
    /// and, when `flight_records > 0`, a persistent flight-recorder ring of
    /// that many 64-byte records after the slots.
    ///
    /// # Errors
    ///
    /// Returns [`PccheckError::InvalidConfig`] if geometry is invalid or the
    /// device is too small, or a device error if formatting I/O fails.
    pub fn format_with_flight(
        device: Arc<dyn PersistentDevice>,
        slot_size: ByteSize,
        slots: u32,
        flight_records: u32,
    ) -> Result<Self, PccheckError> {
        Self::format_inner(device, slot_size, slots, flight_records, 0)
    }

    /// Formats a *multi-tenant* store: `slots` slots shared by up to
    /// `max_namespaces` per-job namespaces (allocated later via
    /// [`allocate_namespace`](Self::allocate_namespace)). No slot is
    /// usable until a namespace claims it — service-mode stores have no
    /// store-wide free queue.
    ///
    /// # Errors
    ///
    /// Returns [`PccheckError::InvalidConfig`] if geometry is invalid,
    /// `max_namespaces == 0`, or the device is too small; propagates
    /// device errors.
    pub fn format_service(
        device: Arc<dyn PersistentDevice>,
        slot_size: ByteSize,
        slots: u32,
        flight_records: u32,
        max_namespaces: u32,
    ) -> Result<Self, PccheckError> {
        if max_namespaces == 0 {
            return Err(PccheckError::InvalidConfig(
                "service store needs max_namespaces >= 1 (use format for single-tenant)".into(),
            ));
        }
        Self::format_inner(device, slot_size, slots, flight_records, max_namespaces)
    }

    fn format_inner(
        device: Arc<dyn PersistentDevice>,
        slot_size: ByteSize,
        slots: u32,
        flight_records: u32,
        max_namespaces: u32,
    ) -> Result<Self, PccheckError> {
        if slots < 2 {
            return Err(PccheckError::InvalidConfig(
                "store needs at least 2 slots (N>=1 concurrent + 1 committed)".into(),
            ));
        }
        if slot_size.is_zero() {
            return Err(PccheckError::InvalidConfig(
                "slot size must be nonzero".into(),
            ));
        }
        let needed =
            Self::required_capacity_service(slot_size, slots, flight_records, max_namespaces);
        if needed > device.capacity() {
            return Err(PccheckError::InvalidConfig(format!(
                "device capacity {} < required {}",
                device.capacity(),
                needed
            )));
        }
        // Write the store header.
        let digest_chunks = Self::default_digest_chunks(slot_size);
        let mut header = [0u8; HEADER_SIZE as usize];
        header[0..8].copy_from_slice(&STORE_MAGIC.to_le_bytes());
        header[8..12].copy_from_slice(&slots.to_le_bytes());
        header[12..20].copy_from_slice(&slot_size.as_u64().to_le_bytes());
        header[20..24].copy_from_slice(&flight_records.to_le_bytes());
        header[24..28].copy_from_slice(&digest_chunks.to_le_bytes());
        header[28..32].copy_from_slice(&max_namespaces.to_le_bytes());
        // Bytes 32..36: the per-slot commit-state region exists (stores
        // formatted before the lattice carry zeros here — feature off).
        header[32..36].copy_from_slice(&1u32.to_le_bytes());
        device.write_at(0, &header)?;
        // Zero the CHECK_ADDR record (no committed checkpoint).
        device.write_at(CHECK_ADDR_OFFSET, &[0u8; META_RECORD_SIZE as usize])?;
        device.persist(0, SLOTS_OFFSET)?;
        if max_namespaces > 0 {
            // Zero the directory: every entry reads as unallocated.
            let base = Self::ns_dir_base_static(slot_size, slots, flight_records, digest_chunks);
            let zeros = vec![0u8; (NS_ENTRY_SIZE * u64::from(max_namespaces)) as usize];
            device.write_at(base, &zeros)?;
            device.persist(base, zeros.len() as u64)?;
        }
        // Every slot starts with a valid durable Free state word.
        let state_base = Self::slot_state_base_static(
            slot_size,
            slots,
            flight_records,
            digest_chunks,
            max_namespaces,
        );
        let free_rec = SlotState::Free.encode();
        let mut state_region = vec![0u8; (SLOT_STATE_SIZE * u64::from(slots)) as usize];
        for s in 0..slots as usize {
            state_region[s * SLOT_STATE_SIZE as usize..(s + 1) * SLOT_STATE_SIZE as usize]
                .copy_from_slice(&free_rec);
        }
        device.write_at(state_base, &state_region)?;
        device.persist(state_base, state_region.len() as u64)?;

        let flight = if flight_records > 0 {
            let base = Self::flight_base_static(slot_size, slots);
            let ring = FlightRing::create(Arc::clone(&device), base, flight_records)
                .map_err(PccheckError::InvalidConfig)?;
            FlightRecorder::new(Arc::new(ring))
        } else {
            FlightRecorder::disabled()
        };
        flight.record_run(FlightEventKind::RunStart, 0);

        let service = max_namespaces > 0;
        Ok(CheckpointStore {
            device,
            slot_size,
            num_slots: slots,
            global_counter: AtomicU64::new(1),
            commit: CommitPointer::new(crate::meta::CHECK_ADDR_NONE, 0),
            // Service mode: no store-wide pool — slots belong to
            // namespaces. The queue stays empty forever.
            free_slots: if service {
                SlotQueue::with_capacity(1)
            } else {
                (0..slots).collect()
            },
            slot_states: (0..slots)
                .map(|_| AtomicU64::new(SlotState::Free.pack()))
                .collect(),
            state_words: true,
            flight,
            flight_records,
            digest_chunks,
            max_namespaces,
            namespaces: RwLock::new(Vec::new()),
            next_free_slot: AtomicU32::new(if service { 0 } else { slots }),
        })
    }

    /// Reopens a store previously formatted on `device` (the recovery
    /// path). Rebuilds the in-memory state: the committed checkpoint stays
    /// leased; all other slots go back to the free queue; the global
    /// counter resumes above the highest counter found.
    ///
    /// # Errors
    ///
    /// Returns [`PccheckError::InvalidConfig`] if no valid store header is
    /// found, or a device error if reads fail.
    pub fn open(device: Arc<dyn PersistentDevice>) -> Result<Self, PccheckError> {
        let mut header = [0u8; HEADER_SIZE as usize];
        device.read_durable_at(0, &mut header)?;
        let magic = u64::from_le_bytes(header[0..8].try_into().expect("slice len"));
        if magic != STORE_MAGIC {
            return Err(PccheckError::InvalidConfig(
                "device holds no PCcheck store (bad magic)".into(),
            ));
        }
        let slots = u32::from_le_bytes(header[8..12].try_into().expect("slice len"));
        let slot_size =
            ByteSize::from_bytes(u64::from_le_bytes(header[12..20].try_into().expect("len")));
        let flight_records = u32::from_le_bytes(header[20..24].try_into().expect("slice len"));
        // Stores formatted before the digest region existed carry zeros
        // here: the feature reads as "off" and nothing else changes.
        let digest_chunks = u32::from_le_bytes(header[24..28].try_into().expect("slice len"));
        // Likewise for stores formatted before multi-tenancy existed.
        let max_namespaces = u32::from_le_bytes(header[28..32].try_into().expect("slice len"));
        // ... and for stores formatted before the commit-state lattice.
        let state_words =
            u32::from_le_bytes(header[32..36].try_into().expect("slice len")) != 0;

        // Reattach the flight ring, resuming sequence numbers past the
        // crash survivors. A torn ring header downgrades to a disabled
        // recorder rather than failing recovery: forensics are
        // best-effort, the checkpoints are not.
        let flight = if flight_records > 0 {
            let base = Self::flight_base_static(slot_size, slots);
            match FlightRing::open(Arc::clone(&device), base) {
                Ok(ring) => FlightRecorder::new(Arc::new(ring)),
                Err(_) => FlightRecorder::disabled(),
            }
        } else {
            FlightRecorder::disabled()
        };

        if max_namespaces > 0 {
            // Service mode: rebuild each namespace independently — its own
            // committed checkpoint, pinned chain, and free range.
            let dir_base =
                Self::ns_dir_base_static(slot_size, slots, flight_records, digest_chunks);
            let mut namespaces: Vec<Arc<Namespace>> = Vec::new();
            let mut max_counter = 0u64;
            let mut next_free_slot = 0u32;
            let mut pinned_all: Vec<u32> = Vec::new();
            let mut desc_buf = [0u8; NS_DESC_SIZE as usize];
            for i in 0..max_namespaces {
                let dir_offset = dir_base + u64::from(i) * NS_ENTRY_SIZE;
                device.read_durable_at(dir_offset, &mut desc_buf)?;
                let Some(desc) = NamespaceDesc::decode(&desc_buf) else {
                    continue; // unallocated (or torn mid-allocate: no data yet)
                };
                if desc.slot_start + desc.slot_count > slots || desc.slot_count == 0 {
                    continue; // corrupt descriptor: treat as unallocated
                }
                let range = desc.slot_start..desc.slot_start + desc.slot_count;
                let committed = Self::find_committed_range(
                    device.as_ref(),
                    slot_size,
                    range.clone(),
                    dir_offset + NS_DESC_SIZE,
                )?;
                let pinned: Vec<u32> = committed
                    .as_ref()
                    .map(|m| {
                        Self::chain_slots_static(
                            device.as_ref(),
                            slots,
                            slot_size,
                            m.slot,
                            m.counter,
                        )
                    })
                    .unwrap_or_default();
                let free: Vec<u32> = range.clone().filter(|s| !pinned.contains(s)).collect();
                let ns_counter = committed.as_ref().map_or(0, |m| m.counter);
                max_counter = max_counter.max(ns_counter);
                next_free_slot = next_free_slot.max(desc.slot_start + desc.slot_count);
                let check_addr = committed
                    .as_ref()
                    .map(|m| PackedCheckAddr::pack(m.counter, m.slot))
                    .unwrap_or(crate::meta::CHECK_ADDR_NONE);
                pinned_all.extend_from_slice(&pinned);
                namespaces.push(Arc::new(Namespace {
                    desc,
                    commit: CommitPointer::new(check_addr, ns_counter),
                    free_slots: free.into_iter().collect(),
                    dir_offset,
                }));
            }
            let slot_states =
                Self::initial_slot_states(device.as_ref(), slots, slot_size, &pinned_all)?;
            return Ok(CheckpointStore {
                device,
                slot_size,
                num_slots: slots,
                global_counter: AtomicU64::new(max_counter + 1),
                commit: CommitPointer::new(crate::meta::CHECK_ADDR_NONE, 0),
                free_slots: SlotQueue::with_capacity(1),
                slot_states,
                state_words,
                flight,
                flight_records,
                digest_chunks,
                max_namespaces,
                namespaces: RwLock::new(namespaces),
                next_free_slot: AtomicU32::new(next_free_slot),
            });
        }

        // Find the committed checkpoint: trust CHECK_ADDR, fall back to a
        // slot scan if the record is torn or its payload fails validation.
        let committed =
            Self::find_committed_range(device.as_ref(), slot_size, 0..slots, CHECK_ADDR_OFFSET)?;

        // The committed checkpoint's slot stays leased — and if it is a
        // delta, so does every slot on its chain down to the full root:
        // recycling any of them would make the committed state
        // unrecoverable.
        let pinned: Vec<u32> = committed
            .as_ref()
            .map(|m| Self::chain_slots_static(device.as_ref(), slots, slot_size, m.slot, m.counter))
            .unwrap_or_default();
        let mut max_counter = 0;
        let mut free: Vec<u32> = Vec::new();
        for s in 0..slots {
            if !pinned.contains(&s) {
                free.push(s);
            }
        }
        if let Some(m) = &committed {
            max_counter = m.counter;
        }

        let check_addr = committed
            .as_ref()
            .map(|m| PackedCheckAddr::pack(m.counter, m.slot))
            .unwrap_or(crate::meta::CHECK_ADDR_NONE);

        let slot_states = Self::initial_slot_states(device.as_ref(), slots, slot_size, &pinned)?;
        Ok(CheckpointStore {
            device,
            slot_size,
            num_slots: slots,
            global_counter: AtomicU64::new(max_counter + 1),
            commit: CommitPointer::new(check_addr, max_counter),
            free_slots: free.into_iter().collect(),
            slot_states,
            state_words,
            flight,
            flight_records,
            digest_chunks,
            max_namespaces: 0,
            namespaces: RwLock::new(Vec::new()),
            next_free_slot: AtomicU32::new(slots),
        })
    }

    /// Finds the committed checkpoint within a slot range: trusts the
    /// CHECK_ADDR record at `check_rec_offset`, falls back to scanning the
    /// range's slots if the record is torn or fails validation.
    fn find_committed_range(
        device: &dyn PersistentDevice,
        slot_size: ByteSize,
        range: std::ops::Range<u32>,
        check_rec_offset: u64,
    ) -> Result<Option<CheckMeta>, PccheckError> {
        let mut rec = [0u8; META_RECORD_SIZE as usize];
        device.read_durable_at(check_rec_offset, &mut rec)?;
        let mut best: Option<CheckMeta> = None;
        if let Some(meta) = CheckMeta::decode(&rec) {
            if Self::validate_slot(device, &meta, range.clone(), slot_size)? {
                best = Some(meta);
            }
        }
        // Scan the slots too: the durable CHECK_ADDR may lag a fully
        // persisted checkpoint whose commit raced the crash. A valid slot
        // record implies its payload persisted first (the engine orders
        // payload persist before the meta barrier), and a *recycled* slot
        // mid-overwrite always carries a counter below the durable
        // CHECK_ADDR (commit persists CHECK_ADDR before freeing the
        // displaced slot), so taking the max counter is safe.
        for s in range.clone() {
            let off = Self::slot_meta_offset_static(s, slot_size);
            device.read_durable_at(off, &mut rec)?;
            if let Some(meta) = CheckMeta::decode(&rec) {
                if meta.slot == s
                    && Self::validate_slot(device, &meta, range.clone(), slot_size)?
                    && best.map_or(true, |b| meta.counter > b.counter)
                {
                    best = Some(meta);
                }
            }
        }
        Ok(best)
    }

    fn validate_slot(
        device: &dyn PersistentDevice,
        meta: &CheckMeta,
        range: std::ops::Range<u32>,
        slot_size: ByteSize,
    ) -> Result<bool, PccheckError> {
        if !range.contains(&meta.slot) || ByteSize::from_bytes(meta.payload_len) > slot_size {
            return Ok(false);
        }
        // Check the slot's own meta record matches the commit record.
        let mut rec = [0u8; META_RECORD_SIZE as usize];
        device.read_durable_at(
            Self::slot_meta_offset_static(meta.slot, slot_size),
            &mut rec,
        )?;
        Ok(CheckMeta::decode(&rec).as_ref() == Some(meta))
    }

    fn slot_meta_offset_static(slot: u32, slot_size: ByteSize) -> u64 {
        SLOTS_OFFSET + u64::from(slot) * (META_RECORD_SIZE + slot_size.as_u64())
    }

    /// The slots a checkpoint occupies: its own, plus — when it is a delta
    /// — every slot on the base chain down to the full root. Walks the
    /// durable slot records, stopping (leniently) at the first record that
    /// fails to decode or disagrees with the expected (slot, counter), and
    /// guards against pointer cycles; the head slot is always included.
    fn chain_slots_static(
        device: &dyn PersistentDevice,
        slots: u32,
        slot_size: ByteSize,
        head_slot: u32,
        head_counter: u64,
    ) -> Vec<u32> {
        let mut chain = vec![head_slot];
        let mut expect = (head_slot, head_counter);
        let mut rec = [0u8; META_RECORD_SIZE as usize];
        loop {
            let (s, c) = expect;
            if device
                .read_durable_at(Self::slot_meta_offset_static(s, slot_size), &mut rec)
                .is_err()
            {
                break;
            }
            let Some(meta) = CheckMeta::decode(&rec) else {
                break;
            };
            if meta.slot != s || meta.counter != c {
                break;
            }
            let Some(link) = meta.delta else {
                break;
            };
            if chain.contains(&link.base_slot) || chain.len() as u32 >= slots {
                break;
            }
            chain.push(link.base_slot);
            expect = (link.base_slot, link.base_counter);
        }
        chain
    }

    /// Rebuilds the in-memory slot-state words on reopen: every slot that
    /// goes back to a free queue starts Free (regardless of its durable
    /// word, which is a high-water record of past claims); every pinned
    /// chain slot starts Committed at its own durable meta counter.
    fn initial_slot_states(
        device: &dyn PersistentDevice,
        slots: u32,
        slot_size: ByteSize,
        pinned: &[u32],
    ) -> Result<Vec<AtomicU64>, PccheckError> {
        let mut states = Vec::with_capacity(slots as usize);
        let mut rec = [0u8; META_RECORD_SIZE as usize];
        for s in 0..slots {
            let state = if pinned.contains(&s) {
                device.read_durable_at(Self::slot_meta_offset_static(s, slot_size), &mut rec)?;
                CheckMeta::decode(&rec)
                    .filter(|m| m.slot == s)
                    .map_or(SlotState::Free, |m| SlotState::Committed {
                        counter: m.counter,
                    })
            } else {
                SlotState::Free
            };
            states.push(AtomicU64::new(state.pack()));
        }
        Ok(states)
    }

    fn chain_slots(&self, head_slot: u32, head_counter: u64) -> Vec<u32> {
        Self::chain_slots_static(
            self.device.as_ref(),
            self.num_slots,
            self.slot_size,
            head_slot,
            head_counter,
        )
    }

    /// The underlying device.
    pub fn device(&self) -> &Arc<dyn PersistentDevice> {
        &self.device
    }

    /// The persistent flight recorder (disabled when the store was
    /// formatted without a ring). The engine and harnesses use this handle
    /// to append lifecycle milestones the store itself cannot see (GPU
    /// copy completion, payload persist, failures).
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Per-slot payload capacity.
    pub fn slot_size(&self) -> ByteSize {
        self.slot_size
    }

    /// Number of slots (`N+1`).
    pub fn num_slots(&self) -> u32 {
        self.num_slots
    }

    /// Device offset of `slot`'s meta record.
    pub fn slot_meta_offset(&self, slot: u32) -> u64 {
        Self::slot_meta_offset_static(slot, self.slot_size)
    }

    /// Device offset of `slot`'s payload.
    pub fn slot_payload_offset(&self, slot: u32) -> u64 {
        self.slot_meta_offset(slot) + META_RECORD_SIZE
    }

    /// Per-slot digest-table capacity in chunk digests (0 = the store has
    /// no digest region).
    pub fn digest_chunks(&self) -> u32 {
        self.digest_chunks
    }

    /// Device offset of `slot`'s per-chunk digest table, or `None` when
    /// the store has no digest region.
    pub fn slot_digest_offset(&self, slot: u32) -> Option<u64> {
        if self.digest_chunks == 0 {
            return None;
        }
        let base = Self::digest_base_static(self.slot_size, self.num_slots, self.flight_records);
        let stride = ChunkDigestTable::encoded_len_for(self.digest_chunks as usize);
        Some(base + u64::from(slot) * stride)
    }

    /// Writes and persists `slot`'s per-chunk digest table. Returns
    /// `Ok(false)` without touching the device when the store has no
    /// digest region or the table exceeds the per-slot capacity — the
    /// table is advisory, so skipping it is never an error.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn write_digest_table(
        &self,
        slot: u32,
        table: &ChunkDigestTable,
    ) -> Result<bool, PccheckError> {
        let Some(off) = self.slot_digest_offset(slot) else {
            return Ok(false);
        };
        if table.digests.len() > self.digest_chunks as usize {
            return Ok(false);
        }
        let bytes = table.encode();
        self.device.write_at(off, &bytes)?;
        self.device.persist(off, bytes.len() as u64)?;
        Ok(true)
    }

    /// Reads the per-chunk digest table for the committed checkpoint
    /// `meta`, returning it only if it decodes *and* is bound to exactly
    /// this commit (matching counter, payload digest, and payload length).
    /// Any mismatch — including a torn or recycled table — yields `None`,
    /// which callers treat as "verify the legacy way".
    pub fn read_digest_table(&self, meta: &CheckMeta) -> Option<ChunkDigestTable> {
        let off = self.slot_digest_offset(meta.slot)?;
        let stride = ChunkDigestTable::encoded_len_for(self.digest_chunks as usize);
        let mut buf = vec![0u8; stride as usize];
        self.device.read_durable_at(off, &mut buf).ok()?;
        let table = ChunkDigestTable::decode(&buf).ok()?;
        (table.counter == meta.counter
            && table.payload_digest == meta.digest
            && table.payload_len == meta.payload_len)
            .then_some(table)
    }

    /// The in-memory view of the latest committed checkpoint. On a
    /// multi-tenant store this is the newest commit across *all*
    /// namespaces (diagnostics; per-job code wants
    /// [`latest_committed_job`](Self::latest_committed_job)).
    pub fn latest_committed(&self) -> Option<CheckMeta> {
        if self.max_namespaces > 0 {
            return self
                .namespaces
                .read()
                .iter()
                .filter_map(|ns| self.resolve_check_addr(&ns.commit.addr))
                .max_by_key(|m| m.counter);
        }
        self.resolve_check_addr(&self.commit.addr)
    }

    /// The latest committed checkpoint in `job`'s namespace.
    ///
    /// # Errors
    ///
    /// Returns [`PccheckError::InvalidConfig`] when the store is not
    /// multi-tenant or `job` has no namespace.
    pub fn latest_committed_job(&self, job: JobId) -> Result<Option<CheckMeta>, PccheckError> {
        let ns = self.namespace_for(job)?;
        Ok(self.resolve_check_addr(&ns.commit.addr))
    }

    /// The latest committed checkpoint visible to `lease` — the lease's
    /// namespace on a multi-tenant store, the global pointer otherwise.
    /// This is what delta planning must use as its base: another job's
    /// newer commit is not a valid delta base for this job.
    pub fn latest_committed_for(&self, lease: &SlotLease) -> Option<CheckMeta> {
        match lease.ns.as_deref() {
            Some(ns) => self.resolve_check_addr(&ns.commit.addr),
            None => self.resolve_check_addr(&self.commit.addr),
        }
    }

    /// The current in-memory commit-state word of `slot` (diagnostics;
    /// the durable word may lag — it records high-water claims, not the
    /// recycle step).
    pub fn slot_commit_state(&self, slot: u32) -> SlotState {
        SlotState::unpack(self.slot_states[slot as usize].load(Ordering::Acquire))
    }

    /// The lattice claim step: CAS the dequeued slot's in-memory word
    /// Free → Claimed{counter}, then publish the durable claim word.
    ///
    /// The dequeue grants exclusive ownership and every release path
    /// stores Free *before* enqueueing, so the CAS cannot lose — its
    /// strictness is a protocol assertion, not a spin. The durable
    /// publish is best-effort: `begin_checkpoint` stays infallible, and a
    /// lost claim word only downgrades the slot's post-crash
    /// classification from Claimed to meta-CRC-only (still decidable; a
    /// device sick enough to fail here fails the very next payload write
    /// anyway).
    fn claim_slot(&self, slot: u32, counter: u64) {
        let claimed = SlotState::Claimed { counter };
        let won = self.slot_states[slot as usize]
            .compare_exchange(
                SlotState::Free.pack(),
                claimed.pack(),
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok();
        debug_assert!(won, "dequeued slot {slot} was not Free");
        if !won {
            // Defensive: ownership is ours either way; converge the word.
            self.slot_states[slot as usize].store(claimed.pack(), Ordering::Release);
        }
        if let Some(off) = self.slot_state_offset(slot) {
            let _ = self
                .device
                .write_at(off, &claimed.encode())
                .and_then(|()| self.device.persist(off, SLOT_STATE_SIZE));
        }
    }

    /// Publishes the durable Committed word for a commit winner. Failure
    /// is surfaced (the commit's durability story is already complete —
    /// the meta record persisted — but a dying device should not report
    /// a clean commit).
    fn publish_slot_state(&self, slot: u32, state: SlotState) -> Result<(), PccheckError> {
        self.slot_states[slot as usize].store(state.pack(), Ordering::Release);
        if let Some(off) = self.slot_state_offset(slot) {
            self.device.write_at(off, &state.encode())?;
            self.device.persist(off, SLOT_STATE_SIZE)?;
        }
        Ok(())
    }

    /// The lattice recycle step: store Free into the in-memory word, then
    /// enqueue. Order matters — the next claimant's CAS must find Free.
    /// The durable word is deliberately left alone (history; counters
    /// rank claims across a slot's lives).
    fn release_slot(&self, free_slots: &SlotQueue, slot: u32) {
        self.slot_states[slot as usize].store(SlotState::Free.pack(), Ordering::Release);
        // Spin through transient fulls: a concurrent dequeuer may be
        // mid-recycle on the target cell.
        free_slots.enqueue_blocking(slot);
    }

    fn resolve_check_addr(&self, check_addr: &AtomicU64) -> Option<CheckMeta> {
        let packed = PackedCheckAddr(check_addr.load(Ordering::Acquire));
        if packed.is_none() {
            return None;
        }
        // The slot's meta record is authoritative; it was persisted before
        // CHECK_ADDR swung to it.
        let mut rec = [0u8; META_RECORD_SIZE as usize];
        self.device
            .read_durable_at(self.slot_meta_offset(packed.slot()), &mut rec)
            .ok()?;
        CheckMeta::decode(&rec).filter(|m| m.counter == packed.counter())
    }

    /// Begins a checkpoint: samples `CHECK_ADDR`, takes a counter, and
    /// dequeues a free slot (Listing 1, lines 3–11). Spins while all slots
    /// are occupied by in-flight checkpoints.
    ///
    /// # Panics
    ///
    /// Panics on a multi-tenant (service-mode) store: every checkpoint
    /// there belongs to a job — use
    /// [`begin_checkpoint_job`](Self::begin_checkpoint_job).
    pub fn begin_checkpoint(&self) -> SlotLease {
        assert!(
            self.max_namespaces == 0,
            "begin_checkpoint on a multi-tenant store: use begin_checkpoint_job(job)"
        );
        // Line 3: sample the last committed checkpoint *before* taking the
        // counter — this makes our eventual CAS legal (§4.1).
        let last_check = PackedCheckAddr(self.commit.addr.load(Ordering::Acquire));
        // Line 5: order ourselves among all checkpoints.
        let counter = self.global_counter.fetch_add(1, Ordering::AcqRel);
        // Lines 8-11: find space, then take the lattice claim step.
        let slot = self.free_slots.dequeue_blocking();
        self.claim_slot(slot, counter);
        self.flight
            .record(FlightEventKind::Begin, counter, slot, 0, 0, last_check.0);
        SlotLease {
            counter,
            slot,
            last_check,
            ns: None,
        }
    }

    /// Begins a checkpoint in `job`'s namespace. The commit protocol is
    /// Listing 1 verbatim, except that `CHECK_ADDR` and the free-slot
    /// queue are the *namespace's* — jobs contend only on the global
    /// counter (which stays globally unique and monotone, so cross-job
    /// interleavings remain totally ordered in the flight ring).
    ///
    /// # Errors
    ///
    /// Returns [`PccheckError::InvalidConfig`] when the store is not
    /// multi-tenant or `job` has no namespace.
    pub fn begin_checkpoint_job(&self, job: JobId) -> Result<SlotLease, PccheckError> {
        let ns = self.namespace_for(job)?;
        let last_check = PackedCheckAddr(ns.commit.addr.load(Ordering::Acquire));
        let counter = self.global_counter.fetch_add(1, Ordering::AcqRel);
        let slot = ns.free_slots.dequeue_blocking();
        self.claim_slot(slot, counter);
        self.flight
            .record(FlightEventKind::Begin, counter, slot, 0, 0, last_check.0);
        Ok(SlotLease {
            counter,
            slot,
            last_check,
            ns: Some(ns),
        })
    }

    /// Looks up `job`'s namespace handle.
    fn namespace_for(&self, job: JobId) -> Result<Arc<Namespace>, PccheckError> {
        if self.max_namespaces == 0 {
            return Err(PccheckError::InvalidConfig(
                "store is not multi-tenant (formatted without namespaces)".into(),
            ));
        }
        self.namespaces
            .read()
            .iter()
            .find(|ns| ns.desc.job == job)
            .cloned()
            .ok_or_else(|| {
                PccheckError::InvalidConfig(format!("job {job} has no namespace in this store"))
            })
    }

    /// Carves a fresh slot namespace for `job` out of the store's
    /// unallocated slot budget and persists its directory entry. Slots are
    /// handed out contiguously in allocation order; a namespace lives for
    /// the store's lifetime (no reclamation — the daemon's admission
    /// control sizes the budget up front).
    ///
    /// # Errors
    ///
    /// Returns [`PccheckError::InvalidConfig`] when the store is not
    /// multi-tenant, `slot_count < 2` (N+1 needs at least 1+1),
    /// `job` already owns a namespace, the directory is full, or the slot
    /// budget is exhausted; propagates device errors.
    pub fn allocate_namespace(
        &self,
        job: JobId,
        slot_count: u32,
    ) -> Result<NamespaceDesc, PccheckError> {
        if self.max_namespaces == 0 {
            return Err(PccheckError::InvalidConfig(
                "store is not multi-tenant (formatted without namespaces)".into(),
            ));
        }
        if slot_count < 2 {
            return Err(PccheckError::InvalidConfig(format!(
                "namespace needs at least 2 slots (N+1 with N >= 1), got {slot_count}"
            )));
        }
        let mut namespaces = self.namespaces.write();
        if namespaces.iter().any(|ns| ns.desc.job == job) {
            return Err(PccheckError::InvalidConfig(format!(
                "job {job} already owns a namespace"
            )));
        }
        if namespaces.len() as u32 >= self.max_namespaces {
            return Err(PccheckError::InvalidConfig(format!(
                "namespace directory full ({} of {})",
                namespaces.len(),
                self.max_namespaces
            )));
        }
        let slot_start = self.next_free_slot.load(Ordering::Acquire);
        if slot_start + slot_count > self.num_slots {
            return Err(PccheckError::InvalidConfig(format!(
                "slot budget exhausted: {slot_count} requested, {} of {} remain",
                self.num_slots - slot_start,
                self.num_slots
            )));
        }
        let desc = NamespaceDesc {
            job,
            slot_start,
            slot_count,
        };
        // Persist descriptor + a zeroed per-namespace CHECK_ADDR record
        // before exposing the namespace: a crash mid-allocate leaves either
        // no entry (decode fails on the torn descriptor) or a complete,
        // empty namespace — never a half-initialized one.
        let dir_offset = self.ns_dir_base() + namespaces.len() as u64 * NS_ENTRY_SIZE;
        let mut entry = [0u8; NS_ENTRY_SIZE as usize];
        entry[..NS_DESC_SIZE as usize].copy_from_slice(&desc.encode());
        self.device.write_at(dir_offset, &entry)?;
        self.device.persist(dir_offset, NS_ENTRY_SIZE)?;
        self.next_free_slot
            .store(slot_start + slot_count, Ordering::Release);
        namespaces.push(Arc::new(Namespace {
            desc,
            commit: CommitPointer::new(crate::meta::CHECK_ADDR_NONE, 0),
            free_slots: (slot_start..slot_start + slot_count).collect(),
            dir_offset,
        }));
        Ok(desc)
    }

    /// Writes a payload chunk into the leased slot at `chunk_offset` within
    /// the payload area. Does **not** persist — the caller persists via the
    /// device (per writer thread on PMEM, or one `msync` on SSD).
    ///
    /// # Errors
    ///
    /// Propagates device errors; rejects writes beyond the slot capacity.
    pub fn write_payload(
        &self,
        lease: &SlotLease,
        chunk_offset: u64,
        data: &[u8],
    ) -> Result<(), PccheckError> {
        if chunk_offset + data.len() as u64 > self.slot_size.as_u64() {
            return Err(PccheckError::InvalidConfig(format!(
                "payload write at {chunk_offset}+{} exceeds slot size {}",
                data.len(),
                self.slot_size
            )));
        }
        let base = self.slot_payload_offset(lease.slot);
        self.device.write_at(base + chunk_offset, data)?;
        Ok(())
    }

    /// Persists a payload range of the leased slot (msync/fence granularity
    /// chosen by the engine).
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn persist_payload(
        &self,
        lease: &SlotLease,
        chunk_offset: u64,
        len: u64,
    ) -> Result<(), PccheckError> {
        let base = self.slot_payload_offset(lease.slot);
        self.device.persist(base + chunk_offset, len)?;
        Ok(())
    }

    /// Completes the checkpoint: persists the slot's meta record and runs
    /// the CAS commit loop (Listing 1, lines 16–34). Consumes the lease.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn commit(
        &self,
        lease: SlotLease,
        iteration: u64,
        payload_len: u64,
        digest: u64,
    ) -> Result<CommitOutcome, PccheckError> {
        self.commit_with_delta(lease, iteration, payload_len, digest, None)
    }

    /// Commits a checkpoint whose payload is a *delta* over the checkpoint
    /// named by `delta` (extent table + packed dirty bytes; see the
    /// pipeline's `copy_delta`). Identical to [`commit`](Self::commit)
    /// except that, on success, every slot on the base chain stays pinned
    /// out of the free queue — the committed state is only recoverable
    /// through the whole chain. Pinned slots are released the next time a
    /// full checkpoint (or a delta on a different chain) commits.
    ///
    /// Delta commits assume the serial checkpoint discipline: the base must
    /// be the latest committed checkpoint, with no concurrent commit racing
    /// this one.
    ///
    /// # Errors
    ///
    /// Returns [`PccheckError::InvalidConfig`] for a `delta` link with
    /// `base_counter == 0` (reserved to mean "full"); propagates device
    /// errors.
    pub fn commit_with_delta(
        &self,
        lease: SlotLease,
        iteration: u64,
        payload_len: u64,
        digest: u64,
        delta: Option<DeltaLink>,
    ) -> Result<CommitOutcome, PccheckError> {
        if delta.is_some_and(|l| l.base_counter == 0) {
            return Err(PccheckError::InvalidConfig(
                "delta link base_counter 0 is reserved for full checkpoints".into(),
            ));
        }
        let meta = CheckMeta {
            counter: lease.counter,
            slot: lease.slot,
            iteration,
            payload_len,
            digest,
            delta,
        };
        // Lines 16-18: persist the checkpoint's own record before
        // publishing it (BARRIER(cur_check)).
        let rec = meta.encode();
        let meta_off = self.slot_meta_offset(lease.slot);
        self.device.write_at(meta_off, &rec)?;
        self.device.persist(meta_off, META_RECORD_SIZE)?;
        self.flight.record(
            FlightEventKind::MetaPersisted,
            lease.counter,
            lease.slot,
            iteration,
            payload_len,
            digest,
        );

        // Namespace routing: a job lease CASes its namespace's CHECK_ADDR
        // and recycles into its namespace's free queue; the protocol itself
        // is unchanged.
        let ns = lease.ns.as_deref();
        let check_addr = ns.map_or(&self.commit.addr, |n| &n.commit.addr);
        let free_slots = ns.map_or(&self.free_slots, |n| &n.free_slots);

        let ours = PackedCheckAddr::pack(lease.counter, lease.slot);
        let mut last = lease.last_check;
        // Lines 19-34: the CAS loop.
        loop {
            match check_addr.compare_exchange(last.0, ours.0, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => {
                    // Success: publish the Committed state word (the meta
                    // record is already durable, so the lattice ordering
                    // Claimed → meta persist → Committed holds), publish
                    // CHECK_ADDR, then free the displaced slot(s) — for a
                    // displaced delta chain, every chain slot the new
                    // checkpoint does not itself depend on.
                    self.publish_slot_state(
                        lease.slot,
                        SlotState::Committed {
                            counter: lease.counter,
                        },
                    )?;
                    self.publish_check_addr(ns)?;
                    if !last.is_none() {
                        let pinned = if meta.is_delta() {
                            self.chain_slots(lease.slot, lease.counter)
                        } else {
                            vec![lease.slot]
                        };
                        for displaced in self.chain_slots(last.slot(), last.counter()) {
                            if !pinned.contains(&displaced) {
                                self.release_slot(free_slots, displaced);
                            }
                        }
                    }
                    return Ok(CommitOutcome::Committed);
                }
                Err(current) => {
                    let current = PackedCheckAddr(current);
                    if current.counter() < lease.counter {
                        // An older checkpoint is installed: retry against it.
                        last = current;
                        continue;
                    }
                    // A newer checkpoint won. Help publish CHECK_ADDR, then
                    // recycle our own slot — our data is obsolete. The
                    // durable state word stays Claimed{ours}: with our
                    // meta durable but a newer counter committed, the
                    // decision procedure classifies the slot Persisted —
                    // adoptable only if it were the max, which it is not.
                    self.publish_check_addr(ns)?;
                    self.flight.record(
                        FlightEventKind::Superseded,
                        lease.counter,
                        lease.slot,
                        iteration,
                        payload_len,
                        current.counter(),
                    );
                    self.release_slot(free_slots, lease.slot);
                    return Ok(CommitOutcome::SupersededBy {
                        counter: current.counter(),
                    });
                }
            }
        }
    }

    /// Write-back of the shared `CHECK_ADDR` location (the BARRIER on
    /// CHECK_ADDR), lock-free: persists the *current* value of the
    /// pointer, skipping the device round-trip entirely when the
    /// `fetch_max` watermark shows an equal-or-newer record is already
    /// durable. With a namespace, the pointer, watermark, and record
    /// offset are all the namespace's own.
    ///
    /// Racing publishers may interleave so that an older record lands
    /// *after* a newer one — harmless, because (a) the newer commit's
    /// slot record was durable before its publish began, (b) recovery's
    /// slot scan takes the max valid counter, and (c) a displaced slot is
    /// only recycled after the newer record persisted, so the stale
    /// record's slot still validates. The flight-ring Commit witness is
    /// recorded only by the publisher whose `fetch_max` actually advanced
    /// the watermark — exactly one witness per counter, though a late
    /// witness may appear after a newer one (the auditor tolerates the
    /// inversion while the checkpoint's window is still open).
    fn publish_check_addr(&self, ns: Option<&Namespace>) -> Result<(), PccheckError> {
        let (commit, rec_offset) = match ns {
            Some(n) => (&n.commit, n.check_rec_offset()),
            None => (&self.commit, CHECK_ADDR_OFFSET),
        };
        loop {
            let current = PackedCheckAddr(commit.addr.load(Ordering::Acquire));
            if current.counter() <= commit.persisted.load(Ordering::Acquire) {
                return Ok(()); // an equal-or-newer record is already durable
            }
            // Re-encode the full meta record for the committed checkpoint
            // from its slot record (authoritative, already durable).
            let mut rec = [0u8; META_RECORD_SIZE as usize];
            self.device
                .read_durable_at(self.slot_meta_offset(current.slot()), &mut rec)?;
            self.device.write_at(rec_offset, &rec)?;
            self.device.persist(rec_offset, META_RECORD_SIZE)?;
            let prev = commit.persisted.fetch_max(current.counter(), Ordering::AcqRel);
            if prev < current.counter() {
                let (iteration, payload_len) = CheckMeta::decode(&rec)
                    .map(|m| (m.iteration, m.payload_len))
                    .unwrap_or((0, 0));
                self.flight.record(
                    FlightEventKind::Commit,
                    current.counter(),
                    current.slot(),
                    iteration,
                    payload_len,
                    0,
                );
            }
            // Loop: if the pointer advanced past what we just persisted,
            // help publish the newer value; otherwise the watermark check
            // exits on the next pass.
        }
    }

    /// Number of slots currently in the free queue (diagnostics). On a
    /// multi-tenant store, the sum across namespaces (unallocated slots
    /// are not counted — they belong to no queue yet).
    pub fn free_slot_count(&self) -> usize {
        if self.max_namespaces > 0 {
            return self
                .namespaces
                .read()
                .iter()
                .map(|ns| ns.free_slots.len())
                .sum();
        }
        self.free_slots.len()
    }

    /// Number of free slots in `job`'s namespace.
    ///
    /// # Errors
    ///
    /// Returns [`PccheckError::InvalidConfig`] when the store is not
    /// multi-tenant or `job` has no namespace.
    pub fn free_slot_count_job(&self, job: JobId) -> Result<usize, PccheckError> {
        Ok(self.namespace_for(job)?.free_slots.len())
    }

    /// Whether this store was formatted for multi-tenant (service-mode)
    /// operation.
    pub fn is_multi_tenant(&self) -> bool {
        self.max_namespaces > 0
    }

    /// Namespace directory capacity (0 on a single-tenant store).
    pub fn max_namespaces(&self) -> u32 {
        self.max_namespaces
    }

    /// Snapshot of the allocated namespace descriptors, in allocation
    /// order.
    pub fn namespaces(&self) -> Vec<NamespaceDesc> {
        self.namespaces.read().iter().map(|ns| ns.desc).collect()
    }

    /// The job whose namespace owns `slot`, or `None` for unallocated
    /// slots / single-tenant stores.
    pub fn namespace_of_slot(&self, slot: u32) -> Option<JobId> {
        self.namespaces
            .read()
            .iter()
            .find(|ns| ns.slot_range().contains(&slot))
            .map(|ns| ns.desc.job)
    }

    /// Slots not yet carved into any namespace (the admission budget
    /// remaining). Equals `num_slots` minus allocated ranges; 0 on a
    /// single-tenant store.
    pub fn unallocated_slots(&self) -> u32 {
        if self.max_namespaces == 0 {
            return 0;
        }
        self.num_slots - self.next_free_slot.load(Ordering::Acquire)
    }

    /// Every slot currently holding a *complete* checkpoint (valid durable
    /// meta record), sorted by counter ascending. Beyond the latest
    /// committed checkpoint this may include superseded-but-intact older
    /// ones — PCcheck's N+1 slots double as a short checkpoint history,
    /// which the monitoring tooling (§2.1 of the paper) exploits.
    ///
    /// # Errors
    ///
    /// Propagates device read errors.
    pub fn history(&self) -> Result<Vec<CheckMeta>, PccheckError> {
        let mut found = Vec::new();
        let mut rec = [0u8; META_RECORD_SIZE as usize];
        for slot in 0..self.num_slots {
            self.device
                .read_durable_at(self.slot_meta_offset(slot), &mut rec)?;
            if let Some(meta) = CheckMeta::decode(&rec) {
                if meta.slot == slot {
                    found.push(meta);
                }
            }
        }
        found.sort_by_key(|m| m.counter);
        Ok(found)
    }

    /// Reads the payload of a historical checkpoint identified by `meta`
    /// (as returned by [`history`](Self::history)), verifying the meta
    /// record still matches (the slot may have been recycled since).
    ///
    /// # Errors
    ///
    /// Returns [`PccheckError::CorruptCheckpoint`] if the slot has been
    /// recycled or torn since `meta` was read; propagates device errors.
    pub fn read_checkpoint(&self, meta: &CheckMeta) -> Result<Vec<u8>, PccheckError> {
        let mut rec = [0u8; META_RECORD_SIZE as usize];
        self.device
            .read_durable_at(self.slot_meta_offset(meta.slot), &mut rec)?;
        if CheckMeta::decode(&rec).as_ref() != Some(meta) {
            return Err(PccheckError::CorruptCheckpoint {
                counter: meta.counter,
            });
        }
        let mut payload = vec![0u8; meta.payload_len as usize];
        self.device
            .read_durable_at(self.slot_payload_offset(meta.slot), &mut payload)?;
        // Re-validate after the read: the payload is only trustworthy if
        // the meta record is unchanged (recycling writes payload first).
        self.device
            .read_durable_at(self.slot_meta_offset(meta.slot), &mut rec)?;
        if CheckMeta::decode(&rec).as_ref() != Some(meta) {
            return Err(PccheckError::CorruptCheckpoint {
                counter: meta.counter,
            });
        }
        Ok(payload)
    }
}

/// A read-only, durable-bytes-only view of a store's on-device state,
/// loadable **while the device is still crashed** (it never touches the
/// volatile overlay and never mutates anything). This is what the
/// post-crash forensic auditor replays the flight ring against.
#[derive(Debug, Clone)]
pub struct RawStoreView {
    /// Number of slots in the store.
    pub slots: u32,
    /// Per-slot payload capacity.
    pub slot_size: ByteSize,
    /// Flight-ring capacity in records (0 = no ring).
    pub flight_records: u32,
    /// Namespace directory capacity (0 = single-tenant store).
    pub max_namespaces: u32,
    /// The durable `CHECK_ADDR` record, if it decodes.
    pub check_addr: Option<CheckMeta>,
    /// Each slot's durable meta record, if it decodes and names its own
    /// slot (`slot_meta[s]` is `None` for empty/torn/mis-slotted records).
    pub slot_meta: Vec<Option<CheckMeta>>,
    /// Whether the store carries the durable per-slot state region
    /// (header flag; `false` on stores formatted before the lattice).
    pub state_words: bool,
    /// Each slot's durable commit-state word, if the region exists and
    /// the record decodes (`None` = torn/absent → the decision procedure
    /// falls back to the meta CRC alone).
    pub slot_state: Vec<Option<SlotState>>,
    /// Allocated namespaces, in directory order (empty on single-tenant
    /// stores).
    pub namespaces: Vec<RawNamespace>,
}

/// The post-crash classification of one slot, decided from its durable
/// state word plus its meta record's CRC alone (the *detectable* half of
/// the lock-free commit protocol; see DESIGN §13).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotOutcome {
    /// No claim on record and no valid meta: the slot never held data
    /// (or only unpersisted garbage).
    Empty,
    /// Claimed{counter}, and the meta record does not (yet) describe that
    /// claim: the checkpoint died before its meta barrier. Not
    /// recoverable, by design.
    InFlight {
        /// Counter of the interrupted claim.
        counter: u64,
    },
    /// Claimed{counter} with a valid meta record for exactly that
    /// counter: the meta barrier completed but the Committed word did not
    /// land. Recovery may adopt it if it is the max counter — the durable
    /// meta, not the head publish, is what commits a checkpoint.
    Persisted {
        /// Counter of the fully persisted checkpoint.
        counter: u64,
    },
    /// Committed{counter} with a matching valid meta record.
    Committed {
        /// Counter of the committed checkpoint.
        counter: u64,
    },
    /// A valid meta record with no live claim on the word (Free, torn, or
    /// pre-lattice store): an intact checkpoint from a past slot life.
    Historical {
        /// Counter from the slot's meta record.
        counter: u64,
    },
    /// Committed{counter} whose meta record is missing or names a
    /// different counter — unreachable under the protocol's ordering
    /// (meta persists before the Committed word) and therefore an
    /// invariant violation.
    Torn {
        /// Counter from the durable Committed word.
        state_counter: u64,
        /// Counter of the valid-but-mismatched meta record, if any.
        meta_counter: Option<u64>,
    },
}

impl std::fmt::Display for SlotOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SlotOutcome::Empty => f.write_str("empty"),
            SlotOutcome::InFlight { counter } => write!(f, "in-flight#{counter}"),
            SlotOutcome::Persisted { counter } => write!(f, "persisted#{counter}"),
            SlotOutcome::Committed { counter } => write!(f, "committed#{counter}"),
            SlotOutcome::Historical { counter } => write!(f, "historical#{counter}"),
            SlotOutcome::Torn {
                state_counter,
                meta_counter,
            } => write!(f, "TORN#{state_counter}/meta:{meta_counter:?}"),
        }
    }
}

/// One namespace's durable directory state, as seen by the forensic
/// auditor.
#[derive(Debug, Clone)]
pub struct RawNamespace {
    /// The namespace descriptor (job, slot range).
    pub desc: NamespaceDesc,
    /// The namespace's durable check record, if it decodes and names a
    /// slot inside the namespace's own range.
    pub check_addr: Option<CheckMeta>,
}

impl RawStoreView {
    /// Loads the view from durable bytes.
    ///
    /// # Errors
    ///
    /// Returns [`PccheckError::InvalidConfig`] if no valid store header is
    /// found; propagates device read errors.
    pub fn load(device: &dyn PersistentDevice) -> Result<RawStoreView, PccheckError> {
        let mut header = [0u8; HEADER_SIZE as usize];
        device.read_durable_at(0, &mut header)?;
        let magic = u64::from_le_bytes(header[0..8].try_into().expect("slice len"));
        if magic != STORE_MAGIC {
            return Err(PccheckError::InvalidConfig(
                "device holds no PCcheck store (bad magic)".into(),
            ));
        }
        let slots = u32::from_le_bytes(header[8..12].try_into().expect("slice len"));
        let slot_size =
            ByteSize::from_bytes(u64::from_le_bytes(header[12..20].try_into().expect("len")));
        let flight_records = u32::from_le_bytes(header[20..24].try_into().expect("slice len"));
        let digest_chunks = u32::from_le_bytes(header[24..28].try_into().expect("slice len"));
        let max_namespaces = u32::from_le_bytes(header[28..32].try_into().expect("slice len"));
        let state_words = u32::from_le_bytes(header[32..36].try_into().expect("slice len")) != 0;

        let mut rec = [0u8; META_RECORD_SIZE as usize];
        device.read_durable_at(CHECK_ADDR_OFFSET, &mut rec)?;
        let check_addr = CheckMeta::decode(&rec).filter(|m| m.slot < slots);

        let mut slot_meta = Vec::with_capacity(slots as usize);
        for s in 0..slots {
            device.read_durable_at(
                CheckpointStore::slot_meta_offset_static(s, slot_size),
                &mut rec,
            )?;
            slot_meta.push(
                CheckMeta::decode(&rec)
                    .filter(|m| m.slot == s && ByteSize::from_bytes(m.payload_len) <= slot_size),
            );
        }

        let mut slot_state = vec![None; slots as usize];
        if state_words {
            let state_base = CheckpointStore::slot_state_base_static(
                slot_size,
                slots,
                flight_records,
                digest_chunks,
                max_namespaces,
            );
            let mut state_rec = [0u8; SLOT_STATE_SIZE as usize];
            for (s, cell) in slot_state.iter_mut().enumerate() {
                device
                    .read_durable_at(state_base + s as u64 * SLOT_STATE_SIZE, &mut state_rec)?;
                *cell = SlotState::decode(&state_rec);
            }
        }

        let mut namespaces = Vec::new();
        if max_namespaces > 0 {
            let dir_base = CheckpointStore::ns_dir_base_static(
                slot_size,
                slots,
                flight_records,
                digest_chunks,
            );
            let mut desc_buf = [0u8; NS_DESC_SIZE as usize];
            for i in 0..max_namespaces {
                let entry_off = dir_base + u64::from(i) * NS_ENTRY_SIZE;
                device.read_durable_at(entry_off, &mut desc_buf)?;
                let Some(desc) = NamespaceDesc::decode(&desc_buf) else {
                    continue;
                };
                if desc.slot_start + desc.slot_count > slots || desc.slot_count == 0 {
                    continue;
                }
                device.read_durable_at(entry_off + NS_DESC_SIZE, &mut rec)?;
                let range = desc.slot_start..desc.slot_start + desc.slot_count;
                let check_addr = CheckMeta::decode(&rec).filter(|m| range.contains(&m.slot));
                namespaces.push(RawNamespace { desc, check_addr });
            }
        }

        Ok(RawStoreView {
            slots,
            slot_size,
            flight_records,
            max_namespaces,
            check_addr,
            slot_meta,
            state_words,
            slot_state,
            namespaces,
        })
    }

    /// The decision procedure over the commit-state lattice: classifies
    /// one slot's post-crash outcome from its durable state word plus its
    /// meta record's CRC — nothing else. Total: every (word, meta)
    /// combination maps to exactly one [`SlotOutcome`], and only
    /// [`SlotOutcome::Torn`] is unreachable under the protocol's
    /// ordering (the auditor flags it as an invariant violation).
    pub fn slot_outcome(&self, slot: u32) -> SlotOutcome {
        let meta = self.slot_meta.get(slot as usize).copied().flatten();
        let state = self.slot_state.get(slot as usize).copied().flatten();
        match (state, meta) {
            (None | Some(SlotState::Free), None) => SlotOutcome::Empty,
            (None | Some(SlotState::Free), Some(m)) => {
                SlotOutcome::Historical { counter: m.counter }
            }
            (Some(SlotState::Claimed { counter }), Some(m)) if m.counter == counter => {
                SlotOutcome::Persisted { counter }
            }
            (Some(SlotState::Claimed { counter }), _) => SlotOutcome::InFlight { counter },
            (Some(SlotState::Committed { counter }), Some(m)) if m.counter == counter => {
                SlotOutcome::Committed { counter }
            }
            (Some(SlotState::Committed { counter }), meta) => SlotOutcome::Torn {
                state_counter: counter,
                meta_counter: meta.map(|m| m.counter),
            },
        }
    }

    /// [`slot_outcome`](Self::slot_outcome) for every slot, in order.
    pub fn slot_outcomes(&self) -> Vec<SlotOutcome> {
        (0..self.slots).map(|s| self.slot_outcome(s)).collect()
    }

    /// Device offset of `slot`'s payload.
    pub fn slot_payload_offset(&self, slot: u32) -> u64 {
        CheckpointStore::slot_meta_offset_static(slot, self.slot_size) + META_RECORD_SIZE
    }

    /// Device offset of the flight ring header (meaningful only when
    /// [`flight_records`](Self::flight_records) > 0).
    pub fn flight_base(&self) -> u64 {
        CheckpointStore::flight_base_static(self.slot_size, self.slots)
    }

    /// The checkpoint recovery would restore, replicating
    /// `CheckpointStore::open`'s scan over durable bytes: the max-counter
    /// checkpoint among a slot-consistent `CHECK_ADDR` and the valid slot
    /// records.
    pub fn expected_recovery(&self) -> Option<CheckMeta> {
        if self.max_namespaces > 0 {
            // Service mode: recovery is per-namespace; the global answer is
            // the newest across them (diagnostics only).
            return self
                .namespaces
                .iter()
                .filter_map(|ns| self.expected_recovery_for(ns.desc.job))
                .max_by_key(|m| m.counter);
        }
        Self::best_of(self.check_addr.as_ref(), &self.slot_meta, 0..self.slots)
    }

    /// The checkpoint recovery would restore for `job`'s namespace — the
    /// same max-counter scan as [`expected_recovery`](Self::expected_recovery)
    /// but confined to the namespace's slot range and its own check record.
    /// `None` when the job has no namespace or nothing committed.
    pub fn expected_recovery_for(&self, job: u64) -> Option<CheckMeta> {
        let ns = self.namespaces.iter().find(|ns| ns.desc.job == job)?;
        let range = ns.desc.slot_start..ns.desc.slot_start + ns.desc.slot_count;
        Self::best_of(ns.check_addr.as_ref(), &self.slot_meta, range)
    }

    /// The job whose namespace owns `slot`, or `None` for unallocated
    /// slots / single-tenant stores.
    pub fn namespace_of_slot(&self, slot: u32) -> Option<u64> {
        self.namespaces
            .iter()
            .find(|ns| {
                (ns.desc.slot_start..ns.desc.slot_start + ns.desc.slot_count).contains(&slot)
            })
            .map(|ns| ns.desc.job)
    }

    fn best_of(
        check_addr: Option<&CheckMeta>,
        slot_meta: &[Option<CheckMeta>],
        range: std::ops::Range<u32>,
    ) -> Option<CheckMeta> {
        let mut best: Option<CheckMeta> = None;
        if let Some(ca) = check_addr {
            if range.contains(&ca.slot) && slot_meta.get(ca.slot as usize) == Some(&Some(*ca)) {
                best = Some(*ca);
            }
        }
        for s in range {
            if let Some(meta) = slot_meta.get(s as usize).copied().flatten() {
                if best.map_or(true, |b| meta.counter > b.counter) {
                    best = Some(meta);
                }
            }
        }
        best
    }

    /// Reads a slot's durable payload bytes, sized by its meta record.
    ///
    /// # Errors
    ///
    /// Propagates device read errors; errors if the slot has no valid meta.
    pub fn read_slot_payload(
        &self,
        device: &dyn PersistentDevice,
        slot: u32,
    ) -> Result<Vec<u8>, PccheckError> {
        let meta = self
            .slot_meta
            .get(slot as usize)
            .copied()
            .flatten()
            .ok_or(PccheckError::CorruptCheckpoint { counter: 0 })?;
        let mut payload = vec![0u8; meta.payload_len as usize];
        device.read_durable_at(self.slot_payload_offset(slot), &mut payload)?;
        Ok(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pccheck_device::{DeviceConfig, SsdDevice};

    fn store(slot_size: u64, slots: u32) -> CheckpointStore {
        let cap = CheckpointStore::required_capacity(ByteSize::from_bytes(slot_size), slots);
        let dev: Arc<dyn PersistentDevice> =
            Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        CheckpointStore::format(dev, ByteSize::from_bytes(slot_size), slots).unwrap()
    }

    fn full_checkpoint(st: &CheckpointStore, iter: u64, payload: &[u8]) -> CommitOutcome {
        let lease = st.begin_checkpoint();
        st.write_payload(&lease, 0, payload).unwrap();
        st.persist_payload(&lease, 0, payload.len() as u64).unwrap();
        let digest = crate::meta::checksum(payload);
        st.commit(lease, iter, payload.len() as u64, digest)
            .unwrap()
    }

    #[test]
    fn format_then_no_committed_checkpoint() {
        let st = store(256, 3);
        assert_eq!(st.latest_committed(), None);
        assert_eq!(st.free_slot_count(), 3);
        assert_eq!(st.num_slots(), 3);
        assert_eq!(st.slot_size().as_u64(), 256);
    }

    #[test]
    fn commit_installs_latest() {
        let st = store(256, 3);
        let out = full_checkpoint(&st, 10, b"payload-at-iter-10");
        assert_eq!(out, CommitOutcome::Committed);
        let meta = st.latest_committed().unwrap();
        assert_eq!(meta.iteration, 10);
        assert_eq!(meta.payload_len, 18);
        // Committed slot is held out of the queue.
        assert_eq!(st.free_slot_count(), 2);
    }

    #[test]
    fn successive_commits_recycle_slots() {
        let st = store(64, 2); // N=1
        for i in 1..=20u64 {
            let out = full_checkpoint(&st, i, format!("it{i}").as_bytes());
            assert_eq!(out, CommitOutcome::Committed);
            assert_eq!(st.latest_committed().unwrap().iteration, i);
            assert_eq!(st.free_slot_count(), 1);
        }
    }

    #[test]
    fn out_of_order_commit_is_superseded() {
        let st = store(64, 3);
        let lease_old = st.begin_checkpoint(); // counter 1
        let lease_new = st.begin_checkpoint(); // counter 2
        st.write_payload(&lease_new, 0, b"new").unwrap();
        st.persist_payload(&lease_new, 0, 3).unwrap();
        assert_eq!(
            st.commit(lease_new, 2, 3, 0).unwrap(),
            CommitOutcome::Committed
        );
        st.write_payload(&lease_old, 0, b"old").unwrap();
        st.persist_payload(&lease_old, 0, 3).unwrap();
        let out = st.commit(lease_old, 1, 3, 0).unwrap();
        assert_eq!(out, CommitOutcome::SupersededBy { counter: 2 });
        // The newer checkpoint remains installed.
        assert_eq!(st.latest_committed().unwrap().iteration, 2);
        // Both non-committed slots are free again.
        assert_eq!(st.free_slot_count(), 2);
    }

    #[test]
    fn oversized_payload_rejected() {
        let st = store(8, 2);
        let lease = st.begin_checkpoint();
        assert!(st.write_payload(&lease, 4, &[0u8; 8]).is_err());
        st.write_payload(&lease, 0, &[0u8; 8]).unwrap();
        // Return the lease through a commit to avoid leaking the slot.
        st.commit(lease, 1, 8, 0).unwrap();
    }

    #[test]
    fn open_recovers_committed_checkpoint() {
        let payload = b"durable-state".to_vec();
        let cap = CheckpointStore::required_capacity(ByteSize::from_bytes(64), 3);
        let dev: Arc<dyn PersistentDevice> =
            Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        {
            let st =
                CheckpointStore::format(Arc::clone(&dev), ByteSize::from_bytes(64), 3).unwrap();
            full_checkpoint(&st, 7, &payload);
        }
        dev.crash_now();
        dev.recover();
        let st = CheckpointStore::open(Arc::clone(&dev)).unwrap();
        let meta = st.latest_committed().unwrap();
        assert_eq!(meta.iteration, 7);
        assert_eq!(meta.payload_len, payload.len() as u64);
        // Counter resumes above the recovered one.
        let lease = st.begin_checkpoint();
        assert!(lease.counter > meta.counter);
        assert_ne!(lease.slot, meta.slot, "committed slot is not leased out");
    }

    #[test]
    fn open_rejects_unformatted_device() {
        let dev: Arc<dyn PersistentDevice> = Arc::new(SsdDevice::new(
            DeviceConfig::fast_for_tests(ByteSize::from_kb(4)),
        ));
        assert!(matches!(
            CheckpointStore::open(dev),
            Err(PccheckError::InvalidConfig(_))
        ));
    }

    #[test]
    fn format_rejects_bad_geometry() {
        let dev: Arc<dyn PersistentDevice> = Arc::new(SsdDevice::new(
            DeviceConfig::fast_for_tests(ByteSize::from_kb(4)),
        ));
        assert!(CheckpointStore::format(Arc::clone(&dev), ByteSize::from_bytes(64), 1).is_err());
        assert!(CheckpointStore::format(Arc::clone(&dev), ByteSize::ZERO, 2).is_err());
        assert!(
            CheckpointStore::format(dev, ByteSize::from_gb(1.0), 2).is_err(),
            "device too small"
        );
    }

    #[test]
    fn crash_before_commit_preserves_previous() {
        let cap = CheckpointStore::required_capacity(ByteSize::from_bytes(64), 2);
        let dev_concrete = Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        let dev: Arc<dyn PersistentDevice> = dev_concrete.clone();
        let st = CheckpointStore::format(Arc::clone(&dev), ByteSize::from_bytes(64), 2).unwrap();
        full_checkpoint(&st, 1, b"first");
        // Second checkpoint: payload written + persisted, meta written but
        // CRASH before the meta record persists / CAS runs.
        let lease = st.begin_checkpoint();
        st.write_payload(&lease, 0, b"second").unwrap();
        st.persist_payload(&lease, 0, 6).unwrap();
        dev.crash_now();
        dev.recover();
        let st2 = CheckpointStore::open(dev).unwrap();
        let meta = st2.latest_committed().unwrap();
        assert_eq!(meta.iteration, 1, "first checkpoint survives the crash");
    }

    #[test]
    fn fallback_scan_recovers_newer_fully_persisted_slot() {
        // Commit #1 normally. For #2, persist payload + slot meta, then
        // crash before CHECK_ADDR persists. The fallback scan must find #2.
        let cap = CheckpointStore::required_capacity(ByteSize::from_bytes(64), 3);
        let dev: Arc<dyn PersistentDevice> =
            Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        let st = CheckpointStore::format(Arc::clone(&dev), ByteSize::from_bytes(64), 3).unwrap();
        full_checkpoint(&st, 1, b"one");
        let lease = st.begin_checkpoint();
        st.write_payload(&lease, 0, b"two").unwrap();
        st.persist_payload(&lease, 0, 3).unwrap();
        // Persist the slot meta record manually (as commit() would), then
        // crash before the CHECK_ADDR update.
        let meta = CheckMeta {
            counter: lease.counter,
            slot: lease.slot,
            iteration: 2,
            payload_len: 3,
            digest: 0,
            delta: None,
        };
        let off = st.slot_meta_offset(lease.slot);
        dev.write_at(off, &meta.encode()).unwrap();
        dev.persist(off, META_RECORD_SIZE).unwrap();
        dev.crash_now();
        dev.recover();
        let st2 = CheckpointStore::open(dev).unwrap();
        assert_eq!(st2.latest_committed().unwrap().iteration, 2);
    }

    #[test]
    fn history_lists_complete_checkpoints_in_counter_order() {
        let st = store(64, 4); // N=3: up to 3 historical + 1 latest
        for i in 1..=3u64 {
            full_checkpoint(&st, i, format!("payload-{i}").as_bytes());
        }
        let hist = st.history().unwrap();
        assert_eq!(hist.len(), 3);
        assert!(hist.windows(2).all(|w| w[0].counter < w[1].counter));
        assert_eq!(hist.last().unwrap().iteration, 3);
        // Payloads read back intact.
        for meta in &hist {
            let payload = st.read_checkpoint(meta).unwrap();
            assert_eq!(payload, format!("payload-{}", meta.iteration).into_bytes());
        }
    }

    #[test]
    fn read_checkpoint_detects_recycled_slot() {
        let st = store(64, 2); // tight store: slots recycle fast
        full_checkpoint(&st, 1, b"one");
        let old = st.history().unwrap()[0];
        full_checkpoint(&st, 2, b"two");
        full_checkpoint(&st, 3, b"three");
        // Slot of checkpoint 1 has been recycled by now.
        assert!(matches!(
            st.read_checkpoint(&old),
            Err(PccheckError::CorruptCheckpoint { .. })
        ));
    }

    #[test]
    fn flight_ring_witnesses_lifecycle_and_survives_crash() {
        use pccheck_telemetry::FlightEventKind as K;
        let cap = CheckpointStore::required_capacity_with_flight(ByteSize::from_bytes(64), 3, 32);
        let dev: Arc<dyn PersistentDevice> =
            Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        let st =
            CheckpointStore::format_with_flight(Arc::clone(&dev), ByteSize::from_bytes(64), 3, 32)
                .unwrap();
        assert!(st.flight().is_enabled());
        full_checkpoint(&st, 5, b"five");
        full_checkpoint(&st, 6, b"six");
        dev.crash_now();
        // The ring is readable from durable bytes while crashed.
        let base = CheckpointStore::flight_base_static(ByteSize::from_bytes(64), 3);
        let scan = FlightRing::scan(dev.as_ref(), base).unwrap();
        let kinds: Vec<K> = scan.records.iter().map(|r| r.kind).collect();
        assert_eq!(
            kinds,
            [
                K::RunStart,
                K::Begin,
                K::MetaPersisted,
                K::Commit,
                K::Begin,
                K::MetaPersisted,
                K::Commit,
            ]
        );
        // Commit counters are strictly monotone and match the metadata.
        let commits: Vec<u64> = scan
            .records
            .iter()
            .filter(|r| r.kind == K::Commit)
            .map(|r| r.counter)
            .collect();
        assert_eq!(commits, [1, 2]);
        // Reopening resumes the ring.
        dev.recover();
        let st2 = CheckpointStore::open(Arc::clone(&dev)).unwrap();
        assert!(st2.flight().is_enabled());
        full_checkpoint(&st2, 7, b"seven");
        let scan2 = st2.flight().ring().unwrap().read_all().unwrap();
        assert_eq!(scan2.records.len(), scan.records.len() + 3);
    }

    #[test]
    fn format_without_flight_is_backward_compatible() {
        let st = store(256, 3);
        assert!(!st.flight().is_enabled());
        full_checkpoint(&st, 1, b"x");
        // Geometry identical to the pre-flight layout.
        assert_eq!(
            CheckpointStore::required_capacity_with_flight(ByteSize::from_bytes(256), 3, 0),
            CheckpointStore::required_capacity(ByteSize::from_bytes(256), 3)
        );
    }

    #[test]
    fn raw_view_matches_store_state_while_crashed() {
        let cap = CheckpointStore::required_capacity_with_flight(ByteSize::from_bytes(64), 3, 16);
        let dev: Arc<dyn PersistentDevice> =
            Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        let st =
            CheckpointStore::format_with_flight(Arc::clone(&dev), ByteSize::from_bytes(64), 3, 16)
                .unwrap();
        full_checkpoint(&st, 3, b"abc");
        let committed = st.latest_committed().unwrap();
        dev.crash_now();
        let view = RawStoreView::load(dev.as_ref()).unwrap();
        assert_eq!(view.slots, 3);
        assert_eq!(view.slot_size.as_u64(), 64);
        assert_eq!(view.flight_records, 16);
        assert_eq!(view.check_addr, Some(committed));
        assert_eq!(view.expected_recovery(), Some(committed));
        assert_eq!(
            view.read_slot_payload(dev.as_ref(), committed.slot)
                .unwrap(),
            b"abc"
        );
        assert_eq!(view.flight_base(), st.slot_meta_offset(2) + 64 + 64);
    }

    fn delta_checkpoint(st: &CheckpointStore, iter: u64, payload: &[u8]) -> CommitOutcome {
        let base = st.latest_committed().expect("delta needs a committed base");
        let depth = base.delta.map_or(0, |l| l.chain_depth);
        let lease = st.begin_checkpoint();
        st.write_payload(&lease, 0, payload).unwrap();
        st.persist_payload(&lease, 0, payload.len() as u64).unwrap();
        let digest = crate::meta::checksum(payload);
        st.commit_with_delta(
            lease,
            iter,
            payload.len() as u64,
            digest,
            Some(DeltaLink {
                base_counter: base.counter,
                base_slot: base.slot,
                chain_depth: depth + 1,
            }),
        )
        .unwrap()
    }

    #[test]
    fn delta_commit_pins_the_chain_until_a_full_checkpoint() {
        let st = store(64, 4);
        full_checkpoint(&st, 1, b"base");
        assert_eq!(st.free_slot_count(), 3);
        assert_eq!(delta_checkpoint(&st, 2, b"d1"), CommitOutcome::Committed);
        // Base + delta both pinned.
        assert_eq!(st.free_slot_count(), 2);
        assert_eq!(delta_checkpoint(&st, 3, b"d2"), CommitOutcome::Committed);
        assert_eq!(st.free_slot_count(), 1);
        let head = st.latest_committed().unwrap();
        assert_eq!(head.iteration, 3);
        assert_eq!(head.delta.unwrap().chain_depth, 2);
        // A full checkpoint releases the whole displaced chain.
        full_checkpoint(&st, 4, b"full");
        assert_eq!(st.free_slot_count(), 3);
        assert!(!st.latest_committed().unwrap().is_delta());
    }

    #[test]
    fn delta_commit_rejects_reserved_base_counter() {
        let st = store(64, 3);
        full_checkpoint(&st, 1, b"base");
        let lease = st.begin_checkpoint();
        st.write_payload(&lease, 0, b"d").unwrap();
        st.persist_payload(&lease, 0, 1).unwrap();
        let err = st.commit_with_delta(
            lease,
            2,
            1,
            0,
            Some(DeltaLink {
                base_counter: 0,
                base_slot: 0,
                chain_depth: 1,
            }),
        );
        assert!(matches!(err, Err(PccheckError::InvalidConfig(_))));
    }

    #[test]
    fn open_pins_the_committed_delta_chain() {
        let cap = CheckpointStore::required_capacity(ByteSize::from_bytes(64), 4);
        let dev: Arc<dyn PersistentDevice> =
            Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        {
            let st =
                CheckpointStore::format(Arc::clone(&dev), ByteSize::from_bytes(64), 4).unwrap();
            full_checkpoint(&st, 1, b"base");
            delta_checkpoint(&st, 2, b"d1");
            delta_checkpoint(&st, 3, b"d2");
        }
        dev.crash_now();
        dev.recover();
        let st = CheckpointStore::open(dev).unwrap();
        let head = st.latest_committed().unwrap();
        assert_eq!(head.iteration, 3);
        assert_eq!(head.delta.unwrap().chain_depth, 2);
        // Only the one slot outside the 3-slot chain is free.
        assert_eq!(st.free_slot_count(), 1);
        let lease = st.begin_checkpoint();
        let chain: Vec<u32> = {
            let mut c = vec![head.slot];
            let mut link = head.delta;
            while let Some(l) = link {
                c.push(l.base_slot);
                let hist = st.history().unwrap();
                link = hist
                    .iter()
                    .find(|m| m.counter == l.base_counter)
                    .and_then(|m| m.delta);
            }
            c
        };
        assert!(
            !chain.contains(&lease.slot),
            "no chain slot is ever leased out"
        );
    }

    #[test]
    fn digest_table_round_trips_and_binds_to_commit() {
        let st = store(8192, 3); // cap = ceil(8192/4096) = 2 chunk digests
        assert_eq!(st.digest_chunks(), 2);
        let payload: Vec<u8> = (0..8192u32).map(|i| (i % 251) as u8).collect();
        let digest = crate::meta::checksum(&payload);
        let lease = st.begin_checkpoint();
        let slot = lease.slot;
        st.write_payload(&lease, 0, &payload).unwrap();
        st.persist_payload(&lease, 0, payload.len() as u64).unwrap();
        let table = ChunkDigestTable::build(&payload, 4096, lease.counter, digest);
        assert!(st.write_digest_table(slot, &table).unwrap());
        st.commit(lease, 1, payload.len() as u64, digest).unwrap();
        let meta = st.latest_committed().unwrap();
        let read = st.read_digest_table(&meta).unwrap();
        assert_eq!(read, table);
        for i in 0..read.digests.len() {
            let (off, len) = read.chunk_range(i);
            assert!(read.verify_chunk(i, &payload[off as usize..(off + len) as usize]));
        }
        // A table from a different commit is rejected.
        let mut stale = meta;
        stale.counter += 1;
        assert!(st.read_digest_table(&stale).is_none());
        // A table bigger than the provisioned capacity is skipped, not
        // truncated.
        let fine = ChunkDigestTable::build(&payload, 256, meta.counter, digest);
        assert!(!st.write_digest_table(slot, &fine).unwrap());
        assert_eq!(st.read_digest_table(&meta).unwrap(), table);
    }

    #[test]
    fn legacy_header_without_digest_region_reads_as_feature_off() {
        let cap = CheckpointStore::required_capacity(ByteSize::from_bytes(64), 3);
        let dev: Arc<dyn PersistentDevice> =
            Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        {
            let st =
                CheckpointStore::format(Arc::clone(&dev), ByteSize::from_bytes(64), 3).unwrap();
            full_checkpoint(&st, 4, b"legacy");
        }
        // Rewrite the header the way a pre-digest-region format would have:
        // bytes 24..28 zeroed.
        dev.write_at(24, &[0u8; 4]).unwrap();
        dev.persist(24, 4).unwrap();
        let st = CheckpointStore::open(dev).unwrap();
        assert_eq!(st.digest_chunks(), 0);
        assert!(st.slot_digest_offset(0).is_none());
        let meta = st.latest_committed().unwrap();
        assert_eq!(meta.iteration, 4);
        assert!(st.read_digest_table(&meta).is_none());
        let table = ChunkDigestTable::build(b"legacy", 4096, meta.counter, meta.digest);
        assert!(!st.write_digest_table(meta.slot, &table).unwrap());
    }

    #[test]
    fn concurrent_commits_maintain_invariants() {
        let st = Arc::new(store(64, 4)); // N=3
        crossbeam::thread::scope(|s| {
            for t in 0..3u64 {
                let st = Arc::clone(&st);
                s.spawn(move |_| {
                    for i in 0..50u64 {
                        let iter = t * 1000 + i;
                        let payload = iter.to_le_bytes();
                        let lease = st.begin_checkpoint();
                        st.write_payload(&lease, 0, &payload).unwrap();
                        st.persist_payload(&lease, 0, 8).unwrap();
                        st.commit(lease, iter, 8, 0).unwrap();
                    }
                });
            }
        })
        .unwrap();
        // After the dust settles: one committed checkpoint, 3 free slots.
        let meta = st.latest_committed().expect("something committed");
        assert!(meta.counter >= 1);
        assert_eq!(st.free_slot_count(), 3);
        // The committed payload matches what that iteration wrote.
        let mut buf = [0u8; 8];
        st.device()
            .read_durable_at(st.slot_payload_offset(meta.slot), &mut buf)
            .unwrap();
        assert_eq!(u64::from_le_bytes(buf), meta.iteration);
    }

    // ------------------------------------------------- service mode

    fn service_store(slot_size: u64, slots: u32, max_ns: u32) -> CheckpointStore {
        let cap = CheckpointStore::required_capacity_service(
            ByteSize::from_bytes(slot_size),
            slots,
            0,
            max_ns,
        );
        let dev: Arc<dyn PersistentDevice> =
            Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        CheckpointStore::format_service(dev, ByteSize::from_bytes(slot_size), slots, 0, max_ns)
            .unwrap()
    }

    fn job_checkpoint(
        st: &CheckpointStore,
        job: JobId,
        iter: u64,
        payload: &[u8],
    ) -> CommitOutcome {
        let lease = st.begin_checkpoint_job(job).unwrap();
        st.write_payload(&lease, 0, payload).unwrap();
        st.persist_payload(&lease, 0, payload.len() as u64).unwrap();
        let digest = crate::meta::checksum(payload);
        st.commit(lease, iter, payload.len() as u64, digest)
            .unwrap()
    }

    #[test]
    fn service_format_allocate_and_isolate_jobs() {
        let st = service_store(128, 8, 4);
        assert!(st.is_multi_tenant());
        assert_eq!(st.unallocated_slots(), 8);
        let a = st.allocate_namespace(1, 3).unwrap();
        let b = st.allocate_namespace(2, 3).unwrap();
        assert_eq!((a.slot_start, a.slot_count), (0, 3));
        assert_eq!((b.slot_start, b.slot_count), (3, 3));
        assert_eq!(st.unallocated_slots(), 2);
        assert_eq!(st.namespace_of_slot(1), Some(1));
        assert_eq!(st.namespace_of_slot(4), Some(2));
        assert_eq!(st.namespace_of_slot(7), None);

        // Commits in one namespace are invisible to the other.
        assert_eq!(
            job_checkpoint(&st, 1, 5, b"job1-a"),
            CommitOutcome::Committed
        );
        assert_eq!(
            job_checkpoint(&st, 2, 9, b"job2-a"),
            CommitOutcome::Committed
        );
        assert_eq!(
            job_checkpoint(&st, 1, 6, b"job1-b"),
            CommitOutcome::Committed
        );
        let m1 = st.latest_committed_job(1).unwrap().unwrap();
        let m2 = st.latest_committed_job(2).unwrap().unwrap();
        assert_eq!(m1.iteration, 6);
        assert_eq!(m2.iteration, 9);
        assert!(a.slot_range().contains(&m1.slot));
        assert!(b.slot_range().contains(&m2.slot));
        // Global counters are unique across jobs.
        assert_ne!(m1.counter, m2.counter);
        // Per-job free accounting: one slot pinned per job.
        assert_eq!(st.free_slot_count_job(1).unwrap(), 2);
        assert_eq!(st.free_slot_count_job(2).unwrap(), 2);
    }

    #[test]
    fn service_admission_rejections() {
        let st = service_store(128, 6, 2);
        st.allocate_namespace(7, 4).unwrap();
        // Duplicate job.
        assert!(st.allocate_namespace(7, 2).is_err());
        // Over the slot budget (only 2 remain).
        assert!(st.allocate_namespace(8, 3).is_err());
        // Too few slots.
        assert!(st.allocate_namespace(8, 1).is_err());
        // Fits exactly.
        st.allocate_namespace(8, 2).unwrap();
        // Directory full.
        assert!(st.allocate_namespace(9, 2).is_err());
        // Unknown job cannot begin.
        assert!(st.begin_checkpoint_job(99).is_err());
    }

    #[test]
    #[should_panic(expected = "multi-tenant")]
    fn service_rejects_legacy_begin() {
        let st = service_store(128, 4, 2);
        st.allocate_namespace(1, 2).unwrap();
        let _ = st.begin_checkpoint();
    }

    #[test]
    fn service_reopen_recovers_every_namespace() {
        let slot_size = 128u64;
        let cap =
            CheckpointStore::required_capacity_service(ByteSize::from_bytes(slot_size), 8, 0, 4);
        let ssd = Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        let dev: Arc<dyn PersistentDevice> = ssd.clone();
        let st = CheckpointStore::format_service(
            Arc::clone(&dev),
            ByteSize::from_bytes(slot_size),
            8,
            0,
            4,
        )
        .unwrap();
        st.allocate_namespace(1, 3).unwrap();
        st.allocate_namespace(2, 3).unwrap();
        job_checkpoint(&st, 1, 10, b"one-10");
        job_checkpoint(&st, 2, 20, b"two-20");
        job_checkpoint(&st, 1, 11, b"one-11");
        let c1 = st.latest_committed_job(1).unwrap().unwrap().counter;
        drop(st);

        let st2 = CheckpointStore::open(dev).unwrap();
        assert!(st2.is_multi_tenant());
        assert_eq!(st2.namespaces().len(), 2);
        let m1 = st2.latest_committed_job(1).unwrap().unwrap();
        let m2 = st2.latest_committed_job(2).unwrap().unwrap();
        assert_eq!(m1.iteration, 11);
        assert_eq!(m2.iteration, 20);
        // Payloads reload intact through the namespaced metadata.
        assert_eq!(st2.read_checkpoint(&m1).unwrap(), b"one-11");
        assert_eq!(st2.read_checkpoint(&m2).unwrap(), b"two-20");
        // The resumed global counter is past every namespace's commits.
        let lease = st2.begin_checkpoint_job(2).unwrap();
        assert!(lease.counter > c1);
        assert!(lease.counter > m2.counter);
        // Committed slots stayed pinned; the rest of each range is free.
        assert_eq!(st2.free_slot_count_job(1).unwrap(), 2);
        assert_eq!(st2.free_slot_count_job(2).unwrap(), 1); // one leased now
    }

    #[test]
    fn service_crash_mid_commit_keeps_namespaces_independent() {
        let slot_size = 128u64;
        let cap =
            CheckpointStore::required_capacity_service(ByteSize::from_bytes(slot_size), 6, 0, 2);
        let ssd = Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        let dev: Arc<dyn PersistentDevice> = ssd.clone();
        let st = CheckpointStore::format_service(
            Arc::clone(&dev),
            ByteSize::from_bytes(slot_size),
            6,
            0,
            2,
        )
        .unwrap();
        st.allocate_namespace(1, 3).unwrap();
        st.allocate_namespace(2, 3).unwrap();
        job_checkpoint(&st, 1, 10, b"one-10");
        job_checkpoint(&st, 2, 20, b"two-20");
        // Job 1 writes but crashes before its meta persists: the volatile
        // overlay (unpersisted writes) is torn away.
        let lease = st.begin_checkpoint_job(1).unwrap();
        st.write_payload(&lease, 0, b"one-11-torn").unwrap();
        ssd.crash_now();
        ssd.recover();
        drop(st);

        let st2 = CheckpointStore::open(dev).unwrap();
        // Job 1 recovers its previous commit; job 2 is untouched.
        assert_eq!(st2.latest_committed_job(1).unwrap().unwrap().iteration, 10);
        assert_eq!(st2.latest_committed_job(2).unwrap().unwrap().iteration, 20);
        // The torn slot returned to job 1's free queue.
        assert_eq!(st2.free_slot_count_job(1).unwrap(), 2);
    }

    #[test]
    fn service_raw_view_expected_recovery_per_job() {
        let st = service_store(128, 8, 4);
        st.allocate_namespace(5, 4).unwrap();
        st.allocate_namespace(6, 4).unwrap();
        job_checkpoint(&st, 5, 100, b"five");
        job_checkpoint(&st, 6, 200, b"six");
        job_checkpoint(&st, 5, 101, b"five2");
        let view = RawStoreView::load(st.device().as_ref()).unwrap();
        assert_eq!(view.max_namespaces, 4);
        assert_eq!(view.namespaces.len(), 2);
        assert_eq!(view.expected_recovery_for(5).unwrap().iteration, 101);
        assert_eq!(view.expected_recovery_for(6).unwrap().iteration, 200);
        assert!(view.expected_recovery_for(7).is_none());
        assert_eq!(view.namespace_of_slot(0), Some(5));
        assert_eq!(view.namespace_of_slot(4), Some(6));
        // The global diagnostic view picks the newest across namespaces.
        assert_eq!(view.expected_recovery().unwrap().iteration, 101);
    }

    #[test]
    fn legacy_header_reads_as_single_tenant() {
        let st = store(256, 3);
        full_checkpoint(&st, 4, b"legacy");
        let view = RawStoreView::load(st.device().as_ref()).unwrap();
        assert_eq!(view.max_namespaces, 0);
        assert!(view.namespaces.is_empty());
        assert!(!st.is_multi_tenant());
        assert_eq!(st.unallocated_slots(), 0);
        assert!(st.allocate_namespace(1, 2).is_err());
        assert!(st.begin_checkpoint_job(1).is_err());
        assert!(st.latest_committed_job(1).is_err());
    }

    #[test]
    fn state_words_track_the_commit_lattice() {
        let st = store(64, 3);
        for s in 0..3 {
            assert_eq!(st.slot_commit_state(s), SlotState::Free);
            assert!(st.slot_state_offset(s).is_some());
        }
        let view = RawStoreView::load(st.device().as_ref()).unwrap();
        assert!(view.state_words);
        assert!(view.slot_state.iter().all(|s| *s == Some(SlotState::Free)));

        // Claim: Free -> Claimed{counter}, in memory and on the device.
        let lease = st.begin_checkpoint();
        let claimed = SlotState::Claimed {
            counter: lease.counter,
        };
        assert_eq!(st.slot_commit_state(lease.slot), claimed);
        let view = RawStoreView::load(st.device().as_ref()).unwrap();
        assert_eq!(view.slot_state[lease.slot as usize], Some(claimed));
        assert_eq!(
            view.slot_outcome(lease.slot),
            SlotOutcome::InFlight {
                counter: lease.counter
            }
        );

        // Commit: Claimed -> Committed{counter}, durably.
        let (c1_slot, c1) = (lease.slot, lease.counter);
        st.write_payload(&lease, 0, b"one").unwrap();
        st.persist_payload(&lease, 0, 3).unwrap();
        st.commit(lease, 1, 3, crate::meta::checksum(b"one")).unwrap();
        let committed = SlotState::Committed { counter: c1 };
        assert_eq!(st.slot_commit_state(c1_slot), committed);
        let view = RawStoreView::load(st.device().as_ref()).unwrap();
        assert_eq!(view.slot_state[c1_slot as usize], Some(committed));
        assert_eq!(
            view.slot_outcome(c1_slot),
            SlotOutcome::Committed { counter: c1 }
        );

        // Displacement recycles the slot in memory but never rewrites the
        // durable word: the high-water record keeps the slot decidable as
        // a (stale but valid) committed checkpoint until it is re-claimed.
        let out2 = full_checkpoint(&st, 2, b"two");
        assert_eq!(out2, CommitOutcome::Committed);
        assert_eq!(st.slot_commit_state(c1_slot), SlotState::Free);
        let view = RawStoreView::load(st.device().as_ref()).unwrap();
        assert_eq!(view.slot_state[c1_slot as usize], Some(committed));
        assert_eq!(
            view.slot_outcome(c1_slot),
            SlotOutcome::Committed { counter: c1 }
        );

        // Re-claiming the displaced slot overwrites the durable word; the
        // stale meta no longer matches, so the slot reads as in-flight.
        let mut lease3 = st.begin_checkpoint();
        if lease3.slot != c1_slot {
            // Two free slots: keep drawing until the displaced one comes up.
            let other = lease3;
            lease3 = st.begin_checkpoint();
            st.commit(other, 3, 0, crate::meta::checksum(b"")).unwrap();
        }
        assert_eq!(lease3.slot, c1_slot, "displaced slot recycles via queue");
        let view = RawStoreView::load(st.device().as_ref()).unwrap();
        assert_eq!(
            view.slot_outcome(c1_slot),
            SlotOutcome::InFlight {
                counter: lease3.counter
            }
        );
        st.commit(lease3, 4, 0, crate::meta::checksum(b"")).unwrap();
    }

    #[test]
    fn legacy_header_without_state_region_reads_as_feature_off() {
        let cap = CheckpointStore::required_capacity(ByteSize::from_bytes(64), 3);
        let dev: Arc<dyn PersistentDevice> =
            Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        {
            let st =
                CheckpointStore::format(Arc::clone(&dev), ByteSize::from_bytes(64), 3).unwrap();
            full_checkpoint(&st, 4, b"legacy");
        }
        // Rewrite the header the way a pre-lattice format would have:
        // bytes 32..36 zeroed.
        dev.write_at(32, &[0u8; 4]).unwrap();
        dev.persist(32, 4).unwrap();
        let st = CheckpointStore::open(Arc::clone(&dev)).unwrap();
        assert!(st.slot_state_offset(0).is_none());
        let meta = st.latest_committed().unwrap();
        assert_eq!(meta.iteration, 4);
        // Commits still work; the in-memory lattice runs without the
        // durable mirror.
        full_checkpoint(&st, 5, b"newer");
        assert_eq!(st.latest_committed().unwrap().iteration, 5);
        // The decision procedure degrades to meta-CRC-only verdicts.
        let view = RawStoreView::load(dev.as_ref()).unwrap();
        assert!(!view.state_words);
        assert!(view.slot_state.iter().all(Option::is_none));
        let outcomes = view.slot_outcomes();
        assert!(outcomes
            .iter()
            .all(|o| matches!(o, SlotOutcome::Empty | SlotOutcome::Historical { .. })));
        assert!(outcomes
            .iter()
            .any(|o| matches!(o, SlotOutcome::Historical { .. })));
    }

    #[test]
    fn crash_between_claim_and_meta_publish_is_decidable() {
        let cap = CheckpointStore::required_capacity(ByteSize::from_bytes(64), 3);
        let dev: Arc<dyn PersistentDevice> =
            Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        let (committed_slot, committed_ctr, leased_slot, leased_ctr);
        {
            let st =
                CheckpointStore::format(Arc::clone(&dev), ByteSize::from_bytes(64), 3).unwrap();
            full_checkpoint(&st, 1, b"one");
            let prev = st.latest_committed().unwrap();
            (committed_slot, committed_ctr) = (prev.slot, prev.counter);
            // Claim a slot (state word goes durable) and crash before any
            // meta is written for it.
            let lease = st.begin_checkpoint();
            (leased_slot, leased_ctr) = (lease.slot, lease.counter);
            std::mem::forget(lease);
        }
        dev.crash_now();
        dev.recover();
        let view = RawStoreView::load(dev.as_ref()).unwrap();
        assert_eq!(
            view.slot_outcome(leased_slot),
            SlotOutcome::InFlight {
                counter: leased_ctr
            },
            "claimed-but-unpublished slot is decidably in-flight"
        );
        assert_eq!(
            view.slot_outcome(committed_slot),
            SlotOutcome::Committed {
                counter: committed_ctr
            }
        );
        // Recovery discards the in-flight claim and reopens the slot.
        let st = CheckpointStore::open(dev).unwrap();
        assert_eq!(st.latest_committed().unwrap().iteration, 1);
        assert_eq!(st.free_slot_count(), 2);
        assert_eq!(st.slot_commit_state(leased_slot), SlotState::Free);
    }

    #[test]
    fn crash_between_meta_persist_and_committed_word_is_adoptable() {
        // The window between the meta record persisting and the state
        // word's Committed CAS: the slot reads as Persisted{c} and the
        // max-counter recovery scan adopts it.
        let cap = CheckpointStore::required_capacity(ByteSize::from_bytes(64), 3);
        let dev: Arc<dyn PersistentDevice> =
            Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        let st = CheckpointStore::format(Arc::clone(&dev), ByteSize::from_bytes(64), 3).unwrap();
        full_checkpoint(&st, 1, b"one");
        let lease = st.begin_checkpoint();
        st.write_payload(&lease, 0, b"two").unwrap();
        st.persist_payload(&lease, 0, 3).unwrap();
        let meta = CheckMeta {
            counter: lease.counter,
            slot: lease.slot,
            iteration: 2,
            payload_len: 3,
            digest: crate::meta::checksum(b"two"),
            delta: None,
        };
        let off = st.slot_meta_offset(lease.slot);
        dev.write_at(off, &meta.encode()).unwrap();
        dev.persist(off, META_RECORD_SIZE).unwrap();
        let (slot, counter) = (lease.slot, lease.counter);
        std::mem::forget(lease);
        dev.crash_now();
        dev.recover();
        let view = RawStoreView::load(dev.as_ref()).unwrap();
        assert_eq!(
            view.slot_outcome(slot),
            SlotOutcome::Persisted { counter },
            "meta persisted before the Committed word: adoptable"
        );
        let st2 = CheckpointStore::open(dev).unwrap();
        assert_eq!(st2.latest_committed().unwrap().iteration, 2);
    }

    #[test]
    fn racing_commits_never_produce_torn_outcomes() {
        let st = Arc::new(store(64, 6)); // N=5
        crossbeam::thread::scope(|s| {
            for t in 0..4u64 {
                let st = Arc::clone(&st);
                s.spawn(move |_| {
                    for i in 0..30u64 {
                        let iter = t * 1000 + i;
                        let payload = iter.to_le_bytes();
                        let lease = st.begin_checkpoint();
                        st.write_payload(&lease, 0, &payload).unwrap();
                        st.persist_payload(&lease, 0, 8).unwrap();
                        st.commit(lease, iter, 8, 0).unwrap();
                    }
                });
            }
        })
        .unwrap();
        // Every slot's durable record decides to a lattice point; the Torn
        // verdict is unreachable while the protocol's ordering holds.
        let view = RawStoreView::load(st.device().as_ref()).unwrap();
        for (s, outcome) in view.slot_outcomes().into_iter().enumerate() {
            assert!(
                !matches!(outcome, SlotOutcome::Torn { .. }),
                "slot {s} reads torn: {outcome:?}"
            );
        }
        // The winner is decidably committed, at the head the store reports.
        let head = st.latest_committed().unwrap();
        assert_eq!(
            view.slot_outcome(head.slot),
            SlotOutcome::Committed {
                counter: head.counter
            }
        );
        assert_eq!(st.free_slot_count(), 5);
    }
}

//! Multi-node checkpoint coordination (§3.1, §4.1).
//!
//! In pipeline-parallel training every node checkpoints its own model
//! partition. Because each node may have several checkpoints in flight, the
//! nodes must agree on which checkpoint id is the latest *globally
//! consistent* one — a model partition from iteration 40 on one node is
//! useless next to a partition from iteration 50 on another.
//!
//! The paper's mechanism: after a node's successful commit CAS, it sends
//! its checkpoint id to rank 0 and waits; once rank 0 has ids from all
//! peers, it notifies them, and each updates its `peer_check` — the last
//! globally consistent checkpoint. [`CoordinatorHub`] implements exactly
//! this rendezvous for in-process "nodes" (threads), which is how the
//! distributed experiments are simulated.

use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::error::PccheckError;

#[derive(Debug)]
struct Round {
    /// Checkpoint ids reported this round, indexed by rank.
    reported: Vec<Option<u64>>,
    /// The agreed id of the last completed round.
    agreed: Option<u64>,
    /// Sequence number of completed rounds.
    completed_rounds: u64,
    /// Set when any rank reports an inconsistent id for the current round.
    conflict: Option<String>,
}

/// Rendezvous point for `n` ranks agreeing on globally consistent
/// checkpoint ids.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use pccheck::distributed::CoordinatorHub;
///
/// let hub = Arc::new(CoordinatorHub::new(2));
/// let h = {
///     let hub = Arc::clone(&hub);
///     std::thread::spawn(move || hub.report_and_wait(1, 7).unwrap())
/// };
/// let agreed = hub.report_and_wait(0, 7).unwrap();
/// assert_eq!(agreed, 7);
/// assert_eq!(h.join().unwrap(), 7);
/// ```
#[derive(Debug)]
pub struct CoordinatorHub {
    ranks: usize,
    round: Mutex<Round>,
    cond: Condvar,
}

impl CoordinatorHub {
    /// Creates a hub for `ranks` participants.
    ///
    /// # Panics
    ///
    /// Panics if `ranks == 0`.
    pub fn new(ranks: usize) -> Self {
        assert!(ranks > 0, "need at least one rank");
        CoordinatorHub {
            ranks,
            round: Mutex::new(Round {
                reported: vec![None; ranks],
                agreed: None,
                completed_rounds: 0,
                conflict: None,
            }),
            cond: Condvar::new(),
        }
    }

    /// Number of participating ranks.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// The last globally consistent checkpoint id (each node's
    /// `peer_check`).
    pub fn peer_check(&self) -> Option<u64> {
        self.round.lock().agreed
    }

    /// Rounds completed so far.
    pub fn completed_rounds(&self) -> u64 {
        self.round.lock().completed_rounds
    }

    /// Reports `checkpoint_id` for `rank`'s latest commit and blocks until
    /// every rank has reported this round; returns the agreed id.
    ///
    /// # Errors
    ///
    /// Returns [`PccheckError::CoordinationConflict`] if ranks report
    /// different ids in the same round (the orderings diverged — the paper
    /// notes all peers had identical orderings in their runs, and flags
    /// robustness here as future work; we surface the conflict instead of
    /// silently committing an inconsistent set).
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range or reports twice in one round.
    pub fn report_and_wait(&self, rank: usize, checkpoint_id: u64) -> Result<u64, PccheckError> {
        assert!(rank < self.ranks, "rank {rank} out of range");
        let mut round = self.round.lock();
        assert!(
            round.reported[rank].is_none(),
            "rank {rank} reported twice in one round"
        );
        // Detect divergence against ids already reported this round.
        if let Some(other) = round.reported.iter().flatten().next() {
            if *other != checkpoint_id {
                let msg = format!(
                    "rank {rank} reported id {checkpoint_id}, but this round already has id {other}"
                );
                round.conflict = Some(msg.clone());
                self.cond.notify_all();
                return Err(PccheckError::CoordinationConflict(msg));
            }
        }
        round.reported[rank] = Some(checkpoint_id);
        let my_round = round.completed_rounds;

        if round.reported.iter().all(Option::is_some) {
            // Rank-0-equivalent: everyone reported; complete the round.
            round.agreed = Some(checkpoint_id);
            round.completed_rounds += 1;
            round.reported.iter_mut().for_each(|r| *r = None);
            round.conflict = None;
            self.cond.notify_all();
            return Ok(checkpoint_id);
        }
        // Wait for the round to complete (or a conflict to surface).
        while round.completed_rounds == my_round {
            if let Some(msg) = &round.conflict {
                return Err(PccheckError::CoordinationConflict(msg.clone()));
            }
            self.cond.wait(&mut round);
        }
        Ok(round.agreed.expect("completed round has an agreed id"))
    }
}

/// Convenience: a shareable hub handle.
pub type SharedHub = Arc<CoordinatorHub>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_agrees_immediately() {
        let hub = CoordinatorHub::new(1);
        assert_eq!(hub.report_and_wait(0, 5).unwrap(), 5);
        assert_eq!(hub.peer_check(), Some(5));
        assert_eq!(hub.completed_rounds(), 1);
    }

    #[test]
    fn all_ranks_block_until_agreement() {
        let hub = Arc::new(CoordinatorHub::new(3));
        let handles: Vec<_> = (0..3usize)
            .map(|rank| {
                let hub = Arc::clone(&hub);
                std::thread::spawn(move || hub.report_and_wait(rank, 42).unwrap())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 42);
        }
        assert_eq!(hub.peer_check(), Some(42));
    }

    #[test]
    fn multiple_rounds_advance_peer_check() {
        let hub = Arc::new(CoordinatorHub::new(2));
        for id in [10u64, 20, 30] {
            let hub2 = Arc::clone(&hub);
            let h = std::thread::spawn(move || hub2.report_and_wait(1, id).unwrap());
            assert_eq!(hub.report_and_wait(0, id).unwrap(), id);
            h.join().unwrap();
            assert_eq!(hub.peer_check(), Some(id));
        }
        assert_eq!(hub.completed_rounds(), 3);
    }

    #[test]
    fn conflicting_ids_error_out() {
        let hub = Arc::new(CoordinatorHub::new(2));
        let hub2 = Arc::clone(&hub);
        let h = std::thread::spawn(move || hub2.report_and_wait(1, 7));
        // Let rank 1 report first.
        while hub.round.lock().reported[1].is_none() {
            std::thread::yield_now();
        }
        let err = hub.report_and_wait(0, 8).unwrap_err();
        assert!(matches!(err, PccheckError::CoordinationConflict(_)));
        let err1 = h.join().unwrap().unwrap_err();
        assert!(matches!(err1, PccheckError::CoordinationConflict(_)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rank_panics() {
        CoordinatorHub::new(2).report_and_wait(5, 1).ok();
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        CoordinatorHub::new(0);
    }
}

//! PCcheck configuration (the "Configuration Parameters" column of
//! Table 2).

use serde::{Deserialize, Serialize};

use pccheck_util::ByteSize;

use crate::error::PccheckError;

/// Tunable parameters of a PCcheck engine.
///
/// Defaults follow §3.4's empirical guidance: 2–4 concurrent checkpoints,
/// 2–4 writer threads, 100–500 MB DRAM chunks, pipelining on.
///
/// # Examples
///
/// ```
/// use pccheck::PcCheckConfig;
/// use pccheck_util::ByteSize;
///
/// let cfg = PcCheckConfig::builder()
///     .max_concurrent(2)
///     .writer_threads(3)
///     .chunk_size(ByteSize::from_mb_u64(100))
///     .dram_chunks(8)
///     .build()
///     .unwrap();
/// assert_eq!(cfg.max_concurrent, 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PcCheckConfig {
    /// Maximum number of concurrent checkpoints in flight (the paper's `N`).
    pub max_concurrent: usize,
    /// Parallel writer threads per checkpoint (the paper's `p`).
    pub writer_threads: usize,
    /// DRAM buffer (chunk) size (the paper's `b`).
    pub chunk_size: ByteSize,
    /// Number of DRAM chunks in the staging pool (the paper's `c = M/b`).
    pub dram_chunks: usize,
    /// Whether GPU→DRAM copying is pipelined with DRAM→storage persisting
    /// (Figure 7) or each checkpoint is fully staged before persisting
    /// (Figure 6).
    pub pipelined: bool,
    /// SSD optimization from §4.1: writers only write; the coordinating
    /// thread issues one `msync` covering the whole checkpoint. Must be
    /// `false` on PMEM, where fences are per-thread.
    pub single_sync: bool,
    /// Capacity (in 64-byte records) of the persistent flight-recorder
    /// ring reserved on the checkpoint device after the slots. `0`
    /// (the default) disables the flight recorder entirely and reserves
    /// no space, so existing capacity-sized stores are unaffected.
    #[serde(default)]
    pub flight_records: u32,
    /// Whether checkpoints go through the chunk codec (content-defined
    /// compression + dedup framing). Off by default: legacy stores and
    /// callers see byte-for-byte the pre-codec persist path.
    #[serde(default)]
    pub codec: bool,
    /// Steer the persist path with a [`PersistController`] every this
    /// many checkpoint requests (`0`, the default, disables adaptation).
    /// Requires telemetry to be attached; with telemetry disabled the
    /// controller never sees a snapshot and the knobs stay put.
    ///
    /// [`PersistController`]: crate::tuner::PersistController
    #[serde(default)]
    pub adaptive_interval: u64,
}

impl PcCheckConfig {
    /// Starts building a configuration from the defaults.
    pub fn builder() -> PcCheckConfigBuilder {
        PcCheckConfigBuilder::default()
    }

    /// Total DRAM the staging pool occupies (the paper's `M`).
    pub fn dram_bytes(&self) -> ByteSize {
        self.chunk_size * self.dram_chunks as u64
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`PccheckError::InvalidConfig`] when any parameter is zero.
    pub fn validate(&self) -> Result<(), PccheckError> {
        if self.max_concurrent == 0 {
            return Err(PccheckError::InvalidConfig(
                "max_concurrent (N) must be >= 1".into(),
            ));
        }
        if self.writer_threads == 0 {
            return Err(PccheckError::InvalidConfig(
                "writer_threads (p) must be >= 1".into(),
            ));
        }
        if self.chunk_size.is_zero() {
            return Err(PccheckError::InvalidConfig(
                "chunk_size (b) must be nonzero".into(),
            ));
        }
        if self.dram_chunks == 0 {
            return Err(PccheckError::InvalidConfig(
                "dram_chunks (c) must be >= 1".into(),
            ));
        }
        Ok(())
    }
}

impl Default for PcCheckConfig {
    fn default() -> Self {
        PcCheckConfig {
            max_concurrent: 2,
            writer_threads: 3,
            chunk_size: ByteSize::from_mb_u64(100),
            dram_chunks: 8,
            pipelined: true,
            single_sync: false,
            flight_records: 0,
            codec: false,
            adaptive_interval: 0,
        }
    }
}

/// Builder for [`PcCheckConfig`].
#[derive(Debug, Clone, Default)]
pub struct PcCheckConfigBuilder {
    config: PcCheckConfig,
}

impl PcCheckConfigBuilder {
    /// Sets the maximum number of concurrent checkpoints (`N`).
    pub fn max_concurrent(mut self, n: usize) -> Self {
        self.config.max_concurrent = n;
        self
    }

    /// Sets the number of writer threads per checkpoint (`p`).
    pub fn writer_threads(mut self, p: usize) -> Self {
        self.config.writer_threads = p;
        self
    }

    /// Sets the DRAM chunk size (`b`).
    pub fn chunk_size(mut self, b: ByteSize) -> Self {
        self.config.chunk_size = b;
        self
    }

    /// Sets the number of DRAM chunks (`c`).
    pub fn dram_chunks(mut self, c: usize) -> Self {
        self.config.dram_chunks = c;
        self
    }

    /// Enables or disables copy/persist pipelining.
    pub fn pipelined(mut self, on: bool) -> Self {
        self.config.pipelined = on;
        self
    }

    /// Enables the single-`msync` SSD optimization.
    pub fn single_sync(mut self, on: bool) -> Self {
        self.config.single_sync = on;
        self
    }

    /// Sets the persistent flight-recorder ring capacity in records
    /// (`0` disables the flight recorder).
    pub fn flight_records(mut self, records: u32) -> Self {
        self.config.flight_records = records;
        self
    }

    /// Enables the chunk codec (compression + dedup framing).
    pub fn codec(mut self, on: bool) -> Self {
        self.config.codec = on;
        self
    }

    /// Steers the persist path adaptively every `requests` checkpoints
    /// (`0` disables the controller).
    pub fn adaptive_interval(mut self, requests: u64) -> Self {
        self.config.adaptive_interval = requests;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PccheckError::InvalidConfig`] when any parameter is zero.
    pub fn build(self) -> Result<PcCheckConfig, PccheckError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_matches_paper_guidance() {
        let cfg = PcCheckConfig::default();
        cfg.validate().unwrap();
        assert!((2..=4).contains(&cfg.max_concurrent));
        assert!((2..=4).contains(&cfg.writer_threads));
        let mb = cfg.chunk_size.as_mb();
        assert!((100.0..=500.0).contains(&mb));
        assert!(cfg.pipelined);
    }

    #[test]
    fn builder_sets_all_fields() {
        let cfg = PcCheckConfig::builder()
            .max_concurrent(4)
            .writer_threads(2)
            .chunk_size(ByteSize::from_mb_u64(250))
            .dram_chunks(4)
            .pipelined(false)
            .single_sync(true)
            .flight_records(256)
            .codec(true)
            .adaptive_interval(16)
            .build()
            .unwrap();
        assert_eq!(cfg.max_concurrent, 4);
        assert_eq!(cfg.writer_threads, 2);
        assert_eq!(cfg.chunk_size, ByteSize::from_mb_u64(250));
        assert_eq!(cfg.dram_chunks, 4);
        assert!(!cfg.pipelined);
        assert!(cfg.single_sync);
        assert_eq!(cfg.flight_records, 256);
        assert!(cfg.codec);
        assert_eq!(cfg.adaptive_interval, 16);
        assert_eq!(cfg.dram_bytes(), ByteSize::from_mb_u64(1000));
    }

    #[test]
    fn zero_parameters_rejected() {
        assert!(PcCheckConfig::builder().max_concurrent(0).build().is_err());
        assert!(PcCheckConfig::builder().writer_threads(0).build().is_err());
        assert!(PcCheckConfig::builder()
            .chunk_size(ByteSize::ZERO)
            .build()
            .is_err());
        assert!(PcCheckConfig::builder().dram_chunks(0).build().is_err());
    }
}

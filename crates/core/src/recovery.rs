//! Recovery: loading the latest committed checkpoint after a failure, and
//! the analytical recovery-time models of §4.2.
//!
//! The recovery path itself is instrumented ([`recover_instrumented`]):
//! the store-open/slot-scan, payload-load, and digest-verify steps each
//! land as [`Phase`] spans on the telemetry timeline and as a
//! [`RecoveryTrace`] of wall-clock nanoseconds, so recovery time is a
//! measured first-class figure rather than only a model.

use std::sync::Arc;

use pccheck_device::PersistentDevice;
use pccheck_gpu::Gpu;
use pccheck_telemetry::Telemetry;
use pccheck_util::SimDuration;

use crate::error::PccheckError;
use crate::meta::checksum;
use crate::restore::RestoreOptions;

/// A checkpoint loaded back from persistent storage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredCheckpoint {
    /// The iteration the checkpoint captured.
    pub iteration: u64,
    /// The checkpoint's global counter.
    pub counter: u64,
    /// The raw payload (serialized training state).
    pub payload: Vec<u8>,
    /// The digest recorded at commit time.
    pub digest: u64,
}

impl RecoveredCheckpoint {
    /// Restores a GPU's training state from this checkpoint.
    ///
    /// # Panics
    ///
    /// Panics if the payload size does not match the GPU's state layout.
    pub fn restore_into(&self, gpu: &Gpu) {
        gpu.restore(&self.payload, self.iteration);
    }
}

/// Wall-clock timing of one recovery, broken down by recovery phase.
///
/// Produced by [`recover_instrumented`]; the same durations are recorded
/// as [`Phase::RecoveryScan`] / [`Phase::RecoveryLoad`] /
/// [`Phase::RecoveryVerify`] spans when telemetry is enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryTrace {
    /// Store open + `CHECK_ADDR`/slot-meta scan time, nanoseconds.
    pub scan_nanos: u64,
    /// Payload read time across all candidates tried, nanoseconds.
    pub load_nanos: u64,
    /// Digest verification time across all candidates tried, nanoseconds.
    pub verify_nanos: u64,
    /// Total recovery time, nanoseconds.
    pub total_nanos: u64,
    /// Committed candidates considered (newest first).
    pub candidates_scanned: u64,
    /// Candidates rejected before one verified (0 = the newest committed
    /// checkpoint verified on the first try).
    pub fallbacks: u64,
    /// Delta links replayed to reconstruct the recovered state (0 when the
    /// recovered checkpoint was a full one).
    pub chain_links: u64,
    /// The recovered checkpoint's global counter.
    pub counter: u64,
    /// The recovered checkpoint's iteration.
    pub iteration: u64,
}

/// Loads and verifies the latest committed checkpoint from `device`.
///
/// The persistent iterator of §4.2, rebuilt on the parallel
/// [`RestorePipeline`](crate::restore::RestorePipeline): candidates are
/// verified newest-first, payload reads fan out across
/// [`RestoreOptions::default`]'s readers, and verification overlaps the
/// reads (per-chunk when the slot carries a digest table, as an
/// order-preserving fold otherwise). A delta checkpoint is reconstructed
/// by fetching its chain layers in parallel and replaying every extent
/// table with per-extent digest verification; verified layers are cached
/// across candidates within the pass. If the newest committed slot fails
/// verification — digest mismatch, broken chain, *or a device read
/// fault* — older intact committed slots are tried newest-first: the
/// paper keeps `N+1` slots precisely so a torn newest checkpoint degrades
/// to the previous one instead of to data loss.
///
/// # Errors
///
/// * [`PccheckError::NoCheckpoint`] if the device holds no committed
///   checkpoint.
/// * [`PccheckError::CorruptCheckpoint`] if **no** slot verifies.
/// * [`PccheckError::InvalidConfig`] if the device holds no PCcheck store.
pub fn recover(device: Arc<dyn PersistentDevice>) -> Result<RecoveredCheckpoint, PccheckError> {
    recover_instrumented(device, &Telemetry::disabled()).map(|(r, _)| r)
}

/// [`recover`] scoped to one tenant of a multi-tenant (service-mode)
/// store: only `job`'s namespace slots are candidates, so a torn newest
/// checkpoint falls back within the job's own history and never onto
/// another tenant's state.
///
/// # Errors
///
/// Same as [`recover`], plus [`PccheckError::InvalidConfig`] when the
/// device does not hold a multi-tenant store.
/// [`PccheckError::NoCheckpoint`] means *this job* has no committed
/// checkpoint, even if other namespaces do.
pub fn recover_job(
    device: Arc<dyn PersistentDevice>,
    job: crate::store::JobId,
) -> Result<RecoveredCheckpoint, PccheckError> {
    let options = RestoreOptions {
        job: Some(job),
        ..RestoreOptions::default()
    };
    crate::restore::recover_instrumented_with(device, &Telemetry::disabled(), options)
        .map(|(r, _)| r)
}

/// [`recover`] with recovery-path instrumentation: phase spans on
/// `telemetry` (scan / load / verify plus the restore pipeline's
/// read/verify/upload stages), a [`RecoveryTrace`] of measured
/// nanoseconds, and `RecoveryStart`/`RecoveryDone` records on the store's
/// persistent flight ring when one is present.
///
/// Reader parallelism comes from [`RestoreOptions::default`]; use
/// [`crate::restore::recover_instrumented_with`] to choose it explicitly.
///
/// # Errors
///
/// Same as [`recover`].
pub fn recover_instrumented(
    device: Arc<dyn PersistentDevice>,
    telemetry: &Telemetry,
) -> Result<(RecoveredCheckpoint, RecoveryTrace), PccheckError> {
    crate::restore::recover_instrumented_with(device, telemetry, RestoreOptions::default())
}

/// Verifies a recovered payload against a digest computed by
/// [`pccheck_gpu::TrainingState::digest`] over the reconstructed state.
///
/// # Errors
///
/// Returns [`PccheckError::CorruptCheckpoint`] on mismatch.
pub fn verify_against_state(
    recovered: &RecoveredCheckpoint,
    layout: &pccheck_gpu::tensor::StateLayout,
) -> Result<(), PccheckError> {
    let restored =
        pccheck_gpu::TrainingState::restore(layout, &recovered.payload, recovered.iteration);
    if restored.digest().0 != recovered.digest {
        return Err(PccheckError::CorruptCheckpoint {
            counter: recovered.counter,
        });
    }
    Ok(())
}

/// Verifies a raw payload (not a training state) against an FNV digest.
///
/// # Errors
///
/// Returns [`PccheckError::CorruptCheckpoint`] on mismatch.
pub fn verify_raw(recovered: &RecoveredCheckpoint) -> Result<(), PccheckError> {
    if checksum(&recovered.payload) != recovered.digest {
        return Err(PccheckError::CorruptCheckpoint {
            counter: recovered.counter,
        });
    }
    Ok(())
}

/// The checkpointing strategies whose recovery behavior §4.2 models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// PCcheck with `N` concurrent checkpoints.
    PcCheck {
        /// Number of concurrent checkpoints.
        n: usize,
    },
    /// CheckFreq: one asynchronous checkpoint at a time.
    CheckFreq,
    /// Gemini: one asynchronous (remote-DRAM) checkpoint at a time.
    Gemini,
    /// GPM: training stalls while each checkpoint persists.
    Gpm,
}

/// Analytical recovery-time model (§4.2, equation (4) and the baselines'
/// bounds).
///
/// Inputs: iteration time `t`, checkpoint interval `f`, checkpoint write
/// time `Tw`, and checkpoint load time `l`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryModel {
    /// Per-iteration training time `t`.
    pub iter_time: SimDuration,
    /// Checkpoint interval in iterations `f`.
    pub interval: u64,
    /// Time to write one checkpoint end-to-end, `Tw`.
    pub write_time: SimDuration,
    /// Time to load a checkpoint back to the GPU, `l`.
    pub load_time: SimDuration,
}

impl RecoveryModel {
    /// Worst-case recovery time for `strategy`.
    ///
    /// * PCcheck: `l + f·t + t·min(N·f, Tw/t)` (eq. 4),
    /// * CheckFreq / Gemini: `l + 2·f·t`,
    /// * GPM: `l + f·t`.
    pub fn worst_case(&self, strategy: Strategy) -> SimDuration {
        let ft = self.iter_time * self.interval;
        match strategy {
            Strategy::PcCheck { n } => {
                let nf_iters = (n as u64) * self.interval;
                let tw_iters = self.write_time.as_secs_f64() / self.iter_time.as_secs_f64();
                let lost_iters = (nf_iters as f64).min(tw_iters);
                self.load_time + ft + self.iter_time.mul_f64(lost_iters)
            }
            Strategy::CheckFreq | Strategy::Gemini => self.load_time + ft * 2,
            Strategy::Gpm => self.load_time + ft,
        }
    }

    /// Expected (average) recovery time: uniform failure arrival within the
    /// worst-case window means half the lost work on average, plus the full
    /// load time.
    pub fn average(&self, strategy: Strategy) -> SimDuration {
        let worst = self.worst_case(strategy);
        let lost = worst - self.load_time;
        self.load_time + lost / 2
    }

    /// Upper bound on iterations to re-execute after a failure.
    pub fn lost_iterations(&self, strategy: Strategy) -> f64 {
        let worst = self.worst_case(strategy);
        (worst - self.load_time).as_secs_f64() / self.iter_time.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pccheck_device::{DeviceConfig, SsdDevice};
    use pccheck_gpu::{GpuConfig, TrainingState};
    use pccheck_telemetry::Phase;
    use pccheck_util::ByteSize;

    use crate::config::PcCheckConfig;
    use crate::engine::PcCheckEngine;
    use crate::store::CheckpointStore;
    use pccheck_gpu::Checkpointer;

    #[test]
    fn end_to_end_checkpoint_recover_resume() {
        let state = TrainingState::synthetic(ByteSize::from_bytes(300), 11);
        let gpu = Gpu::new(GpuConfig::fast_for_tests(), state);
        let cap = CheckpointStore::required_capacity(gpu.state_size(), 3) + ByteSize::from_kb(1);
        let ssd = Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        let device: Arc<dyn PersistentDevice> = ssd.clone();
        let engine = PcCheckEngine::new(
            PcCheckConfig::builder()
                .max_concurrent(2)
                .writer_threads(2)
                .chunk_size(ByteSize::from_bytes(64))
                .dram_chunks(6)
                .build()
                .unwrap(),
            device,
            gpu.state_size(),
        )
        .unwrap();

        for iter in 1..=5 {
            gpu.update();
            engine.checkpoint(&gpu, iter);
        }
        engine.drain();
        let digest_at_5 = gpu.digest();

        // Failure: GPU state lost, device crashes and is re-attached.
        ssd.crash_now();
        ssd.recover();
        let recovered = recover(ssd).unwrap();
        assert_eq!(recovered.iteration, 5);
        let layout = gpu.with_weights(|s| s.layout());
        verify_against_state(&recovered, &layout).unwrap();

        // Resume on a fresh GPU.
        let fresh = Gpu::new(
            GpuConfig::fast_for_tests(),
            TrainingState::synthetic(ByteSize::from_bytes(300), 999),
        );
        recovered.restore_into(&fresh);
        assert_eq!(fresh.digest(), digest_at_5);
        assert_eq!(fresh.step_count(), 5);
    }

    #[test]
    fn recover_without_any_commit_errors() {
        let cap = CheckpointStore::required_capacity(ByteSize::from_bytes(64), 2);
        let dev: Arc<dyn PersistentDevice> =
            Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        CheckpointStore::format(Arc::clone(&dev), ByteSize::from_bytes(64), 2).unwrap();
        assert_eq!(recover(dev), Err(PccheckError::NoCheckpoint));
    }

    /// Commits `n` checkpoints of distinct raw payloads (digest = raw
    /// checksum) and returns the store.
    fn committed_store(dev: Arc<dyn PersistentDevice>, n: u64) -> CheckpointStore {
        let st = CheckpointStore::format(dev, ByteSize::from_bytes(64), 3).unwrap();
        for i in 1..=n {
            let payload = format!("payload-{i}");
            let lease = st.begin_checkpoint();
            st.write_payload(&lease, 0, payload.as_bytes()).unwrap();
            st.persist_payload(&lease, 0, payload.len() as u64).unwrap();
            st.commit(lease, i, payload.len() as u64, checksum(payload.as_bytes()))
                .unwrap();
        }
        st
    }

    #[test]
    fn corrupt_newest_slot_falls_back_to_older_committed_slot() {
        let cap =
            CheckpointStore::required_capacity(ByteSize::from_bytes(64), 3) + ByteSize::from_kb(1);
        let dev: Arc<dyn PersistentDevice> =
            Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        let st = committed_store(Arc::clone(&dev), 2);
        // Corrupt the newest checkpoint's *payload* (its meta record stays
        // valid), as a misdirected write or media error would.
        let newest = st.latest_committed().unwrap();
        assert_eq!(newest.iteration, 2);
        let off = st.slot_payload_offset(newest.slot);
        dev.write_at(off, b"XX").unwrap();
        dev.persist(off, 2).unwrap();
        drop(st);
        dev.crash_now();
        dev.recover();

        let telemetry = Telemetry::enabled();
        let (rec, trace) = recover_instrumented(Arc::clone(&dev), &telemetry).unwrap();
        assert_eq!(rec.iteration, 1, "fell back to the intact older slot");
        assert_eq!(rec.payload, b"payload-1");
        assert_eq!(trace.fallbacks, 1);
        assert_eq!(trace.candidates_scanned, 2);
        assert_eq!(trace.counter, rec.counter);
        assert!(trace.total_nanos >= trace.load_nanos + trace.verify_nanos);
        // The recovery phases landed on the telemetry timeline.
        let snap = telemetry.snapshot().unwrap();
        assert!(snap.phase(Phase::RecoveryScan).count >= 1);
        assert!(snap.phase(Phase::RecoveryLoad).count >= 2);
        assert!(snap.phase(Phase::RecoveryVerify).count >= 2);
    }

    #[test]
    fn job_scoped_recovery_never_crosses_namespaces() {
        // Two tenants in one service store. Job 1 commits iters 1..=2,
        // job 2 commits iter 7 (globally newest). Then job 1's newest
        // payload is torn.
        let slot = ByteSize::from_bytes(64);
        let cap = CheckpointStore::required_capacity_service(slot, 6, 0, 4) + ByteSize::from_kb(1);
        let dev: Arc<dyn PersistentDevice> =
            Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        let st = CheckpointStore::format_service(Arc::clone(&dev), slot, 6, 0, 4).unwrap();
        st.allocate_namespace(1, 3).unwrap();
        st.allocate_namespace(2, 3).unwrap();
        let commit = |job: u64, iter: u64| {
            let payload = format!("job{job}-iter{iter}");
            let lease = st.begin_checkpoint_job(job).unwrap();
            st.write_payload(&lease, 0, payload.as_bytes()).unwrap();
            st.persist_payload(&lease, 0, payload.len() as u64).unwrap();
            st.commit(
                lease,
                iter,
                payload.len() as u64,
                checksum(payload.as_bytes()),
            )
            .unwrap();
        };
        commit(1, 1);
        commit(1, 2);
        commit(2, 7);
        let newest_job1 = st.latest_committed_job(1).unwrap().unwrap();
        let off = st.slot_payload_offset(newest_job1.slot);
        dev.write_at(off, b"XX").unwrap();
        dev.persist(off, 2).unwrap();
        drop(st);

        // Job 1 falls back to its own iter 1 — not to job 2's newer
        // checkpoint, which is a different tenant's state.
        let rec = recover_job(Arc::clone(&dev), 1).unwrap();
        assert_eq!(rec.iteration, 1);
        assert_eq!(rec.payload, b"job1-iter1");
        // Job 2 recovers its own head untouched by job 1's corruption.
        let rec = recover_job(Arc::clone(&dev), 2).unwrap();
        assert_eq!(rec.iteration, 7);
        assert_eq!(rec.payload, b"job2-iter7");
        // A job with no namespace has no checkpoint.
        assert_eq!(
            recover_job(Arc::clone(&dev), 99),
            Err(PccheckError::NoCheckpoint)
        );
        // Unscoped recovery still picks the globally newest commit.
        assert_eq!(recover(dev).unwrap().iteration, 7);
    }

    #[test]
    fn job_scoped_recovery_rejects_single_tenant_stores() {
        let cap =
            CheckpointStore::required_capacity(ByteSize::from_bytes(64), 3) + ByteSize::from_kb(1);
        let dev: Arc<dyn PersistentDevice> =
            Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        committed_store(Arc::clone(&dev), 1);
        assert!(matches!(
            recover_job(dev, 1),
            Err(PccheckError::InvalidConfig(_))
        ));
    }

    #[test]
    fn all_slots_corrupt_errors_with_newest_counter() {
        let cap =
            CheckpointStore::required_capacity(ByteSize::from_bytes(64), 3) + ByteSize::from_kb(1);
        let dev: Arc<dyn PersistentDevice> =
            Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        let st = committed_store(Arc::clone(&dev), 2);
        for meta in st.history().unwrap() {
            let off = st.slot_payload_offset(meta.slot);
            dev.write_at(off, b"XX").unwrap();
            dev.persist(off, 2).unwrap();
        }
        drop(st);
        assert!(matches!(
            recover(dev),
            Err(PccheckError::CorruptCheckpoint { counter: 2 })
        ));
    }

    #[test]
    fn instrumented_recovery_reports_zero_fallbacks_on_clean_store() {
        let cap =
            CheckpointStore::required_capacity(ByteSize::from_bytes(64), 3) + ByteSize::from_kb(1);
        let dev: Arc<dyn PersistentDevice> =
            Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        committed_store(Arc::clone(&dev), 3);
        let (rec, trace) = recover_instrumented(dev, &Telemetry::disabled()).unwrap();
        assert_eq!(rec.iteration, 3);
        assert_eq!(trace.fallbacks, 0);
        assert_eq!(trace.candidates_scanned, 1);
        assert_eq!(trace.iteration, 3);
    }

    /// Drives `iters` checkpoints through the delta pipeline (first full,
    /// the rest 10%-sparse deltas) and returns the device, the store, and
    /// the GPU at its final state.
    fn delta_chain_setup(iters: u64) -> (Arc<SsdDevice>, Arc<CheckpointStore>, Gpu) {
        use crate::pipeline::{DeltaPolicy, PersistPipeline, PipelineCtx};
        use pccheck_device::HostBufferPool;

        let state = TrainingState::synthetic(ByteSize::from_bytes(2048), 7);
        let gpu = Gpu::new(GpuConfig::fast_for_tests(), state);
        gpu.update();
        let cap = CheckpointStore::required_capacity(gpu.state_size(), 4) + ByteSize::from_kb(1);
        let ssd = Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        let store = Arc::new(
            CheckpointStore::format(
                Arc::clone(&ssd) as Arc<dyn PersistentDevice>,
                gpu.state_size(),
                4,
            )
            .unwrap(),
        );
        let pipeline = PersistPipeline::new(Arc::clone(&store))
            .with_writers(2)
            .with_staging(HostBufferPool::new(ByteSize::from_bytes(256), 4));
        let telemetry = Telemetry::disabled();
        let ctx = PipelineCtx {
            telemetry: &telemetry,
            span: pccheck_telemetry::SpanId::NONE,
        };
        for iter in 1..=iters {
            if iter > 1 {
                gpu.update_sparse(0.1);
            }
            let guard = gpu.lock_weights_shared_owned();
            let digest = guard.digest();
            pipeline
                .checkpoint_delta(ctx, &guard, iter, digest.0, DeltaPolicy::default())
                .unwrap();
        }
        (ssd, store, gpu)
    }

    #[test]
    fn recovery_replays_a_delta_chain() {
        let (ssd, store, gpu) = delta_chain_setup(3);
        let head = store.latest_committed().unwrap();
        assert_eq!(head.delta.unwrap().chain_depth, 2);
        let digest_final = gpu.digest();
        drop(store);
        ssd.crash_now();
        ssd.recover();

        let telemetry = Telemetry::enabled();
        let (rec, trace) =
            recover_instrumented(Arc::clone(&ssd) as Arc<dyn PersistentDevice>, &telemetry)
                .unwrap();
        assert_eq!(rec.iteration, 3);
        assert_eq!(trace.chain_links, 2);
        assert_eq!(trace.fallbacks, 0);
        let fresh = Gpu::new(
            GpuConfig::fast_for_tests(),
            TrainingState::synthetic(ByteSize::from_bytes(2048), 999),
        );
        rec.restore_into(&fresh);
        assert_eq!(fresh.digest(), digest_final, "bit-identical reconstruction");
        assert_eq!(fresh.step_count(), 3);
        let snap = telemetry.snapshot().unwrap();
        assert_eq!(snap.phase(Phase::DeltaReplay).count, 1);
    }

    #[test]
    fn torn_delta_payload_falls_back_to_its_base() {
        let (ssd, store, _gpu) = delta_chain_setup(2);
        let head = store.latest_committed().unwrap();
        assert!(head.is_delta());
        // Corrupt the last packed extent byte of the delta payload; the
        // extent table itself stays intact.
        let off = store.slot_payload_offset(head.slot) + head.payload_len - 1;
        let mut b = [0u8; 1];
        ssd.read_durable_at(off, &mut b).unwrap();
        b[0] ^= 0xFF;
        ssd.write_at(off, &b).unwrap();
        ssd.persist(off, 1).unwrap();
        drop(store);
        ssd.crash_now();
        ssd.recover();

        let (rec, trace) = recover_instrumented(
            Arc::clone(&ssd) as Arc<dyn PersistentDevice>,
            &Telemetry::disabled(),
        )
        .unwrap();
        assert_eq!(rec.iteration, 1, "fell back to the full base checkpoint");
        assert_eq!(trace.fallbacks, 1);
        assert_eq!(trace.chain_links, 0);
    }

    #[test]
    fn verify_raw_detects_corruption() {
        let good = RecoveredCheckpoint {
            iteration: 1,
            counter: 1,
            payload: b"abc".to_vec(),
            digest: checksum(b"abc"),
        };
        verify_raw(&good).unwrap();
        let bad = RecoveredCheckpoint {
            digest: checksum(b"abd"),
            ..good
        };
        assert_eq!(
            verify_raw(&bad),
            Err(PccheckError::CorruptCheckpoint { counter: 1 })
        );
    }

    fn model() -> RecoveryModel {
        RecoveryModel {
            iter_time: SimDuration::from_secs(2), // OPT-1.3B
            interval: 10,
            write_time: SimDuration::from_secs(37), // 16.2 GB on pd-ssd
            load_time: SimDuration::from_secs(10),
        }
    }

    #[test]
    fn recovery_bounds_match_section_4_2() {
        let m = model();
        // GPM: l + f·t = 10 + 20 = 30.
        assert_eq!(m.worst_case(Strategy::Gpm), SimDuration::from_secs(30));
        // CheckFreq/Gemini: l + 2·f·t = 10 + 40 = 50.
        assert_eq!(
            m.worst_case(Strategy::CheckFreq),
            SimDuration::from_secs(50)
        );
        assert_eq!(m.worst_case(Strategy::Gemini), SimDuration::from_secs(50));
        // PCcheck N=2: min(N·f, Tw/t) = min(20, 18.5) = 18.5 iterations.
        let pc = m.worst_case(Strategy::PcCheck { n: 2 });
        assert!((pc.as_secs_f64() - (10.0 + 20.0 + 37.0)).abs() < 1e-6);
    }

    #[test]
    fn pccheck_lost_work_is_bounded_by_tw_when_small() {
        // When Tw < N·f·t, lost iterations are bounded by Tw/t, not N·f.
        let m = RecoveryModel {
            iter_time: SimDuration::from_secs(1),
            interval: 100,
            write_time: SimDuration::from_secs(5),
            load_time: SimDuration::ZERO,
        };
        let lost = m.lost_iterations(Strategy::PcCheck { n: 4 });
        assert!((lost - 105.0).abs() < 1e-9, "f + Tw/t = 100 + 5");
    }

    #[test]
    fn average_is_half_of_lost_work_plus_load() {
        let m = model();
        let avg = m.average(Strategy::CheckFreq);
        // (50 - 10)/2 + 10 = 30.
        assert_eq!(avg, SimDuration::from_secs(30));
    }

    #[test]
    fn more_frequent_checkpoints_recover_faster() {
        let mut m = model();
        let slow = m.worst_case(Strategy::PcCheck { n: 2 });
        m.interval = 2;
        let fast = m.worst_case(Strategy::PcCheck { n: 2 });
        assert!(fast < slow);
    }
}

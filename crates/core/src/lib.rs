//! # PCcheck: persistent concurrent checkpointing for ML training
//!
//! A from-scratch Rust reproduction of *PCcheck: Persistent Concurrent
//! Checkpointing for ML* (Strati, Friedman, Klimovic — ASPLOS 2025).
//!
//! Prior DNN checkpointing systems (CheckFreq, GPM, Gemini) allow one
//! checkpoint in flight at a time: a new checkpoint stalls training until
//! the previous one is durable. PCcheck instead orchestrates up to `N`
//! *concurrent* checkpoints, pipelines GPU→DRAM snapshotting with
//! DRAM→storage persisting, and parallelizes each checkpoint across `p`
//! writer threads — making per-10-iteration checkpointing feasible at ~3%
//! overhead.
//!
//! ## Crate layout
//!
//! * [`queue`] — the bounded lock-free MPMC free-slot queue of Listing 1.
//! * [`meta`] — checkpoint metadata records and the packed `CHECK_ADDR`.
//! * [`store`] — the persistent slot layout and the CAS commit protocol.
//! * [`pipeline`] — [`PersistPipeline`]: the shared chunk-scheduled
//!   chunk → write → fence → commit I/O layer every storage-backed
//!   strategy schedules over.
//! * [`engine`] — [`PcCheckEngine`]: the orchestrator + persistent manager
//!   implementing [`pccheck_gpu::Checkpointer`].
//! * [`recovery`] — post-crash recovery and the §4.2 recovery-time models.
//! * [`restore`] — [`RestorePipeline`]: the multi-reader restore path that
//!   mirrors the persist pipeline, overlapping chunk reads with
//!   verification and streaming verified bytes back to the GPU.
//! * [`tuner`] — the §3.4 configuration tool (equations (1)–(3)).
//! * [`footprint`] — Table 1's memory/storage footprint formulas.
//! * [`distributed`] — multi-node checkpoint-ID agreement (§3.1/§4.1).
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use pccheck::{PcCheckConfig, PcCheckEngine};
//! use pccheck_device::{DeviceConfig, PersistentDevice, SsdDevice};
//! use pccheck_gpu::{Checkpointer, Gpu, GpuConfig, TrainingState};
//! use pccheck_util::ByteSize;
//!
//! # fn main() -> Result<(), pccheck::PccheckError> {
//! let state = TrainingState::synthetic(ByteSize::from_kb(64), 1);
//! let gpu = Gpu::new(GpuConfig::fast_for_tests(), state);
//!
//! let device: Arc<dyn PersistentDevice> = Arc::new(SsdDevice::new(
//!     DeviceConfig::fast_for_tests(ByteSize::from_mb_u64(1)),
//! ));
//! let config = PcCheckConfig::builder()
//!     .max_concurrent(2)
//!     .writer_threads(2)
//!     .chunk_size(ByteSize::from_kb(16))
//!     .dram_chunks(8)
//!     .build()?;
//! let engine = PcCheckEngine::new(config, device, gpu.state_size())?;
//!
//! // Train a few iterations, checkpointing after each update:
//! for iter in 1..=3 {
//!     gpu.update();
//!     engine.checkpoint(&gpu, iter);
//! }
//! engine.drain();
//! assert_eq!(engine.last_committed().unwrap().iteration, 3);
//! # Ok(())
//! # }
//! ```

pub mod codec;
pub mod config;
pub mod distributed;
pub mod engine;
pub mod error;
pub mod footprint;
pub mod meta;
pub mod pipeline;
pub mod qos;
pub mod queue;
pub mod recovery;
pub mod restore;
pub mod store;
pub mod tuner;

pub use codec::{
    compress_gated, lz_decompress, ChunkEncoding, DedupIndex, FrameRecord, FrameTable, FRAME_MAGIC,
};
pub use config::{PcCheckConfig, PcCheckConfigBuilder};
pub use engine::{EngineStats, PcCheckEngine};
pub use error::PccheckError;
pub use meta::NamespaceDesc;
pub use meta::{CheckMeta, DeltaLink, SlotState, SLOT_STATE_SIZE};
pub use pipeline::{
    DeltaOutcome, DeltaPlan, DeltaPolicy, FenceMode, FramedOutcome, FramedPlan, PersistPipeline,
    PipelineCtx, KERNEL_COPY_CHUNK,
};
pub use qos::{QosArbiter, QosConfig, QosGrant};
pub use recovery::{
    recover, recover_instrumented, recover_job, RecoveredCheckpoint, RecoveryModel, RecoveryTrace,
    Strategy,
};
pub use restore::{
    recover_instrumented_with, recover_into_gpu, LayerCache, RestoreOptions, RestorePipeline,
    RestoreSink,
};
pub use store::{CheckpointStore, CommitOutcome, JobId, RawStoreView, SlotOutcome};
pub use tuner::{
    AdaptiveTuner, ControllerAction, ControllerConfig, ControllerDecision, ControllerSignals,
    PersistController, TierHint, Tuner, TunerInputs, TunerRecommendation,
};

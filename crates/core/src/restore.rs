//! The parallel restore pipeline: the read-side mirror of the persist
//! pipeline.
//!
//! §4.2 of the paper treats recovery as a mostly-serial tail cost: read the
//! newest committed payload, verify its digest, load it back to the GPU.
//! On modern devices that serializes three resources that could overlap —
//! device read bandwidth (striped members especially), digest computation,
//! and the DRAM→GPU upload. [`RestorePipeline`] overlaps them:
//!
//! * `r` **reader threads** pull payload chunks concurrently, so an N-way
//!   striped store restores at close to N× a single reader's bandwidth.
//! * **Verification overlaps I/O.** When the slot carries a per-chunk
//!   [`ChunkDigestTable`] (written by the persist pipeline's copy paths),
//!   every chunk verifies independently right after its read completes.
//!   Legacy slots without a table fall back to a dedicated verifier thread
//!   that folds the whole-payload digest in payload order while later
//!   chunks are still in flight — chunk `i` verifies while chunk `i+1`
//!   reads.
//! * **Uploads stream.** Verified chunks can land directly in a
//!   [`RestoreSink`] (e.g. [`pccheck_gpu::RestoreTarget`]) instead of
//!   materializing the full payload in DRAM first.
//!
//! [`recover_instrumented_with`] rebuilds the crate's recovery flow on top
//! of this pipeline: candidates fall back newest-first on *any* failure
//! (digest mismatch **or** device read fault), delta chains fetch all
//! layers in parallel, and verified layers are cached across candidates
//! within one recovery pass so a torn newest delta does not force the
//! shared base to be re-read and re-verified.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::bounded;
use parking_lot::Mutex;

use pccheck_device::{
    chunk_digest, fnv1a, fnv1a_fold, ChunkDigestTable, ExtentTable, HostBuffer, HostBufferPool,
    PersistentDevice, FNV_SEED,
};
use pccheck_gpu::{Gpu, RestoreTarget};
use pccheck_telemetry::{FlightEventKind, Phase, Telemetry};
use pccheck_util::ByteSize;

use crate::codec::{lz_decompress, payload_digest_matches, ChunkEncoding, FrameTable, FRAME_MAGIC};
use crate::error::PccheckError;
use crate::meta::{checksum, CheckMeta};
use crate::pipeline::PipelineCtx;
use crate::recovery::{RecoveredCheckpoint, RecoveryTrace};
use crate::store::CheckpointStore;

/// Read granularity for slots without a per-chunk digest table.
const DEFAULT_READ_CHUNK: u64 = 256 * 1024;

/// Knobs for the parallel recovery flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestoreOptions {
    /// Parallel reader threads (`r`). 1 reproduces the sequential path.
    pub readers: usize,
    /// How many of the newest candidates have their digest tables probed
    /// concurrently before the first payload fetch starts.
    pub probe: usize,
    /// On a multi-tenant (service-mode) store, recover only this job's
    /// namespace: candidates outside its slot range are never considered,
    /// so one tenant's torn checkpoint can never fall back onto another
    /// tenant's state. `None` recovers the newest checkpoint store-wide.
    pub job: Option<crate::store::JobId>,
}

impl Default for RestoreOptions {
    fn default() -> Self {
        RestoreOptions {
            readers: 4,
            probe: 2,
            job: None,
        }
    }
}

/// Destination for verified restore chunks.
///
/// Offsets are payload-relative; each chunk is delivered exactly once, in
/// arbitrary order, possibly from several threads at once.
pub trait RestoreSink: Sync {
    /// Accepts one verified chunk.
    fn put(&self, offset: u64, data: &[u8]);
}

impl RestoreSink for RestoreTarget {
    fn put(&self, offset: u64, data: &[u8]) {
        self.write_chunk(offset, data);
    }
}

/// Verified layers shared across candidates within one recovery pass.
///
/// Keyed by `(counter, slot)` — the identity a delta link names. `None`
/// caches a *failed* layer (torn payload, bad digest): the device contents
/// cannot change mid-pass, so retrying is wasted I/O.
#[derive(Debug, Default)]
pub struct LayerCache {
    /// Verified full payloads (delta-chain roots) with the full-state
    /// digest they verified against (for legacy roots that is the meta
    /// digest; for framed roots, the frame's end-to-end digest).
    full: HashMap<(u64, u32), Option<(Arc<Vec<u8>>, u64)>>,
    /// Verified delta payloads: decoded extent table + raw slot payload
    /// with every per-extent digest already checked.
    delta: HashMap<(u64, u32), Option<Arc<(ExtentTable, Vec<u8>)>>>,
}

/// Per-fetch accounting the private fetch paths hand back to the recovery
/// flow (summed verification / sink compute time, in nanoseconds).
#[derive(Debug, Clone, Copy, Default)]
struct FetchReport {
    ok: bool,
    verify_nanos: u64,
    upload_nanos: u64,
}

/// The multi-reader, verification-overlapped read path over a
/// [`CheckpointStore`].
///
/// Cloning is cheap; clones share the store, the optional DRAM scratch
/// pool, and the probed digest-table cache.
#[derive(Debug, Clone)]
pub struct RestorePipeline {
    store: Arc<CheckpointStore>,
    readers: usize,
    chunk: ByteSize,
    pool: Option<HostBufferPool>,
    /// Digest tables probed ahead of the fetches, keyed `(counter, slot)`.
    /// A present `None` means "probed, no usable table" — don't re-read.
    tables: Arc<Mutex<HashMap<(u64, u32), Option<ChunkDigestTable>>>>,
    /// Memoized payload-head classification (framed or not), keyed
    /// `(counter, slot)` — chain walks re-ask per candidate and the device
    /// contents cannot change mid-pass.
    framed: Arc<Mutex<HashMap<(u64, u32), bool>>>,
}

impl RestorePipeline {
    /// A single-reader pipeline over `store` with the default read chunk.
    pub fn new(store: Arc<CheckpointStore>) -> Self {
        RestorePipeline {
            store,
            readers: 1,
            chunk: ByteSize::from_bytes(DEFAULT_READ_CHUNK),
            pool: None,
            tables: Arc::new(Mutex::new(HashMap::new())),
            framed: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// Sets the number of parallel reader threads (`r`).
    pub fn with_readers(mut self, readers: usize) -> Self {
        self.readers = readers.max(1);
        self
    }

    /// Sets the read granularity used for slots without a digest table.
    ///
    /// # Panics
    ///
    /// Panics on a zero chunk.
    pub fn with_read_chunk(mut self, chunk: ByteSize) -> Self {
        assert!(chunk.as_u64() > 0, "read chunk must be non-zero");
        self.chunk = chunk;
        self
    }

    /// Attaches a DRAM scratch pool bounding how many chunks may be in
    /// flight between the readers and the verifier/sink.
    pub fn with_staging(mut self, pool: HostBufferPool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<CheckpointStore> {
        &self.store
    }

    /// The configured reader count.
    pub fn readers(&self) -> usize {
        self.readers
    }

    /// Concurrently probes the digest tables of the newest `k` candidates
    /// into the pipeline's cache, so per-candidate fetches don't serialize
    /// on the table read.
    pub fn probe(&self, candidates: &[CheckMeta], k: usize) {
        let k = k.min(candidates.len());
        match k {
            0 => {}
            1 => {
                let meta = &candidates[0];
                let table = self.store.read_digest_table(meta);
                self.tables.lock().insert((meta.counter, meta.slot), table);
            }
            _ => {
                std::thread::scope(|s| {
                    for meta in &candidates[..k] {
                        s.spawn(move || {
                            let table = self.store.read_digest_table(meta);
                            self.tables.lock().insert((meta.counter, meta.slot), table);
                        });
                    }
                });
            }
        }
    }

    /// The candidate's digest table: probed cache first, device second.
    fn table_for(&self, meta: &CheckMeta) -> Option<ChunkDigestTable> {
        if let Some(entry) = self.tables.lock().get(&(meta.counter, meta.slot)) {
            return entry.clone();
        }
        self.store.read_digest_table(meta)
    }

    /// Reads and verifies `meta`'s payload with the configured readers.
    ///
    /// Returns `None` on any device read error or digest mismatch — the
    /// caller falls back to an older candidate, exactly like a digest
    /// failure. Never propagates per-candidate read faults as hard errors.
    pub fn fetch_verified(&self, ctx: PipelineCtx<'_>, meta: &CheckMeta) -> Option<Vec<u8>> {
        let mut out = vec![0u8; usize::try_from(meta.payload_len).ok()?];
        let report = self.fetch_into_buffer(ctx, meta, &mut out);
        report.ok.then_some(out)
    }

    /// Streams `meta`'s payload into `sink` chunk by chunk as each chunk
    /// verifies, without materializing the whole payload. Returns whether
    /// every chunk was read, verified, and delivered.
    pub fn fetch_streaming(
        &self,
        ctx: PipelineCtx<'_>,
        meta: &CheckMeta,
        sink: &dyn RestoreSink,
    ) -> bool {
        self.fetch_into_sink(ctx, meta, sink).ok
    }

    /// Per-chunk device read with read-stage telemetry, mirroring the
    /// persist pipeline's `write_chunk`. Returns the nanoseconds spent in
    /// the device call (media time, for the reader's queue-wait split).
    fn read_chunk(
        &self,
        ctx: PipelineCtx<'_>,
        device_off: u64,
        payload_off: u64,
        buf: &mut [u8],
    ) -> Result<u64, PccheckError> {
        let start = ctx.telemetry.now_nanos();
        self.store.device().read_durable_at(device_off, buf)?;
        let mut media = 0;
        if ctx.telemetry.is_enabled() {
            media = ctx.telemetry.now_nanos().saturating_sub(start);
            ctx.telemetry.stage_read(media);
            self.sample_device_queues(ctx);
        }
        ctx.telemetry
            .chunk(ctx.span, Phase::RestoreRead, payload_off, buf.len() as u64);
        Ok(media)
    }

    /// Samples the device's submission queues into the per-device gauges
    /// (controller at index 0, composite members after it).
    fn sample_device_queues(&self, ctx: PipelineCtx<'_>) {
        if !ctx.telemetry.is_enabled() {
            return;
        }
        for (i, depth) in self.store.device().queue_depths().iter().enumerate() {
            ctx.telemetry.gauge_device_queue(i, *depth);
        }
    }

    /// DRAM scratch for streaming paths: the attached pool when its chunks
    /// are large enough, otherwise an ad-hoc pool bounded at ~2 chunks per
    /// reader.
    fn scratch_pool(&self, chunk: u64) -> HostBufferPool {
        match &self.pool {
            Some(p) if p.chunk_size().as_u64() >= chunk => p.clone(),
            _ => HostBufferPool::new(ByteSize::from_bytes(chunk), self.readers * 2 + 2),
        }
    }

    fn fetch_into_buffer(
        &self,
        ctx: PipelineCtx<'_>,
        meta: &CheckMeta,
        out: &mut [u8],
    ) -> FetchReport {
        let read_start = ctx.telemetry.now_nanos();
        let report = match self.table_for(meta) {
            Some(table) if !table.digests.is_empty() => {
                self.fetch_table_buffer(ctx, meta, &table, out)
            }
            _ => {
                let out_cell = Mutex::new(out);
                self.fetch_legacy(ctx, meta, &|off, data| {
                    let start = usize::try_from(off).expect("offset fits");
                    out_cell.lock()[start..start + data.len()].copy_from_slice(data);
                })
            }
        };
        ctx.telemetry
            .phase_done(ctx.span, Phase::RestoreRead, read_start);
        ctx.telemetry
            .phase_done(ctx.span, Phase::RestoreVerify, read_start);
        report
    }

    fn fetch_into_sink(
        &self,
        ctx: PipelineCtx<'_>,
        meta: &CheckMeta,
        sink: &dyn RestoreSink,
    ) -> FetchReport {
        let read_start = ctx.telemetry.now_nanos();
        let report = match self.table_for(meta) {
            Some(table) if !table.digests.is_empty() => {
                self.fetch_table_sink(ctx, meta, &table, sink)
            }
            _ => {
                let upload_nanos = AtomicU64::new(0);
                let mut report = self.fetch_legacy(ctx, meta, &|off, data| {
                    let u0 = Instant::now();
                    sink.put(off, data);
                    upload_nanos.fetch_add(u0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    ctx.telemetry
                        .chunk(ctx.span, Phase::RestoreUpload, off, data.len() as u64);
                });
                report.upload_nanos = upload_nanos.into_inner();
                report
            }
        };
        ctx.telemetry
            .phase_done(ctx.span, Phase::RestoreRead, read_start);
        ctx.telemetry
            .phase_done(ctx.span, Phase::RestoreVerify, read_start);
        report
    }

    /// Table path, assembling in place: the output buffer splits into one
    /// contiguous run of chunks per reader, each reader reads straight
    /// into its run and verifies every chunk against the table the moment
    /// its read returns.
    fn fetch_table_buffer(
        &self,
        ctx: PipelineCtx<'_>,
        meta: &CheckMeta,
        table: &ChunkDigestTable,
        out: &mut [u8],
    ) -> FetchReport {
        let base = self.store.slot_payload_offset(meta.slot);
        let count = table.digests.len();
        let readers = self.readers.min(count).max(1);
        let per = count.div_ceil(readers);
        let failed = AtomicBool::new(false);
        let verify_nanos = AtomicU64::new(0);

        // Carve the output into per-reader runs of whole chunks.
        let mut runs: Vec<(usize, &mut [u8])> = Vec::with_capacity(readers);
        let mut rest = out;
        let mut first = 0usize;
        while first < count {
            let last = (first + per).min(count);
            let (start_off, _) = table.chunk_range(first);
            let end_off = if last == count {
                table.payload_len
            } else {
                table.chunk_range(last).0
            };
            let take = usize::try_from(end_off - start_off).expect("run fits");
            let (head, tail) = rest.split_at_mut(take);
            runs.push((first, head));
            rest = tail;
            first = last;
        }

        std::thread::scope(|s| {
            for (r, (first, run)) in runs.into_iter().enumerate() {
                let failed = &failed;
                let verify_nanos = &verify_nanos;
                s.spawn(move || {
                    let actor_start = ctx.telemetry.now_nanos();
                    let (run_base, _) = table.chunk_range(first);
                    let mut done = 0usize;
                    let mut media_nanos = 0u64;
                    for i in first.. {
                        if done >= run.len() || failed.load(Ordering::Acquire) {
                            break;
                        }
                        let (off, len) = table.chunk_range(i);
                        let n = usize::try_from(len).expect("chunk fits");
                        let dst = &mut run[done..done + n];
                        match self.read_chunk(ctx, base + off, off, dst) {
                            Ok(media) => media_nanos += media,
                            Err(_) => {
                                failed.store(true, Ordering::Release);
                                break;
                            }
                        }
                        let v0 = Instant::now();
                        let ok = table.verify_chunk(i, dst);
                        verify_nanos.fetch_add(v0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        if !ok {
                            failed.store(true, Ordering::Release);
                            break;
                        }
                        done += n;
                        debug_assert_eq!(off, run_base + (done as u64 - n as u64));
                    }
                    if done > 0 && ctx.telemetry.is_enabled() {
                        ctx.telemetry.actor_span_split(
                            ctx.span,
                            &format!("reader-{r}"),
                            actor_start,
                            done as u64,
                            media_nanos,
                        );
                    }
                });
            }
        });

        FetchReport {
            ok: !failed.load(Ordering::Acquire),
            verify_nanos: verify_nanos.into_inner(),
            upload_nanos: 0,
        }
    }

    /// Table path, streaming: readers claim chunk indices from a shared
    /// counter, read into pooled scratch, verify inline, and deliver
    /// straight to the sink — no ordering, no assembly.
    fn fetch_table_sink(
        &self,
        ctx: PipelineCtx<'_>,
        meta: &CheckMeta,
        table: &ChunkDigestTable,
        sink: &dyn RestoreSink,
    ) -> FetchReport {
        let base = self.store.slot_payload_offset(meta.slot);
        let count = table.digests.len();
        let readers = self.readers.min(count).max(1);
        let pool = self.scratch_pool(table.chunk_len.min(table.payload_len));
        let next = AtomicUsize::new(0);
        let failed = AtomicBool::new(false);
        let verify_nanos = AtomicU64::new(0);
        let upload_nanos = AtomicU64::new(0);

        std::thread::scope(|s| {
            for r in 0..readers {
                let next = &next;
                let failed = &failed;
                let verify_nanos = &verify_nanos;
                let upload_nanos = &upload_nanos;
                let pool = &pool;
                s.spawn(move || {
                    let actor_start = ctx.telemetry.now_nanos();
                    let mut actor_bytes = 0u64;
                    let mut media_nanos = 0u64;
                    loop {
                        if failed.load(Ordering::Acquire) {
                            break;
                        }
                        // Acquire scratch *before* claiming an index so the
                        // lowest in-flight chunk always owns a buffer.
                        let mut buf = pool.acquire();
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        let (off, len) = table.chunk_range(i);
                        let n = usize::try_from(len).expect("chunk fits");
                        let data = &mut buf.as_mut_slice()[..n];
                        match self.read_chunk(ctx, base + off, off, data) {
                            Ok(media) => media_nanos += media,
                            Err(_) => {
                                failed.store(true, Ordering::Release);
                                break;
                            }
                        }
                        let v0 = Instant::now();
                        let ok = table.verify_chunk(i, data);
                        verify_nanos.fetch_add(v0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        if !ok {
                            failed.store(true, Ordering::Release);
                            break;
                        }
                        let u0 = Instant::now();
                        sink.put(off, data);
                        upload_nanos.fetch_add(u0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        ctx.telemetry
                            .chunk(ctx.span, Phase::RestoreUpload, off, len);
                        actor_bytes += len;
                    }
                    if actor_bytes > 0 && ctx.telemetry.is_enabled() {
                        ctx.telemetry.actor_span_split(
                            ctx.span,
                            &format!("reader-{r}"),
                            actor_start,
                            actor_bytes,
                            media_nanos,
                        );
                    }
                });
            }
        });

        FetchReport {
            ok: !failed.load(Ordering::Acquire),
            verify_nanos: verify_nanos.into_inner(),
            upload_nanos: upload_nanos.into_inner(),
        }
    }

    /// Legacy path for slots without a digest table: both whole-payload
    /// digest disciplines are order-dependent folds, so reads fan out
    /// across the readers while one verifier folds completed chunks in
    /// payload order — verification of chunk `i` overlaps the read of
    /// chunk `i+1`.
    fn fetch_legacy(
        &self,
        ctx: PipelineCtx<'_>,
        meta: &CheckMeta,
        deliver: &(dyn Fn(u64, &[u8]) + Sync),
    ) -> FetchReport {
        let total = meta.payload_len;
        let base = self.store.slot_payload_offset(meta.slot);
        let chunk = self.chunk.as_u64();
        let count = usize::try_from(total.div_ceil(chunk)).expect("chunk count fits");
        let readers = self.readers.min(count.max(1));
        let failed = AtomicBool::new(false);
        let mut verify_nanos = 0u64;
        let mut h_state = FNV_SEED ^ meta.iteration;
        let mut h_raw = FNV_SEED;
        let mut folded = 0usize;

        if count > 0 {
            let pool = self.scratch_pool(chunk.min(total));
            let next = AtomicUsize::new(0);
            let (tx, rx) = bounded::<(usize, usize, HostBuffer)>(pool.total_chunks());
            std::thread::scope(|s| {
                for r in 0..readers {
                    let tx = tx.clone();
                    let next = &next;
                    let failed = &failed;
                    let pool = &pool;
                    s.spawn(move || {
                        let actor_start = ctx.telemetry.now_nanos();
                        let mut actor_bytes = 0u64;
                        let mut media_nanos = 0u64;
                        loop {
                            if failed.load(Ordering::Acquire) {
                                break;
                            }
                            // Acquire before claiming: the lowest unfolded
                            // chunk always holds a buffer, so the verifier can
                            // always make progress and return buffers.
                            let mut buf = pool.acquire();
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= count {
                                break;
                            }
                            let off = i as u64 * chunk;
                            let n = usize::try_from(chunk.min(total - off)).expect("chunk fits");
                            match self.read_chunk(
                                ctx,
                                base + off,
                                off,
                                &mut buf.as_mut_slice()[..n],
                            ) {
                                Ok(media) => media_nanos += media,
                                Err(_) => {
                                    failed.store(true, Ordering::Release);
                                    break;
                                }
                            }
                            if tx.send((i, n, buf)).is_err() {
                                break;
                            }
                            actor_bytes += n as u64;
                        }
                        if actor_bytes > 0 && ctx.telemetry.is_enabled() {
                            ctx.telemetry.actor_span_split(
                                ctx.span,
                                &format!("reader-{r}"),
                                actor_start,
                                actor_bytes,
                                media_nanos,
                            );
                        }
                    });
                }
                drop(tx);
                // Verifier: fold in payload order, buffering the odd
                // out-of-order arrival.
                let mut pending: BTreeMap<usize, (usize, HostBuffer)> = BTreeMap::new();
                while let Ok((i, n, buf)) = rx.recv() {
                    pending.insert(i, (n, buf));
                    while let Some((n, buf)) = pending.remove(&folded) {
                        let data = &buf.as_slice()[..n];
                        let v0 = Instant::now();
                        h_state = fnv1a_fold(h_state, data);
                        h_raw = fnv1a_fold(h_raw, data);
                        verify_nanos += v0.elapsed().as_nanos() as u64;
                        deliver(folded as u64 * chunk, data);
                        folded += 1;
                    }
                }
            });
        }

        let ok = !failed.load(Ordering::Acquire)
            && folded == count
            && (h_state == meta.digest || h_raw == meta.digest);
        FetchReport {
            ok,
            verify_nanos,
            upload_nanos: 0,
        }
    }

    /// Whether `meta`'s payload begins with a chunk-frame table (the codec
    /// persist path). Unreadable heads count as not framed — the candidate
    /// then fails verification on whichever path it is routed to.
    pub fn is_framed(&self, meta: &CheckMeta) -> bool {
        if meta.payload_len < 8 {
            return false;
        }
        let key = (meta.counter, meta.slot);
        if let Some(&f) = self.framed.lock().get(&key) {
            return f;
        }
        let mut head = [0u8; 8];
        let f = self
            .store
            .device()
            .read_durable_at(self.store.slot_payload_offset(meta.slot), &mut head)
            .is_ok()
            && u64::from_le_bytes(head) == FRAME_MAGIC;
        self.framed.lock().insert(key, f);
        f
    }

    /// Reads, decodes, and fully materializes a framed (codec) payload:
    /// decompresses LZ chunks, copies self-dedup references, and resolves
    /// base-dedup references with one read into the base checkpoint named
    /// by each record (found among `candidates`). Every chunk re-verifies
    /// its content address and the reconstructed payload verifies against
    /// the frame's end-to-end digest.
    ///
    /// Returns `(logical payload, full-state digest)`; `None` on any torn
    /// table, failed read, or digest mismatch — the caller falls back to
    /// an older candidate, like every other verification failure.
    pub fn fetch_framed(
        &self,
        ctx: PipelineCtx<'_>,
        meta: &CheckMeta,
        candidates: &[CheckMeta],
    ) -> Option<(Vec<u8>, u64)> {
        let slot_base = self.store.slot_payload_offset(meta.slot);
        let mut payload = vec![0u8; usize::try_from(meta.payload_len).ok()?];
        self.read_chunk(ctx, slot_base, 0, &mut payload).ok()?;
        let table = FrameTable::decode(&payload)?;
        let table_len = usize::try_from(table.encoded_len()).ok()?;
        // The commit's digest is the table checksum: binds frame to meta.
        if checksum(payload.get(..table_len)?) != meta.digest || table.counter != meta.counter {
            return None;
        }
        let packed = payload.get(table_len..)?;

        let mut out = vec![0u8; usize::try_from(table.logical_len).ok()?];
        // Base payloads read once per referenced checkpoint, not per chunk.
        let mut bases: HashMap<(u64, u32), Option<(CheckMeta, Vec<u8>)>> = HashMap::new();
        let mut offsets = Vec::with_capacity(table.records.len());
        let mut off = 0usize;
        for r in &table.records {
            offsets.push(off);
            let n = usize::try_from(r.logical_len).ok()?;
            match r.kind {
                ChunkEncoding::Raw => {
                    let end = usize::try_from(r.a.checked_add(r.b)?).ok()?;
                    let src = packed.get(usize::try_from(r.a).ok()?..end)?;
                    out.get_mut(off..off + n)?.copy_from_slice(src);
                }
                ChunkEncoding::Lz => {
                    let end = usize::try_from(r.a.checked_add(r.b)?).ok()?;
                    let src = packed.get(usize::try_from(r.a).ok()?..end)?;
                    let decoded = lz_decompress(src, n)?;
                    out.get_mut(off..off + n)?.copy_from_slice(&decoded);
                }
                ChunkEncoding::DedupSelf => {
                    // Decode validated aux as a backward materialized
                    // reference of equal logical length.
                    let j = offsets[r.aux as usize];
                    out.copy_within(j..j + n, off);
                }
                ChunkEncoding::DedupBase => {
                    let key = (r.a, r.aux);
                    let entry = bases.entry(key).or_insert_with(|| {
                        let base = candidates
                            .iter()
                            .find(|c| c.counter == r.a && c.slot == r.aux)?;
                        let mut buf = vec![0u8; usize::try_from(base.payload_len).ok()?];
                        self.read_chunk(ctx, self.store.slot_payload_offset(base.slot), 0, &mut buf)
                            .ok()?;
                        Some((*base, buf))
                    });
                    let (base_meta, base_payload) = entry.as_ref()?;
                    let chunk =
                        resolve_base_chunk(base_meta, base_payload, r.digest, r.b, r.logical_len)?;
                    out.get_mut(off..off + n)?.copy_from_slice(&chunk);
                }
            }
            // Every chunk re-verifies its content address regardless of how
            // it was resolved — a stale or colliding base reference fails
            // here, never silently corrupts.
            if chunk_digest(out.get(off..off + n)?) != r.digest {
                return None;
            }
            off += n;
        }
        payload_digest_matches(&out, meta.iteration, table.full_digest)
            .then_some((out, table.full_digest))
    }

    /// Reconstructs the full state a delta candidate represents, fetching
    /// every uncached chain layer in parallel and reusing `cache` across
    /// candidates within one recovery pass.
    ///
    /// The chain is collected newest→root from the committed candidates;
    /// the root (a full checkpoint) fetches through the multi-reader path,
    /// each delta layer loads and verifies (table checksum + per-extent
    /// digests) on its own thread. Replay then applies the already-verified
    /// extents root→newest and checks the reconstructed image against the
    /// newest layer's full-state digest. Any gap, torn layer, or digest
    /// mismatch returns `None` — and is remembered in the cache so a later
    /// candidate sharing the layer doesn't re-read it.
    ///
    /// On success returns `(full payload, full-state digest, links
    /// replayed)`.
    pub fn replay_delta_chain(
        &self,
        ctx: PipelineCtx<'_>,
        meta: &CheckMeta,
        candidates: &[CheckMeta],
        cache: &mut LayerCache,
    ) -> Option<(Vec<u8>, u64, u64)> {
        // Collect the chain newest→root from the committed candidates. A
        // framed (codec) layer ends the walk: it materializes the complete
        // logical state on its own (resolving its base references with
        // direct slot reads), so it serves as the chain's root even when
        // its commit carries a link.
        let mut chain = vec![*meta];
        loop {
            let head = chain.last().expect("chain starts non-empty");
            if self.is_framed(head) {
                break;
            }
            let Some(link) = head.delta else { break };
            if chain.len() > candidates.len() {
                return None; // cycle or longer than the slot count can hold
            }
            let base = candidates
                .iter()
                .find(|c| c.counter == link.base_counter && c.slot == link.base_slot)?;
            chain.push(*base);
        }
        let root = *chain.last().expect("chain ends at a root");
        let root_key = (root.counter, root.slot);
        let deltas = &chain[..chain.len() - 1];

        // Fetch every uncached layer in parallel: delta layers on their own
        // threads, the (largest) root through the multi-reader fetch here.
        let uncached: Vec<CheckMeta> = deltas
            .iter()
            .filter(|d| !cache.delta.contains_key(&(d.counter, d.slot)))
            .copied()
            .collect();
        let fetched: Mutex<Vec<((u64, u32), Option<Arc<(ExtentTable, Vec<u8>)>>)>> =
            Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for d in &uncached {
                let fetched = &fetched;
                s.spawn(move || {
                    let layer = self.load_delta_layer(ctx, d);
                    fetched.lock().push(((d.counter, d.slot), layer));
                });
            }
            if !cache.full.contains_key(&root_key) {
                let payload = if self.is_framed(&root) {
                    self.fetch_framed(ctx, &root, candidates)
                        .map(|(p, fd)| (Arc::new(p), fd))
                } else {
                    self.fetch_verified(ctx, &root)
                        .map(|p| (Arc::new(p), root.digest))
                };
                cache.full.insert(root_key, payload);
            }
        });
        for (key, layer) in fetched.into_inner() {
            cache.delta.insert(key, layer);
        }

        // Replay root→newest over a copy of the verified root image.
        let (root_payload, root_digest) = cache.full.get(&root_key)?.as_ref()?;
        let mut state = (**root_payload).clone();
        let mut full_digest = *root_digest;
        for delta in chain.iter().rev().skip(1) {
            let layer = Arc::clone(cache.delta.get(&(delta.counter, delta.slot))?.as_ref()?);
            let (table, payload) = &*layer;
            if table.full_len != state.len() as u64 {
                return None;
            }
            let mut src = usize::try_from(table.encoded_len()).ok()?;
            for rec in &table.extents {
                let src_end = src.checked_add(rec.len as usize)?;
                let chunk = payload.get(src..src_end)?;
                let dst_start = usize::try_from(rec.offset).ok()?;
                let dst = state.get_mut(dst_start..dst_start.checked_add(rec.len as usize)?)?;
                dst.copy_from_slice(chunk);
                src = src_end;
            }
            full_digest = table.full_digest;
        }

        // The reconstructed image must match the newest delta's full-state
        // digest under either digest discipline.
        let ok = fnv1a_fold(FNV_SEED ^ meta.iteration, &state) == full_digest
            || checksum(&state) == full_digest;
        ok.then(|| (state, full_digest, chain.len() as u64 - 1))
    }

    /// Loads one delta layer and verifies everything verifiable without
    /// the rest of the chain: the extent-table checksum against the meta
    /// digest and every packed extent against its per-extent FNV — the
    /// latter fanned out across the readers for wide tables.
    fn load_delta_layer(
        &self,
        ctx: PipelineCtx<'_>,
        meta: &CheckMeta,
    ) -> Option<Arc<(ExtentTable, Vec<u8>)>> {
        let base = self.store.slot_payload_offset(meta.slot);
        let mut payload = vec![0u8; usize::try_from(meta.payload_len).ok()?];
        self.read_chunk(ctx, base, 0, &mut payload).ok()?;
        let table = ExtentTable::decode(&payload).ok()?;
        let table_len = usize::try_from(table.encoded_len()).ok()?;
        if checksum(payload.get(..table_len)?) != meta.digest {
            return None;
        }
        // Precompute each extent's packed offset, validating the packing.
        let mut offs = Vec::with_capacity(table.extents.len());
        let mut src = table_len;
        for rec in &table.extents {
            let end = src.checked_add(rec.len as usize)?;
            if end > payload.len() {
                return None;
            }
            offs.push(src);
            src = end;
        }
        let wide = self.readers > 1 && table.extents.len() >= 8;
        let ok = if wide {
            let next = AtomicUsize::new(0);
            let bad = AtomicBool::new(false);
            std::thread::scope(|s| {
                for _ in 0..self.readers {
                    let next = &next;
                    let bad = &bad;
                    let table = &table;
                    let payload = &payload;
                    let offs = &offs;
                    s.spawn(move || loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= table.extents.len() || bad.load(Ordering::Acquire) {
                            break;
                        }
                        let rec = &table.extents[i];
                        let chunk = &payload[offs[i]..offs[i] + rec.len as usize];
                        if fnv1a(chunk) != rec.digest {
                            bad.store(true, Ordering::Release);
                        }
                    });
                }
            });
            !bad.into_inner()
        } else {
            table
                .extents
                .iter()
                .zip(&offs)
                .all(|(rec, &off)| fnv1a(&payload[off..off + rec.len as usize]) == rec.digest)
        };
        ok.then(|| Arc::new((table, payload)))
    }
}

/// Resolves one base-dedup reference from the base checkpoint's raw slot
/// payload: a framed base answers from the materialized record matching
/// the reference's content address; a legacy full base answers the logical
/// byte range directly. Extent-delta bases are never valid dedup targets
/// (the persist path only installs materialized framed chunks), so they
/// resolve to `None`.
fn resolve_base_chunk(
    base: &CheckMeta,
    payload: &[u8],
    digest: u64,
    logical_off: u64,
    len: u64,
) -> Option<Vec<u8>> {
    let n = usize::try_from(len).ok()?;
    let framed =
        payload.len() >= 8 && u64::from_le_bytes(payload[..8].try_into().ok()?) == FRAME_MAGIC;
    if framed {
        let table = FrameTable::decode(payload)?;
        let table_len = usize::try_from(table.encoded_len()).ok()?;
        if checksum(payload.get(..table_len)?) != base.digest {
            return None;
        }
        let packed = payload.get(table_len..)?;
        let rec = table
            .records
            .iter()
            .find(|r| r.kind.is_materialized() && r.digest == digest && r.logical_len == len)?;
        let end = usize::try_from(rec.a.checked_add(rec.b)?).ok()?;
        let src = packed.get(usize::try_from(rec.a).ok()?..end)?;
        match rec.kind {
            ChunkEncoding::Raw => Some(src.to_vec()),
            ChunkEncoding::Lz => lz_decompress(src, n),
            _ => None,
        }
    } else if base.delta.is_none() {
        // Legacy full checkpoint: logical bytes are the physical payload.
        let start = usize::try_from(logical_off).ok()?;
        Some(payload.get(start..start.checked_add(n)?)?.to_vec())
    } else {
        None
    }
}

/// [`crate::recover_instrumented`] with explicit [`RestoreOptions`]: the
/// full parallel recovery flow returning the materialized checkpoint.
///
/// # Errors
///
/// * [`PccheckError::NoCheckpoint`] if the device holds no committed
///   checkpoint.
/// * [`PccheckError::CorruptCheckpoint`] if **no** candidate verifies
///   (digest mismatches and device read faults both count as a failed
///   candidate, not a failed recovery).
/// * [`PccheckError::InvalidConfig`] if the device holds no PCcheck store.
pub fn recover_instrumented_with(
    device: Arc<dyn PersistentDevice>,
    telemetry: &Telemetry,
    options: RestoreOptions,
) -> Result<(RecoveredCheckpoint, RecoveryTrace), PccheckError> {
    let (trace, recovered) = recover_core(device, telemetry, options, None)?;
    Ok((
        recovered.expect("non-GPU recovery always materializes"),
        trace,
    ))
}

/// Recovers the newest verifiable checkpoint straight into `gpu`'s device
/// memory: full checkpoints stream chunk-by-chunk into a
/// [`RestoreTarget`] as they verify (no full-payload DRAM image), delta
/// chains reconstruct in DRAM and upload once.
///
/// # Errors
///
/// Same as [`recover_instrumented_with`].
///
/// # Panics
///
/// Panics if the recovered payload does not match `gpu`'s state layout
/// (the same contract as [`RecoveredCheckpoint::restore_into`]).
pub fn recover_into_gpu(
    device: Arc<dyn PersistentDevice>,
    gpu: &Gpu,
    telemetry: &Telemetry,
    options: RestoreOptions,
) -> Result<RecoveryTrace, PccheckError> {
    let (trace, _) = recover_core(device, telemetry, options, Some(gpu))?;
    Ok(trace)
}

fn recover_core(
    device: Arc<dyn PersistentDevice>,
    telemetry: &Telemetry,
    options: RestoreOptions,
    gpu: Option<&Gpu>,
) -> Result<(RecoveryTrace, Option<RecoveredCheckpoint>), PccheckError> {
    let t0 = Instant::now();
    let span = telemetry.span_requested("recovery", 0, 0);
    let ctx = PipelineCtx { telemetry, span };
    let scan_start = telemetry.now_nanos();

    let store = Arc::new(CheckpointStore::open(device)?);
    store.flight().record_run(FlightEventKind::RecoveryStart, 0);
    // Candidates: every slot holding a complete checkpoint, newest first.
    // With a job filter, only that namespace's slots are candidates.
    let mut candidates = store.history()?;
    if let Some(job) = options.job {
        if !store.is_multi_tenant() {
            return Err(PccheckError::InvalidConfig(
                "job-scoped recovery needs a multi-tenant store".into(),
            ));
        }
        candidates.retain(|m| store.namespace_of_slot(m.slot) == Some(job));
    }
    candidates.reverse();
    let pipeline = RestorePipeline::new(Arc::clone(&store)).with_readers(options.readers);
    pipeline.probe(&candidates, options.probe);

    let mut trace = RecoveryTrace {
        scan_nanos: t0.elapsed().as_nanos() as u64,
        ..RecoveryTrace::default()
    };
    telemetry.phase_done(span, Phase::RecoveryScan, scan_start);

    if candidates.is_empty() {
        telemetry.failed(span, "no committed checkpoint");
        return Err(PccheckError::NoCheckpoint);
    }
    let newest_counter = candidates[0].counter;
    let mut cache = LayerCache::default();

    for meta in &candidates {
        trace.candidates_scanned += 1;

        // `verified` is `Some((Some(payload) | None-if-streamed, digest))`
        // on success; any failure — torn payload, bad digest, *or a device
        // read fault* — rejects only this candidate and falls back.
        let verified: Option<(Option<Vec<u8>>, u64)> = if pipeline.is_framed(meta) {
            // Framed (codec) payload: decode, decompress, resolve dedup
            // references, and verify end to end — whether or not the
            // commit carries a base link.
            let load_t0 = Instant::now();
            let load_start = telemetry.now_nanos();
            let out = pipeline.fetch_framed(ctx, meta, &candidates);
            trace.load_nanos += load_t0.elapsed().as_nanos() as u64;
            telemetry.phase_done(span, Phase::RecoveryLoad, load_start);
            telemetry.phase_done(span, Phase::RecoveryVerify, load_start);
            out.map(|(payload, digest)| {
                trace.chain_links = meta.delta.map_or(0, |_| 1);
                let payload = match gpu {
                    Some(gpu) => {
                        let upload_start = telemetry.now_nanos();
                        gpu.restore(&payload, meta.iteration);
                        telemetry.phase_done(span, Phase::RestoreUpload, upload_start);
                        None
                    }
                    None => Some(payload),
                };
                (payload, digest)
            })
        } else if meta.is_delta() {
            let replay_t0 = Instant::now();
            let replay_start = telemetry.now_nanos();
            let out = pipeline.replay_delta_chain(ctx, meta, &candidates, &mut cache);
            trace.load_nanos += replay_t0.elapsed().as_nanos() as u64;
            telemetry.phase_done(span, Phase::DeltaReplay, replay_start);
            out.map(|(payload, digest, links)| {
                trace.chain_links = links;
                let payload = match gpu {
                    Some(gpu) => {
                        let upload_start = telemetry.now_nanos();
                        gpu.restore(&payload, meta.iteration);
                        telemetry.phase_done(span, Phase::RestoreUpload, upload_start);
                        None
                    }
                    None => Some(payload),
                };
                (payload, digest)
            })
        } else {
            let load_t0 = Instant::now();
            let load_start = telemetry.now_nanos();
            let (report, payload) = match gpu {
                Some(gpu) if meta.payload_len == gpu.state_size().as_u64() => {
                    let target = gpu.begin_restore(ByteSize::from_bytes(meta.payload_len));
                    let mut report = pipeline.fetch_into_sink(ctx, meta, &target);
                    if report.ok {
                        let u0 = Instant::now();
                        target.finish(meta.iteration);
                        report.upload_nanos += u0.elapsed().as_nanos() as u64;
                        telemetry.phase_done(span, Phase::RestoreUpload, load_start);
                    }
                    (report, None)
                }
                _ => {
                    let mut out =
                        vec![0u8; usize::try_from(meta.payload_len).expect("payload fits")];
                    let report = pipeline.fetch_into_buffer(ctx, meta, &mut out);
                    let payload = report.ok.then(|| match gpu {
                        Some(gpu) => {
                            // Size differs from the GPU layout: restore()
                            // owns the panic, as restore_into always has.
                            let upload_start = telemetry.now_nanos();
                            gpu.restore(&out, meta.iteration);
                            telemetry.phase_done(span, Phase::RestoreUpload, upload_start);
                            None
                        }
                        None => Some(out),
                    });
                    (report, payload.flatten())
                }
            };
            trace.load_nanos += load_t0.elapsed().as_nanos() as u64;
            trace.verify_nanos += report.verify_nanos;
            telemetry.phase_done(span, Phase::RecoveryLoad, load_start);
            telemetry.phase_done(span, Phase::RecoveryVerify, load_start);
            report.ok.then_some((payload, meta.digest))
        };

        let Some((payload, digest)) = verified else {
            continue;
        };
        trace.fallbacks = trace.candidates_scanned - 1;
        trace.counter = meta.counter;
        trace.iteration = meta.iteration;
        trace.total_nanos = t0.elapsed().as_nanos() as u64;
        telemetry.committed(span, meta.iteration, meta.payload_len);
        store.flight().record(
            FlightEventKind::RecoveryDone,
            meta.counter,
            meta.slot,
            meta.iteration,
            meta.payload_len,
            trace.fallbacks,
        );
        let recovered = payload.map(|payload| RecoveredCheckpoint {
            iteration: meta.iteration,
            counter: meta.counter,
            payload,
            digest,
        });
        return Ok((trace, recovered));
    }

    telemetry.failed(span, "no slot passed digest verification");
    Err(PccheckError::CorruptCheckpoint {
        counter: newest_counter,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pccheck_device::{DeviceConfig, SsdDevice};
    use pccheck_gpu::{GpuConfig, TrainingState};
    use pccheck_telemetry::SpanId;

    use crate::pipeline::{DeltaPolicy, PersistPipeline};

    fn ctx(telemetry: &Telemetry) -> PipelineCtx<'_> {
        PipelineCtx {
            telemetry,
            span: SpanId::NONE,
        }
    }

    /// Formats a store over a fresh SSD and commits `n` raw-checksum
    /// checkpoints of `payload_bytes` each, writing a per-chunk digest
    /// table (`chunk_len`-grained) when `tabled`.
    fn raw_store(
        n: u64,
        payload_bytes: u64,
        chunk_len: u64,
        tabled: bool,
    ) -> (Arc<SsdDevice>, Arc<CheckpointStore>, Vec<Vec<u8>>) {
        let slot = ByteSize::from_bytes(payload_bytes);
        let cap = CheckpointStore::required_capacity(slot, 3) + ByteSize::from_kb(1);
        let ssd = Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        let store = Arc::new(
            CheckpointStore::format(Arc::clone(&ssd) as Arc<dyn PersistentDevice>, slot, 3)
                .unwrap(),
        );
        let mut payloads = Vec::new();
        for i in 1..=n {
            let payload: Vec<u8> = (0..payload_bytes)
                .map(|b| (b as u8).wrapping_mul(31).wrapping_add(i as u8))
                .collect();
            let lease = store.begin_checkpoint();
            store.write_payload(&lease, 0, &payload).unwrap();
            store.persist_payload(&lease, 0, payload_bytes).unwrap();
            let digest = checksum(&payload);
            if tabled {
                let slot_id = lease.slot;
                let table = ChunkDigestTable::build(&payload, chunk_len, lease.counter, digest);
                assert!(store.write_digest_table(slot_id, &table).unwrap());
            }
            store.commit(lease, i, payload_bytes, digest).unwrap();
            payloads.push(payload);
        }
        (ssd, store, payloads)
    }

    /// Drives `iters` full checkpoints of a synthetic GPU state through the
    /// persist pipeline (which writes per-chunk digest tables), returning
    /// the device, the store, and the GPU at its final state.
    fn gpu_store(
        iters: u64,
        bytes: u64,
        chunk: u64,
    ) -> (Arc<SsdDevice>, Arc<CheckpointStore>, Gpu) {
        use pccheck_device::HostBufferPool;

        let state = TrainingState::synthetic(ByteSize::from_bytes(bytes), 7);
        let gpu = Gpu::new(GpuConfig::fast_for_tests(), state);
        let cap = CheckpointStore::required_capacity(gpu.state_size(), 4) + ByteSize::from_kb(1);
        let ssd = Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        let store = Arc::new(
            CheckpointStore::format(
                Arc::clone(&ssd) as Arc<dyn PersistentDevice>,
                gpu.state_size(),
                4,
            )
            .unwrap(),
        );
        let pipeline = PersistPipeline::new(Arc::clone(&store))
            .with_writers(2)
            .with_staging(HostBufferPool::new(ByteSize::from_bytes(chunk), 4));
        let telemetry = Telemetry::disabled();
        let ctx = ctx(&telemetry);
        let total = gpu.state_size();
        for iter in 1..=iters {
            gpu.update();
            let guard = gpu.lock_weights_shared_owned();
            let digest = guard.digest().0;
            let lease = pipeline.lease(ctx);
            let persist_start = pipeline.copy_streamed(ctx, &guard, &lease, total).unwrap();
            drop(guard);
            pipeline
                .seal(ctx, &lease, iter, total, persist_start)
                .unwrap();
            pipeline
                .commit(ctx, lease, iter, total.as_u64(), digest)
                .unwrap();
        }
        (ssd, store, gpu)
    }

    #[test]
    fn parallel_fetch_matches_sequential_with_digest_table() {
        // 16 KiB slot → 4-chunk digest capacity; 4 KiB chunks fill it.
        let (_ssd, store, payloads) = raw_store(2, 16 * 1024, 4096, true);
        let meta = store.latest_committed().unwrap();
        assert!(
            store.read_digest_table(&meta).is_some(),
            "digest table is present, so the table path is exercised"
        );
        let telemetry = Telemetry::disabled();
        let seq = RestorePipeline::new(Arc::clone(&store))
            .with_readers(1)
            .fetch_verified(ctx(&telemetry), &meta)
            .unwrap();
        let par = RestorePipeline::new(Arc::clone(&store))
            .with_readers(4)
            .fetch_verified(ctx(&telemetry), &meta)
            .unwrap();
        assert_eq!(seq, payloads[1]);
        assert_eq!(par, payloads[1], "parallel read is bit-identical");
    }

    #[test]
    fn parallel_fetch_emits_reader_actor_spans() {
        // 4 chunks, 4 readers → one run per reader, 4 KiB each.
        let (_ssd, store, _payloads) = raw_store(1, 16 * 1024, 4096, true);
        let meta = store.latest_committed().unwrap();
        let telemetry = Telemetry::enabled();
        let span = telemetry.span_requested("restore", 1, meta.payload_len);
        let got = RestorePipeline::new(Arc::clone(&store))
            .with_readers(4)
            .fetch_verified(
                PipelineCtx {
                    telemetry: &telemetry,
                    span,
                },
                &meta,
            );
        assert!(got.is_some());
        let spans: Vec<(String, u64)> = telemetry
            .events()
            .iter()
            .filter_map(|e| match &e.kind {
                pccheck_telemetry::EventKind::ActorSpan { actor, bytes, .. } if e.span == span => {
                    Some((actor.clone(), *bytes))
                }
                _ => None,
            })
            .collect();
        assert_eq!(spans.len(), 4, "one actor span per reader run: {spans:?}");
        assert!(spans.iter().all(|(a, _)| a.starts_with("reader-")));
        let total: u64 = spans.iter().map(|(_, b)| b).sum();
        assert_eq!(total, 16 * 1024, "reader spans account for every byte");
    }

    #[test]
    fn legacy_slot_without_table_verifies_via_ordered_fold() {
        let (_ssd, store, payloads) = raw_store(1, 16 * 1024, 4096, false);
        let meta = store.latest_committed().unwrap();
        assert!(store.read_digest_table(&meta).is_none());
        let telemetry = Telemetry::enabled();
        let span = telemetry.span_requested("restore", 1, meta.payload_len);
        let got = RestorePipeline::new(Arc::clone(&store))
            .with_readers(4)
            .with_read_chunk(ByteSize::from_bytes(1024))
            .fetch_verified(
                PipelineCtx {
                    telemetry: &telemetry,
                    span,
                },
                &meta,
            )
            .unwrap();
        assert_eq!(got, payloads[0]);
        // The overlapped fold really ran chunk-wise: every byte was read
        // through the restore-read stage.
        let snap = telemetry.snapshot().unwrap();
        assert_eq!(snap.restore_chunk_bytes, 16 * 1024);
        assert!(snap.phase(Phase::RestoreRead).count >= 1);
        assert!(snap.phase(Phase::RestoreVerify).count >= 1);
    }

    #[test]
    fn corrupt_payload_is_rejected_by_the_table_path() {
        let (ssd, store, _payloads) = raw_store(1, 16 * 1024, 4096, true);
        let meta = store.latest_committed().unwrap();
        let off = store.slot_payload_offset(meta.slot) + 9000;
        ssd.write_at(off, b"!").unwrap();
        ssd.persist(off, 1).unwrap();
        let telemetry = Telemetry::disabled();
        let got = RestorePipeline::new(Arc::clone(&store))
            .with_readers(4)
            .fetch_verified(ctx(&telemetry), &meta);
        assert!(got.is_none(), "per-chunk verification caught the flip");
    }

    #[test]
    fn torn_digest_table_degrades_to_whole_payload_verification() {
        let (ssd, store, payloads) = raw_store(1, 16 * 1024, 4096, true);
        let meta = store.latest_committed().unwrap();
        // Tear the table's trailing CRC; the payload itself is intact.
        let table_off = store.slot_digest_offset(meta.slot).unwrap();
        let tear = table_off + ChunkDigestTable::encoded_len_for(4) - 1;
        let mut b = [0u8; 1];
        ssd.read_durable_at(tear, &mut b).unwrap();
        b[0] ^= 0xFF;
        ssd.write_at(tear, &b).unwrap();
        ssd.persist(tear, 1).unwrap();
        assert!(store.read_digest_table(&meta).is_none(), "table is torn");
        let telemetry = Telemetry::disabled();
        let got = RestorePipeline::new(Arc::clone(&store))
            .with_readers(4)
            .fetch_verified(ctx(&telemetry), &meta)
            .unwrap();
        assert_eq!(got, payloads[0], "fold path still verifies the payload");
    }

    #[test]
    fn read_fault_on_newest_falls_back_instead_of_erroring() {
        let (ssd, store, payloads) = raw_store(2, 16 * 1024, 4096, true);
        let newest = store.latest_committed().unwrap();
        assert_eq!(newest.iteration, 2);
        // Latent sector error in the middle of the newest payload,
        // "discovered" mid-recovery-scan. Before the parallel pipeline this
        // aborted recovery with the device error; now it must fall back.
        ssd.arm_read_fault_at(store.slot_payload_offset(newest.slot) + 4096, 64);
        drop(store);
        let telemetry = Telemetry::disabled();
        let (rec, trace) = recover_instrumented_with(
            Arc::clone(&ssd) as Arc<dyn PersistentDevice>,
            &telemetry,
            RestoreOptions::default(),
        )
        .unwrap();
        assert_eq!(rec.iteration, 1, "fell back past the unreadable slot");
        assert_eq!(rec.payload, payloads[0]);
        assert_eq!(trace.fallbacks, 1);
        assert_eq!(trace.candidates_scanned, 2);
    }

    #[test]
    fn read_fault_everywhere_reports_corrupt_not_device_error() {
        // Newest payload is unreadable media, the older one is corrupt on
        // disk: recovery exhausts both and reports the protocol error, not
        // the raw device error.
        let (ssd, store, _payloads) = raw_store(2, 16 * 1024, 4096, false);
        let metas = store.history().unwrap();
        let newest = metas.last().unwrap();
        let oldest = metas.first().unwrap();
        ssd.arm_read_fault_at(store.slot_payload_offset(newest.slot), newest.payload_len);
        let off = store.slot_payload_offset(oldest.slot);
        ssd.write_at(off, b"XX").unwrap();
        ssd.persist(off, 2).unwrap();
        drop(store);
        let err = recover_instrumented_with(
            Arc::clone(&ssd) as Arc<dyn PersistentDevice>,
            &Telemetry::disabled(),
            RestoreOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            PccheckError::CorruptCheckpoint { counter: 2 }
        ));
    }

    /// Satellite: the layer cache must prevent any device re-reads when the
    /// same chain (or a chain sharing layers) replays again in one pass.
    #[test]
    fn layer_cache_avoids_rereading_shared_chain_layers() {
        use pccheck_device::HostBufferPool;

        let state = TrainingState::synthetic(ByteSize::from_bytes(2048), 7);
        let gpu = Gpu::new(GpuConfig::fast_for_tests(), state);
        gpu.update();
        let cap = CheckpointStore::required_capacity(gpu.state_size(), 4) + ByteSize::from_kb(1);
        let ssd = Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        let store = Arc::new(
            CheckpointStore::format(
                Arc::clone(&ssd) as Arc<dyn PersistentDevice>,
                gpu.state_size(),
                4,
            )
            .unwrap(),
        );
        let persist = PersistPipeline::new(Arc::clone(&store))
            .with_writers(2)
            .with_staging(HostBufferPool::new(ByteSize::from_bytes(256), 4));
        let telemetry = Telemetry::disabled();
        let ctx = ctx(&telemetry);
        for iter in 1..=3u64 {
            if iter > 1 {
                gpu.update_sparse(0.1);
            }
            let guard = gpu.lock_weights_shared_owned();
            let digest = guard.digest();
            persist
                .checkpoint_delta(ctx, &guard, iter, digest.0, DeltaPolicy::default())
                .unwrap();
        }
        let mut candidates = store.history().unwrap();
        candidates.reverse();
        let head = candidates[0];
        assert!(head.is_delta());

        let restore = RestorePipeline::new(Arc::clone(&store)).with_readers(2);
        let mut cache = LayerCache::default();
        let first = restore
            .replay_delta_chain(ctx, &head, &candidates, &mut cache)
            .unwrap();
        let reads_after_first = ssd.stats().read_ops();
        let second = restore
            .replay_delta_chain(ctx, &head, &candidates, &mut cache)
            .unwrap();
        assert_eq!(first, second);
        assert_eq!(
            ssd.stats().read_ops(),
            reads_after_first,
            "cached chain replays touch the device zero times"
        );
    }

    #[test]
    fn recover_into_gpu_streams_full_checkpoints() {
        // 16 KiB state, 4 KiB pipeline chunks → the persist side wrote a
        // digest table, so restore streams through the table sink path.
        let (ssd, store, gpu) = gpu_store(2, 16 * 1024, 4096);
        let want = gpu.digest();
        let meta = store.latest_committed().unwrap();
        assert!(store.read_digest_table(&meta).is_some());
        drop(store);
        ssd.crash_now();
        ssd.recover();

        let fresh = Gpu::new(
            GpuConfig::fast_for_tests(),
            TrainingState::synthetic(ByteSize::from_bytes(16 * 1024), 999),
        );
        let telemetry = Telemetry::enabled();
        let trace = recover_into_gpu(
            Arc::clone(&ssd) as Arc<dyn PersistentDevice>,
            &fresh,
            &telemetry,
            RestoreOptions::default(),
        )
        .unwrap();
        assert_eq!(trace.iteration, 2);
        assert_eq!(fresh.digest(), want, "streamed restore is bit-identical");
        assert_eq!(fresh.step_count(), 2);
        let snap = telemetry.snapshot().unwrap();
        assert!(snap.phase(Phase::RestoreUpload).count >= 1);
        assert!(snap.restore_chunk_bytes >= 16 * 1024, "chunk-wise reads");
    }

    #[test]
    fn recover_into_gpu_materializes_delta_chains() {
        use pccheck_device::HostBufferPool;

        let state = TrainingState::synthetic(ByteSize::from_bytes(2048), 7);
        let gpu = Gpu::new(GpuConfig::fast_for_tests(), state);
        gpu.update();
        let cap = CheckpointStore::required_capacity(gpu.state_size(), 4) + ByteSize::from_kb(1);
        let ssd = Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        let store = Arc::new(
            CheckpointStore::format(
                Arc::clone(&ssd) as Arc<dyn PersistentDevice>,
                gpu.state_size(),
                4,
            )
            .unwrap(),
        );
        let persist = PersistPipeline::new(Arc::clone(&store))
            .with_writers(2)
            .with_staging(HostBufferPool::new(ByteSize::from_bytes(256), 4));
        let telemetry = Telemetry::disabled();
        let pctx = ctx(&telemetry);
        for iter in 1..=3u64 {
            if iter > 1 {
                gpu.update_sparse(0.1);
            }
            let guard = gpu.lock_weights_shared_owned();
            let digest = guard.digest();
            persist
                .checkpoint_delta(pctx, &guard, iter, digest.0, DeltaPolicy::default())
                .unwrap();
        }
        let want = gpu.digest();
        drop(store);
        ssd.crash_now();
        ssd.recover();

        let fresh = Gpu::new(
            GpuConfig::fast_for_tests(),
            TrainingState::synthetic(ByteSize::from_bytes(2048), 999),
        );
        let trace = recover_into_gpu(
            Arc::clone(&ssd) as Arc<dyn PersistentDevice>,
            &fresh,
            &Telemetry::disabled(),
            RestoreOptions::default(),
        )
        .unwrap();
        assert_eq!(trace.chain_links, 2);
        assert_eq!(fresh.digest(), want);
        assert_eq!(fresh.step_count(), 3);
    }

    #[test]
    fn probe_prefetches_tables_for_the_newest_candidates() {
        let (ssd, store, _payloads) = raw_store(2, 16 * 1024, 4096, true);
        let pipeline = RestorePipeline::new(Arc::clone(&store)).with_readers(2);
        let mut candidates = store.history().unwrap();
        candidates.reverse();
        pipeline.probe(&candidates, 2);
        let reads = ssd.stats().read_ops();
        // Cached: table_for answers without touching the device.
        for meta in &candidates {
            assert!(pipeline.table_for(meta).is_some());
        }
        assert_eq!(ssd.stats().read_ops(), reads);
    }
}

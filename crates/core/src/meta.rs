//! Checkpoint metadata records (`Check_meta` in Listing 1).
//!
//! A [`CheckMeta`] describes one checkpoint: its global counter (the total
//! order among checkpoints), the slot holding its payload, the training
//! iteration it captured, the payload length and digest. Records serialize
//! to a fixed 64-byte cell — one cache line — with an internal checksum so
//! recovery can detect torn or stale records after a crash.

use pccheck_gpu::StateDigest;

/// Serialized size of a metadata record: one cache line.
pub const META_RECORD_SIZE: u64 = 64;

const META_MAGIC: u32 = 0x5043_4B31; // "PCK1"

/// Back-pointer from a delta checkpoint to the checkpoint it patches.
///
/// A delta slot stores only the bytes that changed since its base; this
/// link lets recovery walk from a delta back to the full checkpoint at the
/// root of the chain. `base_counter` is never 0 (the global counter starts
/// at 1), which is how the serialized record distinguishes delta metas
/// from full ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaLink {
    /// Counter of the checkpoint this delta patches.
    pub base_counter: u64,
    /// Slot holding the base checkpoint's payload.
    pub base_slot: u32,
    /// Links between this checkpoint and the chain's full root (the root
    /// has depth 0, the first delta 1, and so on).
    pub chain_depth: u32,
}

/// Metadata of a single checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckMeta {
    /// Global order among checkpoints (Listing 1's `curr_counter`).
    pub counter: u64,
    /// Index of the storage slot holding the payload
    /// (Listing 1's `data_location`).
    pub slot: u32,
    /// Training iteration the checkpoint captured.
    pub iteration: u64,
    /// Payload length in bytes.
    pub payload_len: u64,
    /// Digest of the captured training state (for a delta checkpoint: of
    /// the serialized extent table at the head of the payload).
    pub digest: u64,
    /// `Some` when the payload is a delta over an earlier checkpoint.
    pub delta: Option<DeltaLink>,
}

impl CheckMeta {
    /// Serializes to a 64-byte record with magic and checksum.
    pub fn encode(&self) -> [u8; META_RECORD_SIZE as usize] {
        let mut buf = [0u8; META_RECORD_SIZE as usize];
        buf[0..4].copy_from_slice(&META_MAGIC.to_le_bytes());
        buf[4..8].copy_from_slice(&self.slot.to_le_bytes());
        buf[8..16].copy_from_slice(&self.counter.to_le_bytes());
        buf[16..24].copy_from_slice(&self.iteration.to_le_bytes());
        buf[24..32].copy_from_slice(&self.payload_len.to_le_bytes());
        buf[32..40].copy_from_slice(&self.digest.to_le_bytes());
        if let Some(link) = self.delta {
            buf[48..56].copy_from_slice(&link.base_counter.to_le_bytes());
            buf[56..60].copy_from_slice(&link.base_slot.to_le_bytes());
            buf[60..64].copy_from_slice(&link.chain_depth.to_le_bytes());
        }
        let crc = checksum_fold(checksum(&buf[0..40]), &buf[48..64]);
        buf[40..48].copy_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Decodes a record, returning `None` if the magic or checksum is wrong
    /// (torn write, never-written cell, or corruption).
    pub fn decode(buf: &[u8]) -> Option<CheckMeta> {
        if buf.len() < META_RECORD_SIZE as usize {
            return None;
        }
        let magic = u32::from_le_bytes(buf[0..4].try_into().ok()?);
        if magic != META_MAGIC {
            return None;
        }
        let stored_crc = u64::from_le_bytes(buf[40..48].try_into().ok()?);
        if checksum_fold(checksum(&buf[0..40]), &buf[48..64]) != stored_crc {
            return None;
        }
        let base_counter = u64::from_le_bytes(buf[48..56].try_into().ok()?);
        let delta = (base_counter != 0).then(|| DeltaLink {
            base_counter,
            base_slot: u32::from_le_bytes(buf[56..60].try_into().unwrap()),
            chain_depth: u32::from_le_bytes(buf[60..64].try_into().unwrap()),
        });
        Some(CheckMeta {
            slot: u32::from_le_bytes(buf[4..8].try_into().ok()?),
            counter: u64::from_le_bytes(buf[8..16].try_into().ok()?),
            iteration: u64::from_le_bytes(buf[16..24].try_into().ok()?),
            payload_len: u64::from_le_bytes(buf[24..32].try_into().ok()?),
            digest: u64::from_le_bytes(buf[32..40].try_into().ok()?),
            delta,
        })
    }

    /// Whether the payload is a delta over an earlier checkpoint.
    pub fn is_delta(&self) -> bool {
        self.delta.is_some()
    }

    /// The state digest as the GPU crate's type.
    pub fn state_digest(&self) -> StateDigest {
        StateDigest(self.digest)
    }
}

/// Serialized size of a namespace descriptor: one cache line.
pub const NS_DESC_SIZE: u64 = 64;

const NS_MAGIC: u32 = 0x5043_4E53; // "PCNS"

/// Descriptor of one per-job slot namespace in a multi-tenant store.
///
/// A service-mode store carves its slot array into contiguous per-job
/// ranges; each range is described by one of these 64-byte records in the
/// namespace directory at the tail of the device. Like [`CheckMeta`], the
/// record carries a checksum so a torn directory write is detected and the
/// entry treated as unallocated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NamespaceDesc {
    /// The tenant this namespace belongs to.
    pub job: u64,
    /// First slot of the contiguous range.
    pub slot_start: u32,
    /// Number of slots in the range (`N+1` for `N` concurrent checkpoints).
    pub slot_count: u32,
}

impl NamespaceDesc {
    /// The half-open slot range this namespace owns.
    pub fn slot_range(&self) -> std::ops::Range<u32> {
        self.slot_start..self.slot_start + self.slot_count
    }

    /// Serializes to a 64-byte record with magic and checksum.
    pub fn encode(&self) -> [u8; NS_DESC_SIZE as usize] {
        let mut buf = [0u8; NS_DESC_SIZE as usize];
        buf[0..4].copy_from_slice(&NS_MAGIC.to_le_bytes());
        buf[4..8].copy_from_slice(&self.slot_start.to_le_bytes());
        buf[8..12].copy_from_slice(&self.slot_count.to_le_bytes());
        buf[16..24].copy_from_slice(&self.job.to_le_bytes());
        let crc = checksum(&buf[0..24]);
        buf[24..32].copy_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Decodes a record, returning `None` if the magic or checksum is wrong
    /// (free directory entry, torn write, or corruption).
    pub fn decode(buf: &[u8]) -> Option<NamespaceDesc> {
        if buf.len() < NS_DESC_SIZE as usize {
            return None;
        }
        let magic = u32::from_le_bytes(buf[0..4].try_into().ok()?);
        if magic != NS_MAGIC {
            return None;
        }
        let stored_crc = u64::from_le_bytes(buf[24..32].try_into().ok()?);
        if checksum(&buf[0..24]) != stored_crc {
            return None;
        }
        Some(NamespaceDesc {
            slot_start: u32::from_le_bytes(buf[4..8].try_into().ok()?),
            slot_count: u32::from_le_bytes(buf[8..12].try_into().ok()?),
            job: u64::from_le_bytes(buf[16..24].try_into().ok()?),
        })
    }
}

/// Serialized size of a per-slot commit-state record: one cache line.
pub const SLOT_STATE_SIZE: u64 = 64;

const STATE_MAGIC: u32 = 0x5043_5331; // "PCS1"

const STATE_TAG_FREE: u32 = 0;
const STATE_TAG_CLAIMED: u32 = 1;
const STATE_TAG_COMMITTED: u32 = 2;

/// One rung of the per-slot commit-state lattice.
///
/// Every slot carries a persistent state word that a checkpointer advances
/// with single atomic publishes — never under a lock:
///
/// ```text
/// Free ──CAS──▶ Claimed{counter} ──meta persist──▶ Committed{counter}
///   ▲                                                      │
///   └───────────────── recycle (in-memory only) ◀──────────┘
/// ```
///
/// The word is what makes the lock-free commit *detectable* (in the
/// memento sense): after a crash, a slot's outcome is decidable from its
/// state word plus the meta record's CRC alone. Recycling deliberately
/// never writes the durable word — the on-device state is a high-water
/// mark, and counters rank which claim is current.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotState {
    /// Never claimed since format (or only ever recycled in memory).
    Free,
    /// A checkpointer owns the slot for checkpoint `counter`; the payload
    /// and meta record may be anywhere between untouched and durable.
    Claimed {
        /// Global counter of the claiming checkpoint.
        counter: u64,
    },
    /// Checkpoint `counter`'s meta record was durable when this state was
    /// published; the slot has been (or is about to be) the recovery head.
    Committed {
        /// Global counter of the committed checkpoint.
        counter: u64,
    },
}

impl SlotState {
    /// The claim/commit counter, `None` for [`SlotState::Free`].
    pub fn counter(self) -> Option<u64> {
        match self {
            SlotState::Free => None,
            SlotState::Claimed { counter } | SlotState::Committed { counter } => Some(counter),
        }
    }

    fn tag(self) -> u32 {
        match self {
            SlotState::Free => STATE_TAG_FREE,
            SlotState::Claimed { .. } => STATE_TAG_CLAIMED,
            SlotState::Committed { .. } => STATE_TAG_COMMITTED,
        }
    }

    /// Packs into the in-memory `AtomicU64` word: counter in the high 62
    /// bits, tag in the low 2. The counter is capped at 48 bits by
    /// [`PackedCheckAddr::pack`] long before this limit matters.
    pub fn pack(self) -> u64 {
        let (tag, counter) = match self {
            SlotState::Free => (STATE_TAG_FREE, 0),
            SlotState::Claimed { counter } => (STATE_TAG_CLAIMED, counter),
            SlotState::Committed { counter } => (STATE_TAG_COMMITTED, counter),
        };
        debug_assert!(counter < (1 << 62), "slot-state counter overflow");
        (counter << 2) | u64::from(tag)
    }

    /// Unpacks an in-memory word produced by [`SlotState::pack`].
    pub fn unpack(word: u64) -> SlotState {
        let counter = word >> 2;
        match (word & 0b11) as u32 {
            STATE_TAG_CLAIMED => SlotState::Claimed { counter },
            STATE_TAG_COMMITTED => SlotState::Committed { counter },
            _ => SlotState::Free,
        }
    }

    /// Serializes to a 64-byte record with magic and checksum, sized so
    /// one state publish is one single-cache-line persist.
    pub fn encode(self) -> [u8; SLOT_STATE_SIZE as usize] {
        let mut buf = [0u8; SLOT_STATE_SIZE as usize];
        buf[0..4].copy_from_slice(&STATE_MAGIC.to_le_bytes());
        buf[4..8].copy_from_slice(&self.tag().to_le_bytes());
        buf[8..16].copy_from_slice(&self.counter().unwrap_or(0).to_le_bytes());
        let crc = checksum(&buf[0..16]);
        buf[16..24].copy_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Decodes a record, returning `None` if the magic, tag, or checksum
    /// is wrong (torn write, pre-lattice store, or corruption). A torn
    /// state word therefore degrades to "no word", and the decision
    /// procedure falls back to classifying the slot from its meta CRC —
    /// the outcome stays decidable.
    pub fn decode(buf: &[u8]) -> Option<SlotState> {
        if buf.len() < SLOT_STATE_SIZE as usize {
            return None;
        }
        let magic = u32::from_le_bytes(buf[0..4].try_into().ok()?);
        if magic != STATE_MAGIC {
            return None;
        }
        let stored_crc = u64::from_le_bytes(buf[16..24].try_into().ok()?);
        if checksum(&buf[0..16]) != stored_crc {
            return None;
        }
        let counter = u64::from_le_bytes(buf[8..16].try_into().ok()?);
        match u32::from_le_bytes(buf[4..8].try_into().ok()?) {
            STATE_TAG_FREE if counter == 0 => Some(SlotState::Free),
            STATE_TAG_CLAIMED if counter != 0 => Some(SlotState::Claimed { counter }),
            STATE_TAG_COMMITTED if counter != 0 => Some(SlotState::Committed { counter }),
            _ => None,
        }
    }
}

impl std::fmt::Display for SlotState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SlotState::Free => f.write_str("free"),
            SlotState::Claimed { counter } => write!(f, "claimed#{counter}"),
            SlotState::Committed { counter } => write!(f, "committed#{counter}"),
        }
    }
}

/// The in-memory `CHECK_ADDR` word: (counter, slot) packed into a `u64` so a
/// single CAS can swing the "latest committed checkpoint" pointer
/// (Listing 1, line 20).
///
/// Counter occupies the high 48 bits, slot the low 16. The packing keeps
/// the total order: comparing packed words compares counters first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct PackedCheckAddr(pub u64);

/// Sentinel for "no checkpoint committed yet" (counter 0 is never issued —
/// the global counter starts at 1).
pub const CHECK_ADDR_NONE: PackedCheckAddr = PackedCheckAddr(0);

impl PackedCheckAddr {
    /// Packs a counter and slot.
    ///
    /// # Panics
    ///
    /// Panics if the counter exceeds 48 bits or the slot exceeds 16 bits.
    pub fn pack(counter: u64, slot: u32) -> Self {
        assert!(counter < (1 << 48), "checkpoint counter overflow");
        assert!(slot < (1 << 16), "slot index overflow");
        PackedCheckAddr((counter << 16) | u64::from(slot))
    }

    /// The checkpoint counter.
    pub fn counter(self) -> u64 {
        self.0 >> 16
    }

    /// The slot index.
    pub fn slot(self) -> u32 {
        (self.0 & 0xFFFF) as u32
    }

    /// Whether this is the "no checkpoint yet" sentinel.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// FNV-1a over `data` (the record checksum).
pub(crate) fn checksum(data: &[u8]) -> u64 {
    pccheck_util::fnv::fnv1a(data)
}

/// Continues an FNV-1a checksum from hash state `h` over `data`, so a
/// record checksum can skip over its own CRC field.
pub(crate) fn checksum_fold(h: u64, data: &[u8]) -> u64 {
    pccheck_util::fnv::fnv1a_fold(h, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> CheckMeta {
        CheckMeta {
            counter: 42,
            slot: 3,
            iteration: 1000,
            payload_len: 123_456,
            digest: 0xdead_beef_cafe_f00d,
            delta: None,
        }
    }

    fn sample_delta() -> CheckMeta {
        CheckMeta {
            delta: Some(DeltaLink {
                base_counter: 41,
                base_slot: 2,
                chain_depth: 1,
            }),
            counter: 43,
            ..sample()
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let m = sample();
        let buf = m.encode();
        assert_eq!(CheckMeta::decode(&buf), Some(m));
        assert_eq!(m.state_digest(), StateDigest(0xdead_beef_cafe_f00d));
        assert!(!m.is_delta());
    }

    #[test]
    fn delta_meta_round_trips() {
        let m = sample_delta();
        let decoded = CheckMeta::decode(&m.encode()).expect("delta record decodes");
        assert_eq!(decoded, m);
        assert!(decoded.is_delta());
        let link = decoded.delta.unwrap();
        assert_eq!(link.base_counter, 41);
        assert_eq!(link.base_slot, 2);
        assert_eq!(link.chain_depth, 1);
    }

    #[test]
    fn decode_rejects_bad_magic() {
        let mut buf = sample().encode();
        buf[0] ^= 0xFF;
        assert_eq!(CheckMeta::decode(&buf), None);
    }

    #[test]
    fn decode_rejects_torn_record() {
        let mut buf = sample().encode();
        buf[20] ^= 0x01; // flip a bit inside the payload fields
        assert_eq!(CheckMeta::decode(&buf), None);
    }

    #[test]
    fn decode_rejects_zeroed_cell() {
        assert_eq!(CheckMeta::decode(&[0u8; 64]), None);
    }

    #[test]
    fn decode_rejects_short_buffer() {
        assert_eq!(CheckMeta::decode(&[0u8; 10]), None);
    }

    #[test]
    fn namespace_desc_round_trips_and_rejects_corruption() {
        let d = NamespaceDesc {
            job: 7,
            slot_start: 12,
            slot_count: 4,
        };
        let buf = d.encode();
        assert_eq!(NamespaceDesc::decode(&buf), Some(d));
        assert_eq!(NamespaceDesc::decode(&[0u8; 64]), None, "free entry");
        let mut torn = buf;
        torn[5] ^= 1;
        assert_eq!(NamespaceDesc::decode(&torn), None);
        assert_eq!(NamespaceDesc::decode(&buf[..32]), None, "short buffer");
    }

    #[test]
    fn packed_addr_round_trip() {
        let p = PackedCheckAddr::pack(99, 7);
        assert_eq!(p.counter(), 99);
        assert_eq!(p.slot(), 7);
        assert!(!p.is_none());
        assert!(CHECK_ADDR_NONE.is_none());
    }

    #[test]
    fn packed_addr_orders_by_counter() {
        let older = PackedCheckAddr::pack(5, 9);
        let newer = PackedCheckAddr::pack(6, 0);
        assert!(newer > older, "counter dominates slot in the ordering");
    }

    #[test]
    #[should_panic(expected = "counter overflow")]
    fn counter_overflow_panics() {
        PackedCheckAddr::pack(1 << 48, 0);
    }

    #[test]
    #[should_panic(expected = "slot index overflow")]
    fn slot_overflow_panics() {
        PackedCheckAddr::pack(0, 1 << 16);
    }

    #[test]
    fn slot_state_round_trips_on_device_and_in_memory() {
        for s in [
            SlotState::Free,
            SlotState::Claimed { counter: 7 },
            SlotState::Committed { counter: 7 },
        ] {
            assert_eq!(SlotState::decode(&s.encode()), Some(s));
            assert_eq!(SlotState::unpack(s.pack()), s);
        }
        assert_eq!(SlotState::Free.counter(), None);
        assert_eq!(SlotState::Claimed { counter: 3 }.counter(), Some(3));
    }

    #[test]
    fn slot_state_decode_rejects_garbage() {
        assert_eq!(SlotState::decode(&[0u8; 64]), None, "pre-lattice cell");
        assert_eq!(SlotState::decode(&[0u8; 8]), None, "short buffer");
        let mut torn = SlotState::Claimed { counter: 9 }.encode();
        torn[9] ^= 1;
        assert_eq!(SlotState::decode(&torn), None, "torn counter");
        let mut bad_tag = SlotState::Free.encode();
        bad_tag[4] = 7; // valid CRC is recomputed below to isolate the tag check
        let crc = checksum(&bad_tag[0..16]);
        bad_tag[16..24].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(SlotState::decode(&bad_tag), None, "unknown tag");
    }

    #[test]
    fn slot_state_display_matches_lattice_names() {
        assert_eq!(SlotState::Free.to_string(), "free");
        assert_eq!(SlotState::Claimed { counter: 4 }.to_string(), "claimed#4");
        assert_eq!(
            SlotState::Committed { counter: 4 }.to_string(),
            "committed#4"
        );
    }

    proptest! {
        #[test]
        fn any_slot_state_round_trips(counter in 1u64..(1<<48), tag in 0u8..3) {
            let s = match tag {
                0 => SlotState::Free,
                1 => SlotState::Claimed { counter },
                _ => SlotState::Committed { counter },
            };
            prop_assert_eq!(SlotState::decode(&s.encode()), Some(s));
            prop_assert_eq!(SlotState::unpack(s.pack()), s);
        }

        #[test]
        fn slot_state_bitflip_is_detected(pos in 0usize..24, bit in 0u8..8) {
            let mut buf = SlotState::Committed { counter: 42 }.encode();
            buf[pos] ^= 1 << bit;
            prop_assert_eq!(SlotState::decode(&buf), None);
        }
    }

    proptest! {
        #[test]
        fn any_meta_round_trips(counter in 0u64..(1<<48), slot in 0u32..(1<<16),
                                iteration in any::<u64>(), payload_len in any::<u64>(),
                                digest in any::<u64>(),
                                base_counter in 0u64..u64::MAX, base_slot in any::<u32>(),
                                chain_depth in any::<u32>()) {
            let delta = (base_counter != 0).then_some(DeltaLink {
                base_counter, base_slot, chain_depth,
            });
            let m = CheckMeta { counter, slot, iteration, payload_len, digest, delta };
            prop_assert_eq!(CheckMeta::decode(&m.encode()), Some(m));
            let p = PackedCheckAddr::pack(counter, slot);
            prop_assert_eq!(p.counter(), counter);
            prop_assert_eq!(p.slot(), slot);
        }

        #[test]
        fn single_bitflip_is_detected(pos in 0usize..64, bit in 0u8..8) {
            let mut buf = sample_delta().encode();
            buf[pos] ^= 1 << bit;
            prop_assert_eq!(CheckMeta::decode(&buf), None);
        }
    }
}

//! Loom model checks for the engine's hand-rolled synchronization
//! protocols: the `InFlight` ticket gate (Mutex + Condvar with a shared
//! wait queue), the store's free-slot recycle queue (Vyukov bounded
//! MPMC cells), the QoS lease arbiter's cap + deficit protocol
//! (`qos::QosArbiter`), and the lock-free persistent commit protocol's
//! claim → publish → recycle lattice (`store::CheckpointStore`,
//! DESIGN §13).
//!
//! These run only under `--cfg loom`, with the `loom` dev-dependency
//! enabled in `crates/core/Cargo.toml` (it is commented out there because
//! the offline build image does not vendor loom):
//!
//! ```sh
//! RUSTFLAGS="--cfg loom" cargo test -p pccheck --test loom_models --release
//! ```
//!
//! Loom cannot instrument `parking_lot` or `std` atomics, so the models
//! re-state the algorithms verbatim over `loom::sync` types. Keeping them
//! line-for-line parallel to `engine::InFlight` and `queue::SlotQueue` is
//! the point: a change to either protocol should be mirrored here and
//! re-checked across all interleavings.
#![cfg(loom)]

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{Arc, Condvar, Mutex};
use loom::thread;

/// Mirror of `engine::InFlight`: a counting gate whose condvar is shared
/// by `acquire` waiters and `wait_zero` drainers.
struct InFlightModel {
    count: Mutex<usize>,
    cond: Condvar,
}

impl InFlightModel {
    fn new() -> Self {
        InFlightModel {
            count: Mutex::new(0),
            cond: Condvar::new(),
        }
    }

    fn acquire(&self, limit: usize) {
        let mut count = self.count.lock().unwrap();
        while *count >= limit {
            count = self.cond.wait(count).unwrap();
        }
        *count += 1;
    }

    fn release(&self) {
        let mut count = self.count.lock().unwrap();
        *count -= 1;
        drop(count);
        // The fix under test: `notify_one` here loses wakeups when a
        // drainer and an acquirer are both queued (the drainer consumes
        // the sole notification and exits without re-notifying).
        self.cond.notify_all();
    }

    fn wait_zero(&self) {
        let mut count = self.count.lock().unwrap();
        while *count > 0 {
            count = self.cond.wait(count).unwrap();
        }
    }
}

/// The lost-wakeup scenario: one ticket, a holder, a queued acquirer, and
/// a drainer. Every interleaving must terminate — with `notify_one` in
/// `release`, loom finds the schedule where the drainer swallows the
/// wakeup and the acquirer sleeps forever.
#[test]
fn ticket_gate_release_wakes_acquirers_and_drainers() {
    loom::model(|| {
        let gate = Arc::new(InFlightModel::new());
        gate.acquire(1);

        let acquirer = {
            let gate = Arc::clone(&gate);
            thread::spawn(move || {
                gate.acquire(1);
                gate.release();
            })
        };
        let drainer = {
            let gate = Arc::clone(&gate);
            thread::spawn(move || gate.wait_zero())
        };

        gate.release();
        acquirer.join().unwrap();
        drainer.join().unwrap();
        assert_eq!(*gate.count.lock().unwrap(), 0);
    });
}

/// Two concurrent acquirers against a limit of 2 never exceed the limit.
#[test]
fn ticket_gate_respects_the_limit() {
    loom::model(|| {
        let gate = Arc::new(InFlightModel::new());
        let peak = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..2)
            .map(|_| {
                let gate = Arc::clone(&gate);
                let peak = Arc::clone(&peak);
                thread::spawn(move || {
                    gate.acquire(2);
                    let now = *gate.count.lock().unwrap();
                    // fetch_max over a CAS loop: loom's AtomicUsize
                    // supports fetch_max directly.
                    peak.fetch_max(now, Ordering::SeqCst);
                    gate.release();
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 2);
        assert_eq!(*gate.count.lock().unwrap(), 0);
    });
}

/// Mirror of `queue::SlotQueue` at capacity 2: Vyukov's bounded MPMC
/// cells, sequence numbers gating each cell's ownership handoff.
struct SlotQueueModel {
    seqs: [AtomicUsize; 2],
    values: [AtomicUsize; 2],
    tail: AtomicUsize,
    head: AtomicUsize,
}

impl SlotQueueModel {
    const MASK: usize = 1;

    fn new() -> Self {
        SlotQueueModel {
            seqs: [AtomicUsize::new(0), AtomicUsize::new(1)],
            // The real queue's cell payload is an UnsafeCell<u32> whose
            // accesses the seq protocol serializes; an atomic store/load
            // pair models the same handoff without unsafe.
            values: [AtomicUsize::new(0), AtomicUsize::new(0)],
            tail: AtomicUsize::new(0),
            head: AtomicUsize::new(0),
        }
    }

    fn enqueue(&self, value: usize) -> Result<(), usize> {
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            let cell = pos & Self::MASK;
            let seq = self.seqs[cell].load(Ordering::Acquire);
            match seq as isize - pos as isize {
                0 => {
                    match self.tail.compare_exchange_weak(
                        pos,
                        pos + 1,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            self.values[cell].store(value, Ordering::Relaxed);
                            self.seqs[cell].store(pos + 1, Ordering::Release);
                            return Ok(());
                        }
                        Err(actual) => pos = actual,
                    }
                }
                d if d < 0 => return Err(value),
                _ => pos = self.tail.load(Ordering::Relaxed),
            }
        }
    }

    fn dequeue(&self) -> Option<usize> {
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let cell = pos & Self::MASK;
            let seq = self.seqs[cell].load(Ordering::Acquire);
            match seq as isize - (pos + 1) as isize {
                0 => {
                    match self.head.compare_exchange_weak(
                        pos,
                        pos + 1,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            let value = self.values[cell].load(Ordering::Relaxed);
                            self.seqs[cell].store(pos + Self::MASK + 1, Ordering::Release);
                            return Some(value);
                        }
                        Err(actual) => pos = actual,
                    }
                }
                d if d < 0 => return None,
                _ => pos = self.head.load(Ordering::Relaxed),
            }
        }
    }
}

/// Two concurrent dequeuers racing for two free slots must each get a
/// distinct slot — the commit protocol's "unique writer per leased slot"
/// invariant rests on this.
#[test]
fn free_slot_dequeue_grants_unique_ownership() {
    loom::model(|| {
        let q = Arc::new(SlotQueueModel::new());
        q.enqueue(10).unwrap();
        q.enqueue(20).unwrap();
        let threads: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || q.dequeue())
            })
            .collect();
        let mut got: Vec<usize> = threads
            .into_iter()
            .map(|t| t.join().unwrap().expect("two values for two dequeuers"))
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![10, 20], "each dequeuer owns a distinct slot");
        assert_eq!(q.dequeue(), None);
    });
}

/// Mirror of `qos::QosArbiter`'s blocking core: WDRR deficit accounts
/// and an outstanding-lease cap whose waiters sleep on a condvar and
/// are woken by grant release. The deficit top-up loop runs entirely
/// under the mutex (it never sleeps), so the model keeps it verbatim;
/// the schedules loom must cover are the cap handoffs.
struct QosModel {
    state: Mutex<QosModelState>,
    cond: Condvar,
    quantum: u64,
    cap: usize,
}

struct QosModelState {
    /// `(deficit, weight)` per job, ring order.
    jobs: Vec<(u64, u64)>,
    ring_cursor: usize,
    outstanding: usize,
}

impl QosModel {
    fn new(weights: &[u64], quantum: u64, cap: usize) -> Self {
        QosModel {
            state: Mutex::new(QosModelState {
                jobs: weights.iter().map(|&w| (0, w)).collect(),
                ring_cursor: 0,
                outstanding: 0,
            }),
            cond: Condvar::new(),
            quantum,
            cap,
        }
    }

    fn acquire(&self, job: usize, bytes: u64) {
        let mut s = self.state.lock().unwrap();
        loop {
            if s.outstanding < self.cap {
                if s.jobs[job].0 >= bytes {
                    s.jobs[job].0 -= bytes;
                    s.outstanding += 1;
                    return;
                }
                // Deficit top-up: credit the next ring job and re-check
                // without sleeping, exactly as the real arbiter does.
                let n = s.jobs.len();
                let cur = s.ring_cursor % n;
                s.ring_cursor = (cur + 1) % n;
                let (deficit, weight) = s.jobs[cur];
                let credit = weight * self.quantum;
                s.jobs[cur].0 = (deficit + credit).min((2 * credit).max(bytes));
                continue;
            }
            s = self.cond.wait(s).unwrap();
        }
    }

    fn release(&self) {
        let mut s = self.state.lock().unwrap();
        s.outstanding -= 1;
        drop(s);
        // The property under test: `notify_all`, not `notify_one` — with
        // several cap-blocked jobs, a single notification can land on a
        // waiter whose deficit the ring has not credited yet; it would
        // re-check, top up a *different* job, and everyone else sleeps.
        self.cond.notify_all();
    }
}

/// Cap handoff under contention: one lease outstanding, two more jobs
/// blocked on the cap. Every interleaving of the release and the two
/// waiters must terminate with all three grants served and the cap
/// never exceeded.
#[test]
fn qos_cap_release_wakes_blocked_lease_waiters() {
    loom::model(|| {
        let arb = Arc::new(QosModel::new(&[1, 1, 1], 1024, 1));
        arb.acquire(0, 1024);

        let waiters: Vec<_> = [1usize, 2]
            .into_iter()
            .map(|job| {
                let arb = Arc::clone(&arb);
                thread::spawn(move || {
                    arb.acquire(job, 1024);
                    arb.release();
                })
            })
            .collect();

        arb.release();
        for w in waiters {
            w.join().unwrap();
        }
        let s = arb.state.lock().unwrap();
        assert_eq!(s.outstanding, 0, "every grant released");
    });
}

/// Deficit ring progress under concurrency: two jobs whose first chunk
/// exceeds one quantum race through the arbiter. The top-up loop runs
/// under the lock, so loom checks that no interleaving of the lock
/// handoffs can strand a requester with an uncredited account.
#[test]
fn qos_deficit_topup_serves_concurrent_jobs() {
    loom::model(|| {
        let arb = Arc::new(QosModel::new(&[1, 2], 512, 2));
        let threads: Vec<_> = [(0usize, 1024u64), (1, 2048)]
            .into_iter()
            .map(|(job, bytes)| {
                let arb = Arc::clone(&arb);
                thread::spawn(move || {
                    arb.acquire(job, bytes);
                    arb.release();
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = arb.state.lock().unwrap();
        assert_eq!(s.outstanding, 0);
    });
}

/// The recycle loop: a dequeuer re-enqueues the slot it displaced while
/// another thread dequeues concurrently. No slot is lost or duplicated
/// across the wraparound — the transient-full window (claimed cell, seq
/// not yet recycled) must resolve, never deadlock or corrupt.
#[test]
fn free_slot_recycle_survives_wraparound_races() {
    loom::model(|| {
        let q = Arc::new(SlotQueueModel::new());
        q.enqueue(1).unwrap();
        q.enqueue(2).unwrap();

        let recycler = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let freed = q.dequeue().expect("queue starts with two slots");
                // Commit displaced the slot: recycle it. A concurrent
                // dequeuer may make the cell look transiently full, so
                // spin as `enqueue_blocking` does (bounded: the claim
                // always resolves within the model).
                let mut v = freed;
                while let Err(back) = q.enqueue(v) {
                    v = back;
                    loom::thread::yield_now();
                }
            })
        };
        let taker = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.dequeue())
        };

        recycler.join().unwrap();
        let taken = taker.join().unwrap();
        // Drain: exactly the un-taken population remains, values intact.
        let mut remaining = Vec::new();
        while let Some(v) = q.dequeue() {
            remaining.push(v);
        }
        let mut all: Vec<usize> = taken.into_iter().chain(remaining).collect();
        all.sort_unstable();
        assert_eq!(all, vec![1, 2], "recycling neither loses nor duplicates");
    });
}

/// Mirror of the lock-free persistent commit protocol for one slot
/// (`store::claim_slot` / `commit`'s publish path / `release_slot`):
///
/// * `state` is the packed per-slot word, `counter << 2 | tag` — exactly
///   `meta::SlotState::pack`.
/// * `meta` models the slot's durable meta record: the stored counter, or
///   0 for "no valid record" (a CRC failure and an absent record decide
///   identically, so one cell captures both).
/// * `head` is the CHECK_ADDR watermark, advanced by `fetch_max` — never
///   a lock, never a CAS loop that can be displaced backwards.
///
/// The ordering under test is the protocol's one fence requirement: the
/// meta record is published (Release) *before* the state word's Committed
/// store (Release), so any auditor that reads the word with Acquire and
/// sees Committed{c} must also see meta == c. That is what makes the
/// `Torn` lattice point unreachable — and every crash decidable.
struct CommitSlotModel {
    state: AtomicUsize,
    meta: AtomicUsize,
    head: AtomicUsize,
}

const TAG_FREE: usize = 0;
const TAG_CLAIMED: usize = 1;
const TAG_COMMITTED: usize = 2;

fn pack(tag: usize, counter: usize) -> usize {
    (counter << 2) | tag
}

/// The auditor's decision procedure over one slot — the loom twin of
/// `RawStoreView::slot_outcome`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotDecision {
    Empty,
    Historical(usize),
    InFlight(usize),
    Persisted(usize),
    Committed(usize),
    Torn { state: usize, meta: usize },
}

fn decide(state: usize, meta: usize) -> SlotDecision {
    let (tag, c) = (state & 3, state >> 2);
    match tag {
        TAG_FREE if meta == 0 => SlotDecision::Empty,
        TAG_FREE => SlotDecision::Historical(meta),
        TAG_CLAIMED if meta == c => SlotDecision::Persisted(c),
        TAG_CLAIMED => SlotDecision::InFlight(c),
        TAG_COMMITTED if meta == c => SlotDecision::Committed(c),
        _ => SlotDecision::Torn { state: c, meta },
    }
}

impl CommitSlotModel {
    fn new() -> Self {
        CommitSlotModel {
            state: AtomicUsize::new(pack(TAG_FREE, 0)),
            meta: AtomicUsize::new(0),
            head: AtomicUsize::new(0),
        }
    }

    /// `store::claim_slot`'s CAS: Free → Claimed{counter}. Returns whether
    /// this checkpointer won the slot.
    fn try_claim(&self, counter: usize) -> bool {
        self.state
            .compare_exchange(
                pack(TAG_FREE, 0),
                pack(TAG_CLAIMED, counter),
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }

    /// The commit win path: meta publish (Release) → Committed word
    /// (Release) → head advance (`fetch_max`).
    fn commit(&self, counter: usize) {
        self.meta.store(counter, Ordering::Release);
        self.state
            .store(pack(TAG_COMMITTED, counter), Ordering::Release);
        self.head.fetch_max(counter, Ordering::AcqRel);
    }

    /// `store::release_slot`: the in-memory word returns to Free before
    /// the slot re-enters the queue (the durable high-water record keeps
    /// the last value — this model's `meta` plays that role for audits).
    fn release(&self) {
        self.state.store(pack(TAG_FREE, 0), Ordering::Release);
    }

    fn audit(&self) -> SlotDecision {
        let state = self.state.load(Ordering::Acquire);
        let meta = self.meta.load(Ordering::Acquire);
        decide(state, meta)
    }
}

/// Two checkpointers race one free slot. Exactly one claim CAS wins, and
/// a concurrent auditor — sampling at every interleaving point loom can
/// construct — never reads the unreachable Torn lattice point.
#[test]
fn commit_claim_race_has_one_winner_and_no_torn_audit() {
    loom::model(|| {
        let slot = Arc::new(CommitSlotModel::new());
        let winners = Arc::new(AtomicUsize::new(0));

        let checkpointers: Vec<_> = [1usize, 2]
            .into_iter()
            .map(|counter| {
                let slot = Arc::clone(&slot);
                let winners = Arc::clone(&winners);
                thread::spawn(move || {
                    if slot.try_claim(counter) {
                        winners.fetch_add(1, Ordering::SeqCst);
                        slot.commit(counter);
                    }
                })
            })
            .collect();
        let auditor = {
            let slot = Arc::clone(&slot);
            thread::spawn(move || {
                let decision = slot.audit();
                assert!(
                    !matches!(decision, SlotDecision::Torn { .. }),
                    "auditor read the unreachable lattice point: {decision:?}"
                );
            })
        };

        for t in checkpointers {
            t.join().unwrap();
        }
        auditor.join().unwrap();
        assert_eq!(winners.load(Ordering::SeqCst), 1, "one claim CAS wins");
        let final_decision = slot.audit();
        let head = slot.head.load(Ordering::Acquire);
        assert!(
            matches!(final_decision, SlotDecision::Committed(c) if c == head),
            "winner committed at the head the watermark records: {final_decision:?} vs {head}"
        );
    });
}

/// A crash between the claim CAS and the meta publish: the checkpointer
/// simply stops after claiming. In every interleaving the auditor decides
/// the slot — Empty before the CAS lands, InFlight{c} after — and never
/// mistakes the claim for a commit.
#[test]
fn crash_between_claim_cas_and_meta_publish_is_decidable() {
    loom::model(|| {
        let slot = Arc::new(CommitSlotModel::new());
        let crasher = {
            let slot = Arc::clone(&slot);
            thread::spawn(move || {
                assert!(slot.try_claim(1), "uncontended claim always wins");
                // Crash: no meta publish, no Committed word, nothing.
            })
        };
        let decision = slot.audit();
        assert!(
            matches!(decision, SlotDecision::Empty | SlotDecision::InFlight(1)),
            "mid-claim audit must decide Empty or InFlight: {decision:?}"
        );
        crasher.join().unwrap();
        assert_eq!(
            slot.audit(),
            SlotDecision::InFlight(1),
            "post-crash audit decides the claim from the state word alone"
        );
        assert_eq!(slot.head.load(Ordering::Acquire), 0, "head never advanced");
    });
}

/// The full claim → commit → recycle → re-claim cycle: checkpointer 1
/// commits and releases the slot; checkpointer 2 re-claims it while an
/// auditor samples concurrently. The second claim only succeeds after the
/// release's Free store, ownership is never shared, and the head
/// watermark is monotone across the recycle.
#[test]
fn commit_recycle_handoff_stays_decidable_and_monotone() {
    loom::model(|| {
        let slot = Arc::new(CommitSlotModel::new());
        assert!(slot.try_claim(1), "first claim is uncontended at start");
        let second = {
            let slot = Arc::clone(&slot);
            thread::spawn(move || {
                // Spin-claim as `begin_checkpoint` does via the queue: the
                // slot becomes claimable only after the release.
                let mut claimed = slot.try_claim(2);
                while !claimed {
                    loom::thread::yield_now();
                    claimed = slot.try_claim(2);
                }
                slot.commit(2);
            })
        };
        let auditor = {
            let slot = Arc::clone(&slot);
            thread::spawn(move || {
                let decision = slot.audit();
                assert!(
                    !matches!(decision, SlotDecision::Torn { .. }),
                    "recycle window leaked a torn read: {decision:?}"
                );
            })
        };

        slot.commit(1);
        slot.release();

        second.join().unwrap();
        auditor.join().unwrap();
        assert_eq!(slot.audit(), SlotDecision::Committed(2));
        assert_eq!(slot.head.load(Ordering::Acquire), 2, "fetch_max is monotone");
    });
}

//! Fixed-bucket latency histograms.
//!
//! Concurrent checkpoint workers record nanosecond durations with one
//! atomic increment — no locks, no allocation — into power-of-two buckets
//! (bucket `i` covers `[2^i, 2^(i+1))` ns). Quantile queries walk the 64
//! buckets and interpolate linearly inside the winning bucket, so the
//! relative error is bounded by the bucket width (< 2×) and in practice far
//! less; exact min/max/sum/count are tracked separately.

use std::sync::atomic::{AtomicU64, Ordering};

const BUCKETS: usize = 64;

/// A lock-free histogram of nanosecond latencies.
///
/// # Examples
///
/// ```
/// use pccheck_telemetry::LatencyHistogram;
///
/// let h = LatencyHistogram::new();
/// for ns in [100u64, 200, 300, 400, 1_000_000] {
///     h.record(ns);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.max_nanos(), 1_000_000);
/// let p50 = h.quantile(0.5);
/// assert!(p50 >= 128 && p50 < 512, "p50 within a bucket of 200-300: {p50}");
/// ```
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Point-in-time summary of one histogram (plain data for reports).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistogramSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples, nanoseconds.
    pub sum_nanos: u64,
    /// Exact minimum sample (0 when empty).
    pub min_nanos: u64,
    /// Exact maximum sample (0 when empty).
    pub max_nanos: u64,
    /// Estimated median.
    pub p50_nanos: u64,
    /// Estimated 95th percentile.
    pub p95_nanos: u64,
    /// Estimated 99th percentile.
    pub p99_nanos: u64,
}

impl HistogramSummary {
    /// Arithmetic mean in nanoseconds (0 when empty).
    pub fn mean_nanos(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.sum_nanos / self.count
        }
    }
}

fn bucket_of(nanos: u64) -> usize {
    // 0 and 1 land in bucket 0; otherwise floor(log2).
    (63 - nanos.max(1).leading_zeros()) as usize
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample of `nanos`.
    pub fn record(&self, nanos: u64) {
        self.buckets[bucket_of(nanos)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(nanos, Ordering::Relaxed);
        self.min.fetch_min(nanos, Ordering::Relaxed);
        self.max.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples in nanoseconds.
    pub fn sum_nanos(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Exact smallest sample (0 when empty).
    pub fn min_nanos(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX {
            0
        } else {
            m
        }
    }

    /// Exact largest sample (0 when empty).
    pub fn max_nanos(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Estimated quantile `q` in `[0, 1]`, clamped to the exact min/max.
    ///
    /// Returns 0 for an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        let total = self.count();
        if total == 0 {
            return 0;
        }
        // Rank of the sample we want, 1-based. The extreme ranks are the
        // exact tracked min/max.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        if rank == 1 {
            return self.min_nanos();
        }
        if rank == total {
            return self.max_nanos();
        }
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                // Interpolate within bucket [2^i, 2^(i+1)), bounded by what
                // the bucket can actually contain: the floor is the exact
                // min (binds in the min's own bucket), the ceiling is the
                // bucket's largest representable value — or the exact max,
                // whichever is smaller. With few samples the tail rank used
                // to interpolate up to the *next* bucket's lower edge
                // (frac == 1 → est == hi); clamping to the attainable top
                // keeps small-n p95/p99 from reporting past the data.
                let lo = (1u64 << i).max(self.min_nanos());
                let hi = if i + 1 >= 64 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                let top = hi.min(self.max_nanos()).max(lo);
                let frac = (rank - seen) as f64 / c as f64;
                let est = lo as f64 + frac * (top - lo) as f64;
                return (est as u64).clamp(self.min_nanos(), self.max_nanos());
            }
            seen += c;
        }
        self.max_nanos()
    }

    /// Per-bucket sample counts (bucket `i` covers `[2^i, 2^(i+1))` ns).
    ///
    /// This is the raw shape behind [`quantile`](Self::quantile); the
    /// metrics registry exposes it as Prometheus `le` buckets, and the SLO
    /// watchdog diffs successive snapshots of it to compute quantiles over
    /// a rolling window.
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Inclusive upper bound of bucket `i` (`2^(i+1) - 1`, saturating to
    /// `u64::MAX` for the last bucket).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 64`.
    pub const fn bucket_bound(i: usize) -> u64 {
        assert!(i < BUCKETS);
        if i + 1 >= 64 {
            u64::MAX
        } else {
            (1u64 << (i + 1)) - 1
        }
    }

    /// A point-in-time summary (count, min/max, p50/p95/p99).
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum_nanos: self.sum_nanos(),
            min_nanos: self.min_nanos(),
            max_nanos: self.max_nanos(),
            p50_nanos: self.quantile(0.50),
            p95_nanos: self.quantile(0.95),
            p99_nanos: self.quantile(0.99),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zeroes() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min_nanos(), 0);
        assert_eq!(h.max_nanos(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.summary(), HistogramSummary::default());
    }

    #[test]
    fn bucket_indexing() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), 63);
    }

    #[test]
    fn exact_stats_are_exact() {
        let h = LatencyHistogram::new();
        for ns in [5u64, 17, 1000, 250, 42] {
            h.record(ns);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum_nanos(), 5 + 17 + 1000 + 250 + 42);
        assert_eq!(h.min_nanos(), 5);
        assert_eq!(h.max_nanos(), 1000);
        assert_eq!(h.summary().mean_nanos(), (5 + 17 + 1000 + 250 + 42) / 5);
    }

    #[test]
    fn percentiles_with_known_inputs() {
        // 100 samples: 1..=100 microseconds.
        let h = LatencyHistogram::new();
        for us in 1..=100u64 {
            h.record(us * 1000);
        }
        let p50 = h.quantile(0.50);
        let p95 = h.quantile(0.95);
        let p99 = h.quantile(0.99);
        // True values: 50us, 95us, 99us. Log2 buckets guarantee < 2x error.
        assert!(p50 >= 25_000 && p50 <= 100_000, "p50 = {p50}");
        assert!(p95 >= 47_500 && p95 <= 190_000, "p95 = {p95}");
        assert!(p99 >= 49_500 && p99 <= 198_000, "p99 = {p99}");
        // Ordering and clamping hold.
        assert!(p50 <= p95 && p95 <= p99);
        assert!(p99 <= h.max_nanos());
        assert_eq!(h.quantile(1.0), 100_000, "q=1.0 clamps to exact max");
        assert_eq!(h.quantile(0.0), 1000, "q=0 clamps to exact min");
    }

    #[test]
    fn identical_samples_give_exact_percentiles() {
        let h = LatencyHistogram::new();
        for _ in 0..10 {
            h.record(4096);
        }
        // All in one bucket, clamped to exact min=max=4096.
        assert_eq!(h.quantile(0.5), 4096);
        assert_eq!(h.quantile(0.99), 4096);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn quantile_out_of_range_panics() {
        LatencyHistogram::new().quantile(1.5);
    }

    #[test]
    fn small_sample_tail_quantiles_clamp_to_observed_max() {
        // Regression: whenever the nearest-rank tail rank ceil(q*n) equals
        // the count — true for every n <= 19 at p95 and n <= 99 at p99 —
        // the quantile must be the *exact* max, not an interpolation.
        for n in [1u64, 3, 10, 19] {
            let h = LatencyHistogram::new();
            for i in 0..n {
                h.record(600 + i);
            }
            assert_eq!(h.quantile(0.95), h.max_nanos(), "p95 with n={n}");
            assert_eq!(h.quantile(0.99), h.max_nanos(), "p99 with n={n}");
        }
        for n in [50u64, 99] {
            let h = LatencyHistogram::new();
            for i in 0..n {
                h.record(1_000 + i * 7);
            }
            assert_eq!(h.quantile(0.99), h.max_nanos(), "p99 with n={n}");
        }
    }

    #[test]
    fn interpolation_stays_inside_the_winning_bucket() {
        // 24 samples at 600ns (bucket [512, 1024)) and one outlier. The
        // p95 rank (24) is the last sample of the 600ns bucket: the old
        // full-bucket interpolation returned 1024 — the *next* bucket's
        // lower edge. The estimate must stay within the winning bucket.
        let h = LatencyHistogram::new();
        for _ in 0..24 {
            h.record(600);
        }
        h.record(40_000);
        let p95 = h.quantile(0.95);
        assert!(p95 >= 600 && p95 <= 1023, "p95 = {p95}");
        // The outlier itself is still reported exactly at the extreme rank.
        assert_eq!(h.quantile(0.99), 40_000);
        assert_eq!(h.quantile(1.0), 40_000);
    }

    #[test]
    fn quantiles_never_exceed_observed_max() {
        // Mini property sweep: whatever the shape, no quantile escapes the
        // observed [min, max] envelope.
        let mut x = 0x9e3779b97f4a7c15u64;
        let h = LatencyHistogram::new();
        for _ in 0..37 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            h.record(x % 1_000_000 + 1);
        }
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!(v >= h.min_nanos() && v <= h.max_nanos(), "q={q} v={v}");
        }
    }

    #[test]
    fn bucket_counts_expose_raw_shape() {
        let h = LatencyHistogram::new();
        h.record(1);
        h.record(3);
        h.record(600);
        h.record(600);
        let counts = h.bucket_counts();
        assert_eq!(counts[0], 1);
        assert_eq!(counts[1], 1);
        assert_eq!(counts[9], 2);
        assert_eq!(counts.iter().sum::<u64>(), h.count());
        assert_eq!(LatencyHistogram::bucket_bound(0), 1);
        assert_eq!(LatencyHistogram::bucket_bound(9), 1023);
        assert_eq!(LatencyHistogram::bucket_bound(63), u64::MAX);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let h = std::sync::Arc::clone(&h);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    h.record(t * 1_000_000 + i + 1);
                }
            }));
        }
        for hnd in handles {
            hnd.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
        assert_eq!(h.min_nanos(), 1);
        assert_eq!(h.max_nanos(), 3 * 1_000_000 + 1000);
    }
}

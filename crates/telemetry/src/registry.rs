//! The live metrics registry: on-demand exposition of every counter,
//! gauge, and histogram a [`Telemetry`] recorder holds.
//!
//! PRs 1–5 made the recorder rich but *post-hoc*: the numbers were only
//! reachable by draining the run and rendering a summary. The registry
//! closes that gap for the ROADMAP's live consumers (adaptive tuning, the
//! multi-tenant daemon, peer-health watchdogs): [`MetricsRegistry`]
//! snapshots the shared recorder on demand into a stable schema and
//! renders it as Prometheus text exposition ([`prometheus_text`]) or a
//! single JSON object ([`json`]); [`MetricsServer`] serves both over a
//! minimal hand-rolled HTTP listener (`GET /metrics`, `GET
//! /metrics.json`) so `pccheckctl serve` and `examples/metrics_server.rs`
//! stay dependency-free.
//!
//! Metric names are part of the schema: `pccheck_` prefix, `_total`
//! suffix on monotonic counters, nanosecond histograms with power-of-two
//! `le` bounds matching [`LatencyHistogram`]'s buckets.
//!
//! [`prometheus_text`]: MetricsRegistry::prometheus_text
//! [`json`]: MetricsRegistry::json

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::event::Phase;
use crate::histogram::LatencyHistogram;
use crate::recorder::{Telemetry, TelemetrySnapshot};

/// Schema identifier stamped into the JSON exposition so downstream
/// scrapers can detect format changes.
pub const METRICS_SCHEMA: &str = "pccheck.metrics.v1";

/// On-demand exposition over a shared [`Telemetry`] recorder.
///
/// Cloning is cheap (the handle inside is an `Arc` clone); a registry
/// built over a disabled handle renders empty-but-valid documents.
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    telemetry: Telemetry,
}

/// Emits one Prometheus histogram from raw bucket counts: cumulative
/// `_bucket{le=...}` series (only buckets that move the count, plus
/// `+Inf`), then `_sum` and `_count`.
fn prom_histogram(out: &mut String, name: &str, labels: &str, hist: &LatencyHistogram) {
    let counts = hist.bucket_counts();
    let total: u64 = counts.iter().sum();
    let sep = if labels.is_empty() { "" } else { "," };
    let mut cum = 0u64;
    for (i, c) in counts.iter().enumerate() {
        if *c == 0 {
            continue;
        }
        cum += c;
        let _ = writeln!(
            out,
            "{name}_bucket{{{labels}{sep}le=\"{}\"}} {cum}",
            LatencyHistogram::bucket_bound(i)
        );
    }
    let _ = writeln!(out, "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {total}");
    if labels.is_empty() {
        let _ = writeln!(out, "{name}_sum {}", hist.sum_nanos());
        let _ = writeln!(out, "{name}_count {total}");
    } else {
        let _ = writeln!(out, "{name}_sum{{{labels}}} {}", hist.sum_nanos());
        let _ = writeln!(out, "{name}_count{{{labels}}} {total}");
    }
}

fn prom_metric(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Serializes one histogram summary as a JSON object (no surrounding key).
fn json_summary(s: &crate::histogram::HistogramSummary) -> String {
    format!(
        "{{\"count\":{},\"sum_nanos\":{},\"min_nanos\":{},\"max_nanos\":{},\
         \"p50_nanos\":{},\"p95_nanos\":{},\"p99_nanos\":{}}}",
        s.count, s.sum_nanos, s.min_nanos, s.max_nanos, s.p50_nanos, s.p95_nanos, s.p99_nanos
    )
}

impl MetricsRegistry {
    /// A registry exposing `telemetry`'s shared recorder.
    pub fn new(telemetry: Telemetry) -> Self {
        MetricsRegistry { telemetry }
    }

    /// The handle this registry snapshots.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// One consistent rollup of everything the recorder holds (`None`
    /// when the handle is disabled).
    pub fn snapshot(&self) -> Option<TelemetrySnapshot> {
        self.telemetry.snapshot()
    }

    /// Prometheus text exposition (format version 0.0.4) of the current
    /// recorder state. Stable names: `pccheck_*`, `_total` counters,
    /// nanosecond histograms with power-of-two `le` bounds.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        let Some(snap) = self.telemetry.snapshot() else {
            let _ = writeln!(out, "# pccheck telemetry disabled: no metrics");
            return out;
        };
        let c = &snap.counters;
        for (name, help, v) in [
            (
                "pccheck_checkpoints_requested_total",
                "Checkpoint requests accepted.",
                c.requested,
            ),
            (
                "pccheck_checkpoints_committed_total",
                "Checkpoints that became the latest committed state.",
                c.committed,
            ),
            (
                "pccheck_checkpoints_superseded_total",
                "Checkpoints that lost the commit race.",
                c.superseded,
            ),
            (
                "pccheck_checkpoints_failed_total",
                "Checkpoints that failed.",
                c.failed,
            ),
            (
                "pccheck_bytes_persisted_total",
                "Payload bytes of committed checkpoints.",
                c.bytes_persisted,
            ),
            (
                "pccheck_gpu_copy_bytes_total",
                "Bytes moved by the GPU-to-DRAM copy phase.",
                snap.gpu_copy_bytes,
            ),
            (
                "pccheck_persist_chunk_bytes_total",
                "Bytes moved by the DRAM-to-device persist phase.",
                snap.persist_chunk_bytes,
            ),
            (
                "pccheck_restore_chunk_bytes_total",
                "Bytes moved by the device-to-DRAM restore-read phase.",
                snap.restore_chunk_bytes,
            ),
            (
                "pccheck_delta_bytes_saved_total",
                "Payload bytes the delta path avoided persisting.",
                snap.delta_bytes_saved,
            ),
        ] {
            prom_metric(&mut out, name, "counter", help);
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, help, v) in [
            (
                "pccheck_in_flight",
                "Checkpoints between request and terminal event.",
                snap.in_flight,
            ),
            (
                "pccheck_in_flight_peak",
                "High-water mark of concurrent in-flight checkpoints.",
                snap.in_flight_peak,
            ),
            (
                "pccheck_queue_depth",
                "Last observed free-slot queue depth.",
                snap.queue_depth,
            ),
            (
                "pccheck_queue_depth_peak",
                "High-water mark of the free-slot queue depth.",
                snap.queue_depth_peak,
            ),
            (
                "pccheck_dirty_ratio_permille",
                "Last observed delta-checkpoint dirty ratio, permille.",
                snap.dirty_ratio_permille,
            ),
            (
                "pccheck_window_nanos",
                "Nanoseconds since the recorder epoch.",
                snap.window_nanos,
            ),
        ] {
            prom_metric(&mut out, name, "gauge", help);
            let _ = writeln!(out, "{name} {v}");
        }
        prom_metric(
            &mut out,
            "pccheck_stall_fraction",
            "gauge",
            "Fraction of the window the training thread spent stalled.",
        );
        let _ = writeln!(out, "pccheck_stall_fraction {}", snap.stall_fraction());
        prom_metric(
            &mut out,
            "pccheck_device_queue_depth",
            "gauge",
            "Last observed submission-queue depth per tracked device.",
        );
        for (i, depth) in snap.device_queue_depth.iter().enumerate() {
            let _ = writeln!(out, "pccheck_device_queue_depth{{device=\"{i}\"}} {depth}");
        }
        prom_metric(
            &mut out,
            "pccheck_device_queue_peak",
            "gauge",
            "High-water submission-queue depth per tracked device.",
        );
        for (i, peak) in snap.device_queue_peak.iter().enumerate() {
            let _ = writeln!(out, "pccheck_device_queue_peak{{device=\"{i}\"}} {peak}");
        }
        if let Some(r) = self.telemetry.recorder() {
            prom_metric(
                &mut out,
                "pccheck_phase_latency_nanos",
                "histogram",
                "Checkpoint/recovery lifecycle phase latency.",
            );
            for phase in Phase::ALL {
                let hist = r.phase_hist(phase);
                if hist.count() == 0 {
                    continue;
                }
                prom_histogram(
                    &mut out,
                    "pccheck_phase_latency_nanos",
                    &format!("phase=\"{}\"", phase.name()),
                    hist,
                );
            }
            for (name, help, hist) in [
                (
                    "pccheck_stall_nanos",
                    "Training-thread stall time per checkpoint() call.",
                    r.stall_hist(),
                ),
                (
                    "pccheck_dev_write_nanos",
                    "Per-chunk device write latency.",
                    r.write_stage_hist(),
                ),
                (
                    "pccheck_dev_persist_nanos",
                    "Per-chunk device persist (fence) latency.",
                    r.persist_stage_hist(),
                ),
                (
                    "pccheck_dev_read_nanos",
                    "Per-chunk device read latency (restore path).",
                    r.read_stage_hist(),
                ),
            ] {
                if hist.count() == 0 {
                    continue;
                }
                prom_metric(&mut out, name, "histogram", help);
                prom_histogram(&mut out, name, "", hist);
            }
        }
        out
    }

    /// The whole snapshot as one JSON object with a stable
    /// [`METRICS_SCHEMA`] tag (hand-rolled, like every exporter in this
    /// crate).
    pub fn json(&self) -> String {
        let Some(snap) = self.telemetry.snapshot() else {
            return format!("{{\"schema\":\"{METRICS_SCHEMA}\",\"enabled\":false}}\n");
        };
        let c = &snap.counters;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"schema\":\"{METRICS_SCHEMA}\",\"enabled\":true,\
             \"window_nanos\":{},\"counters\":{{\
             \"requested\":{},\"committed\":{},\"superseded\":{},\
             \"failed\":{},\"bytes_persisted\":{},\"gpu_copy_bytes\":{},\
             \"persist_chunk_bytes\":{},\"restore_chunk_bytes\":{},\
             \"delta_bytes_saved\":{}}},\"gauges\":{{\
             \"in_flight\":{},\"in_flight_peak\":{},\"queue_depth\":{},\
             \"queue_depth_peak\":{},\"dirty_ratio_permille\":{},\
             \"stall_fraction\":{}}}",
            snap.window_nanos,
            c.requested,
            c.committed,
            c.superseded,
            c.failed,
            c.bytes_persisted,
            snap.gpu_copy_bytes,
            snap.persist_chunk_bytes,
            snap.restore_chunk_bytes,
            snap.delta_bytes_saved,
            snap.in_flight,
            snap.in_flight_peak,
            snap.queue_depth,
            snap.queue_depth_peak,
            snap.dirty_ratio_permille,
            snap.stall_fraction(),
        );
        let depths: Vec<String> = snap.device_queue_depth.iter().map(u64::to_string).collect();
        let peaks: Vec<String> = snap.device_queue_peak.iter().map(u64::to_string).collect();
        let _ = write!(
            out,
            ",\"device_queue_depth\":[{}],\"device_queue_peak\":[{}],\"histograms\":{{",
            depths.join(","),
            peaks.join(",")
        );
        let mut first = true;
        for phase in Phase::ALL {
            let s = snap.phase(phase);
            if s.count == 0 {
                continue;
            }
            let _ = write!(
                out,
                "{}\"phase_{}\":{}",
                if first { "" } else { "," },
                phase.name(),
                json_summary(s)
            );
            first = false;
        }
        for (name, s) in [
            ("stall", &snap.stall),
            ("dev_write", &snap.write_stage),
            ("dev_persist", &snap.persist_stage),
            ("dev_read", &snap.read_stage),
        ] {
            if s.count == 0 {
                continue;
            }
            let _ = write!(
                out,
                "{}\"{}\":{}",
                if first { "" } else { "," },
                name,
                json_summary(s)
            );
            first = false;
        }
        let _ = writeln!(out, "}}}}");
        out
    }

    /// A compact one-screen console view (the `pccheckctl top` refresh
    /// body): lifecycle counts, stall fraction, hot-phase latencies, and
    /// queue pressure.
    pub fn console_view(&self) -> String {
        let mut out = String::new();
        let Some(snap) = self.telemetry.snapshot() else {
            let _ = writeln!(out, "telemetry disabled");
            return out;
        };
        let c = &snap.counters;
        let _ = writeln!(
            out,
            "ckpt req {} ok {} lost {} fail {} | in-flight {}/{} | stall {:.2}%",
            c.requested,
            c.committed,
            c.superseded,
            c.failed,
            snap.in_flight,
            snap.in_flight_peak,
            snap.stall_fraction() * 100.0
        );
        for phase in [
            Phase::TicketWait,
            Phase::GpuCopy,
            Phase::Persist,
            Phase::Commit,
        ] {
            let s = snap.phase(phase);
            if s.count == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "  {:<11} n={:<6} p50 {:>9}ns p99 {:>9}ns max {:>9}ns",
                phase.name(),
                s.count,
                s.p50_nanos,
                s.p99_nanos,
                s.max_nanos
            );
        }
        let peaks: Vec<String> = snap
            .device_queue_peak
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p > 0)
            .map(|(i, p)| format!("dev{i}={}/{p}", snap.device_queue_depth[i]))
            .collect();
        if !peaks.is_empty() {
            let _ = writeln!(out, "  queues: {}", peaks.join(" "));
        }
        out
    }
}

/// A minimal metrics HTTP endpoint over [`std::net::TcpListener`].
///
/// Routes: `GET /metrics` (Prometheus text), `GET /metrics.json` (the
/// registry's JSON document); everything else is 404. One accept loop on
/// a background thread, one request per connection — deliberately tiny,
/// for scrapes and `curl`, not for load.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

fn http_response(status: &str, content_type: &str, body: &str) -> String {
    format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

fn serve_one(stream: TcpStream, registry: &MetricsRegistry) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    // Drain headers so well-behaved clients see a clean close.
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line == "\r\n" || line == "\n" => break,
            Ok(_) => {}
            Err(_) => break,
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let response = if method != "GET" {
        http_response("405 Method Not Allowed", "text/plain", "GET only\n")
    } else {
        match path {
            "/metrics" => http_response(
                "200 OK",
                "text/plain; version=0.0.4",
                &registry.prometheus_text(),
            ),
            "/metrics.json" => http_response("200 OK", "application/json", &registry.json()),
            _ => http_response("404 Not Found", "text/plain", "try /metrics\n"),
        }
    };
    let mut stream = reader.into_inner();
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts the accept loop on a background thread.
    ///
    /// # Errors
    ///
    /// Returns the bind/listen error as a string.
    pub fn bind(addr: &str, registry: MetricsRegistry) -> Result<Self, String> {
        let listener = TcpListener::bind(addr).map_err(|e| e.to_string())?;
        let local = listener.local_addr().map_err(|e| e.to_string())?;
        listener.set_nonblocking(true).map_err(|e| e.to_string())?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            while !stop_flag.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let _ = stream.set_nonblocking(false);
                        serve_one(stream, &registry);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(MetricsServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Fetches `path` from a running [`MetricsServer`] over a plain TCP GET —
/// the client half of the endpoint, used by `pccheckctl top` in remote
/// mode and the smoke tests.
///
/// # Errors
///
/// Returns connect/read errors as strings; the response must be an HTTP
/// 200 or the status line is returned as the error.
pub fn http_get(addr: SocketAddr, path: &str) -> Result<String, String> {
    let mut stream =
        TcpStream::connect_timeout(&addr, Duration::from_secs(2)).map_err(|e| e.to_string())?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: pccheck\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .map_err(|e| e.to_string())?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| e.to_string())?;
    let Some((head, body)) = response.split_once("\r\n\r\n") else {
        return Err("malformed HTTP response".into());
    };
    let status = head.lines().next().unwrap_or("");
    if !status.contains("200") {
        return Err(format!("unexpected status: {status}"));
    }
    Ok(body.to_string())
}

/// Validates Prometheus text exposition shape: every non-comment line is
/// `name[{labels}] value`, histogram `_bucket` series are cumulative and
/// end with `+Inf`. Returns the number of samples on success.
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn validate_prometheus_text(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    let mut last_bucket: Option<(String, u64)> = None;
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_part, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("no value on line: {line}"))?;
        value
            .parse::<f64>()
            .map_err(|_| format!("bad value {value:?} on line: {line}"))?;
        let name = name_part.split('{').next().unwrap_or(name_part);
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("bad metric name on line: {line}"));
        }
        if name_part.contains('{') && !name_part.ends_with('}') {
            return Err(format!("unterminated labels on line: {line}"));
        }
        if name.ends_with("_bucket") {
            // Cumulative within one series: the count must not decrease.
            let series = name_part
                .split("le=")
                .next()
                .unwrap_or(name_part)
                .to_string();
            let count = value.parse::<f64>().map_err(|e| e.to_string())? as u64;
            if let Some((prev_series, prev_count)) = &last_bucket {
                if *prev_series == series && count < *prev_count {
                    return Err(format!("non-cumulative buckets at: {line}"));
                }
            }
            last_bucket = Some((series, count));
        }
        samples += 1;
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SpanId;

    fn active_registry() -> MetricsRegistry {
        let t = Telemetry::enabled();
        let span = t.span_requested("pccheck", 1, 4096);
        let s = t.now_nanos();
        t.chunk(span, Phase::Persist, 0, 4096);
        t.phase_done(span, Phase::GpuCopy, s);
        t.phase_done(span, Phase::Persist, s);
        t.phase_done(span, Phase::Commit, s);
        t.stall(span, 1500);
        t.stage_write(800);
        t.gauge_device_queue(0, 2);
        t.committed(span, 1, 4096);
        t.actor_span(span, "writer-0", s, 4096);
        MetricsRegistry::new(t)
    }

    #[test]
    fn prometheus_text_has_stable_names_and_parses() {
        let reg = active_registry();
        let text = reg.prometheus_text();
        assert!(text.contains("pccheck_checkpoints_requested_total 1"));
        assert!(text.contains("pccheck_checkpoints_committed_total 1"));
        assert!(text.contains("pccheck_bytes_persisted_total 4096"));
        assert!(text.contains("pccheck_persist_chunk_bytes_total 4096"));
        assert!(text.contains("pccheck_in_flight 0"));
        assert!(text.contains("pccheck_phase_latency_nanos_bucket{phase=\"persist\""));
        assert!(text.contains("pccheck_phase_latency_nanos_count{phase=\"commit\"} 1"));
        assert!(text.contains("pccheck_stall_nanos_sum 1500"));
        assert!(text.contains("pccheck_dev_write_nanos_count 1"));
        assert!(text.contains("le=\"+Inf\""));
        let samples = validate_prometheus_text(&text).expect("exposition parses");
        assert!(samples > 20, "expected a rich exposition, got {samples}");
    }

    #[test]
    fn disabled_registry_renders_valid_documents() {
        let reg = MetricsRegistry::new(Telemetry::disabled());
        let text = reg.prometheus_text();
        assert!(text.starts_with('#'));
        assert_eq!(validate_prometheus_text(&text), Ok(0));
        let json = reg.json();
        assert!(json.contains("\"enabled\":false"));
        assert!(reg.snapshot().is_none());
        assert!(reg.console_view().contains("disabled"));
    }

    #[test]
    fn json_document_is_balanced_and_tagged() {
        let reg = active_registry();
        let json = reg.json();
        assert!(json.contains(METRICS_SCHEMA));
        assert!(json.contains("\"requested\":1"));
        assert!(json.contains("\"phase_persist\":{"));
        assert!(json.contains("\"stall\":{"));
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(json.matches(open).count(), json.matches(close).count());
        }
    }

    #[test]
    fn console_view_shows_lifecycle_and_phases() {
        let reg = active_registry();
        let view = reg.console_view();
        assert!(view.contains("ckpt req 1 ok 1"));
        assert!(view.contains("persist"));
        assert!(view.contains("dev0="));
    }

    #[test]
    fn server_serves_both_routes() {
        let reg = active_registry();
        let server = MetricsServer::bind("127.0.0.1:0", reg).expect("bind");
        let addr = server.addr();
        let prom = http_get(addr, "/metrics").expect("prom route");
        assert!(prom.contains("pccheck_checkpoints_requested_total"));
        assert!(validate_prometheus_text(&prom).is_ok());
        let json = http_get(addr, "/metrics.json").expect("json route");
        assert!(json.contains(METRICS_SCHEMA));
        assert!(http_get(addr, "/nope").is_err());
        server.shutdown();
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_prometheus_text("pccheck_x{broken 1").is_err());
        assert!(validate_prometheus_text("bad name 1").is_err());
        assert!(validate_prometheus_text("pccheck_x nope").is_err());
        assert_eq!(validate_prometheus_text("# only comments\n"), Ok(0));
        let _ = SpanId::NONE;
    }
}

//! The live metrics registry: on-demand exposition of every counter,
//! gauge, and histogram a [`Telemetry`] recorder holds.
//!
//! PRs 1–5 made the recorder rich but *post-hoc*: the numbers were only
//! reachable by draining the run and rendering a summary. The registry
//! closes that gap for the ROADMAP's live consumers (adaptive tuning, the
//! multi-tenant daemon, peer-health watchdogs): [`MetricsRegistry`]
//! snapshots the shared recorder on demand into a stable schema and
//! renders it as Prometheus text exposition ([`prometheus_text`]) or a
//! single JSON object ([`json`]); [`MetricsServer`] serves both over a
//! minimal hand-rolled HTTP listener (`GET /metrics`, `GET
//! /metrics.json`) so `pccheckctl serve` and `examples/metrics_server.rs`
//! stay dependency-free.
//!
//! Metric names are part of the schema: `pccheck_` prefix, `_total`
//! suffix on monotonic counters, nanosecond histograms with power-of-two
//! `le` bounds matching [`LatencyHistogram`]'s buckets.
//!
//! [`prometheus_text`]: MetricsRegistry::prometheus_text
//! [`json`]: MetricsRegistry::json

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::event::Phase;
use crate::histogram::LatencyHistogram;
use crate::recorder::{Telemetry, TelemetrySnapshot};

/// Schema identifier stamped into the JSON exposition so downstream
/// scrapers can detect format changes.
pub const METRICS_SCHEMA: &str = "pccheck.metrics.v1";

/// On-demand exposition over a shared [`Telemetry`] recorder.
///
/// Cloning is cheap (the handle inside is an `Arc` clone); a registry
/// built over a disabled handle renders empty-but-valid documents.
///
/// A multi-tenant service additionally registers one recorder per job
/// ([`register_job`]): every counter/gauge family then also carries
/// `job="<name>"`-labelled series, the JSON document gains a `"jobs"`
/// object, and [`console_view`] renders one row per job. The job list is
/// shared across clones, so a [`MetricsServer`] sees jobs submitted
/// after it was bound.
///
/// [`register_job`]: MetricsRegistry::register_job
/// [`console_view`]: MetricsRegistry::console_view
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    telemetry: Telemetry,
    jobs: Arc<Mutex<Vec<(String, Telemetry)>>>,
}

/// Escapes a label value for Prometheus text exposition (`\`, `"`, and
/// newlines; the only characters the format requires escaping).
fn prom_label_escape(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Emits one Prometheus histogram from raw bucket counts: cumulative
/// `_bucket{le=...}` series (only buckets that move the count, plus
/// `+Inf`), then `_sum` and `_count`.
fn prom_histogram(out: &mut String, name: &str, labels: &str, hist: &LatencyHistogram) {
    let counts = hist.bucket_counts();
    let total: u64 = counts.iter().sum();
    let sep = if labels.is_empty() { "" } else { "," };
    let mut cum = 0u64;
    for (i, c) in counts.iter().enumerate() {
        if *c == 0 {
            continue;
        }
        cum += c;
        let _ = writeln!(
            out,
            "{name}_bucket{{{labels}{sep}le=\"{}\"}} {cum}",
            LatencyHistogram::bucket_bound(i)
        );
    }
    let _ = writeln!(out, "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {total}");
    if labels.is_empty() {
        let _ = writeln!(out, "{name}_sum {}", hist.sum_nanos());
        let _ = writeln!(out, "{name}_count {total}");
    } else {
        let _ = writeln!(out, "{name}_sum{{{labels}}} {}", hist.sum_nanos());
        let _ = writeln!(out, "{name}_count{{{labels}}} {total}");
    }
}

fn prom_metric(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Serializes one histogram summary as a JSON object (no surrounding key).
fn json_summary(s: &crate::histogram::HistogramSummary) -> String {
    format!(
        "{{\"count\":{},\"sum_nanos\":{},\"min_nanos\":{},\"max_nanos\":{},\
         \"p50_nanos\":{},\"p95_nanos\":{},\"p99_nanos\":{}}}",
        s.count, s.sum_nanos, s.min_nanos, s.max_nanos, s.p50_nanos, s.p95_nanos, s.p99_nanos
    )
}

impl MetricsRegistry {
    /// A registry exposing `telemetry`'s shared recorder.
    pub fn new(telemetry: Telemetry) -> Self {
        MetricsRegistry {
            telemetry,
            jobs: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// The handle this registry snapshots.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Registers (or replaces) a per-job recorder under `name`. Every
    /// exposition then carries `job="<name>"`-labelled series alongside
    /// the aggregate. Shared across clones of this registry.
    pub fn register_job(&self, name: impl Into<String>, telemetry: Telemetry) {
        let name = name.into();
        let mut jobs = self.jobs.lock().unwrap();
        if let Some(slot) = jobs.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = telemetry;
        } else {
            jobs.push((name, telemetry));
        }
    }

    /// Removes a per-job recorder; returns whether it was registered.
    pub fn deregister_job(&self, name: &str) -> bool {
        let mut jobs = self.jobs.lock().unwrap();
        let before = jobs.len();
        jobs.retain(|(n, _)| n != name);
        jobs.len() != before
    }

    /// The per-job handles currently registered, in registration order.
    pub fn jobs(&self) -> Vec<(String, Telemetry)> {
        self.jobs.lock().unwrap().clone()
    }

    /// One consistent per-job rollup: registered jobs whose handles are
    /// enabled, each with a fresh snapshot.
    fn jobs_snapshot(&self) -> Vec<(String, TelemetrySnapshot)> {
        self.jobs
            .lock()
            .unwrap()
            .iter()
            .filter_map(|(name, t)| t.snapshot().map(|s| (name.clone(), s)))
            .collect()
    }

    /// One consistent rollup of everything the recorder holds (`None`
    /// when the handle is disabled).
    pub fn snapshot(&self) -> Option<TelemetrySnapshot> {
        self.telemetry.snapshot()
    }

    /// Prometheus text exposition (format version 0.0.4) of the current
    /// recorder state. Stable names: `pccheck_*`, `_total` counters,
    /// nanosecond histograms with power-of-two `le` bounds.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        let Some(snap) = self.telemetry.snapshot() else {
            let _ = writeln!(out, "# pccheck telemetry disabled: no metrics");
            return out;
        };
        let jobs = self.jobs_snapshot();
        // Family-major: HELP/TYPE once, then the aggregate series, then
        // one `job`-labelled series per registered tenant.
        type Sel = fn(&TelemetrySnapshot) -> u64;
        let counters: [(&str, &str, Sel); 11] = [
            (
                "pccheck_checkpoints_requested_total",
                "Checkpoint requests accepted.",
                |s: &TelemetrySnapshot| s.counters.requested,
            ),
            (
                "pccheck_checkpoints_committed_total",
                "Checkpoints that became the latest committed state.",
                |s| s.counters.committed,
            ),
            (
                "pccheck_checkpoints_superseded_total",
                "Checkpoints that lost the commit race.",
                |s| s.counters.superseded,
            ),
            (
                "pccheck_checkpoints_failed_total",
                "Checkpoints that failed.",
                |s| s.counters.failed,
            ),
            (
                "pccheck_bytes_persisted_total",
                "Payload bytes of committed checkpoints.",
                |s| s.counters.bytes_persisted,
            ),
            (
                "pccheck_gpu_copy_bytes_total",
                "Bytes moved by the GPU-to-DRAM copy phase.",
                |s| s.gpu_copy_bytes,
            ),
            (
                "pccheck_persist_chunk_bytes_total",
                "Bytes moved by the DRAM-to-device persist phase.",
                |s| s.persist_chunk_bytes,
            ),
            (
                "pccheck_restore_chunk_bytes_total",
                "Bytes moved by the device-to-DRAM restore-read phase.",
                |s| s.restore_chunk_bytes,
            ),
            (
                "pccheck_delta_bytes_saved_total",
                "Payload bytes the delta path avoided persisting.",
                |s| s.delta_bytes_saved,
            ),
            (
                "pccheck_codec_bytes_saved_total",
                "Payload bytes the chunk codec avoided persisting.",
                |s| s.codec_bytes_saved,
            ),
            (
                "pccheck_dedup_chunks_total",
                "Chunks stored as dedup references instead of bytes.",
                |s| s.dedup_chunks,
            ),
        ];
        for (name, help, sel) in counters {
            prom_metric(&mut out, name, "counter", help);
            let _ = writeln!(out, "{name} {}", sel(&snap));
            for (job, js) in &jobs {
                let _ = writeln!(
                    out,
                    "{name}{{job=\"{}\"}} {}",
                    prom_label_escape(job),
                    sel(js)
                );
            }
        }
        let gauges: [(&str, &str, Sel); 7] = [
            (
                "pccheck_in_flight",
                "Checkpoints between request and terminal event.",
                |s: &TelemetrySnapshot| s.in_flight,
            ),
            (
                "pccheck_in_flight_peak",
                "High-water mark of concurrent in-flight checkpoints.",
                |s| s.in_flight_peak,
            ),
            (
                "pccheck_queue_depth",
                "Last observed free-slot queue depth.",
                |s| s.queue_depth,
            ),
            (
                "pccheck_queue_depth_peak",
                "High-water mark of the free-slot queue depth.",
                |s| s.queue_depth_peak,
            ),
            (
                "pccheck_dirty_ratio_permille",
                "Last observed delta-checkpoint dirty ratio, permille.",
                |s| s.dirty_ratio_permille,
            ),
            (
                "pccheck_compression_ratio_permille",
                "Last observed framed physical/logical size ratio, permille.",
                |s| s.compression_ratio_permille,
            ),
            (
                "pccheck_window_nanos",
                "Nanoseconds since the recorder epoch.",
                |s| s.window_nanos,
            ),
        ];
        for (name, help, sel) in gauges {
            prom_metric(&mut out, name, "gauge", help);
            let _ = writeln!(out, "{name} {}", sel(&snap));
            for (job, js) in &jobs {
                let _ = writeln!(
                    out,
                    "{name}{{job=\"{}\"}} {}",
                    prom_label_escape(job),
                    sel(js)
                );
            }
        }
        prom_metric(
            &mut out,
            "pccheck_stall_fraction",
            "gauge",
            "Fraction of the window the training thread spent stalled.",
        );
        let _ = writeln!(out, "pccheck_stall_fraction {}", snap.stall_fraction());
        for (job, js) in &jobs {
            let _ = writeln!(
                out,
                "pccheck_stall_fraction{{job=\"{}\"}} {}",
                prom_label_escape(job),
                js.stall_fraction()
            );
        }
        prom_metric(
            &mut out,
            "pccheck_device_queue_depth",
            "gauge",
            "Last observed submission-queue depth per tracked device.",
        );
        for (i, depth) in snap.device_queue_depth.iter().enumerate() {
            let _ = writeln!(out, "pccheck_device_queue_depth{{device=\"{i}\"}} {depth}");
        }
        prom_metric(
            &mut out,
            "pccheck_device_queue_peak",
            "gauge",
            "High-water submission-queue depth per tracked device.",
        );
        for (i, peak) in snap.device_queue_peak.iter().enumerate() {
            let _ = writeln!(out, "pccheck_device_queue_peak{{device=\"{i}\"}} {peak}");
        }
        if let Some(r) = self.telemetry.recorder() {
            prom_metric(
                &mut out,
                "pccheck_phase_latency_nanos",
                "histogram",
                "Checkpoint/recovery lifecycle phase latency.",
            );
            for phase in Phase::ALL {
                let hist = r.phase_hist(phase);
                if hist.count() == 0 {
                    continue;
                }
                prom_histogram(
                    &mut out,
                    "pccheck_phase_latency_nanos",
                    &format!("phase=\"{}\"", phase.name()),
                    hist,
                );
            }
            for (job, t) in self.jobs.lock().unwrap().iter() {
                let Some(jr) = t.recorder() else { continue };
                for phase in Phase::ALL {
                    let hist = jr.phase_hist(phase);
                    if hist.count() == 0 {
                        continue;
                    }
                    prom_histogram(
                        &mut out,
                        "pccheck_phase_latency_nanos",
                        &format!(
                            "phase=\"{}\",job=\"{}\"",
                            phase.name(),
                            prom_label_escape(job)
                        ),
                        hist,
                    );
                }
            }
            for (name, help, hist) in [
                (
                    "pccheck_stall_nanos",
                    "Training-thread stall time per checkpoint() call.",
                    r.stall_hist(),
                ),
                (
                    "pccheck_dev_write_nanos",
                    "Per-chunk device write latency.",
                    r.write_stage_hist(),
                ),
                (
                    "pccheck_dev_persist_nanos",
                    "Per-chunk device persist (fence) latency.",
                    r.persist_stage_hist(),
                ),
                (
                    "pccheck_dev_read_nanos",
                    "Per-chunk device read latency (restore path).",
                    r.read_stage_hist(),
                ),
            ] {
                if hist.count() == 0 {
                    continue;
                }
                prom_metric(&mut out, name, "histogram", help);
                prom_histogram(&mut out, name, "", hist);
            }
        }
        out
    }

    /// The whole snapshot as one JSON object with a stable
    /// [`METRICS_SCHEMA`] tag (hand-rolled, like every exporter in this
    /// crate).
    pub fn json(&self) -> String {
        let Some(snap) = self.telemetry.snapshot() else {
            return format!("{{\"schema\":\"{METRICS_SCHEMA}\",\"enabled\":false}}\n");
        };
        let c = &snap.counters;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"schema\":\"{METRICS_SCHEMA}\",\"enabled\":true,\
             \"window_nanos\":{},\"counters\":{{\
             \"requested\":{},\"committed\":{},\"superseded\":{},\
             \"failed\":{},\"bytes_persisted\":{},\"gpu_copy_bytes\":{},\
             \"persist_chunk_bytes\":{},\"restore_chunk_bytes\":{},\
             \"delta_bytes_saved\":{},\"codec_bytes_saved\":{},\
             \"dedup_chunks\":{}}},\"gauges\":{{\
             \"in_flight\":{},\"in_flight_peak\":{},\"queue_depth\":{},\
             \"queue_depth_peak\":{},\"dirty_ratio_permille\":{},\
             \"compression_ratio_permille\":{},\
             \"stall_fraction\":{}}}",
            snap.window_nanos,
            c.requested,
            c.committed,
            c.superseded,
            c.failed,
            c.bytes_persisted,
            snap.gpu_copy_bytes,
            snap.persist_chunk_bytes,
            snap.restore_chunk_bytes,
            snap.delta_bytes_saved,
            snap.codec_bytes_saved,
            snap.dedup_chunks,
            snap.in_flight,
            snap.in_flight_peak,
            snap.queue_depth,
            snap.queue_depth_peak,
            snap.dirty_ratio_permille,
            snap.compression_ratio_permille,
            snap.stall_fraction(),
        );
        let depths: Vec<String> = snap.device_queue_depth.iter().map(u64::to_string).collect();
        let peaks: Vec<String> = snap.device_queue_peak.iter().map(u64::to_string).collect();
        let _ = write!(
            out,
            ",\"device_queue_depth\":[{}],\"device_queue_peak\":[{}],\"histograms\":{{",
            depths.join(","),
            peaks.join(",")
        );
        let mut first = true;
        for phase in Phase::ALL {
            let s = snap.phase(phase);
            if s.count == 0 {
                continue;
            }
            let _ = write!(
                out,
                "{}\"phase_{}\":{}",
                if first { "" } else { "," },
                phase.name(),
                json_summary(s)
            );
            first = false;
        }
        for (name, s) in [
            ("stall", &snap.stall),
            ("dev_write", &snap.write_stage),
            ("dev_persist", &snap.persist_stage),
            ("dev_read", &snap.read_stage),
        ] {
            if s.count == 0 {
                continue;
            }
            let _ = write!(
                out,
                "{}\"{}\":{}",
                if first { "" } else { "," },
                name,
                json_summary(s)
            );
            first = false;
        }
        let _ = write!(out, "}}");
        let jobs = self.jobs_snapshot();
        if !jobs.is_empty() {
            let total: u64 = jobs.iter().map(|(_, s)| s.counters.bytes_persisted).sum();
            let _ = write!(out, ",\"jobs\":{{");
            for (i, (name, s)) in jobs.iter().enumerate() {
                let share = if total > 0 {
                    s.counters.bytes_persisted as f64 / total as f64
                } else {
                    0.0
                };
                let _ = write!(
                    out,
                    "{}\"{}\":{{\"requested\":{},\"committed\":{},\
                     \"superseded\":{},\"failed\":{},\"bytes_persisted\":{},\
                     \"stall_fraction\":{},\"commit_p99_nanos\":{},\"share\":{}}}",
                    if i == 0 { "" } else { "," },
                    prom_label_escape(name),
                    s.counters.requested,
                    s.counters.committed,
                    s.counters.superseded,
                    s.counters.failed,
                    s.counters.bytes_persisted,
                    s.stall_fraction(),
                    s.phase(Phase::Commit).p99_nanos,
                    share,
                );
            }
            let _ = write!(out, "}}");
        }
        let _ = writeln!(out, "}}");
        out
    }

    /// A compact one-screen console view (the `pccheckctl top` refresh
    /// body): lifecycle counts, stall fraction, hot-phase latencies, and
    /// queue pressure.
    pub fn console_view(&self) -> String {
        let mut out = String::new();
        let Some(snap) = self.telemetry.snapshot() else {
            let _ = writeln!(out, "telemetry disabled");
            return out;
        };
        let c = &snap.counters;
        let _ = writeln!(
            out,
            "ckpt req {} ok {} lost {} fail {} | in-flight {}/{} | stall {:.2}%",
            c.requested,
            c.committed,
            c.superseded,
            c.failed,
            snap.in_flight,
            snap.in_flight_peak,
            snap.stall_fraction() * 100.0
        );
        for phase in [
            Phase::TicketWait,
            Phase::GpuCopy,
            Phase::Persist,
            Phase::Commit,
        ] {
            let s = snap.phase(phase);
            if s.count == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "  {:<11} n={:<6} p50 {:>9}ns p99 {:>9}ns max {:>9}ns",
                phase.name(),
                s.count,
                s.p50_nanos,
                s.p99_nanos,
                s.max_nanos
            );
        }
        let peaks: Vec<String> = snap
            .device_queue_peak
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p > 0)
            .map(|(i, p)| format!("dev{i}={}/{p}", snap.device_queue_depth[i]))
            .collect();
        if !peaks.is_empty() {
            let _ = writeln!(out, "  queues: {}", peaks.join(" "));
        }
        if snap.codec_bytes_saved > 0 || snap.dedup_chunks > 0 {
            let _ = writeln!(
                out,
                "  codec: saved {} B, {} dedup chunks, ratio {}‰",
                snap.codec_bytes_saved, snap.dedup_chunks, snap.compression_ratio_permille
            );
        }
        let jobs = self.jobs_snapshot();
        if !jobs.is_empty() {
            // Share = this job's fraction of all committed payload bytes —
            // the realized QoS bandwidth split across tenants.
            let total: u64 = jobs.iter().map(|(_, s)| s.counters.bytes_persisted).sum();
            let _ = writeln!(
                out,
                "  {:<12} {:>6} {:>12} {:>8} {:>14} {:>6}",
                "job", "ok", "commit-p99", "stall", "bytes", "share"
            );
            for (name, s) in &jobs {
                let share = if total > 0 {
                    100.0 * s.counters.bytes_persisted as f64 / total as f64
                } else {
                    0.0
                };
                let _ = writeln!(
                    out,
                    "  {:<12} {:>6} {:>10}ns {:>7.2}% {:>14} {:>5.1}%",
                    name,
                    s.counters.committed,
                    s.phase(Phase::Commit).p99_nanos,
                    s.stall_fraction() * 100.0,
                    s.counters.bytes_persisted,
                    share
                );
            }
        }
        out
    }
}

/// A minimal metrics HTTP endpoint over [`std::net::TcpListener`].
///
/// Routes: `GET /metrics` (Prometheus text), `GET /metrics.json` (the
/// registry's JSON document); everything else is 404. One accept loop on
/// a background thread, one request per connection — deliberately tiny,
/// for scrapes and `curl`, not for load.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

fn http_response(status: &str, content_type: &str, body: &str) -> String {
    format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

fn serve_one(stream: TcpStream, registry: &MetricsRegistry) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    // Drain headers so well-behaved clients see a clean close.
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line == "\r\n" || line == "\n" => break,
            Ok(_) => {}
            Err(_) => break,
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let response = if method != "GET" {
        http_response("405 Method Not Allowed", "text/plain", "GET only\n")
    } else {
        match path {
            "/metrics" => http_response(
                "200 OK",
                "text/plain; version=0.0.4",
                &registry.prometheus_text(),
            ),
            "/metrics.json" => http_response("200 OK", "application/json", &registry.json()),
            _ => http_response("404 Not Found", "text/plain", "try /metrics\n"),
        }
    };
    let mut stream = reader.into_inner();
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
    // Half-close and wait (bounded by the read timeout) for the client's
    // EOF so the *client* closes first and TIME_WAIT lands on its side.
    // Otherwise a daemon restart can hit EADDRINUSE: the kernel refuses
    // to rebind a listening port while a server-side TIME_WAIT socket
    // from the previous incarnation still holds it.
    let _ = stream.shutdown(Shutdown::Write);
    let mut sink = [0u8; 256];
    while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts the accept loop on a background thread.
    ///
    /// # Errors
    ///
    /// Returns the bind/listen error as a string.
    pub fn bind(addr: &str, registry: MetricsRegistry) -> Result<Self, String> {
        let listener = TcpListener::bind(addr).map_err(|e| e.to_string())?;
        let local = listener.local_addr().map_err(|e| e.to_string())?;
        listener.set_nonblocking(true).map_err(|e| e.to_string())?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            while !stop_flag.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let _ = stream.set_nonblocking(false);
                        serve_one(stream, &registry);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(MetricsServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Fetches `path` from a running [`MetricsServer`] over a plain TCP GET —
/// the client half of the endpoint, used by `pccheckctl top` in remote
/// mode and the smoke tests.
///
/// # Errors
///
/// Returns connect/read errors as strings; the response must be an HTTP
/// 200 or the status line is returned as the error.
pub fn http_get(addr: SocketAddr, path: &str) -> Result<String, String> {
    let mut stream =
        TcpStream::connect_timeout(&addr, Duration::from_secs(2)).map_err(|e| e.to_string())?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: pccheck\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .map_err(|e| e.to_string())?;
    // Read headers line-by-line, then exactly `Content-Length` body bytes,
    // and close promptly — the server half-closes after responding and
    // waits for our FIN, so the client must not linger until timeout.
    let mut reader = BufReader::new(stream);
    let mut head = String::new();
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).map_err(|e| e.to_string())?;
        if n == 0 || line == "\r\n" || line == "\n" {
            break;
        }
        head.push_str(&line);
    }
    let status = head.lines().next().unwrap_or("").to_string();
    if !status.contains("200") {
        return Err(format!("unexpected status: {status}"));
    }
    let content_length = head.lines().find_map(|l| {
        let (k, v) = l.split_once(':')?;
        k.eq_ignore_ascii_case("content-length")
            .then(|| v.trim().parse::<usize>().ok())?
    });
    let body = match content_length {
        Some(len) => {
            let mut buf = vec![0u8; len];
            reader.read_exact(&mut buf).map_err(|e| e.to_string())?;
            String::from_utf8(buf).map_err(|e| e.to_string())?
        }
        None => {
            let mut rest = String::new();
            reader
                .read_to_string(&mut rest)
                .map_err(|e| e.to_string())?;
            rest
        }
    };
    Ok(body)
}

/// Validates one `{...}` label body: comma-separated `name="value"`
/// pairs, label names matching `[a-zA-Z_][a-zA-Z0-9_]*`, values quoted
/// with `\\`/`\"`/`\n` escapes.
fn validate_labels(body: &str) -> Result<(), String> {
    let mut chars = body.chars();
    loop {
        let mut key = String::new();
        let mut next = chars.next();
        while let Some(c) = next {
            if c == '=' {
                break;
            }
            key.push(c);
            next = chars.next();
        }
        if next.is_none() {
            return Err(format!("label {key:?} has no value"));
        }
        if key.is_empty()
            || key.chars().next().is_some_and(|c| c.is_ascii_digit())
            || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            return Err(format!("bad label name {key:?}"));
        }
        if chars.next() != Some('"') {
            return Err(format!("label {key} value is not quoted"));
        }
        loop {
            match chars.next() {
                Some('\\') => {
                    chars.next();
                }
                Some('"') => break,
                Some(_) => {}
                None => return Err(format!("label {key} value is unterminated")),
            }
        }
        match chars.next() {
            None => return Ok(()),
            Some(',') => continue,
            Some(c) => return Err(format!("unexpected {c:?} after label {key}")),
        }
    }
}

/// Validates Prometheus text exposition shape: every non-comment line is
/// `name[{labels}] value` with well-formed labels (quoted values, legal
/// label names), histogram `_bucket` series are cumulative and end with
/// `+Inf`. Returns the number of samples on success.
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn validate_prometheus_text(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    let mut last_bucket: Option<(String, u64)> = None;
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_part, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("no value on line: {line}"))?;
        value
            .parse::<f64>()
            .map_err(|_| format!("bad value {value:?} on line: {line}"))?;
        let name = name_part.split('{').next().unwrap_or(name_part);
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("bad metric name on line: {line}"));
        }
        if let Some((_, rest)) = name_part.split_once('{') {
            let body = rest
                .strip_suffix('}')
                .ok_or_else(|| format!("unterminated labels on line: {line}"))?;
            validate_labels(body).map_err(|e| format!("{e} on line: {line}"))?;
        }
        if name.ends_with("_bucket") {
            // Cumulative within one series: the count must not decrease.
            let series = name_part
                .split("le=")
                .next()
                .unwrap_or(name_part)
                .to_string();
            let count = value.parse::<f64>().map_err(|e| e.to_string())? as u64;
            if let Some((prev_series, prev_count)) = &last_bucket {
                if *prev_series == series && count < *prev_count {
                    return Err(format!("non-cumulative buckets at: {line}"));
                }
            }
            last_bucket = Some((series, count));
        }
        samples += 1;
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SpanId;

    fn active_registry() -> MetricsRegistry {
        let t = Telemetry::enabled();
        let span = t.span_requested("pccheck", 1, 4096);
        let s = t.now_nanos();
        t.chunk(span, Phase::Persist, 0, 4096);
        t.phase_done(span, Phase::GpuCopy, s);
        t.phase_done(span, Phase::Persist, s);
        t.phase_done(span, Phase::Commit, s);
        t.stall(span, 1500);
        t.stage_write(800);
        t.gauge_device_queue(0, 2);
        t.add_codec_bytes_saved(1024);
        t.add_dedup_chunks(3);
        t.gauge_compression_ratio(750);
        t.committed(span, 1, 4096);
        t.actor_span(span, "writer-0", s, 4096);
        MetricsRegistry::new(t)
    }

    #[test]
    fn prometheus_text_has_stable_names_and_parses() {
        let reg = active_registry();
        let text = reg.prometheus_text();
        assert!(text.contains("pccheck_checkpoints_requested_total 1"));
        assert!(text.contains("pccheck_checkpoints_committed_total 1"));
        assert!(text.contains("pccheck_bytes_persisted_total 4096"));
        assert!(text.contains("pccheck_persist_chunk_bytes_total 4096"));
        assert!(text.contains("pccheck_in_flight 0"));
        assert!(text.contains("pccheck_codec_bytes_saved_total 1024"));
        assert!(text.contains("pccheck_dedup_chunks_total 3"));
        assert!(text.contains("pccheck_compression_ratio_permille 750"));
        assert!(text.contains("pccheck_phase_latency_nanos_bucket{phase=\"persist\""));
        assert!(text.contains("pccheck_phase_latency_nanos_count{phase=\"commit\"} 1"));
        assert!(text.contains("pccheck_stall_nanos_sum 1500"));
        assert!(text.contains("pccheck_dev_write_nanos_count 1"));
        assert!(text.contains("le=\"+Inf\""));
        let samples = validate_prometheus_text(&text).expect("exposition parses");
        assert!(samples > 20, "expected a rich exposition, got {samples}");
    }

    #[test]
    fn disabled_registry_renders_valid_documents() {
        let reg = MetricsRegistry::new(Telemetry::disabled());
        let text = reg.prometheus_text();
        assert!(text.starts_with('#'));
        assert_eq!(validate_prometheus_text(&text), Ok(0));
        let json = reg.json();
        assert!(json.contains("\"enabled\":false"));
        assert!(reg.snapshot().is_none());
        assert!(reg.console_view().contains("disabled"));
    }

    #[test]
    fn json_document_is_balanced_and_tagged() {
        let reg = active_registry();
        let json = reg.json();
        assert!(json.contains(METRICS_SCHEMA));
        assert!(json.contains("\"requested\":1"));
        assert!(json.contains("\"codec_bytes_saved\":1024"));
        assert!(json.contains("\"dedup_chunks\":3"));
        assert!(json.contains("\"compression_ratio_permille\":750"));
        assert!(json.contains("\"phase_persist\":{"));
        assert!(json.contains("\"stall\":{"));
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(json.matches(open).count(), json.matches(close).count());
        }
    }

    #[test]
    fn console_view_shows_lifecycle_and_phases() {
        let reg = active_registry();
        let view = reg.console_view();
        assert!(view.contains("ckpt req 1 ok 1"));
        assert!(view.contains("persist"));
        assert!(view.contains("dev0="));
        assert!(view.contains("codec: saved 1024 B"), "{view}");
    }

    #[test]
    fn server_serves_both_routes() {
        let reg = active_registry();
        let server = MetricsServer::bind("127.0.0.1:0", reg).expect("bind");
        let addr = server.addr();
        let prom = http_get(addr, "/metrics").expect("prom route");
        assert!(prom.contains("pccheck_checkpoints_requested_total"));
        assert!(validate_prometheus_text(&prom).is_ok());
        let json = http_get(addr, "/metrics.json").expect("json route");
        assert!(json.contains(METRICS_SCHEMA));
        assert!(http_get(addr, "/nope").is_err());
        server.shutdown();
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_prometheus_text("pccheck_x{broken 1").is_err());
        assert!(validate_prometheus_text("bad name 1").is_err());
        assert!(validate_prometheus_text("pccheck_x nope").is_err());
        assert_eq!(validate_prometheus_text("# only comments\n"), Ok(0));
        let _ = SpanId::NONE;
    }

    #[test]
    fn validator_checks_label_well_formedness() {
        assert_eq!(validate_prometheus_text("pccheck_x{job=\"a\"} 1"), Ok(1));
        assert_eq!(
            validate_prometheus_text("pccheck_x{phase=\"commit\",job=\"a b\"} 1"),
            Ok(1)
        );
        // Escaped quote inside a value is legal.
        assert_eq!(
            validate_prometheus_text("pccheck_x{job=\"a\\\"b\"} 1"),
            Ok(1)
        );
        // Unquoted value, bad label name, missing value, trailing junk.
        assert!(validate_prometheus_text("pccheck_x{job=a} 1").is_err());
        assert!(validate_prometheus_text("pccheck_x{1job=\"a\"} 1").is_err());
        assert!(validate_prometheus_text("pccheck_x{job-id=\"a\"} 1").is_err());
        assert!(validate_prometheus_text("pccheck_x{job} 1").is_err());
        assert!(validate_prometheus_text("pccheck_x{job=\"a\"extra} 1").is_err());
        assert!(validate_prometheus_text("pccheck_x{job=\"a} 1").is_err());
    }

    fn job_registry() -> MetricsRegistry {
        let reg = active_registry();
        for (name, iters) in [("alpha", 2u64), ("beta", 3u64)] {
            let t = Telemetry::enabled();
            for i in 1..=iters {
                let span = t.span_requested(name, i, 1024);
                let s = t.now_nanos();
                t.phase_done(span, Phase::Commit, s);
                t.stall(span, 100);
                t.committed(span, i, 1024);
            }
            reg.register_job(name, t);
        }
        reg
    }

    #[test]
    fn job_labels_appear_in_prometheus_and_json() {
        let reg = job_registry();
        let text = reg.prometheus_text();
        assert!(text.contains("pccheck_checkpoints_committed_total{job=\"alpha\"} 2"));
        assert!(text.contains("pccheck_checkpoints_committed_total{job=\"beta\"} 3"));
        assert!(text.contains("pccheck_bytes_persisted_total{job=\"beta\"} 3072"));
        assert!(text.contains("pccheck_stall_fraction{job=\"alpha\"}"));
        assert!(text.contains("phase=\"commit\",job=\"alpha\""));
        validate_prometheus_text(&text).expect("job-labelled exposition parses");
        let json = reg.json();
        assert!(json.contains("\"jobs\":{\"alpha\":{"));
        assert!(json.contains("\"beta\":{\"requested\":3"));
        assert!(json.contains("\"share\":0.6"));
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(json.matches(open).count(), json.matches(close).count());
        }
    }

    #[test]
    fn console_view_renders_per_job_rows() {
        let reg = job_registry();
        let view = reg.console_view();
        assert!(view.contains("job"), "{view}");
        assert!(view.contains("alpha"));
        assert!(view.contains("beta"));
        assert!(view.contains("share"));
        assert!(reg.deregister_job("beta"));
        assert!(!reg.deregister_job("beta"));
        assert!(!reg.console_view().contains("beta"));
    }

    #[test]
    fn jobs_registered_after_clone_are_visible_to_the_clone() {
        let reg = active_registry();
        let clone = reg.clone();
        reg.register_job("late", Telemetry::enabled());
        assert_eq!(clone.jobs().len(), 1, "job list is shared across clones");
        assert!(clone.prometheus_text().contains("{job=\"late\"}"));
    }

    #[test]
    fn shutdown_releases_port_for_immediate_rebind() {
        let reg = active_registry();
        let server = MetricsServer::bind("127.0.0.1:0", reg.clone()).expect("bind");
        let addr = server.addr();
        let _ = http_get(addr, "/metrics").expect("scrape");
        server.shutdown();
        // Without the client-closes-first handshake in `serve_one`, the
        // scraped connection leaves a server-side TIME_WAIT socket and
        // this immediate rebind of the same port fails with EADDRINUSE.
        let server2 = MetricsServer::bind(&addr.to_string(), reg)
            .expect("immediate rebind of the same port after shutdown");
        assert_eq!(server2.addr(), addr);
        let body = http_get(addr, "/metrics.json").expect("scrape after rebind");
        assert!(body.contains(METRICS_SCHEMA));
        server2.shutdown();
    }
}

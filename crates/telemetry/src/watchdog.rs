//! The SLO watchdog: rolling-window evaluation of live telemetry against
//! configurable objectives, with black-box capture on violation.
//!
//! PCcheck's pitch is checkpointing that stays out of training's way; the
//! watchdog is the component that notices when it stops being true. An
//! [`SloWatchdog`] holds a [`Telemetry`] handle and an [`SloConfig`] of
//! thresholds — p99 commit latency, training-stall fraction, device
//! queue-depth saturation, restore-read p99 — and evaluates them over the
//! window since the previous check by diffing raw histogram buckets
//! (cumulative histograms cannot regress, so a bucket diff *is* the
//! window's sample set). On violation it:
//!
//! 1. emits an anomaly event on the existing telemetry stream, so the
//!    violation lands in the same timeline as the spans that caused it;
//! 2. captures a **black-box bundle** — `violation.json`, the full
//!    Prometheus and JSON metric expositions, a Chrome trace of the
//!    offending window, and (when wired) a flight-ring dump — into a
//!    numbered `blackbox-N/` directory under the configured results dir.
//!
//! Checks run synchronously via [`SloWatchdog::check_now`] (what the
//! tests and `pccheckctl watchdog` drive) or periodically on a background
//! thread via [`SloWatchdog::spawn`].

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::event::Phase;
use crate::export::chrome_trace;
use crate::histogram::LatencyHistogram;
use crate::recorder::Telemetry;
use crate::registry::MetricsRegistry;

/// Schema identifier stamped into `violation.json`.
pub const BLACKBOX_SCHEMA: &str = "pccheck.blackbox.v1";

const HIST_BUCKETS: usize = 64;

/// Which service-level objective a violation tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SloRule {
    /// Window p99 of the `Commit` phase exceeded the threshold.
    CommitP99,
    /// Training-thread stall time over the window exceeded the allowed
    /// fraction.
    StallFraction,
    /// A tracked device's current submission-queue depth reached the
    /// saturation threshold.
    QueueSaturation,
    /// Window p99 of the `RestoreRead` phase exceeded the threshold.
    RestoreReadP99,
}

impl SloRule {
    /// Stable lowercase name used in `violation.json`.
    pub fn name(self) -> &'static str {
        match self {
            SloRule::CommitP99 => "commit_p99",
            SloRule::StallFraction => "stall_fraction",
            SloRule::QueueSaturation => "queue_saturation",
            SloRule::RestoreReadP99 => "restore_read_p99",
        }
    }
}

impl fmt::Display for SloRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One tripped objective: what was observed against what was allowed.
#[derive(Debug, Clone, PartialEq)]
pub struct SloViolation {
    /// The rule that tripped.
    pub rule: SloRule,
    /// Observed value (nanoseconds for latency rules, a fraction for
    /// stall, a depth for queue saturation).
    pub observed: f64,
    /// The configured threshold the observation exceeded.
    pub threshold: f64,
}

impl SloViolation {
    /// `observed / threshold`, the severity multiplier.
    pub fn ratio(&self) -> f64 {
        if self.threshold > 0.0 {
            self.observed / self.threshold
        } else {
            f64::INFINITY
        }
    }
}

/// Thresholds the watchdog evaluates each window; `None` disables a rule.
#[derive(Debug, Clone, Copy, Default)]
pub struct SloConfig {
    /// Maximum window p99 of the `Commit` phase, nanoseconds.
    pub p99_commit_nanos: Option<u64>,
    /// Maximum fraction of the window the training thread may stall.
    pub max_stall_fraction: Option<f64>,
    /// Saturation threshold on any tracked device's current
    /// submission-queue depth.
    pub max_device_queue_depth: Option<u64>,
    /// Maximum window p99 of the `RestoreRead` phase, nanoseconds.
    pub p99_restore_read_nanos: Option<u64>,
    /// Minimum samples a latency rule needs in the window before it
    /// evaluates (guards the p99 rules against noise from 1–2 samples;
    /// 0 behaves as 1).
    pub min_window_samples: u64,
}

/// Raw state captured at the end of the previous window.
struct Baseline {
    at_nanos: u64,
    commit_buckets: [u64; HIST_BUCKETS],
    restore_buckets: [u64; HIST_BUCKETS],
    stall_sum_nanos: u64,
}

/// Provider of a flight-ring dump for the black-box bundle (wired by the
/// monitor layer from the store's persistent ring; `None` entries mean
/// the ring was unreadable at capture time).
pub type FlightDumpFn = Arc<dyn Fn() -> Option<String> + Send + Sync>;

/// Rolling-window SLO evaluator with black-box capture.
pub struct SloWatchdog {
    telemetry: Telemetry,
    registry: MetricsRegistry,
    config: SloConfig,
    out_dir: PathBuf,
    baseline: Mutex<Baseline>,
    captures: AtomicU64,
    last_bundle: Mutex<Option<PathBuf>>,
    flight_dump: Option<FlightDumpFn>,
}

impl fmt::Debug for SloWatchdog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SloWatchdog")
            .field("config", &self.config)
            .field("out_dir", &self.out_dir)
            .field("captures", &self.captures.load(Ordering::Acquire))
            .field("flight_dump", &self.flight_dump.is_some())
            .finish()
    }
}

/// p-th quantile of a window's bucket diff, reported as the winning
/// bucket's inclusive upper bound (conservative: never under-reports).
fn window_quantile(diff: &[u64; HIST_BUCKETS], q: f64) -> Option<u64> {
    let total: u64 = diff.iter().sum();
    if total == 0 {
        return None;
    }
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (i, c) in diff.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return Some(LatencyHistogram::bucket_bound(i));
        }
    }
    None
}

fn bucket_diff(now: &[u64; HIST_BUCKETS], then: &[u64; HIST_BUCKETS]) -> [u64; HIST_BUCKETS] {
    std::array::from_fn(|i| now[i].saturating_sub(then[i]))
}

impl SloWatchdog {
    /// A watchdog over `telemetry`, writing black-box bundles under
    /// `out_dir` (created lazily at first capture). The first window
    /// starts now.
    pub fn new(telemetry: Telemetry, config: SloConfig, out_dir: impl Into<PathBuf>) -> Self {
        let baseline = Self::observe(&telemetry);
        SloWatchdog {
            registry: MetricsRegistry::new(telemetry.clone()),
            telemetry,
            config,
            out_dir: out_dir.into(),
            baseline: Mutex::new(baseline),
            captures: AtomicU64::new(0),
            last_bundle: Mutex::new(None),
            flight_dump: None,
        }
    }

    /// Attaches a flight-ring dump provider whose output is written to
    /// `flight.txt` inside each black-box bundle.
    #[must_use]
    pub fn with_flight_dump(
        mut self,
        dump: impl Fn() -> Option<String> + Send + Sync + 'static,
    ) -> Self {
        self.flight_dump = Some(Arc::new(dump));
        self
    }

    /// The configured thresholds.
    pub fn config(&self) -> &SloConfig {
        &self.config
    }

    /// The results directory bundles are captured into.
    pub fn out_dir(&self) -> &Path {
        &self.out_dir
    }

    /// How many black-box bundles this watchdog has captured.
    pub fn captures(&self) -> u64 {
        self.captures.load(Ordering::Acquire)
    }

    /// Path of the most recently captured bundle, if any.
    pub fn last_bundle(&self) -> Option<PathBuf> {
        self.last_bundle
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    fn observe(telemetry: &Telemetry) -> Baseline {
        match telemetry.recorder() {
            Some(r) => Baseline {
                at_nanos: telemetry.now_nanos(),
                commit_buckets: r.phase_hist(Phase::Commit).bucket_counts(),
                restore_buckets: r.phase_hist(Phase::RestoreRead).bucket_counts(),
                stall_sum_nanos: r.stall_hist().sum_nanos(),
            },
            None => Baseline {
                at_nanos: 0,
                commit_buckets: [0; HIST_BUCKETS],
                restore_buckets: [0; HIST_BUCKETS],
                stall_sum_nanos: 0,
            },
        }
    }

    /// Evaluates every configured rule over the window since the previous
    /// check, advances the window, and on violation emits an anomaly
    /// event and captures a black-box bundle. Returns the violations
    /// (empty when everything held, or telemetry is disabled).
    pub fn check_now(&self) -> Vec<SloViolation> {
        let Some(recorder) = self.telemetry.recorder() else {
            return Vec::new();
        };
        let now = Self::observe(&self.telemetry);
        let snap = recorder.snapshot();
        let mut violations = Vec::new();
        let window_start;
        {
            let mut base = self.baseline.lock().unwrap_or_else(|e| e.into_inner());
            window_start = base.at_nanos;
            let window_nanos = now.at_nanos.saturating_sub(base.at_nanos);
            let min_samples = self.config.min_window_samples.max(1);

            if let Some(limit) = self.config.p99_commit_nanos {
                let diff = bucket_diff(&now.commit_buckets, &base.commit_buckets);
                if diff.iter().sum::<u64>() >= min_samples {
                    if let Some(p99) = window_quantile(&diff, 0.99) {
                        if p99 > limit {
                            violations.push(SloViolation {
                                rule: SloRule::CommitP99,
                                observed: p99 as f64,
                                threshold: limit as f64,
                            });
                        }
                    }
                }
            }
            if let Some(limit) = self.config.max_stall_fraction {
                if window_nanos > 0 {
                    let stall = now.stall_sum_nanos.saturating_sub(base.stall_sum_nanos);
                    let fraction = stall as f64 / window_nanos as f64;
                    if fraction > limit {
                        violations.push(SloViolation {
                            rule: SloRule::StallFraction,
                            observed: fraction,
                            threshold: limit,
                        });
                    }
                }
            }
            if let Some(limit) = self.config.max_device_queue_depth {
                let depth = snap
                    .device_queue_depth
                    .iter()
                    .copied()
                    .max()
                    .unwrap_or(0)
                    .max(snap.queue_depth);
                if depth >= limit {
                    violations.push(SloViolation {
                        rule: SloRule::QueueSaturation,
                        observed: depth as f64,
                        threshold: limit as f64,
                    });
                }
            }
            if let Some(limit) = self.config.p99_restore_read_nanos {
                let diff = bucket_diff(&now.restore_buckets, &base.restore_buckets);
                if diff.iter().sum::<u64>() >= min_samples {
                    if let Some(p99) = window_quantile(&diff, 0.99) {
                        if p99 > limit {
                            violations.push(SloViolation {
                                rule: SloRule::RestoreReadP99,
                                observed: p99 as f64,
                                threshold: limit as f64,
                            });
                        }
                    }
                }
            }
            *base = now;
        }
        if !violations.is_empty() {
            let worst = violations
                .iter()
                .max_by(|a, b| a.ratio().total_cmp(&b.ratio()))
                .expect("non-empty");
            self.telemetry
                .anomaly(0, worst.observed, worst.threshold, worst.ratio());
            if let Err(e) = self.capture(&violations, window_start) {
                // Capture failures must not take down the workload the
                // watchdog observes; the count/last-bundle state simply
                // doesn't advance.
                eprintln!("pccheck watchdog: black-box capture failed: {e}");
            }
        }
        violations
    }

    /// Writes one black-box bundle and returns its directory.
    fn capture(&self, violations: &[SloViolation], window_start: u64) -> Result<PathBuf, String> {
        let seq = self.captures.fetch_add(1, Ordering::AcqRel);
        let dir = self.out_dir.join(format!("blackbox-{seq}"));
        fs::create_dir_all(&dir).map_err(|e| e.to_string())?;

        let window_end = self.telemetry.now_nanos();
        let mut vjson = format!(
            "{{\"schema\":\"{BLACKBOX_SCHEMA}\",\"window_start_nanos\":{window_start},\
             \"window_end_nanos\":{window_end},\"violations\":["
        );
        for (i, v) in violations.iter().enumerate() {
            if i > 0 {
                vjson.push(',');
            }
            vjson.push_str(&format!(
                "{{\"rule\":\"{}\",\"observed\":{},\"threshold\":{}}}",
                v.rule.name(),
                v.observed,
                v.threshold
            ));
        }
        vjson.push_str("]}\n");
        fs::write(dir.join("violation.json"), vjson).map_err(|e| e.to_string())?;

        fs::write(dir.join("metrics.prom"), self.registry.prometheus_text())
            .map_err(|e| e.to_string())?;
        fs::write(dir.join("metrics.json"), self.registry.json()).map_err(|e| e.to_string())?;

        // Chrome trace of the offending window only.
        let window: Vec<_> = self
            .telemetry
            .events()
            .into_iter()
            .filter(|e| e.at_nanos >= window_start)
            .collect();
        fs::write(dir.join("trace.json"), chrome_trace(&window)).map_err(|e| e.to_string())?;

        if let Some(dump) = &self.flight_dump {
            if let Some(text) = dump() {
                fs::write(dir.join("flight.txt"), text).map_err(|e| e.to_string())?;
            }
        }

        *self.last_bundle.lock().unwrap_or_else(|e| e.into_inner()) = Some(dir.clone());
        Ok(dir)
    }

    /// Runs [`check_now`](Self::check_now) every `interval` on a
    /// background thread until the returned handle is stopped or dropped.
    pub fn spawn(self: Arc<Self>, interval: Duration) -> WatchdogHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            while !stop_flag.load(Ordering::Acquire) {
                // Sleep in short slices so stop() returns promptly.
                let mut remaining = interval;
                while !remaining.is_zero() && !stop_flag.load(Ordering::Acquire) {
                    let slice = remaining.min(Duration::from_millis(20));
                    std::thread::sleep(slice);
                    remaining = remaining.saturating_sub(slice);
                }
                if stop_flag.load(Ordering::Acquire) {
                    break;
                }
                self.check_now();
            }
        });
        WatchdogHandle {
            stop,
            handle: Some(handle),
        }
    }
}

/// Stop/join handle for a background watchdog thread; stops on drop.
#[derive(Debug)]
pub struct WatchdogHandle {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl WatchdogHandle {
    /// Stops the loop and joins the thread.
    pub fn stop(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for WatchdogHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, SpanId};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("pccheck-watchdog-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn quiet_run_trips_nothing() {
        let t = Telemetry::enabled();
        let wd = SloWatchdog::new(
            t.clone(),
            SloConfig {
                p99_commit_nanos: Some(u64::MAX),
                max_stall_fraction: Some(1.0),
                max_device_queue_depth: Some(u64::MAX),
                p99_restore_read_nanos: Some(u64::MAX),
                min_window_samples: 1,
            },
            temp_dir("quiet"),
        );
        let span = t.span_requested("pccheck", 1, 64);
        let s = t.now_nanos();
        t.phase_done(span, Phase::Commit, s);
        t.committed(span, 1, 64);
        assert!(wd.check_now().is_empty());
        assert_eq!(wd.captures(), 0);
        assert!(wd.last_bundle().is_none());
    }

    #[test]
    fn disabled_telemetry_never_fires() {
        let wd = SloWatchdog::new(
            Telemetry::disabled(),
            SloConfig {
                max_stall_fraction: Some(0.0),
                ..SloConfig::default()
            },
            temp_dir("disabled"),
        );
        assert!(wd.check_now().is_empty());
    }

    #[test]
    fn stall_violation_captures_complete_bundle() {
        let t = Telemetry::enabled();
        let dir = temp_dir("stall");
        let wd = SloWatchdog::new(
            t.clone(),
            SloConfig {
                max_stall_fraction: Some(0.05),
                ..SloConfig::default()
            },
            &dir,
        )
        .with_flight_dump(|| Some("#0 begin\n#1 commit\n".to_string()));

        // A span whose stall dominates the window.
        let span = t.span_requested("pccheck", 1, 64);
        std::thread::sleep(Duration::from_millis(2));
        let stall = t.now_nanos(); // ~the whole window so far
        t.stall(span, stall);
        t.committed(span, 1, 64);

        let violations = wd.check_now();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].rule, SloRule::StallFraction);
        assert!(violations[0].observed > 0.05);
        assert!(violations[0].ratio() > 1.0);

        let bundle = wd.last_bundle().expect("bundle captured");
        assert_eq!(wd.captures(), 1);
        for file in [
            "violation.json",
            "metrics.prom",
            "metrics.json",
            "trace.json",
            "flight.txt",
        ] {
            let path = bundle.join(file);
            let body = fs::read_to_string(&path).unwrap_or_else(|e| {
                panic!("missing {}: {e}", path.display());
            });
            assert!(!body.is_empty(), "{file} is empty");
        }
        let vjson = fs::read_to_string(bundle.join("violation.json")).unwrap();
        assert!(vjson.contains(BLACKBOX_SCHEMA));
        assert!(vjson.contains("\"rule\":\"stall_fraction\""));
        let prom = fs::read_to_string(bundle.join("metrics.prom")).unwrap();
        assert!(crate::registry::validate_prometheus_text(&prom).is_ok());

        // The violation was merged into the event stream as an anomaly.
        assert!(t
            .events()
            .iter()
            .any(|e| matches!(e.kind, EventKind::Anomaly { .. })));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn commit_p99_rule_uses_only_the_window() {
        let t = Telemetry::enabled();
        let dir = temp_dir("p99");
        let wd = SloWatchdog::new(
            t.clone(),
            SloConfig {
                p99_commit_nanos: Some(1_000_000), // 1 ms
                min_window_samples: 3,
                ..SloConfig::default()
            },
            &dir,
        );
        let r = t.recorder().expect("enabled");
        // Three slow commits in this window.
        for _ in 0..3 {
            r.phase_hist(Phase::Commit).record(50_000_000);
        }
        let violations = wd.check_now();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].rule, SloRule::CommitP99);

        // Next window has only fast commits: the old slow samples must not
        // leak in through the cumulative histogram.
        for _ in 0..5 {
            r.phase_hist(Phase::Commit).record(1_000);
        }
        assert!(wd.check_now().is_empty(), "old window leaked");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn queue_saturation_trips_on_current_depth() {
        let t = Telemetry::enabled();
        let dir = temp_dir("queue");
        let wd = SloWatchdog::new(
            t.clone(),
            SloConfig {
                max_device_queue_depth: Some(4),
                ..SloConfig::default()
            },
            &dir,
        );
        t.gauge_device_queue(1, 3);
        assert!(wd.check_now().is_empty());
        t.gauge_device_queue(1, 6);
        let violations = wd.check_now();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].rule, SloRule::QueueSaturation);
        assert_eq!(violations[0].observed, 6.0);
        // Depth falling back below the limit clears the condition.
        t.gauge_device_queue(1, 0);
        assert!(wd.check_now().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn window_quantile_walks_buckets() {
        let mut diff = [0u64; HIST_BUCKETS];
        assert_eq!(window_quantile(&diff, 0.99), None);
        diff[9] = 99; // [512, 1024)
        diff[20] = 1; // one outlier
        assert_eq!(window_quantile(&diff, 0.5), Some(1023));
        assert_eq!(
            window_quantile(&diff, 1.0),
            Some(LatencyHistogram::bucket_bound(20))
        );
        let _ = SpanId::NONE;
    }
}

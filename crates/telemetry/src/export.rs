//! Exporters: human-readable summary, JSON lines, Chrome `trace_event`.
//!
//! All JSON is emitted by hand — the event model is small and flat, and
//! keeping the crate dependency-free matters more than a serializer. The
//! Chrome format follows the Trace Event spec closely enough for
//! `chrome://tracing` and Perfetto: one `"X"` complete event per lifecycle
//! phase (one track per checkpoint span), `"X"` stall slices on the
//! training-thread track, `"i"` instants for terminals and anomalies, and a
//! `"C"` counter series for iteration progress.

use std::fmt::Write as _;

use crate::accounting::RunAccounting;
use crate::event::{Event, EventKind, Phase};
use crate::recorder::TelemetrySnapshot;

/// Escapes `s` as JSON string *contents* (no surrounding quotes).
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a float as a JSON number (`null` for non-finite values).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

pub(crate) fn micros(nanos: u64) -> f64 {
    nanos as f64 / 1000.0
}

/// Renders nanoseconds compactly for the human summary (`1.234ms`).
pub(crate) fn human_nanos(nanos: u64) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.3}s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.2}us", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

pub(crate) fn human_bytes(bytes: u64) -> String {
    const GIB: f64 = 1024.0 * 1024.0 * 1024.0;
    const MIB: f64 = 1024.0 * 1024.0;
    const KIB: f64 = 1024.0;
    let b = bytes as f64;
    if b >= GIB {
        format!("{:.2} GiB", b / GIB)
    } else if b >= MIB {
        format!("{:.2} MiB", b / MIB)
    } else if b >= KIB {
        format!("{:.2} KiB", b / KIB)
    } else {
        format!("{bytes} B")
    }
}

/// Human-readable run report: counters, per-phase latency table,
/// stall/goodput accounting.
pub fn render_summary(snapshot: &TelemetrySnapshot, accounting: &RunAccounting) -> String {
    let mut out = String::new();
    let c = &snapshot.counters;
    let _ = writeln!(out, "== checkpoint lifecycle ==");
    let _ = writeln!(
        out,
        "  requested {}  committed {}  superseded {}  failed {}  in-flight {} (peak {})",
        c.requested,
        c.committed,
        c.superseded,
        c.failed,
        snapshot.in_flight,
        snapshot.in_flight_peak
    );
    let _ = writeln!(
        out,
        "  persisted {}  gpu-copied {}  free-slot queue depth {} (peak {})",
        human_bytes(c.bytes_persisted),
        human_bytes(snapshot.gpu_copy_bytes),
        snapshot.queue_depth,
        snapshot.queue_depth_peak
    );
    if snapshot.restore_chunk_bytes > 0 {
        let _ = writeln!(
            out,
            "  restore-read {} (device\u{2192}DRAM chunk fetches)",
            human_bytes(snapshot.restore_chunk_bytes)
        );
    }
    if snapshot.codec_bytes_saved > 0 || snapshot.dedup_chunks > 0 {
        let _ = writeln!(
            out,
            "  codec saved {} ({} dedup chunks, last frame {}\u{2030} of logical)",
            human_bytes(snapshot.codec_bytes_saved),
            snapshot.dedup_chunks,
            snapshot.compression_ratio_permille
        );
    }
    let _ = writeln!(out, "\n== phase latency ==");
    let _ = writeln!(
        out,
        "  {:<12} {:>7} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "phase", "count", "mean", "p50", "p95", "p99", "max"
    );
    for phase in Phase::ALL {
        let s = snapshot.phase(phase);
        if s.count == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "  {:<12} {:>7} {:>10} {:>10} {:>10} {:>10} {:>10}",
            phase.name(),
            s.count,
            human_nanos(s.mean_nanos()),
            human_nanos(s.p50_nanos),
            human_nanos(s.p95_nanos),
            human_nanos(s.p99_nanos),
            human_nanos(s.max_nanos),
        );
    }
    for (name, s) in [
        ("dev-write", &snapshot.write_stage),
        ("dev-persist", &snapshot.persist_stage),
        ("dev-read", &snapshot.read_stage),
    ] {
        if s.count == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "  {:<12} {:>7} {:>10} {:>10} {:>10} {:>10} {:>10}",
            name,
            s.count,
            human_nanos(s.mean_nanos()),
            human_nanos(s.p50_nanos),
            human_nanos(s.p95_nanos),
            human_nanos(s.p99_nanos),
            human_nanos(s.max_nanos),
        );
    }
    if snapshot.device_queue_peak.iter().any(|&p| p > 0) {
        let peaks: Vec<String> = snapshot
            .device_queue_peak
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p > 0)
            .map(|(i, p)| format!("dev{i}={p}"))
            .collect();
        let _ = writeln!(out, "  submission-queue peaks: {}", peaks.join("  "));
    }
    let _ = writeln!(out, "\n== stall / goodput (Fig. 8/9) ==");
    let _ = writeln!(
        out,
        "  window {}  iterations {}  throughput {:.2} it/s",
        human_nanos(accounting.window_nanos),
        accounting.iterations,
        accounting.throughput()
    );
    let _ = writeln!(
        out,
        "  stall total {} ({:.2}% of window, {:.4}x slowdown)",
        human_nanos(accounting.stall_nanos),
        accounting.stall_fraction() * 100.0,
        accounting.slowdown()
    );
    let _ = writeln!(
        out,
        "  avg rollback depth {:.2} iterations",
        accounting.avg_rollback_depth
    );
    // Scale the illustrative failure scenario to the observed window so the
    // estimate stays informative for short runs (a fixed multi-second reload
    // would clamp any sub-second demo window straight to zero).
    let load_secs = accounting.window_secs() * 0.05;
    if let Some(g) = accounting.goodput(1, load_secs) {
        let _ = writeln!(
            out,
            "  goodput @ 1 rollback, {} load: {:.2} it/s ({:.1}% of failure-free)",
            human_nanos((load_secs * 1e9) as u64),
            g.goodput,
            if g.failure_free_throughput > 0.0 {
                g.goodput / g.failure_free_throughput * 100.0
            } else {
                0.0
            }
        );
    }
    out
}

fn kind_fields(kind: &EventKind) -> String {
    match kind {
        EventKind::Requested {
            strategy,
            iteration,
            bytes,
        } => format!(
            ",\"strategy\":\"{}\",\"iteration\":{iteration},\"bytes\":{bytes}",
            escape_json(strategy)
        ),
        EventKind::Queued => String::new(),
        EventKind::PhaseDone {
            phase,
            start_nanos,
            dur_nanos,
        } => format!(
            ",\"phase\":\"{}\",\"start_nanos\":{start_nanos},\"dur_nanos\":{dur_nanos}",
            phase.name()
        ),
        EventKind::Chunk { phase, offset, len } => {
            format!(
                ",\"phase\":\"{}\",\"offset\":{offset},\"len\":{len}",
                phase.name()
            )
        }
        EventKind::Stall { nanos } => format!(",\"nanos\":{nanos}"),
        EventKind::Committed { iteration, bytes } => {
            format!(",\"iteration\":{iteration},\"bytes\":{bytes}")
        }
        EventKind::Superseded { by_counter } => format!(",\"by_counter\":{by_counter}"),
        EventKind::Failed { error } => format!(",\"error\":\"{}\"", escape_json(error)),
        EventKind::Anomaly {
            iteration,
            magnitude,
            expected,
            ratio,
        } => format!(
            ",\"iteration\":{iteration},\"magnitude\":{},\"expected\":{},\"ratio\":{}",
            json_f64(*magnitude),
            json_f64(*expected),
            json_f64(*ratio)
        ),
        EventKind::IterationEnd { iteration } => format!(",\"iteration\":{iteration}"),
        EventKind::ActorSpan {
            actor,
            start_nanos,
            dur_nanos,
            bytes,
            media_nanos,
        } => format!(
            ",\"actor\":\"{}\",\"start_nanos\":{start_nanos},\"dur_nanos\":{dur_nanos},\"bytes\":{bytes},\"media_nanos\":{media_nanos}",
            escape_json(actor)
        ),
    }
}

/// One JSON object per event, newline-separated (JSONL). Each line carries
/// `at_nanos`, `span`, `event`, and the kind's fields flattened.
pub fn json_lines(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        let _ = writeln!(
            out,
            "{{\"at_nanos\":{},\"span\":{},\"event\":\"{}\"{}}}",
            e.at_nanos,
            e.span.0,
            e.kind.name(),
            kind_fields(&e.kind)
        );
    }
    out
}

/// First actor-lane `tid`; actor lanes sit far above span-id tids so
/// writer/reader/device lanes never collide with a checkpoint span track.
const ACTOR_TID_BASE: u64 = 900_000;

/// Chrome `trace_event` JSON (`{"traceEvents":[...]}`), loadable in
/// `chrome://tracing` and Perfetto. Timestamps are microseconds.
///
/// Checkpoint spans render one track per span id; hierarchical
/// [`EventKind::ActorSpan`] children (writers, restore readers, device
/// members) render on named per-actor lanes starting at
/// [`ACTOR_TID_BASE`], each carrying its parent span id in `args`.
pub fn chrome_trace(events: &[Event]) -> String {
    chrome_trace_with(events, &[])
}

/// [`chrome_trace`] plus caller-supplied extra trace entries (already
/// rendered as JSON objects, no trailing comma). The profiler uses this to
/// annotate critical-path edges on their own lane without the exporter
/// knowing about ledgers.
pub fn chrome_trace_with(events: &[Event], extra_entries: &[String]) -> String {
    let mut entries: Vec<String> = Vec::with_capacity(events.len() + extra_entries.len() + 1);
    entries.push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\
         \"args\":{\"name\":\"pccheck\"}}"
            .to_string(),
    );
    // Stable lane per distinct actor, assigned in first-seen order.
    let mut actor_lanes: Vec<&str> = Vec::new();
    for e in events {
        if let EventKind::ActorSpan { actor, .. } = &e.kind {
            if !actor_lanes.contains(&actor.as_str()) {
                actor_lanes.push(actor);
            }
        }
    }
    for (i, actor) in actor_lanes.iter().enumerate() {
        entries.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
             \"args\":{{\"name\":\"{}\"}}}}",
            ACTOR_TID_BASE + i as u64,
            escape_json(actor)
        ));
    }
    for e in events {
        let tid = e.span.0;
        let ts = micros(e.at_nanos);
        match &e.kind {
            EventKind::PhaseDone {
                phase,
                start_nanos,
                dur_nanos,
            } => entries.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"phase\",\"ph\":\"X\",\
                 \"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{tid}}}",
                phase.name(),
                json_f64(micros(*start_nanos)),
                json_f64(micros(*dur_nanos))
            )),
            EventKind::Stall { nanos } => entries.push(format!(
                "{{\"name\":\"stall\",\"cat\":\"train\",\"ph\":\"X\",\
                 \"ts\":{},\"dur\":{},\"pid\":1,\"tid\":0}}",
                json_f64(micros(e.at_nanos.saturating_sub(*nanos))),
                json_f64(micros(*nanos))
            )),
            EventKind::IterationEnd { iteration } => entries.push(format!(
                "{{\"name\":\"iteration\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\
                 \"args\":{{\"iteration\":{iteration}}}}}",
                json_f64(ts)
            )),
            EventKind::Chunk { .. } => {
                // Chunks are too fine-grained for a trace track; the JSONL
                // exporter keeps them for bandwidth analysis.
            }
            EventKind::ActorSpan {
                actor,
                start_nanos,
                dur_nanos,
                bytes,
                media_nanos,
            } => {
                let lane = actor_lanes
                    .iter()
                    .position(|a| *a == actor.as_str())
                    .unwrap_or(0) as u64
                    + ACTOR_TID_BASE;
                entries.push(format!(
                    "{{\"name\":\"{}\",\"cat\":\"actor\",\"ph\":\"X\",\
                     \"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{lane},\
                     \"args\":{{\"parent_span\":{},\"bytes\":{bytes},\
                     \"media_nanos\":{media_nanos},\"queue_wait_nanos\":{}}}}}",
                    escape_json(actor),
                    json_f64(micros(*start_nanos)),
                    json_f64(micros(*dur_nanos)),
                    e.span.0,
                    dur_nanos.saturating_sub(*media_nanos)
                ));
            }
            kind => entries.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"lifecycle\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":{},\"pid\":1,\"tid\":{tid}}}",
                kind.name(),
                json_f64(ts)
            )),
        }
    }
    entries.extend(extra_entries.iter().cloned());
    format!("{{\"traceEvents\":[\n{}\n]}}\n", entries.join(",\n"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SpanId;
    use crate::recorder::Telemetry;

    fn sample_run() -> Telemetry {
        let t = Telemetry::enabled();
        let span = t.span_requested("pccheck", 3, 4096);
        t.span_queued(span);
        let s = t.now_nanos();
        t.chunk(span, Phase::GpuCopy, 0, 4096);
        t.phase_done(span, Phase::GpuCopy, s);
        let s = t.now_nanos();
        t.chunk(span, Phase::Persist, 0, 4096);
        t.phase_done(span, Phase::Persist, s);
        t.committed(span, 3, 4096);
        t.stall(span, 1500);
        t.iteration_end(3);
        t.anomaly(3, 0.9, 0.1, 9.0);
        t
    }

    #[test]
    fn escaping_handles_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(2.5), "2.5");
    }

    #[test]
    fn json_lines_one_object_per_event() {
        let t = sample_run();
        let events = t.events();
        let out = json_lines(&events);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), events.len());
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"at_nanos\":"));
            assert!(line.contains("\"event\":\""));
        }
        assert!(out.contains("\"event\":\"requested\""));
        assert!(out.contains("\"strategy\":\"pccheck\""));
        assert!(out.contains("\"event\":\"anomaly\""));
    }

    #[test]
    fn chrome_trace_is_balanced_and_has_phases() {
        let t = sample_run();
        let out = chrome_trace(&t.events());
        assert!(out.starts_with("{\"traceEvents\":["));
        assert!(out.trim_end().ends_with("]}"));
        // Braces and brackets balance (no string in our output contains
        // them, so plain counting is sound).
        for (open, close) in [('{', '}'), ('[', ']')] {
            let o = out.matches(open).count();
            let c = out.matches(close).count();
            assert_eq!(o, c, "unbalanced {open}{close}");
        }
        assert!(out.contains("\"name\":\"gpu_copy\""));
        assert!(out.contains("\"name\":\"persist\""));
        assert!(out.contains("\"name\":\"stall\""));
        assert!(out.contains("\"ph\":\"C\""));
        // Chunks are deliberately omitted from the trace view.
        assert!(!out.contains("\"name\":\"chunk\""));
    }

    #[test]
    fn actor_spans_get_named_chrome_lanes() {
        let t = Telemetry::enabled();
        let span = t.span_requested("pccheck", 1, 4096);
        let s = t.now_nanos();
        t.actor_span(span, "writer-0", s, 2048);
        t.actor_span(span, "writer-1", s, 2048);
        t.actor_span(SpanId::NONE, "stripe-0", s, 1024);
        t.phase_done(span, Phase::Persist, s);
        t.committed(span, 1, 4096);

        let out = chrome_trace(&t.events());
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(out.matches(open).count(), out.matches(close).count());
        }
        // One thread_name metadata entry per distinct actor, and the
        // complete events land on those lanes with the parent span id.
        assert!(out.contains("\"name\":\"thread_name\""));
        assert!(out.contains("\"name\":\"writer-0\""));
        assert!(out.contains("\"name\":\"writer-1\""));
        assert!(out.contains("\"name\":\"stripe-0\""));
        assert!(out.contains(&format!("\"tid\":{ACTOR_TID_BASE}")));
        assert!(out.contains(&format!("\"tid\":{}", ACTOR_TID_BASE + 2)));
        assert!(out.contains(&format!("\"parent_span\":{}", span.0)));
        assert!(out.contains("\"parent_span\":0"));

        // The JSONL exporter flattens the same fields.
        let lines = json_lines(&t.events());
        assert!(lines.contains("\"event\":\"actor_span\""));
        assert!(lines.contains("\"actor\":\"writer-1\""));
        assert!(lines.contains("\"bytes\":1024"));
    }

    #[test]
    fn summary_reports_restore_bytes() {
        let t = Telemetry::enabled();
        let span = t.span_requested("recovery", 0, 4096);
        let s = t.now_nanos();
        t.chunk(span, Phase::RestoreRead, 0, 4096);
        t.phase_done(span, Phase::RestoreRead, s);
        t.phase_done(span, Phase::RestoreVerify, s);
        t.phase_done(span, Phase::RestoreUpload, s);
        t.committed(span, 0, 4096);
        let snap = t.snapshot().unwrap();
        let acc = RunAccounting::from_events(&t.events());
        let text = render_summary(&snap, &acc);
        assert!(text.contains("restore-read 4.00 KiB"));
        assert!(text.contains("restore_read"));
        assert!(text.contains("restore_verify"));
        assert!(text.contains("restore_upload"));
    }

    #[test]
    fn summary_mentions_all_sections() {
        let t = sample_run();
        let snap = t.snapshot().unwrap();
        let acc = RunAccounting::from_events(&t.events());
        let text = render_summary(&snap, &acc);
        assert!(text.contains("checkpoint lifecycle"));
        assert!(text.contains("phase latency"));
        assert!(text.contains("gpu_copy"));
        assert!(text.contains("persist"));
        assert!(text.contains("stall / goodput"));
        assert!(text.contains("requested 1  committed 1"));
    }

    #[test]
    fn human_units_render() {
        assert_eq!(human_nanos(12), "12ns");
        assert_eq!(human_nanos(1_500), "1.50us");
        assert_eq!(human_nanos(2_500_000), "2.500ms");
        assert_eq!(human_nanos(3_000_000_000), "3.000s");
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.00 KiB");
        assert_eq!(human_bytes(3 * 1024 * 1024), "3.00 MiB");
    }

    #[test]
    fn empty_stream_exports_cleanly() {
        assert_eq!(json_lines(&[]), "");
        let trace = chrome_trace(&[]);
        assert!(trace.contains("process_name"));
        let _ = SpanId::NONE;
    }
}

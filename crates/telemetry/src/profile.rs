//! Per-checkpoint causal ledger, critical-path extraction, and cross-run
//! regression analytics.
//!
//! The raw event stream says *what happened*; this module says *why a
//! commit took as long as it did*. For every checkpoint span it
//! reconstructs a [`CommitLedger`] — a small DAG of timed nodes (lifecycle
//! phases, writer/reader actor legs, composite-device member legs) — then
//! extracts the **critical path**: the chain of non-overlapping phase
//! intervals that ends at the terminal event and walks backwards through
//! the latest phase finishing before each link starts. Time on the
//! critical path is time that directly bounded the commit; everything else
//! was hidden by pipelining.
//!
//! On top of the ledgers sits [`RunProfile`], one summary per run:
//! per-phase medians and critical-path shares, per-actor media/queue-wait
//! splits, writer imbalance, and persist coverage (how much of the Persist
//! window the writers actually kept the device busy). Profiles serialize
//! as schema-tagged JSON ([`PROFILE_SCHEMA`]) so they can be archived in
//! [`ProfileArchive`] and compared across runs by [`diff_profiles`] — a
//! noise-aware differ with a minimum-effect floor (absolute mode, same
//! machine) and a scale-invariant critical-share mode (CI gates against a
//! checked-in baseline from different hardware).

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use pccheck_util::json::JsonValue;

use crate::event::{Event, EventKind, Phase, SpanId};
use crate::export::{escape_json, human_bytes, human_nanos, json_f64, micros};

/// Schema tag carried by every emitted profile document.
pub const PROFILE_SCHEMA: &str = "pccheck.profile.v1";

/// What kind of ledger node an interval is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A lifecycle phase (critical-path candidate).
    Phase(Phase),
    /// A persist-pipeline writer leg (`writer-N`).
    Writer,
    /// A restore-pipeline reader leg (`reader-N`).
    Reader,
    /// A composite-device member leg (`stripe-N`, `tier`, ...), attributed
    /// to this span by overlap with its Persist window.
    Device,
}

/// One timed interval in a commit's causal ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerNode {
    /// Phase name or actor lane label.
    pub label: String,
    /// Node kind; only [`NodeKind::Phase`] nodes are critical-path
    /// candidates.
    pub kind: NodeKind,
    /// Interval start, nanoseconds on the recorder clock.
    pub start_nanos: u64,
    /// Interval duration in nanoseconds.
    pub dur_nanos: u64,
    /// Bytes moved during the interval (0 where unknown).
    pub bytes: u64,
    /// Nanoseconds spent in device I/O calls (actor legs; phases report
    /// their full duration).
    pub media_nanos: u64,
    /// Whether the node is on the span's critical path.
    pub critical: bool,
}

impl LedgerNode {
    fn end_nanos(&self) -> u64 {
        self.start_nanos + self.dur_nanos
    }
}

/// The reconstructed causal ledger of one checkpoint (or restore) span.
#[derive(Debug, Clone, PartialEq)]
pub struct CommitLedger {
    /// The span this ledger reconstructs.
    pub span: SpanId,
    /// Strategy name from the `Requested` event.
    pub strategy: String,
    /// Training iteration captured.
    pub iteration: u64,
    /// Checkpoint size in bytes.
    pub bytes: u64,
    /// Terminal outcome: `committed`, `superseded`, `failed`, or `open`
    /// (no terminal event recorded).
    pub outcome: String,
    /// Span open (Requested) timestamp.
    pub open_nanos: u64,
    /// Span close (terminal event) timestamp; equals the latest event
    /// timestamp for still-open spans.
    pub close_nanos: u64,
    /// Training-thread blocked time attributed to this span.
    pub stall_nanos: u64,
    /// All timed nodes, in event order.
    pub nodes: Vec<LedgerNode>,
    /// Indices into `nodes` of the critical path, in chronological order.
    pub critical_path: Vec<usize>,
    /// Sum of critical-path node durations.
    pub critical_nanos: u64,
    /// Wall time not covered by the critical path (overlap slack — work
    /// hidden by pipelining plus scheduling gaps between phases).
    pub gap_nanos: u64,
}

impl CommitLedger {
    /// Span wall time (open to terminal).
    pub fn wall_nanos(&self) -> u64 {
        self.close_nanos.saturating_sub(self.open_nanos)
    }

    /// Fraction of the Persist window covered by the union of persist-side
    /// actor intervals — writer legs plus composite-device member legs
    /// (the coordinator's table and fence writes surface as member I/O,
    /// not as writer legs) — `None` when the ledger has no Persist phase
    /// or no such legs. Low coverage means the device sat idle inside the
    /// Persist window (queue starvation), not that the media was slow.
    pub fn persist_coverage(&self) -> Option<f64> {
        let persist = self
            .nodes
            .iter()
            .find(|n| n.kind == NodeKind::Phase(Phase::Persist))?;
        if persist.dur_nanos == 0 {
            return None;
        }
        let (lo, hi) = (persist.start_nanos, persist.end_nanos());
        let mut ivals: Vec<(u64, u64)> = self
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Writer | NodeKind::Device))
            .map(|n| (n.start_nanos.max(lo), n.end_nanos().min(hi)))
            .filter(|(s, e)| e > s)
            .collect();
        if ivals.is_empty() {
            return None;
        }
        ivals.sort_unstable();
        let mut covered = 0u64;
        let (mut cs, mut ce) = ivals[0];
        for (s, e) in ivals.into_iter().skip(1) {
            if s > ce {
                covered += ce - cs;
                cs = s;
                ce = e;
            } else {
                ce = ce.max(e);
            }
        }
        covered += ce - cs;
        Some(covered as f64 / persist.dur_nanos as f64)
    }

    /// Max writer-leg duration over the mean — 1.0 means perfectly
    /// balanced writers; `None` without at least two writer legs.
    pub fn writer_imbalance(&self) -> Option<f64> {
        let durs: Vec<u64> = self
            .nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Writer)
            .map(|n| n.dur_nanos)
            .collect();
        if durs.len() < 2 {
            return None;
        }
        let max = *durs.iter().max().unwrap() as f64;
        let mean = durs.iter().sum::<u64>() as f64 / durs.len() as f64;
        (mean > 0.0).then_some(max / mean)
    }
}

/// Reconstructs one ledger per span from a raw event stream.
///
/// Composite-device member legs ride [`SpanId::NONE`] (members outlive any
/// one span); each is attributed to the ledger whose Persist window it
/// overlaps the most.
pub fn build_ledgers(events: &[Event]) -> Vec<CommitLedger> {
    let mut ledgers: Vec<CommitLedger> = Vec::new();
    for e in events {
        if !e.span.is_some() {
            continue;
        }
        match &e.kind {
            EventKind::Requested {
                strategy,
                iteration,
                bytes,
            } => ledgers.push(CommitLedger {
                span: e.span,
                strategy: strategy.clone(),
                iteration: *iteration,
                bytes: *bytes,
                outcome: "open".to_string(),
                open_nanos: e.at_nanos,
                close_nanos: e.at_nanos,
                stall_nanos: 0,
                nodes: Vec::new(),
                critical_path: Vec::new(),
                critical_nanos: 0,
                gap_nanos: 0,
            }),
            _ => {
                let Some(l) = ledgers.iter_mut().rev().find(|l| l.span == e.span) else {
                    continue;
                };
                l.close_nanos = l.close_nanos.max(e.at_nanos);
                match &e.kind {
                    EventKind::PhaseDone {
                        phase,
                        start_nanos,
                        dur_nanos,
                    } => l.nodes.push(LedgerNode {
                        label: phase.name().to_string(),
                        kind: NodeKind::Phase(*phase),
                        start_nanos: *start_nanos,
                        dur_nanos: *dur_nanos,
                        bytes: 0,
                        media_nanos: *dur_nanos,
                        critical: false,
                    }),
                    EventKind::ActorSpan {
                        actor,
                        start_nanos,
                        dur_nanos,
                        bytes,
                        media_nanos,
                    } => l.nodes.push(LedgerNode {
                        label: actor.clone(),
                        kind: actor_kind(actor),
                        start_nanos: *start_nanos,
                        dur_nanos: *dur_nanos,
                        bytes: *bytes,
                        media_nanos: *media_nanos,
                        critical: false,
                    }),
                    EventKind::Stall { nanos } => l.stall_nanos += nanos,
                    EventKind::Committed { .. } => l.outcome = "committed".to_string(),
                    EventKind::Superseded { .. } => l.outcome = "superseded".to_string(),
                    EventKind::Failed { .. } => l.outcome = "failed".to_string(),
                    _ => {}
                }
            }
        }
    }

    // Attribute device-member legs (SpanId::NONE) to the ledger whose
    // Persist window they overlap the most.
    for e in events {
        if e.span.is_some() {
            continue;
        }
        let EventKind::ActorSpan {
            actor,
            start_nanos,
            dur_nanos,
            bytes,
            media_nanos,
        } = &e.kind
        else {
            continue;
        };
        let (leg_s, leg_e) = (*start_nanos, start_nanos + dur_nanos);
        let mut best: Option<(usize, u64)> = None;
        for (i, l) in ledgers.iter().enumerate() {
            let Some(p) = l
                .nodes
                .iter()
                .find(|n| n.kind == NodeKind::Phase(Phase::Persist))
            else {
                continue;
            };
            let ov = p
                .end_nanos()
                .min(leg_e)
                .saturating_sub(p.start_nanos.max(leg_s));
            if ov > 0 && best.map(|(_, b)| ov > b).unwrap_or(true) {
                best = Some((i, ov));
            }
        }
        if let Some((i, _)) = best {
            ledgers[i].nodes.push(LedgerNode {
                label: actor.clone(),
                kind: NodeKind::Device,
                start_nanos: *start_nanos,
                dur_nanos: *dur_nanos,
                bytes: *bytes,
                media_nanos: *media_nanos,
                critical: false,
            });
        }
    }

    for l in &mut ledgers {
        extract_critical_path(l);
    }
    ledgers
}

fn actor_kind(actor: &str) -> NodeKind {
    if actor.starts_with("writer-") {
        NodeKind::Writer
    } else if actor.starts_with("reader-") {
        NodeKind::Reader
    } else {
        NodeKind::Device
    }
}

/// Backward interval walk over phase nodes: starting from the span close,
/// repeatedly pick the phase with the latest end not after the current
/// bound, then move the bound to that phase's start. Phases fully hidden
/// under a longer phase (the pipelined GpuCopy under a streamed Persist)
/// never get picked, so the path is exactly the chain that bounded the
/// terminal event.
fn extract_critical_path(l: &mut CommitLedger) {
    let mut picked: Vec<usize> = Vec::new();
    let mut bound = l.close_nanos;
    loop {
        let mut best: Option<usize> = None;
        for (i, n) in l.nodes.iter().enumerate() {
            if !matches!(n.kind, NodeKind::Phase(_)) || picked.contains(&i) {
                continue;
            }
            if n.end_nanos() <= bound
                && best
                    .map(|b| n.end_nanos() > l.nodes[b].end_nanos())
                    .unwrap_or(true)
            {
                best = Some(i);
            }
        }
        let Some(i) = best else { break };
        picked.push(i);
        if l.nodes[i].start_nanos <= l.open_nanos {
            break;
        }
        bound = l.nodes[i].start_nanos;
    }
    picked.reverse();
    l.critical_nanos = picked.iter().map(|&i| l.nodes[i].dur_nanos).sum();
    l.gap_nanos = l.wall_nanos().saturating_sub(l.critical_nanos);
    for &i in &picked {
        l.nodes[i].critical = true;
    }
    l.critical_path = picked;
}

/// Per-phase aggregate across a run's ledgers.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseProfile {
    /// Stable phase name (`persist`, `gpu_copy`, ...).
    pub phase: String,
    /// Number of ledger nodes of this phase.
    pub count: u64,
    /// Median node duration.
    pub median_nanos: u64,
    /// 95th-percentile node duration.
    pub p95_nanos: u64,
    /// Sum of node durations.
    pub total_nanos: u64,
    /// Sum of durations of nodes on their span's critical path.
    pub critical_nanos: u64,
    /// `critical_nanos` over the run's total critical time — how much of
    /// the run's commit-bounding time this phase is responsible for.
    pub critical_share: f64,
}

/// Per-actor-lane aggregate across a run's ledgers.
#[derive(Debug, Clone, PartialEq)]
pub struct ActorProfile {
    /// Lane label (`writer-0`, `reader-2`, `stripe-1`, ...).
    pub actor: String,
    /// Number of legs.
    pub legs: u64,
    /// Sum of leg durations.
    pub total_nanos: u64,
    /// Device I/O time within the legs.
    pub media_nanos: u64,
    /// Queue-wait time (`total - media`).
    pub queue_nanos: u64,
    /// Bytes moved.
    pub bytes: u64,
    /// Longest single leg.
    pub max_leg_nanos: u64,
}

/// One run's profile summary: the archived, diffable artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct RunProfile {
    /// Run name (archive key, e.g. `ext_restore` or `bench_pr7`).
    pub run: String,
    /// Strategy of the profiled spans (first seen).
    pub strategy: String,
    /// Ledgers that reached `committed`.
    pub commits: u64,
    /// All ledgers (including superseded/failed/open).
    pub spans: u64,
    /// Median committed-span wall time.
    pub wall_nanos_median: u64,
    /// Median committed-span critical-path time.
    pub critical_nanos_median: u64,
    /// Median committed-span overlap slack.
    pub gap_nanos_median: u64,
    /// Median committed-span training-thread stall.
    pub stall_nanos_median: u64,
    /// Median persist coverage over committed spans that report it.
    pub persist_coverage_median: Option<f64>,
    /// Median writer imbalance over committed spans that report it.
    pub writer_imbalance_median: Option<f64>,
    /// Per-phase aggregates, lifecycle order, phases with nodes only.
    pub phases: Vec<PhaseProfile>,
    /// Per-actor aggregates, sorted by total duration descending.
    pub actors: Vec<ActorProfile>,
}

fn median_u64(xs: &mut [u64]) -> u64 {
    if xs.is_empty() {
        return 0;
    }
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn percentile_u64(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn median_f64(xs: &mut [f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Some(xs[xs.len() / 2])
}

impl RunProfile {
    /// Builds a profile from already-reconstructed ledgers.
    pub fn from_ledgers(run: &str, ledgers: &[CommitLedger]) -> RunProfile {
        let committed: Vec<&CommitLedger> = ledgers
            .iter()
            .filter(|l| l.outcome == "committed")
            .collect();
        let mut walls: Vec<u64> = committed.iter().map(|l| l.wall_nanos()).collect();
        let mut crits: Vec<u64> = committed.iter().map(|l| l.critical_nanos).collect();
        let mut gaps: Vec<u64> = committed.iter().map(|l| l.gap_nanos).collect();
        let mut stalls: Vec<u64> = committed.iter().map(|l| l.stall_nanos).collect();
        let mut covs: Vec<f64> = committed
            .iter()
            .filter_map(|l| l.persist_coverage())
            .collect();
        let mut imbs: Vec<f64> = committed
            .iter()
            .filter_map(|l| l.writer_imbalance())
            .collect();

        let total_critical: u64 = ledgers.iter().map(|l| l.critical_nanos).sum();
        let mut phases = Vec::new();
        for phase in Phase::ALL {
            let mut durs: Vec<u64> = Vec::new();
            let mut critical = 0u64;
            for l in ledgers {
                for n in &l.nodes {
                    if n.kind == NodeKind::Phase(phase) {
                        durs.push(n.dur_nanos);
                        if n.critical {
                            critical += n.dur_nanos;
                        }
                    }
                }
            }
            if durs.is_empty() {
                continue;
            }
            durs.sort_unstable();
            let total: u64 = durs.iter().sum();
            phases.push(PhaseProfile {
                phase: phase.name().to_string(),
                count: durs.len() as u64,
                median_nanos: durs[durs.len() / 2],
                p95_nanos: percentile_u64(&durs, 0.95),
                total_nanos: total,
                critical_nanos: critical,
                critical_share: if total_critical > 0 {
                    critical as f64 / total_critical as f64
                } else {
                    0.0
                },
            });
        }

        let mut actors: Vec<ActorProfile> = Vec::new();
        for l in ledgers {
            for n in &l.nodes {
                if matches!(n.kind, NodeKind::Phase(_)) {
                    continue;
                }
                let a = match actors.iter_mut().find(|a| a.actor == n.label) {
                    Some(a) => a,
                    None => {
                        actors.push(ActorProfile {
                            actor: n.label.clone(),
                            legs: 0,
                            total_nanos: 0,
                            media_nanos: 0,
                            queue_nanos: 0,
                            bytes: 0,
                            max_leg_nanos: 0,
                        });
                        actors.last_mut().unwrap()
                    }
                };
                a.legs += 1;
                a.total_nanos += n.dur_nanos;
                a.media_nanos += n.media_nanos;
                a.queue_nanos += n.dur_nanos.saturating_sub(n.media_nanos);
                a.bytes += n.bytes;
                a.max_leg_nanos = a.max_leg_nanos.max(n.dur_nanos);
            }
        }
        actors.sort_by(|a, b| {
            b.total_nanos
                .cmp(&a.total_nanos)
                .then(a.actor.cmp(&b.actor))
        });

        RunProfile {
            run: run.to_string(),
            strategy: ledgers
                .first()
                .map(|l| l.strategy.clone())
                .unwrap_or_default(),
            commits: committed.len() as u64,
            spans: ledgers.len() as u64,
            wall_nanos_median: median_u64(&mut walls),
            critical_nanos_median: median_u64(&mut crits),
            gap_nanos_median: median_u64(&mut gaps),
            stall_nanos_median: median_u64(&mut stalls),
            persist_coverage_median: median_f64(&mut covs),
            writer_imbalance_median: median_f64(&mut imbs),
            phases,
            actors,
        }
    }

    /// Builds a profile straight from an event stream.
    pub fn from_events(run: &str, events: &[Event]) -> RunProfile {
        RunProfile::from_ledgers(run, &build_ledgers(events))
    }

    /// Critical-path share of a phase by name (0.0 when absent).
    pub fn critical_share(&self, phase: &str) -> f64 {
        self.phases
            .iter()
            .find(|p| p.phase == phase)
            .map(|p| p.critical_share)
            .unwrap_or(0.0)
    }

    /// Serializes as schema-tagged [`PROFILE_SCHEMA`] JSON.
    pub fn to_json(&self) -> String {
        let opt = |v: Option<f64>| v.map(json_f64).unwrap_or_else(|| "null".to_string());
        let phases: Vec<String> = self
            .phases
            .iter()
            .map(|p| {
                format!(
                    "{{\"phase\":\"{}\",\"count\":{},\"median_nanos\":{},\"p95_nanos\":{},\
                     \"total_nanos\":{},\"critical_nanos\":{},\"critical_share\":{}}}",
                    escape_json(&p.phase),
                    p.count,
                    p.median_nanos,
                    p.p95_nanos,
                    p.total_nanos,
                    p.critical_nanos,
                    json_f64(p.critical_share)
                )
            })
            .collect();
        let actors: Vec<String> = self
            .actors
            .iter()
            .map(|a| {
                format!(
                    "{{\"actor\":\"{}\",\"legs\":{},\"total_nanos\":{},\"media_nanos\":{},\
                     \"queue_nanos\":{},\"bytes\":{},\"max_leg_nanos\":{}}}",
                    escape_json(&a.actor),
                    a.legs,
                    a.total_nanos,
                    a.media_nanos,
                    a.queue_nanos,
                    a.bytes,
                    a.max_leg_nanos
                )
            })
            .collect();
        format!(
            "{{\"schema\":\"{}\",\"run\":\"{}\",\"strategy\":\"{}\",\"commits\":{},\"spans\":{},\
             \"wall_nanos_median\":{},\"critical_nanos_median\":{},\"gap_nanos_median\":{},\
             \"stall_nanos_median\":{},\"persist_coverage_median\":{},\
             \"writer_imbalance_median\":{},\"phases\":[{}],\"actors\":[{}]}}\n",
            PROFILE_SCHEMA,
            escape_json(&self.run),
            escape_json(&self.strategy),
            self.commits,
            self.spans,
            self.wall_nanos_median,
            self.critical_nanos_median,
            self.gap_nanos_median,
            self.stall_nanos_median,
            opt(self.persist_coverage_median),
            opt(self.writer_imbalance_median),
            phases.join(","),
            actors.join(",")
        )
    }

    /// Parses a [`PROFILE_SCHEMA`] document (rejects other schemas).
    pub fn from_json(text: &str) -> Result<RunProfile, String> {
        let v = JsonValue::parse(text).map_err(|e| e.to_string())?;
        let schema = v.get("schema").and_then(|s| s.as_str()).unwrap_or("");
        if schema != PROFILE_SCHEMA {
            return Err(format!(
                "unsupported profile schema {schema:?} (want {PROFILE_SCHEMA:?})"
            ));
        }
        let s = |k: &str| {
            v.get(k)
                .and_then(|x| x.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field {k:?}"))
        };
        let n = |k: &str| {
            v.get(k)
                .and_then(|x| x.as_u64())
                .ok_or_else(|| format!("missing numeric field {k:?}"))
        };
        let optf = |k: &str| v.get(k).and_then(|x| x.as_f64());
        let mut phases = Vec::new();
        if let Some(arr) = v.get("phases").and_then(|x| x.as_array()) {
            for p in arr {
                phases.push(PhaseProfile {
                    phase: p
                        .get("phase")
                        .and_then(|x| x.as_str())
                        .ok_or("phase entry missing name")?
                        .to_string(),
                    count: p.get("count").and_then(|x| x.as_u64()).unwrap_or(0),
                    median_nanos: p.get("median_nanos").and_then(|x| x.as_u64()).unwrap_or(0),
                    p95_nanos: p.get("p95_nanos").and_then(|x| x.as_u64()).unwrap_or(0),
                    total_nanos: p.get("total_nanos").and_then(|x| x.as_u64()).unwrap_or(0),
                    critical_nanos: p
                        .get("critical_nanos")
                        .and_then(|x| x.as_u64())
                        .unwrap_or(0),
                    critical_share: p
                        .get("critical_share")
                        .and_then(|x| x.as_f64())
                        .unwrap_or(0.0),
                });
            }
        }
        let mut actors = Vec::new();
        if let Some(arr) = v.get("actors").and_then(|x| x.as_array()) {
            for a in arr {
                actors.push(ActorProfile {
                    actor: a
                        .get("actor")
                        .and_then(|x| x.as_str())
                        .ok_or("actor entry missing name")?
                        .to_string(),
                    legs: a.get("legs").and_then(|x| x.as_u64()).unwrap_or(0),
                    total_nanos: a.get("total_nanos").and_then(|x| x.as_u64()).unwrap_or(0),
                    media_nanos: a.get("media_nanos").and_then(|x| x.as_u64()).unwrap_or(0),
                    queue_nanos: a.get("queue_nanos").and_then(|x| x.as_u64()).unwrap_or(0),
                    bytes: a.get("bytes").and_then(|x| x.as_u64()).unwrap_or(0),
                    max_leg_nanos: a.get("max_leg_nanos").and_then(|x| x.as_u64()).unwrap_or(0),
                });
            }
        }
        Ok(RunProfile {
            run: s("run")?,
            strategy: s("strategy")?,
            commits: n("commits")?,
            spans: n("spans")?,
            wall_nanos_median: n("wall_nanos_median")?,
            critical_nanos_median: n("critical_nanos_median")?,
            gap_nanos_median: n("gap_nanos_median")?,
            stall_nanos_median: n("stall_nanos_median")?,
            persist_coverage_median: optf("persist_coverage_median"),
            writer_imbalance_median: optf("writer_imbalance_median"),
            phases,
            actors,
        })
    }
}

/// Renders a profile as the console "top offenders" view.
pub fn render_profile(p: &RunProfile) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== profile: {} ({}, {} commits / {} spans) ==",
        p.run, p.strategy, p.commits, p.spans
    );
    let _ = writeln!(
        out,
        "  wall {}  critical {}  overlap-slack {}  stall {}",
        human_nanos(p.wall_nanos_median),
        human_nanos(p.critical_nanos_median),
        human_nanos(p.gap_nanos_median),
        human_nanos(p.stall_nanos_median)
    );
    if let Some(c) = p.persist_coverage_median {
        let _ = writeln!(out, "  persist coverage {:.1}%", c * 100.0);
    }
    if let Some(i) = p.writer_imbalance_median {
        let _ = writeln!(out, "  writer imbalance {i:.2}x (max leg / mean leg)");
    }
    let _ = writeln!(out, "\n== critical path by phase ==");
    let _ = writeln!(
        out,
        "  {:<14} {:>6} {:>10} {:>10} {:>10} {:>7}",
        "phase", "count", "median", "p95", "critical", "share"
    );
    let mut by_share: Vec<&PhaseProfile> = p.phases.iter().collect();
    by_share.sort_by(|a, b| b.critical_share.partial_cmp(&a.critical_share).unwrap());
    for ph in by_share {
        let _ = writeln!(
            out,
            "  {:<14} {:>6} {:>10} {:>10} {:>10} {:>6.1}%",
            ph.phase,
            ph.count,
            human_nanos(ph.median_nanos),
            human_nanos(ph.p95_nanos),
            human_nanos(ph.critical_nanos),
            ph.critical_share * 100.0
        );
    }
    if !p.actors.is_empty() {
        let _ = writeln!(out, "\n== actor lanes (top offenders) ==");
        let _ = writeln!(
            out,
            "  {:<12} {:>5} {:>10} {:>10} {:>10} {:>10}",
            "actor", "legs", "total", "media", "queue", "moved"
        );
        for a in p.actors.iter().take(12) {
            let _ = writeln!(
                out,
                "  {:<12} {:>5} {:>10} {:>10} {:>10} {:>10}",
                a.actor,
                a.legs,
                human_nanos(a.total_nanos),
                human_nanos(a.media_nanos),
                human_nanos(a.queue_nanos),
                human_bytes(a.bytes)
            );
        }
    }
    out
}

/// Chrome-trace entries marking critical-path edges: one `"X"` slice per
/// critical node on a dedicated `critical-path` lane, carrying the parent
/// span and phase in `args`. Feed to
/// [`chrome_trace_with`](crate::export::chrome_trace_with).
pub fn critical_trace_entries(ledgers: &[CommitLedger]) -> Vec<String> {
    /// One below the actor-lane base, so the lane sorts right above them.
    const CRITICAL_TID: u64 = 899_999;
    let mut entries = vec![format!(
        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{CRITICAL_TID},\
         \"args\":{{\"name\":\"critical-path\"}}}}"
    )];
    for l in ledgers {
        for &i in &l.critical_path {
            let n = &l.nodes[i];
            entries.push(format!(
                "{{\"name\":\"crit:{}\",\"cat\":\"critical\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":1,\"tid\":{CRITICAL_TID},\"args\":{{\"parent_span\":{},\"phase\":\"{}\"}}}}",
                escape_json(&n.label),
                json_f64(micros(n.start_nanos)),
                json_f64(micros(n.dur_nanos)),
                l.span.0,
                escape_json(&n.label)
            ));
        }
    }
    entries
}

/// [`chrome_trace`](crate::export::chrome_trace) with the critical path of
/// every span annotated on its own lane.
pub fn chrome_trace_annotated(events: &[Event]) -> String {
    let ledgers = build_ledgers(events);
    crate::export::chrome_trace_with(events, &critical_trace_entries(&ledgers))
}

/// On-disk archive of run profiles: one `<run>.profile.json` per run,
/// written via a `.tmp` + rename so readers never see a torn file.
#[derive(Debug, Clone)]
pub struct ProfileArchive {
    dir: PathBuf,
}

impl ProfileArchive {
    /// Opens (creating if needed) an archive rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<ProfileArchive> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(ProfileArchive { dir })
    }

    /// The archive directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path a run's profile lives at.
    pub fn path_for(&self, run: &str) -> PathBuf {
        self.dir.join(format!("{run}.profile.json"))
    }

    /// Persists `profile` under its run name; returns the final path.
    pub fn store(&self, profile: &RunProfile) -> std::io::Result<PathBuf> {
        let path = self.path_for(&profile.run);
        let tmp = self.dir.join(format!("{}.profile.json.tmp", profile.run));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(profile.to_json().as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        Ok(path)
    }

    /// Loads a run's profile by name.
    pub fn load(&self, run: &str) -> Result<RunProfile, String> {
        let path = self.path_for(run);
        let text =
            fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        RunProfile::from_json(&text)
    }

    /// Run names with stored profiles, sorted.
    pub fn list(&self) -> Vec<String> {
        let mut runs: Vec<String> = fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .filter_map(|e| {
                        e.file_name()
                            .to_str()?
                            .strip_suffix(".profile.json")
                            .map(str::to_string)
                    })
                    .collect()
            })
            .unwrap_or_default();
        runs.sort();
        runs
    }
}

/// Which statistic [`diff_profiles`] compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffMode {
    /// Median phase nanoseconds — same-machine comparisons.
    Absolute,
    /// Critical-path shares — scale-invariant, for gating against a
    /// baseline recorded on different hardware (CI).
    Shares,
}

/// Noise thresholds for [`diff_profiles`]. A phase only flags when it
/// clears *both* a relative ratio and an absolute floor, so jitter on
/// microsecond-scale phases can't fail a gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffThresholds {
    /// Minimum relative growth (0.20 = +20%) before a phase can flag.
    pub min_ratio: f64,
    /// Minimum absolute growth in nanoseconds (absolute mode).
    pub min_effect_nanos: u64,
    /// Minimum absolute critical-share growth (shares mode).
    pub min_share_delta: f64,
}

impl Default for DiffThresholds {
    fn default() -> Self {
        DiffThresholds {
            min_ratio: 0.20,
            min_effect_nanos: 500_000,
            min_share_delta: 0.10,
        }
    }
}

/// One phase's comparison between two runs.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseDiff {
    /// Phase name.
    pub phase: String,
    /// Baseline median nanoseconds.
    pub base_nanos: u64,
    /// Candidate median nanoseconds.
    pub cand_nanos: u64,
    /// Baseline critical share.
    pub base_share: f64,
    /// Candidate critical share.
    pub cand_share: f64,
    /// Whether this phase flags as a regression under the chosen mode.
    pub regressed: bool,
}

/// The outcome of comparing a candidate run against a baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileDiff {
    /// Baseline run name.
    pub base_run: String,
    /// Candidate run name.
    pub cand_run: String,
    /// Statistic compared.
    pub mode: DiffMode,
    /// Per-phase comparisons (union of both runs' phases).
    pub phases: Vec<PhaseDiff>,
    /// Whether any phase flagged.
    pub regressed: bool,
    /// The worst flagged phase.
    pub blamed_phase: Option<String>,
    /// The candidate actor lane most responsible for the blamed phase,
    /// with a `media-bound` / `queue-bound` qualifier.
    pub blamed_actor: Option<String>,
}

/// Actor-lane prefixes that serve a given phase, for blame attribution.
fn phase_actor_prefixes(phase: &str) -> &'static [&'static str] {
    match phase {
        "persist" | "commit" | "delta_map" => &["writer-", "stripe-", "fence", "tier", "spill"],
        "restore_read" | "restore_verify" | "restore_upload" | "recovery_load"
        | "recovery_verify" | "delta_replay" => &["reader-"],
        _ => &[],
    }
}

/// Compares `cand` against `base` phase by phase.
///
/// A phase flags only when it clears both the relative and the absolute
/// threshold for the chosen mode ([`DiffThresholds`]); the worst flagged
/// phase becomes [`ProfileDiff::blamed_phase`], and the candidate's
/// heaviest matching actor lane becomes [`ProfileDiff::blamed_actor`].
pub fn diff_profiles(
    base: &RunProfile,
    cand: &RunProfile,
    mode: DiffMode,
    th: &DiffThresholds,
) -> ProfileDiff {
    let mut names: Vec<String> = base.phases.iter().map(|p| p.phase.clone()).collect();
    for p in &cand.phases {
        if !names.contains(&p.phase) {
            names.push(p.phase.clone());
        }
    }
    let lookup = |prof: &RunProfile, name: &str| -> (u64, f64) {
        prof.phases
            .iter()
            .find(|p| p.phase == name)
            .map(|p| (p.median_nanos, p.critical_share))
            .unwrap_or((0, 0.0))
    };
    let mut phases = Vec::new();
    for name in &names {
        let (bn, bs) = lookup(base, name);
        let (cn, cs) = lookup(cand, name);
        let regressed = match mode {
            DiffMode::Absolute => {
                cn as f64 >= bn as f64 * (1.0 + th.min_ratio)
                    && cn.saturating_sub(bn) >= th.min_effect_nanos
            }
            DiffMode::Shares => cs >= bs * (1.0 + th.min_ratio) && cs - bs >= th.min_share_delta,
        };
        phases.push(PhaseDiff {
            phase: name.clone(),
            base_nanos: bn,
            cand_nanos: cn,
            base_share: bs,
            cand_share: cs,
            regressed,
        });
    }
    let blamed_phase = phases
        .iter()
        .filter(|p| p.regressed)
        .max_by(|a, b| {
            let ka = severity(a, mode);
            let kb = severity(b, mode);
            ka.partial_cmp(&kb).unwrap()
        })
        .map(|p| p.phase.clone());
    let blamed_actor = blamed_phase.as_deref().and_then(|phase| {
        let prefixes = phase_actor_prefixes(phase);
        cand.actors
            .iter()
            .filter(|a| prefixes.iter().any(|p| a.actor.starts_with(p)))
            .max_by_key(|a| a.total_nanos)
            .map(|a| {
                let bound = if a.media_nanos * 10 >= a.total_nanos * 7 {
                    "media-bound"
                } else {
                    "queue-bound"
                };
                format!("{} ({bound})", a.actor)
            })
    });
    ProfileDiff {
        base_run: base.run.clone(),
        cand_run: cand.run.clone(),
        mode,
        regressed: blamed_phase.is_some(),
        phases,
        blamed_phase,
        blamed_actor,
    }
}

fn severity(p: &PhaseDiff, mode: DiffMode) -> f64 {
    match mode {
        DiffMode::Absolute => p.cand_nanos.saturating_sub(p.base_nanos) as f64,
        DiffMode::Shares => p.cand_share - p.base_share,
    }
}

/// Renders a diff as a console table with a PASS/REGRESSION verdict.
pub fn render_diff(d: &ProfileDiff) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mode = match d.mode {
        DiffMode::Absolute => "absolute medians",
        DiffMode::Shares => "critical-path shares",
    };
    let _ = writeln!(
        out,
        "== profile diff: {} -> {} ({mode}) ==",
        d.base_run, d.cand_run
    );
    let _ = writeln!(
        out,
        "  {:<14} {:>10} {:>10} {:>8} {:>8}  {}",
        "phase", "base", "cand", "share", "share'", "verdict"
    );
    for p in &d.phases {
        let _ = writeln!(
            out,
            "  {:<14} {:>10} {:>10} {:>7.1}% {:>7.1}%  {}",
            p.phase,
            human_nanos(p.base_nanos),
            human_nanos(p.cand_nanos),
            p.base_share * 100.0,
            p.cand_share * 100.0,
            if p.regressed { "REGRESSED" } else { "ok" }
        );
    }
    match (&d.blamed_phase, &d.blamed_actor) {
        (Some(phase), Some(actor)) => {
            let _ = writeln!(out, "\nREGRESSION: {phase} — blame {actor}");
        }
        (Some(phase), None) => {
            let _ = writeln!(out, "\nREGRESSION: {phase}");
        }
        _ => {
            let _ = writeln!(out, "\nPASS: no critical-path regression");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(span: u64, at: u64, kind: EventKind) -> Event {
        Event {
            span: SpanId(span),
            at_nanos: at,
            kind,
        }
    }

    fn phase_done(span: u64, phase: Phase, start: u64, dur: u64) -> Event {
        ev(
            span,
            start + dur,
            EventKind::PhaseDone {
                phase,
                start_nanos: start,
                dur_nanos: dur,
            },
        )
    }

    fn actor(span: u64, actor: &str, start: u64, dur: u64, bytes: u64, media: u64) -> Event {
        ev(
            span,
            start + dur,
            EventKind::ActorSpan {
                actor: actor.to_string(),
                start_nanos: start,
                dur_nanos: dur,
                bytes,
                media_nanos: media,
            },
        )
    }

    /// One committed span: TicketWait [0,10), GpuCopy [10,30), Persist
    /// [20,60) (overlapping the copy), Commit [60,70), two writer legs.
    fn sample_events() -> Vec<Event> {
        vec![
            ev(
                1,
                0,
                EventKind::Requested {
                    strategy: "pccheck".to_string(),
                    iteration: 7,
                    bytes: 4096,
                },
            ),
            ev(1, 1, EventKind::Queued),
            phase_done(1, Phase::TicketWait, 0, 10),
            phase_done(1, Phase::GpuCopy, 10, 20),
            actor(1, "writer-0", 20, 20, 2048, 15),
            actor(1, "writer-1", 30, 30, 2048, 30),
            phase_done(1, Phase::Persist, 20, 40),
            phase_done(1, Phase::Commit, 60, 10),
            ev(
                1,
                70,
                EventKind::Committed {
                    iteration: 7,
                    bytes: 4096,
                },
            ),
        ]
    }

    #[test]
    fn critical_path_skips_overlapped_copy() {
        let ledgers = build_ledgers(&sample_events());
        assert_eq!(ledgers.len(), 1);
        let l = &ledgers[0];
        assert_eq!(l.outcome, "committed");
        assert_eq!(l.wall_nanos(), 70);
        let path: Vec<&str> = l
            .critical_path
            .iter()
            .map(|&i| l.nodes[i].label.as_str())
            .collect();
        assert_eq!(path, ["ticket_wait", "persist", "commit"]);
        assert_eq!(l.critical_nanos, 10 + 40 + 10);
        assert_eq!(l.gap_nanos, 10); // the copy tail hidden under persist
        for &i in &l.critical_path {
            assert!(l.nodes[i].critical);
        }
    }

    #[test]
    fn persist_coverage_and_imbalance() {
        let ledgers = build_ledgers(&sample_events());
        let l = &ledgers[0];
        // Writers cover [20,40) ∪ [30,60) = 40 of the 40ns persist window.
        assert_eq!(l.persist_coverage(), Some(1.0));
        // Legs 20 and 30: max 30 over mean 25.
        let imb = l.writer_imbalance().unwrap();
        assert!((imb - 1.2).abs() < 1e-9, "imbalance {imb}");
    }

    #[test]
    fn device_legs_attach_by_persist_overlap() {
        let mut events = sample_events();
        events.push(actor(0, "stripe-0", 25, 10, 1024, 10));
        events.push(actor(0, "stripe-1", 200, 10, 1024, 10)); // outside any window
        let ledgers = build_ledgers(&events);
        let devices: Vec<&str> = ledgers[0]
            .nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Device)
            .map(|n| n.label.as_str())
            .collect();
        assert_eq!(devices, ["stripe-0"]);
    }

    #[test]
    fn profile_json_roundtrip() {
        let p = RunProfile::from_events("unit", &sample_events());
        assert_eq!(p.commits, 1);
        assert_eq!(p.spans, 1);
        assert_eq!(p.strategy, "pccheck");
        let text = p.to_json();
        assert!(text.contains(PROFILE_SCHEMA));
        let back = RunProfile::from_json(&text).unwrap();
        assert_eq!(back, p);
        // Shares over the one span: persist 40 of 60 critical nanos.
        assert!((p.critical_share("persist") - 40.0 / 60.0).abs() < 1e-9);
        // Queue wait splits survive the roundtrip.
        let w1 = back.actors.iter().find(|a| a.actor == "writer-1").unwrap();
        assert_eq!(w1.queue_nanos, 0);
        let w0 = back.actors.iter().find(|a| a.actor == "writer-0").unwrap();
        assert_eq!(w0.queue_nanos, 5);
    }

    #[test]
    fn from_json_rejects_wrong_schema() {
        let err = RunProfile::from_json("{\"schema\":\"pccheck.metrics.v1\"}").unwrap_err();
        assert!(err.contains("unsupported profile schema"), "{err}");
    }

    #[test]
    fn archive_store_load_list() {
        let dir = std::env::temp_dir().join(format!(
            "pccheck-profile-archive-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let archive = ProfileArchive::open(&dir).unwrap();
        let p = RunProfile::from_events("unit_run", &sample_events());
        let path = archive.store(&p).unwrap();
        assert!(path.ends_with("unit_run.profile.json"));
        assert_eq!(archive.load("unit_run").unwrap(), p);
        assert_eq!(archive.list(), ["unit_run"]);
        // No .tmp left behind.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    fn profile_with_phase(run: &str, phase: &str, median: u64, share: f64) -> RunProfile {
        RunProfile {
            run: run.to_string(),
            strategy: "pccheck".to_string(),
            commits: 5,
            spans: 5,
            wall_nanos_median: median * 2,
            critical_nanos_median: median,
            gap_nanos_median: 0,
            stall_nanos_median: 0,
            persist_coverage_median: Some(0.95),
            writer_imbalance_median: Some(1.1),
            phases: vec![
                PhaseProfile {
                    phase: phase.to_string(),
                    count: 5,
                    median_nanos: median,
                    p95_nanos: median,
                    total_nanos: median * 5,
                    critical_nanos: (median as f64 * 5.0 * share) as u64,
                    critical_share: share,
                },
                PhaseProfile {
                    phase: "commit".to_string(),
                    count: 5,
                    median_nanos: 1_000,
                    p95_nanos: 1_200,
                    total_nanos: 5_000,
                    critical_nanos: 5_000,
                    critical_share: 1.0 - share,
                },
            ],
            actors: vec![ActorProfile {
                actor: "writer-0".to_string(),
                legs: 5,
                total_nanos: median * 4,
                media_nanos: median * 4,
                queue_nanos: 0,
                bytes: 1 << 20,
                max_leg_nanos: median,
            }],
        }
    }

    #[test]
    fn diff_flags_absolute_regression_with_blame() {
        let base = profile_with_phase("base", "persist", 10_000_000, 0.8);
        let cand = profile_with_phase("cand", "persist", 20_000_000, 0.9);
        let d = diff_profiles(&base, &cand, DiffMode::Absolute, &DiffThresholds::default());
        assert!(d.regressed);
        assert_eq!(d.blamed_phase.as_deref(), Some("persist"));
        let actor = d.blamed_actor.clone().unwrap();
        assert!(actor.starts_with("writer-0"), "{actor}");
        assert!(actor.contains("media-bound"), "{actor}");
        assert!(render_diff(&d).contains("REGRESSION: persist"));
    }

    #[test]
    fn diff_ignores_noise_below_floors() {
        let base = profile_with_phase("base", "persist", 100_000, 0.8);
        // +50% but only 50us absolute — under the 500us effect floor.
        let cand = profile_with_phase("cand", "persist", 150_000, 0.82);
        let d = diff_profiles(&base, &cand, DiffMode::Absolute, &DiffThresholds::default());
        assert!(!d.regressed, "{:?}", d.phases);
        // Shares mode: +0.02 share is under the 0.10 delta floor.
        let d = diff_profiles(&base, &cand, DiffMode::Shares, &DiffThresholds::default());
        assert!(!d.regressed);
        assert!(render_diff(&d).contains("PASS"));
    }

    #[test]
    fn diff_shares_mode_is_scale_invariant() {
        // Candidate machine is 10x slower overall, but shares moved from
        // balanced to persist-dominated: only the share shift flags.
        let base = profile_with_phase("base", "persist", 1_000_000, 0.5);
        let cand = profile_with_phase("cand", "persist", 10_000_000, 0.85);
        let d = diff_profiles(&base, &cand, DiffMode::Shares, &DiffThresholds::default());
        assert!(d.regressed);
        assert_eq!(d.blamed_phase.as_deref(), Some("persist"));
    }

    #[test]
    fn critical_annotations_ride_their_own_lane() {
        let events = sample_events();
        let trace = chrome_trace_annotated(&events);
        assert!(trace.contains("\"critical-path\""));
        assert!(trace.contains("crit:persist"));
        assert!(trace.contains("crit:commit"));
        // The overlapped copy is not on the path.
        assert!(!trace.contains("crit:gpu_copy"));
        let parsed = JsonValue::parse(&trace).expect("annotated trace parses");
        assert!(parsed
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .is_some());
    }

    #[test]
    fn render_profile_lists_top_offenders() {
        let p = RunProfile::from_events("unit", &sample_events());
        let text = render_profile(&p);
        assert!(text.contains("critical path by phase"));
        assert!(text.contains("persist"));
        assert!(text.contains("writer-1"));
    }
}

//! The checkpoint-lifecycle event model.
//!
//! Every checkpoint request opens a *span*: a stable [`SpanId`] that all
//! subsequent events of that checkpoint carry, from `Requested` through the
//! copy and persist phases to exactly one terminal event
//! (`Committed` / `Superseded` / `Failed`). Timestamps are nanoseconds on
//! the recorder's monotonic clock, so events from concurrent background
//! threads interleave into one totally ordered timeline.

use std::fmt;

/// Identifier of one checkpoint's lifecycle span.
///
/// `SpanId(0)` is the null span handed out by a disabled recorder; events
/// are never recorded against it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The null span (telemetry disabled).
    pub const NONE: SpanId = SpanId(0);

    /// Whether this is a real (recording) span.
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "span{}", self.0)
    }
}

/// A timed phase of the checkpoint lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Waiting for one of the `N` concurrency tickets plus the shared
    /// weights lock — the only training-thread stall PCcheck admits.
    TicketWait,
    /// GPU→DRAM snapshot copy (the `C` phase).
    GpuCopy,
    /// DRAM→device write + persist (the `P` phase).
    Persist,
    /// The commit protocol: slot meta barrier + `CHECK_ADDR` CAS.
    Commit,
    /// Recovery: store header read + `CHECK_ADDR`/slot-meta scan
    /// (`CheckpointStore::open` after a crash, §4.2).
    RecoveryScan,
    /// Recovery: reading a candidate checkpoint payload back from the
    /// device.
    RecoveryLoad,
    /// Recovery: digest verification of a candidate payload.
    RecoveryVerify,
    /// Delta checkpoint: building and persisting the dirty-extent table
    /// that maps a sparse payload back onto the full state.
    DeltaMap,
    /// Recovery: replaying a delta chain (base payload + per-extent
    /// patches) into a full state image.
    DeltaReplay,
    /// Parallel restore: one reader's device→DRAM chunk fetch leg.
    RestoreRead,
    /// Parallel restore: per-chunk (or legacy whole-payload) digest
    /// verification, overlapped with the reads.
    RestoreVerify,
    /// Parallel restore: streaming verified chunks into GPU memory.
    RestoreUpload,
}

impl Phase {
    /// All phases, in lifecycle order (checkpoint phases first, then the
    /// post-crash recovery-path phases, then the delta-checkpoint phases).
    pub const ALL: [Phase; 12] = [
        Phase::TicketWait,
        Phase::GpuCopy,
        Phase::Persist,
        Phase::Commit,
        Phase::RecoveryScan,
        Phase::RecoveryLoad,
        Phase::RecoveryVerify,
        Phase::DeltaMap,
        Phase::DeltaReplay,
        Phase::RestoreRead,
        Phase::RestoreVerify,
        Phase::RestoreUpload,
    ];

    /// Stable lowercase name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            Phase::TicketWait => "ticket_wait",
            Phase::GpuCopy => "gpu_copy",
            Phase::Persist => "persist",
            Phase::Commit => "commit",
            Phase::RecoveryScan => "recovery_scan",
            Phase::RecoveryLoad => "recovery_load",
            Phase::RecoveryVerify => "recovery_verify",
            Phase::DeltaMap => "delta_map",
            Phase::DeltaReplay => "delta_replay",
            Phase::RestoreRead => "restore_read",
            Phase::RestoreVerify => "restore_verify",
            Phase::RestoreUpload => "restore_upload",
        }
    }

    /// Index into per-phase arrays.
    pub(crate) fn index(self) -> usize {
        match self {
            Phase::TicketWait => 0,
            Phase::GpuCopy => 1,
            Phase::Persist => 2,
            Phase::Commit => 3,
            Phase::RecoveryScan => 4,
            Phase::RecoveryLoad => 5,
            Phase::RecoveryVerify => 6,
            Phase::DeltaMap => 7,
            Phase::DeltaReplay => 8,
            Phase::RestoreRead => 9,
            Phase::RestoreVerify => 10,
            Phase::RestoreUpload => 11,
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What happened.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A checkpoint was requested by the training loop.
    Requested {
        /// Strategy name (`pccheck`, `checkfreq`, ...), so one recorder can
        /// hold several strategies' spans with identical instrumentation.
        strategy: String,
        /// Training iteration being captured.
        iteration: u64,
        /// Checkpoint size in bytes.
        bytes: u64,
    },
    /// The checkpoint was handed to a background worker.
    Queued,
    /// A completed lifecycle phase (start + duration on the monotonic
    /// clock). Phases of one span may overlap (pipelined copy/persist).
    PhaseDone {
        /// Which phase.
        phase: Phase,
        /// Phase start, nanoseconds on the recorder clock.
        start_nanos: u64,
        /// Phase duration in nanoseconds.
        dur_nanos: u64,
    },
    /// One chunk of payload passed through `phase` (offset/len within the
    /// checkpoint payload).
    Chunk {
        /// The phase that moved the chunk (GpuCopy or Persist).
        phase: Phase,
        /// Byte offset within the checkpoint payload.
        offset: u64,
        /// Chunk length in bytes.
        len: u64,
    },
    /// The training thread was blocked inside `checkpoint()` for this long
    /// (the Figure 8 stall). Recorded when the call returns; the stall
    /// interval is `[at_nanos - nanos, at_nanos]`.
    Stall {
        /// Blocked time in nanoseconds.
        nanos: u64,
    },
    /// Terminal: this checkpoint became the latest committed state.
    Committed {
        /// The iteration that is now durable.
        iteration: u64,
        /// Payload bytes made durable.
        bytes: u64,
    },
    /// Terminal: a newer checkpoint won the commit race.
    Superseded {
        /// Counter of the winning checkpoint.
        by_counter: u64,
    },
    /// Terminal: the checkpoint failed (device error, crash injection).
    Failed {
        /// Rendered error.
        error: String,
    },
    /// An anomaly flagged by the monitoring layer, merged into the same
    /// timeline as checkpoint events (span is `SpanId::NONE`).
    Anomaly {
        /// Iteration of the checkpoint that triggered the flag.
        iteration: u64,
        /// Observed normalized update magnitude.
        magnitude: f64,
        /// Trailing-window expectation.
        expected: f64,
        /// `magnitude / expected`.
        ratio: f64,
    },
    /// The training loop finished an iteration (span is `SpanId::NONE`);
    /// feeds goodput/rollback-depth accounting.
    IterationEnd {
        /// The 1-based iteration just completed.
        iteration: u64,
    },
    /// One pipeline actor's completed child span: a writer's chunk run, a
    /// restore reader's fetch/verify leg, or a composite-device member's
    /// I/O. The event's `span` field is the *parent* checkpoint/restore
    /// span (`SpanId::NONE` for device-level actors that outlive any one
    /// span); the Chrome exporter renders each distinct `actor` as its own
    /// timeline lane under the parent.
    ActorSpan {
        /// Stable lane label (`writer-0`, `reader-2`, `stripe-1`, ...).
        actor: String,
        /// Span start, nanoseconds on the recorder clock.
        start_nanos: u64,
        /// Span duration in nanoseconds.
        dur_nanos: u64,
        /// Payload bytes the actor moved during the span (0 if unknown).
        bytes: u64,
        /// Nanoseconds of `dur_nanos` spent in device I/O calls (write /
        /// fence / read). The remainder is queue wait: blocking on staged
        /// chunks, buffer-pool pressure, or scheduling. Actors that cannot
        /// split their time report `media_nanos == dur_nanos`, so the
        /// queue-wait estimate is conservative (never over-reported).
        media_nanos: u64,
    },
}

impl EventKind {
    /// Whether this event closes its span.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            EventKind::Committed { .. } | EventKind::Superseded { .. } | EventKind::Failed { .. }
        )
    }

    /// Stable lowercase name used by the exporters.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Requested { .. } => "requested",
            EventKind::Queued => "queued",
            EventKind::PhaseDone { .. } => "phase",
            EventKind::Chunk { .. } => "chunk",
            EventKind::Stall { .. } => "stall",
            EventKind::Committed { .. } => "committed",
            EventKind::Superseded { .. } => "superseded",
            EventKind::Failed { .. } => "failed",
            EventKind::Anomaly { .. } => "anomaly",
            EventKind::IterationEnd { .. } => "iteration_end",
            EventKind::ActorSpan { .. } => "actor_span",
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// The span this event belongs to (`SpanId::NONE` for run-level events
    /// like `IterationEnd` and `Anomaly`).
    pub span: SpanId,
    /// Nanoseconds since the recorder's epoch, monotonic.
    pub at_nanos: u64,
    /// What happened.
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_span_is_none() {
        assert!(!SpanId::NONE.is_some());
        assert!(SpanId(3).is_some());
        assert_eq!(SpanId(3).to_string(), "span3");
    }

    #[test]
    fn phase_names_are_stable() {
        let names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            [
                "ticket_wait",
                "gpu_copy",
                "persist",
                "commit",
                "recovery_scan",
                "recovery_load",
                "recovery_verify",
                "delta_map",
                "delta_replay",
                "restore_read",
                "restore_verify",
                "restore_upload",
            ]
        );
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }

    #[test]
    fn terminal_kinds() {
        assert!(EventKind::Committed {
            iteration: 1,
            bytes: 0
        }
        .is_terminal());
        assert!(EventKind::Superseded { by_counter: 2 }.is_terminal());
        assert!(EventKind::Failed { error: "x".into() }.is_terminal());
        assert!(!EventKind::Queued.is_terminal());
        assert!(!EventKind::Stall { nanos: 1 }.is_terminal());
    }
}

//! # Checkpoint-lifecycle telemetry
//!
//! Observability for the PCcheck reproduction: every checkpoint opens a
//! *span* that is traced through `requested → queued → gpu_copy →
//! persist(chunk…) → commit/supersede/fail`, with monotonic timestamps so
//! events from concurrent workers interleave into one timeline. On top of
//! the raw stream sit per-phase latency histograms (p50/p95/p99/max),
//! gauges (in-flight concurrency, free-slot queue depth, device-bandwidth
//! utilization), and a stall/goodput accountant that reproduces the
//! paper's Fig. 8/9 metrics online.
//!
//! The paper's entire evaluation is an observability exercise — checkpoint
//! stall (Fig. 8), goodput under preemption (Fig. 9), the persist
//! breakdown (Fig. 11) — and this crate makes those numbers fall out of
//! any instrumented run instead of being re-derived ad hoc per binary.
//!
//! ## Design
//!
//! * [`Telemetry`] is a cheap cloneable handle. [`Telemetry::disabled`]
//!   (also `Default`) turns every hook into a branch on `None` — zero
//!   allocation, no atomics — so instrumented hot paths cost nothing when
//!   telemetry is off. [`Telemetry::enabled`] shares one
//!   [`MemoryRecorder`] among all clones.
//! * The recorder is *lock-light*: counters/histograms/gauges are single
//!   atomic operations; events append to per-thread-sharded buffers.
//! * The crate is nearly dependency-free; exporters emit JSON by hand. The
//!   one exception is the device crate, through which the persistent
//!   [`flight`] recorder appends its crash-safe event ring.
//! * The in-memory recorder vanishes at a crash — which is exactly the
//!   moment the paper's recovery protocol (§4.2) cares about. The
//!   [`flight`] module therefore persists 64-byte checksummed lifecycle
//!   records to a reserved ring on the *same* device that holds the
//!   checkpoints, so a post-crash auditor can replay what the commit
//!   protocol was doing when the process died.
//!
//! ## Modules
//!
//! * [`event`] — [`SpanId`], [`Phase`], [`EventKind`], [`Event`].
//! * [`flight`] — [`FlightRing`], [`FlightRecorder`], [`FlightRecord`]:
//!   the persistent crash-safe event ring.
//! * [`recorder`] — [`MemoryRecorder`], [`Telemetry`],
//!   [`TelemetrySnapshot`].
//! * [`histogram`] — [`LatencyHistogram`] (64 log2 buckets, lock-free).
//! * [`counters`] — [`CheckpointCounters`] with a consistent
//!   [`snapshot`](CheckpointCounters::snapshot).
//! * [`accounting`] — [`RunAccounting`]: stall fraction, slowdown,
//!   rollback depth, goodput.
//! * [`export`] — [`render_summary`], [`json_lines`], [`chrome_trace`]
//!   (Perfetto-loadable).
//! * [`profile`] — [`CommitLedger`], [`RunProfile`], [`ProfileArchive`],
//!   [`diff_profiles`]: per-commit critical-path ledgers and cross-run
//!   regression analytics.
//! * [`registry`] — [`MetricsRegistry`], [`MetricsServer`]: live
//!   Prometheus/JSON exposition over the shared recorder.
//! * [`watchdog`] — [`SloWatchdog`]: rolling-window SLO evaluation with
//!   black-box capture on violation.
//!
//! ## Quickstart
//!
//! ```
//! use pccheck_telemetry::{Phase, RunAccounting, Telemetry};
//!
//! let telemetry = Telemetry::enabled();
//! let span = telemetry.span_requested("pccheck", 1, 4096);
//! let start = telemetry.now_nanos();
//! // ... GPU→DRAM copy happens here ...
//! telemetry.phase_done(span, Phase::GpuCopy, start);
//! telemetry.committed(span, 1, 4096);
//! telemetry.iteration_end(1);
//!
//! let snapshot = telemetry.snapshot().unwrap();
//! assert_eq!(snapshot.counters.committed, 1);
//! let accounting = RunAccounting::from_events(&telemetry.events());
//! assert_eq!(accounting.iterations, 1);
//! println!("{}", pccheck_telemetry::render_summary(&snapshot, &accounting));
//! ```

pub mod accounting;
pub mod counters;
pub mod event;
pub mod export;
pub mod flight;
pub mod histogram;
pub mod profile;
pub mod recorder;
pub mod registry;
pub mod watchdog;

pub use accounting::{GoodputEstimate, RunAccounting};
pub use counters::{CheckpointCounters, CountersSnapshot};
pub use event::{Event, EventKind, Phase, SpanId};
pub use export::{chrome_trace, chrome_trace_with, json_lines, render_summary};
pub use flight::{
    FlightEventKind, FlightRecord, FlightRecorder, FlightRing, RingScan, FLIGHT_HEADER_SIZE,
    FLIGHT_RECORD_SIZE,
};
pub use histogram::{HistogramSummary, LatencyHistogram};
pub use profile::{
    build_ledgers, chrome_trace_annotated, critical_trace_entries, diff_profiles, render_diff,
    render_profile, ActorProfile, CommitLedger, DiffMode, DiffThresholds, LedgerNode, NodeKind,
    PhaseDiff, PhaseProfile, ProfileArchive, ProfileDiff, RunProfile, PROFILE_SCHEMA,
};
pub use recorder::{
    MemoryRecorder, Telemetry, TelemetryIoObserver, TelemetrySnapshot, MAX_TRACKED_DEVICES,
};
pub use registry::{
    http_get, validate_prometheus_text, MetricsRegistry, MetricsServer, METRICS_SCHEMA,
};
pub use watchdog::{
    SloConfig, SloRule, SloViolation, SloWatchdog, WatchdogHandle, BLACKBOX_SCHEMA,
};

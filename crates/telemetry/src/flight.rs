//! The persistent flight recorder: a fixed-size, crash-safe event ring.
//!
//! The in-memory recorder ([`crate::MemoryRecorder`]) vanishes at exactly
//! the moment the paper cares about — when a preemption kills the trainer.
//! The flight recorder closes that gap: checkpoint-lifecycle milestones
//! are appended as 64-byte checksummed records (the same one-cache-line
//! record/CRC discipline as the store's `CheckMeta`) to a reserved region
//! of the **same** [`PersistentDevice`] that holds the checkpoints, so an
//! injected crash preserves the event history alongside the slot data and
//! a post-crash auditor can replay what the protocol was doing when the
//! lights went out.
//!
//! # Crash safety
//!
//! * The ring has **no mutable header cursor**. The header cell is written
//!   once at [`FlightRing::create`] and never touched again; the append
//!   position is derived on [`FlightRing::open`]/[`FlightRing::scan`] by
//!   scanning all cells for the highest sequence number. A crash can
//!   therefore never tear the ring's own bookkeeping.
//! * Appends are serialized by a mutex, and each record is written and
//!   persisted before the in-memory sequence counter advances — so at any
//!   crash point at most the **tail** record is torn, and a torn tail
//!   simply fails its CRC and is skipped by the scan. Decoding always
//!   yields a checksum-valid prefix of the appended history (modulo wrap).
//! * Append failures (e.g., the device already crashed) are swallowed and
//!   counted: the flight recorder is diagnostics, and must never turn a
//!   checkpoint failure into a second failure.

use std::fmt;
use std::sync::{Arc, Mutex};

use pccheck_device::PersistentDevice;

/// Serialized size of one flight record: one cache line.
pub const FLIGHT_RECORD_SIZE: u64 = 64;

/// Bytes occupied by the ring header cell.
pub const FLIGHT_HEADER_SIZE: u64 = 64;

const RECORD_MAGIC: u32 = 0x464C_5431; // "FLT1"
const RING_MAGIC: u64 = 0x5043_464C_5452_4731; // "PCFLTRG1"

/// FNV-1a over `data` — the record checksum, same discipline as the
/// checkpoint metadata records.
fn checksum(data: &[u8]) -> u64 {
    pccheck_util::fnv::fnv1a(data)
}

/// What a flight record witnesses. Discriminants are part of the on-device
/// format; never renumber.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FlightEventKind {
    /// The store was formatted / a run started.
    RunStart = 1,
    /// `begin_checkpoint`: a counter was taken and a slot leased
    /// (`aux` = the packed `CHECK_ADDR` observed at begin).
    Begin = 2,
    /// The GPU→DRAM snapshot copy finished (`bytes` = payload size).
    CopyDone = 3,
    /// The payload is durable in the slot (`bytes` = payload size).
    PayloadPersisted = 4,
    /// The slot's metadata record is durable — the BARRIER before the
    /// commit CAS (`aux` = state digest).
    MetaPersisted = 5,
    /// The durable `CHECK_ADDR` now points at this checkpoint: it is the
    /// latest committed state.
    Commit = 6,
    /// The checkpoint lost the commit race (`aux` = winning counter).
    Superseded = 7,
    /// The checkpoint failed (device error, crash injection).
    Failed = 8,
    /// Post-crash recovery started.
    RecoveryStart = 9,
    /// Recovery completed (`aux` = number of candidates rejected before
    /// one verified).
    RecoveryDone = 10,
}

impl FlightEventKind {
    /// All kinds, in discriminant order.
    pub const ALL: [FlightEventKind; 10] = [
        FlightEventKind::RunStart,
        FlightEventKind::Begin,
        FlightEventKind::CopyDone,
        FlightEventKind::PayloadPersisted,
        FlightEventKind::MetaPersisted,
        FlightEventKind::Commit,
        FlightEventKind::Superseded,
        FlightEventKind::Failed,
        FlightEventKind::RecoveryStart,
        FlightEventKind::RecoveryDone,
    ];

    /// Decodes a stored discriminant.
    pub fn from_u8(v: u8) -> Option<FlightEventKind> {
        FlightEventKind::ALL.into_iter().find(|k| *k as u8 == v)
    }

    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            FlightEventKind::RunStart => "run_start",
            FlightEventKind::Begin => "begin",
            FlightEventKind::CopyDone => "copy_done",
            FlightEventKind::PayloadPersisted => "payload_persisted",
            FlightEventKind::MetaPersisted => "meta_persisted",
            FlightEventKind::Commit => "commit",
            FlightEventKind::Superseded => "superseded",
            FlightEventKind::Failed => "failed",
            FlightEventKind::RecoveryStart => "recovery_start",
            FlightEventKind::RecoveryDone => "recovery_done",
        }
    }
}

impl fmt::Display for FlightEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One 64-byte flight record.
///
/// Layout (little-endian):
///
/// ```text
/// 0..4   magic "FLT1"     4      kind        5..8   reserved
/// 8..16  seq              16..24 counter     24..28 slot
/// 28..32 reserved         32..40 iteration   40..48 bytes
/// 48..56 aux              56..64 FNV-1a over bytes 0..56
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightRecord {
    /// Monotonic append sequence number (never wraps; the cell index is
    /// `seq % capacity`).
    pub seq: u64,
    /// What happened.
    pub kind: FlightEventKind,
    /// The checkpoint's global counter (0 for run-level records).
    pub counter: u64,
    /// The slot involved (`u32::MAX` when not applicable).
    pub slot: u32,
    /// Training iteration, when known (0 otherwise).
    pub iteration: u64,
    /// Payload bytes involved (0 when not applicable).
    pub bytes: u64,
    /// Kind-specific extra word (see [`FlightEventKind`]).
    pub aux: u64,
}

impl FlightRecord {
    /// Serializes to a 64-byte cell with magic and checksum.
    pub fn encode(&self) -> [u8; FLIGHT_RECORD_SIZE as usize] {
        let mut buf = [0u8; FLIGHT_RECORD_SIZE as usize];
        buf[0..4].copy_from_slice(&RECORD_MAGIC.to_le_bytes());
        buf[4] = self.kind as u8;
        buf[8..16].copy_from_slice(&self.seq.to_le_bytes());
        buf[16..24].copy_from_slice(&self.counter.to_le_bytes());
        buf[24..28].copy_from_slice(&self.slot.to_le_bytes());
        buf[32..40].copy_from_slice(&self.iteration.to_le_bytes());
        buf[40..48].copy_from_slice(&self.bytes.to_le_bytes());
        buf[48..56].copy_from_slice(&self.aux.to_le_bytes());
        let crc = checksum(&buf[0..56]);
        buf[56..64].copy_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Decodes a cell, returning `None` on bad magic, unknown kind, or CRC
    /// mismatch (torn write, never-written cell, corruption).
    pub fn decode(buf: &[u8]) -> Option<FlightRecord> {
        if buf.len() < FLIGHT_RECORD_SIZE as usize {
            return None;
        }
        let magic = u32::from_le_bytes(buf[0..4].try_into().ok()?);
        if magic != RECORD_MAGIC {
            return None;
        }
        let stored_crc = u64::from_le_bytes(buf[56..64].try_into().ok()?);
        if checksum(&buf[0..56]) != stored_crc {
            return None;
        }
        Some(FlightRecord {
            kind: FlightEventKind::from_u8(buf[4])?,
            seq: u64::from_le_bytes(buf[8..16].try_into().ok()?),
            counter: u64::from_le_bytes(buf[16..24].try_into().ok()?),
            slot: u32::from_le_bytes(buf[24..28].try_into().ok()?),
            iteration: u64::from_le_bytes(buf[32..40].try_into().ok()?),
            bytes: u64::from_le_bytes(buf[40..48].try_into().ok()?),
            aux: u64::from_le_bytes(buf[48..56].try_into().ok()?),
        })
    }
}

impl fmt::Display for FlightRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{:<5} {:<17} counter {:<4} slot {:<3} iter {:<6} {} B aux {:#x}",
            self.seq,
            self.kind.name(),
            self.counter,
            if self.slot == u32::MAX {
                "-".to_string()
            } else {
                self.slot.to_string()
            },
            self.iteration,
            self.bytes,
            self.aux
        )
    }
}

#[derive(Debug, Default)]
struct RingState {
    next_seq: u64,
    dropped: u64,
}

/// What a durable scan of the ring found.
#[derive(Debug, Clone)]
pub struct RingScan {
    /// Checksum-valid records, sorted by sequence number ascending. With a
    /// wrapped ring this is the newest `<= capacity` records.
    pub records: Vec<FlightRecord>,
    /// Cells that held data but failed validation (at most the torn tail
    /// under crash-free-append discipline; more under adversarial
    /// cache-line crash policies).
    pub torn_cells: u32,
    /// Checksum-valid cells rejected because they belonged to a *previous
    /// lap* of the ring: an adversarial crash dropped a cell's newest
    /// overwrite while the older record underneath stayed durable. Such a
    /// record passes CRC and lives in its own cell, but its seq trails the
    /// ring maximum by a full capacity or more, so splicing it into the
    /// history would interleave two laps.
    pub stale_cells: u32,
    /// Ring capacity in records.
    pub capacity: u32,
}

impl RingScan {
    /// `true` if the ring wrapped: the oldest surviving record is no longer
    /// seq 0, so the history is a suffix, not the full run.
    pub fn wrapped(&self) -> bool {
        self.records.first().is_some_and(|r| r.seq != 0)
    }

    /// The highest sequence number observed, if any record survived.
    pub fn max_seq(&self) -> Option<u64> {
        self.records.last().map(|r| r.seq)
    }
}

/// The on-device event ring: one 64-byte header cell plus `capacity`
/// 64-byte record cells, living at a fixed base offset of a
/// [`PersistentDevice`].
#[derive(Debug)]
pub struct FlightRing {
    device: Arc<dyn PersistentDevice>,
    base: u64,
    capacity: u32,
    state: Mutex<RingState>,
}

impl FlightRing {
    /// Bytes of device space a ring of `records` cells occupies.
    pub fn required_capacity(records: u32) -> u64 {
        FLIGHT_HEADER_SIZE + u64::from(records) * FLIGHT_RECORD_SIZE
    }

    /// Formats a fresh ring at `base`: writes the immutable header and
    /// zeroes every record cell so stale bytes can never decode.
    ///
    /// # Errors
    ///
    /// Returns a device error string if the region does not fit or I/O
    /// fails.
    pub fn create(
        device: Arc<dyn PersistentDevice>,
        base: u64,
        records: u32,
    ) -> Result<Self, String> {
        if records == 0 {
            return Err("flight ring needs at least 1 record cell".into());
        }
        let needed = base + Self::required_capacity(records);
        if needed > device.capacity().as_u64() {
            return Err(format!(
                "flight ring needs {needed} bytes but device holds {}",
                device.capacity()
            ));
        }
        let mut header = [0u8; FLIGHT_HEADER_SIZE as usize];
        header[0..8].copy_from_slice(&RING_MAGIC.to_le_bytes());
        header[8..12].copy_from_slice(&records.to_le_bytes());
        let crc = checksum(&header[0..12]);
        header[12..20].copy_from_slice(&crc.to_le_bytes());
        device.write_at(base, &header).map_err(|e| e.to_string())?;
        let zeros = vec![0u8; u64::from(records) as usize * FLIGHT_RECORD_SIZE as usize];
        device
            .write_at(base + FLIGHT_HEADER_SIZE, &zeros)
            .map_err(|e| e.to_string())?;
        device
            .persist(base, Self::required_capacity(records))
            .map_err(|e| e.to_string())?;
        Ok(FlightRing {
            device,
            base,
            capacity: records,
            state: Mutex::new(RingState::default()),
        })
    }

    /// Reopens a ring previously created at `base`, deriving the append
    /// position by scanning for the highest surviving sequence number.
    /// Works on a crashed device (durable reads only).
    ///
    /// # Errors
    ///
    /// Returns an error string if no valid ring header is found at `base`.
    pub fn open(device: Arc<dyn PersistentDevice>, base: u64) -> Result<Self, String> {
        let capacity = Self::read_header(device.as_ref(), base)?;
        let scan = Self::scan_region(device.as_ref(), base, capacity)?;
        Ok(FlightRing {
            device,
            base,
            capacity,
            state: Mutex::new(RingState {
                next_seq: scan.max_seq().map_or(0, |s| s + 1),
                dropped: 0,
            }),
        })
    }

    fn read_header(device: &dyn PersistentDevice, base: u64) -> Result<u32, String> {
        let mut header = [0u8; FLIGHT_HEADER_SIZE as usize];
        device
            .read_durable_at(base, &mut header)
            .map_err(|e| e.to_string())?;
        let magic = u64::from_le_bytes(header[0..8].try_into().expect("slice len"));
        if magic != RING_MAGIC {
            return Err("no flight ring at this offset (bad magic)".into());
        }
        let records = u32::from_le_bytes(header[8..12].try_into().expect("slice len"));
        let stored = u64::from_le_bytes(header[12..20].try_into().expect("slice len"));
        if checksum(&header[0..12]) != stored || records == 0 {
            return Err("flight ring header failed validation".into());
        }
        Ok(records)
    }

    /// Durable scan of a ring at `base` without constructing an appendable
    /// handle — the post-crash auditor's entry point.
    ///
    /// # Errors
    ///
    /// Returns an error string if the header is missing/torn or reads fail.
    pub fn scan(device: &dyn PersistentDevice, base: u64) -> Result<RingScan, String> {
        let capacity = Self::read_header(device, base)?;
        Self::scan_region(device, base, capacity)
    }

    fn scan_region(
        device: &dyn PersistentDevice,
        base: u64,
        capacity: u32,
    ) -> Result<RingScan, String> {
        let mut records = Vec::new();
        let mut torn = 0u32;
        let mut cell = [0u8; FLIGHT_RECORD_SIZE as usize];
        for i in 0..capacity {
            let off = base + FLIGHT_HEADER_SIZE + u64::from(i) * FLIGHT_RECORD_SIZE;
            device
                .read_durable_at(off, &mut cell)
                .map_err(|e| e.to_string())?;
            match FlightRecord::decode(&cell) {
                Some(rec) => {
                    // Sanity: a record must live in its own cell, or it is
                    // stale garbage from a mis-based scan.
                    if rec.seq % u64::from(capacity) == u64::from(i) {
                        records.push(rec);
                    } else {
                        torn += 1;
                    }
                }
                None => {
                    if cell.iter().any(|b| *b != 0) {
                        torn += 1; // non-empty cell that fails validation
                    }
                }
            }
        }
        records.sort_by_key(|r| r.seq);
        // Reject stale laps: the only seqs that can coexist in one coherent
        // history are the newest capacity-many, `(max_seq - capacity,
        // max_seq]`. A survivor further back means the cell's newer
        // overwrite was lost to a crash while the old lap's record stayed
        // durable — keeping it would splice two laps together.
        let mut stale = 0u32;
        if let Some(max_seq) = records.last().map(|r| r.seq) {
            let keep_from = max_seq.saturating_sub(u64::from(capacity) - 1);
            let cut = records.partition_point(|r| r.seq < keep_from);
            stale = cut as u32;
            records.drain(..cut);
        }
        Ok(RingScan {
            records,
            torn_cells: torn,
            stale_cells: stale,
            capacity,
        })
    }

    /// Ring capacity in records.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Device offset of the ring header.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Appends swallowed because the device rejected the write (e.g., it
    /// had already crashed).
    pub fn dropped(&self) -> u64 {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).dropped
    }

    /// Appends one record, assigning the next sequence number. Serialized:
    /// at most the tail cell can be torn by a crash. Device errors are
    /// swallowed (counted in [`dropped`](Self::dropped)) — the recorder
    /// must never fail the operation it is witnessing.
    pub fn append(
        &self,
        kind: FlightEventKind,
        counter: u64,
        slot: u32,
        iteration: u64,
        bytes: u64,
        aux: u64,
    ) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let seq = state.next_seq;
        let rec = FlightRecord {
            seq,
            kind,
            counter,
            slot,
            iteration,
            bytes,
            aux,
        };
        let off =
            self.base + FLIGHT_HEADER_SIZE + (seq % u64::from(self.capacity)) * FLIGHT_RECORD_SIZE;
        let ok = self
            .device
            .write_at(off, &rec.encode())
            .and_then(|()| self.device.persist(off, FLIGHT_RECORD_SIZE))
            .is_ok();
        if ok {
            state.next_seq += 1;
        } else {
            state.dropped += 1;
        }
    }

    /// All surviving records, by durable scan (includes wrap/torn info).
    ///
    /// # Errors
    ///
    /// Propagates device read errors as strings.
    pub fn read_all(&self) -> Result<RingScan, String> {
        Self::scan_region(self.device.as_ref(), self.base, self.capacity)
    }
}

/// Cheap cloneable handle to a shared [`FlightRing`];
/// [`FlightRecorder::disabled`] (also `Default`) turns every append into a
/// no-op, mirroring [`crate::Telemetry`].
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    inner: Option<Arc<FlightRing>>,
}

impl FlightRecorder {
    /// A recorder appending to `ring`.
    pub fn new(ring: Arc<FlightRing>) -> Self {
        FlightRecorder { inner: Some(ring) }
    }

    /// A no-op recorder.
    pub fn disabled() -> Self {
        FlightRecorder { inner: None }
    }

    /// Whether appends go anywhere.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The shared ring, when enabled.
    pub fn ring(&self) -> Option<&Arc<FlightRing>> {
        self.inner.as_ref()
    }

    /// Appends one record (no-op when disabled).
    pub fn record(
        &self,
        kind: FlightEventKind,
        counter: u64,
        slot: u32,
        iteration: u64,
        bytes: u64,
        aux: u64,
    ) {
        if let Some(ring) = &self.inner {
            ring.append(kind, counter, slot, iteration, bytes, aux);
        }
    }

    /// Appends a run-level record (no checkpoint counter or slot).
    pub fn record_run(&self, kind: FlightEventKind, aux: u64) {
        self.record(kind, 0, u32::MAX, 0, 0, aux);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pccheck_device::{CrashPolicy, DeviceConfig, SsdDevice};
    use pccheck_util::ByteSize;
    use proptest::prelude::*;

    fn device(cap: u64) -> Arc<dyn PersistentDevice> {
        Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(
            ByteSize::from_bytes(cap),
        )))
    }

    fn sample(seq: u64) -> FlightRecord {
        FlightRecord {
            seq,
            kind: FlightEventKind::MetaPersisted,
            counter: 42,
            slot: 3,
            iteration: 1000,
            bytes: 123_456,
            aux: 0xdead_beef,
        }
    }

    #[test]
    fn record_round_trips() {
        let r = sample(7);
        assert_eq!(FlightRecord::decode(&r.encode()), Some(r));
    }

    #[test]
    fn decode_rejects_torn_zeroed_and_unknown_kind() {
        let mut buf = sample(1).encode();
        buf[20] ^= 0x01;
        assert_eq!(FlightRecord::decode(&buf), None, "bit flip");
        assert_eq!(FlightRecord::decode(&[0u8; 64]), None, "zeroed cell");
        assert_eq!(FlightRecord::decode(&[0u8; 10]), None, "short buffer");
        let mut buf = sample(1).encode();
        buf[4] = 99; // unknown kind; fix the CRC so only the kind is wrong
        let crc = checksum(&buf[0..56]);
        buf[56..64].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(FlightRecord::decode(&buf), None, "unknown kind");
    }

    #[test]
    fn kinds_round_trip_discriminants() {
        for k in FlightEventKind::ALL {
            assert_eq!(FlightEventKind::from_u8(k as u8), Some(k));
        }
        assert_eq!(FlightEventKind::from_u8(0), None);
        assert_eq!(FlightEventKind::from_u8(200), None);
    }

    #[test]
    fn create_append_scan_round_trip() {
        let dev = device(4096);
        let ring = FlightRing::create(Arc::clone(&dev), 128, 8).unwrap();
        for i in 0..5u64 {
            ring.append(FlightEventKind::Begin, i + 1, i as u32, 10 * i, 64, 0);
        }
        let scan = ring.read_all().unwrap();
        assert_eq!(scan.records.len(), 5);
        assert!(!scan.wrapped());
        assert_eq!(scan.torn_cells, 0);
        assert_eq!(scan.max_seq(), Some(4));
        for (i, r) in scan.records.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
            assert_eq!(r.counter, i as u64 + 1);
        }
        // A standalone durable scan sees the same history.
        let scan2 = FlightRing::scan(dev.as_ref(), 128).unwrap();
        assert_eq!(scan2.records, scan.records);
    }

    #[test]
    fn wrap_keeps_newest_records() {
        let dev = device(4096);
        let ring = FlightRing::create(Arc::clone(&dev), 0, 4).unwrap();
        for i in 0..11u64 {
            ring.append(FlightEventKind::Commit, i, 0, i, 0, 0);
        }
        let scan = ring.read_all().unwrap();
        assert_eq!(scan.records.len(), 4);
        assert!(scan.wrapped());
        let seqs: Vec<u64> = scan.records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, [7, 8, 9, 10], "newest capacity-many records");
    }

    #[test]
    fn scan_rejects_resurrected_stale_lap() {
        // Adversarial crash shape: a cell's newest overwrite is lost while
        // the previous lap's record underneath stays durable. Both records
        // pass CRC and live in their own cell; only the lap window test
        // can tell them apart.
        let dev = device(4096);
        let ring = FlightRing::create(Arc::clone(&dev), 0, 4).unwrap();
        drop(ring);
        for seq in [1u64, 8u64] {
            // seq 1 → cell 1 (old lap), seq 8 → cell 0 (two laps later).
            let off = FLIGHT_HEADER_SIZE + (seq % 4) * FLIGHT_RECORD_SIZE;
            dev.write_at(off, &sample(seq).encode()).unwrap();
            dev.persist(off, FLIGHT_RECORD_SIZE).unwrap();
        }
        let scan = FlightRing::scan(dev.as_ref(), 0).unwrap();
        let seqs: Vec<u64> = scan.records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, [8], "stale lap must not be spliced into history");
        assert_eq!(scan.stale_cells, 1);
        assert_eq!(scan.torn_cells, 0);
        // Reopening resumes after the true maximum, not the stale record.
        let ring = FlightRing::open(Arc::clone(&dev), 0).unwrap();
        ring.append(FlightEventKind::RecoveryStart, 0, u32::MAX, 0, 0, 0);
        assert_eq!(ring.read_all().unwrap().max_seq(), Some(9));
    }

    #[test]
    fn open_resumes_sequence_numbers() {
        let dev = device(4096);
        {
            let ring = FlightRing::create(Arc::clone(&dev), 0, 8).unwrap();
            ring.append(FlightEventKind::Begin, 1, 0, 0, 0, 0);
            ring.append(FlightEventKind::Commit, 1, 0, 0, 0, 0);
        }
        dev.crash_now();
        dev.recover();
        let ring = FlightRing::open(Arc::clone(&dev), 0).unwrap();
        ring.append(FlightEventKind::RecoveryStart, 0, u32::MAX, 0, 0, 0);
        let scan = ring.read_all().unwrap();
        let seqs: Vec<u64> = scan.records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, [0, 1, 2], "append resumes after the survivors");
    }

    #[test]
    fn open_rejects_missing_ring() {
        let dev = device(4096);
        assert!(FlightRing::open(dev, 0).is_err());
    }

    #[test]
    fn crash_loses_only_the_unpersisted_tail() {
        let dev = device(4096);
        let ring = FlightRing::create(Arc::clone(&dev), 0, 16).unwrap();
        ring.append(FlightEventKind::Begin, 1, 0, 0, 0, 0);
        ring.append(FlightEventKind::MetaPersisted, 1, 0, 0, 0, 0);
        // Simulate a torn tail: a record written but never persisted.
        let torn = FlightRecord {
            seq: 2,
            kind: FlightEventKind::Commit,
            counter: 1,
            slot: 0,
            iteration: 0,
            bytes: 0,
            aux: 0,
        };
        dev.write_at(FLIGHT_HEADER_SIZE + 2 * 64, &torn.encode())
            .unwrap();
        dev.crash_now();
        let scan = FlightRing::scan(dev.as_ref(), 0).unwrap();
        let seqs: Vec<u64> = scan.records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, [0, 1], "unpersisted tail is gone, prefix survives");
    }

    #[test]
    fn appends_after_device_crash_are_dropped_not_fatal() {
        let dev = device(4096);
        let ring = FlightRing::create(Arc::clone(&dev), 0, 8).unwrap();
        ring.append(FlightEventKind::Begin, 1, 0, 0, 0, 0);
        dev.crash_now();
        ring.append(FlightEventKind::Commit, 1, 0, 0, 0, 0);
        assert_eq!(ring.dropped(), 1);
        dev.recover();
        let scan = ring.read_all().unwrap();
        assert_eq!(scan.records.len(), 1);
    }

    #[test]
    fn create_rejects_oversized_ring() {
        let dev = device(256);
        assert!(FlightRing::create(Arc::clone(&dev), 0, 64).is_err());
        assert!(FlightRing::create(dev, 0, 0).is_err());
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = FlightRecorder::disabled();
        assert!(!rec.is_enabled());
        rec.record(FlightEventKind::Begin, 1, 0, 0, 0, 0);
        rec.record_run(FlightEventKind::RunStart, 0);
        assert!(rec.ring().is_none());
        assert_eq!(FlightRecorder::default().is_enabled(), false);
    }

    #[test]
    fn concurrent_appends_keep_unique_contiguous_seqs() {
        let dev = device(64 + 64 * 256);
        let ring = Arc::new(FlightRing::create(Arc::clone(&dev), 0, 256).unwrap());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let ring = Arc::clone(&ring);
            handles.push(std::thread::spawn(move || {
                for i in 0..32u64 {
                    ring.append(FlightEventKind::Begin, t * 100 + i, 0, 0, 0, 0);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let scan = ring.read_all().unwrap();
        assert_eq!(scan.records.len(), 128);
        let seqs: Vec<u64> = scan.records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, (0..128).collect::<Vec<u64>>());
    }

    /// Property body (shared by the deterministic grid test and the
    /// proptest fuzz below): a record round-trips and any single bit flip
    /// in the covered bytes is detected.
    fn check_roundtrip_and_bitflip(rec: FlightRecord, pos: usize, bit: u8) {
        let buf = rec.encode();
        assert_eq!(FlightRecord::decode(&buf), Some(rec));
        let mut torn = buf;
        torn[pos] ^= 1 << bit;
        if torn != buf {
            assert_eq!(FlightRecord::decode(&torn), None, "flip at {pos}:{bit}");
        }
    }

    /// Property body: after `persisted` proper appends and `total -
    /// persisted` raw unpersisted cell writes (the crash window of an
    /// append, including partial-wrap overwrites), a crash that drops the
    /// unpersisted suffix always leaves a decodable, checksum-valid
    /// prefix — the newest `<= cap` of the persisted records.
    fn check_crash_prefix(total: usize, persisted: usize, cap: u32) {
        let persisted = persisted.min(total);
        let dev: Arc<dyn PersistentDevice> = Arc::new(SsdDevice::with_crash_policy(
            DeviceConfig::fast_for_tests(ByteSize::from_kb(8)),
            CrashPolicy::DropUnpersisted,
        ));
        let ring = FlightRing::create(Arc::clone(&dev), 0, cap).unwrap();
        for i in 0..persisted as u64 {
            ring.append(FlightEventKind::Begin, i, 0, 0, 0, 0);
        }
        for i in persisted as u64..total as u64 {
            let rec = FlightRecord {
                seq: i,
                kind: FlightEventKind::Commit,
                counter: i,
                slot: 0,
                iteration: 0,
                bytes: 0,
                aux: 0,
            };
            let off = FLIGHT_HEADER_SIZE + (i % u64::from(cap)) * FLIGHT_RECORD_SIZE;
            dev.write_at(off, &rec.encode()).unwrap();
        }
        dev.crash_now();
        let scan = FlightRing::scan(dev.as_ref(), 0).unwrap();
        let expect_lo = persisted.saturating_sub(cap as usize) as u64;
        let expect: Vec<u64> = (expect_lo..persisted as u64).collect();
        let seqs: Vec<u64> = scan.records.iter().map(|r| r.seq).collect();
        assert_eq!(
            seqs, expect,
            "total={total} persisted={persisted} cap={cap}"
        );
        for r in &scan.records {
            assert_eq!(r.kind, FlightEventKind::Begin);
        }
    }

    #[test]
    fn deterministic_roundtrip_and_crash_prefix_grid() {
        for (i, pos) in [(0usize, 0usize), (1, 4), (2, 8), (3, 31), (4, 55)] {
            check_roundtrip_and_bitflip(sample(i as u64), pos, (i % 8) as u8);
        }
        for (total, persisted, cap) in [
            (1, 0, 2),
            (3, 3, 4),
            (5, 3, 4),
            (9, 7, 4),
            (20, 13, 5),
            (39, 22, 11),
        ] {
            check_crash_prefix(total, persisted, cap);
        }
    }

    proptest! {
        /// Fuzzed version of [`check_roundtrip_and_bitflip`].
        #[test]
        fn any_record_round_trips_and_bitflips_detected(
            seq in any::<u64>(), counter in any::<u64>(), slot in any::<u32>(),
            iteration in any::<u64>(), bytes in any::<u64>(), aux in any::<u64>(),
            kind_ix in 0usize..FlightEventKind::ALL.len(),
            pos in 0usize..56, bit in 0u8..8,
        ) {
            check_roundtrip_and_bitflip(
                FlightRecord {
                    seq, counter, slot, iteration, bytes, aux,
                    kind: FlightEventKind::ALL[kind_ix],
                },
                pos,
                bit,
            );
        }

        /// Fuzzed version of [`check_crash_prefix`].
        #[test]
        fn crash_mid_append_yields_valid_prefix(
            total in 1usize..40, persisted in 0usize..40, cap in 2u32..12,
        ) {
            check_crash_prefix(total, persisted, cap);
        }
    }
}

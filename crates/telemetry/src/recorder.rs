//! The event recorder and the cheap cloneable [`Telemetry`] handle.
//!
//! [`Telemetry`] is what every instrumented component holds. It is either
//! *disabled* — every call is a branch on a `None` and compiles to nearly
//! nothing, so the Fig. 8 hot paths are unchanged — or *enabled*, in which
//! case it shares one [`MemoryRecorder`] with every other clone.
//!
//! The recorder is lock-light by construction:
//!
//! * counters, gauges and histograms are single atomic adds;
//! * events append to one of a fixed set of sharded buffers, with each
//!   thread pinned to a shard, so concurrent checkpoint workers almost
//!   never contend on the same mutex;
//! * timestamps come from one shared monotonic epoch so events from all
//!   threads interleave into a single coherent timeline.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::counters::{CheckpointCounters, CountersSnapshot};
use crate::event::{Event, EventKind, Phase, SpanId};
use crate::histogram::{HistogramSummary, LatencyHistogram};

const SHARDS: usize = 8;

/// How many devices the per-device queue-depth gauges can track. Composite
/// devices report the controller at index 0 and members after it; indices
/// beyond this limit are silently dropped. Sized for a 4-way stripe plus
/// its controller with headroom, so restore fan-out across a wide stripe
/// stays observable per member.
pub const MAX_TRACKED_DEVICES: usize = 8;

static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Each thread sticks to one shard for its lifetime; round-robin
    /// assignment spreads concurrent workers across shards.
    static THREAD_SHARD: usize = NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

/// Monotonic gauge pair: current value plus high-water mark.
#[derive(Debug, Default)]
struct Gauge {
    current: AtomicU64,
    peak: AtomicU64,
}

impl Gauge {
    fn incr(&self) -> u64 {
        let now = self.current.fetch_add(1, Ordering::AcqRel) + 1;
        self.peak.fetch_max(now, Ordering::AcqRel);
        now
    }

    fn decr(&self) {
        self.current.fetch_sub(1, Ordering::AcqRel);
    }

    fn set(&self, value: u64) {
        self.current.store(value, Ordering::Release);
        self.peak.fetch_max(value, Ordering::AcqRel);
    }

    fn current(&self) -> u64 {
        self.current.load(Ordering::Acquire)
    }

    fn peak(&self) -> u64 {
        self.peak.load(Ordering::Acquire)
    }
}

/// In-memory recorder shared by all [`Telemetry`] clones of one run.
#[derive(Debug)]
pub struct MemoryRecorder {
    epoch: Instant,
    next_span: AtomicU64,
    shards: [Mutex<Vec<Event>>; SHARDS],
    phase_hist: [LatencyHistogram; Phase::ALL.len()],
    stall_hist: LatencyHistogram,
    write_stage_hist: LatencyHistogram,
    persist_stage_hist: LatencyHistogram,
    read_stage_hist: LatencyHistogram,
    counters: CheckpointCounters,
    in_flight: Gauge,
    queue_depth: Gauge,
    device_queues: [Gauge; MAX_TRACKED_DEVICES],
    gpu_copy_bytes: AtomicU64,
    persist_chunk_bytes: AtomicU64,
    restore_chunk_bytes: AtomicU64,
    dirty_ratio_permille: Gauge,
    delta_bytes_saved: AtomicU64,
    codec_bytes_saved: AtomicU64,
    dedup_chunks: AtomicU64,
    compression_ratio_permille: Gauge,
}

impl Default for MemoryRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl MemoryRecorder {
    /// Creates an empty recorder whose clock starts now.
    pub fn new() -> Self {
        MemoryRecorder {
            epoch: Instant::now(),
            next_span: AtomicU64::new(1),
            shards: std::array::from_fn(|_| Mutex::new(Vec::new())),
            phase_hist: std::array::from_fn(|_| LatencyHistogram::new()),
            stall_hist: LatencyHistogram::new(),
            write_stage_hist: LatencyHistogram::new(),
            persist_stage_hist: LatencyHistogram::new(),
            read_stage_hist: LatencyHistogram::new(),
            counters: CheckpointCounters::new(),
            in_flight: Gauge::default(),
            queue_depth: Gauge::default(),
            device_queues: std::array::from_fn(|_| Gauge::default()),
            gpu_copy_bytes: AtomicU64::new(0),
            persist_chunk_bytes: AtomicU64::new(0),
            restore_chunk_bytes: AtomicU64::new(0),
            dirty_ratio_permille: Gauge::default(),
            delta_bytes_saved: AtomicU64::new(0),
            codec_bytes_saved: AtomicU64::new(0),
            dedup_chunks: AtomicU64::new(0),
            compression_ratio_permille: Gauge::default(),
        }
    }

    fn now_nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn push(&self, event: Event) {
        let shard = THREAD_SHARD.with(|s| *s);
        self.shards[shard]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(event);
    }

    /// The shared lifecycle counters (also backs `EngineStats`).
    pub fn counters(&self) -> &CheckpointCounters {
        &self.counters
    }

    /// The latency histogram behind `phase`'s summary, for exposition
    /// layers (the metrics registry, the SLO watchdog) that need raw
    /// bucket counts rather than a [`HistogramSummary`].
    pub fn phase_hist(&self, phase: Phase) -> &LatencyHistogram {
        &self.phase_hist[phase.index()]
    }

    /// The training-thread stall histogram (raw buckets).
    pub fn stall_hist(&self) -> &LatencyHistogram {
        &self.stall_hist
    }

    /// The per-chunk device-write-stage histogram (raw buckets).
    pub fn write_stage_hist(&self) -> &LatencyHistogram {
        &self.write_stage_hist
    }

    /// The per-chunk device-persist-stage histogram (raw buckets).
    pub fn persist_stage_hist(&self) -> &LatencyHistogram {
        &self.persist_stage_hist
    }

    /// The per-chunk device-read-stage histogram (raw buckets).
    pub fn read_stage_hist(&self) -> &LatencyHistogram {
        &self.read_stage_hist
    }

    /// All recorded events merged into one timeline ordered by timestamp.
    pub fn events(&self) -> Vec<Event> {
        let mut all = Vec::new();
        for shard in &self.shards {
            all.extend_from_slice(&shard.lock().unwrap_or_else(|e| e.into_inner()));
        }
        all.sort_by_key(|e| (e.at_nanos, e.span));
        all
    }

    /// Point-in-time rollup of every histogram, counter and gauge.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            counters: self.counters.snapshot(),
            phases: std::array::from_fn(|i| self.phase_hist[i].summary()),
            stall: self.stall_hist.summary(),
            write_stage: self.write_stage_hist.summary(),
            persist_stage: self.persist_stage_hist.summary(),
            read_stage: self.read_stage_hist.summary(),
            device_queue_depth: std::array::from_fn(|i| self.device_queues[i].current()),
            device_queue_peak: std::array::from_fn(|i| self.device_queues[i].peak()),
            in_flight: self.in_flight.current(),
            in_flight_peak: self.in_flight.peak(),
            queue_depth: self.queue_depth.current(),
            queue_depth_peak: self.queue_depth.peak(),
            gpu_copy_bytes: self.gpu_copy_bytes.load(Ordering::Acquire),
            persist_chunk_bytes: self.persist_chunk_bytes.load(Ordering::Acquire),
            restore_chunk_bytes: self.restore_chunk_bytes.load(Ordering::Acquire),
            dirty_ratio_permille: self.dirty_ratio_permille.current(),
            dirty_ratio_permille_peak: self.dirty_ratio_permille.peak(),
            delta_bytes_saved: self.delta_bytes_saved.load(Ordering::Acquire),
            codec_bytes_saved: self.codec_bytes_saved.load(Ordering::Acquire),
            dedup_chunks: self.dedup_chunks.load(Ordering::Acquire),
            compression_ratio_permille: self.compression_ratio_permille.current(),
            window_nanos: self.now_nanos(),
        }
    }
}

/// Rolled-up metrics at one instant; plain data for reports and assertions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetrySnapshot {
    /// Lifecycle counters, mutually consistent.
    pub counters: CountersSnapshot,
    /// Per-phase latency summaries, indexed like [`Phase::ALL`].
    pub phases: [HistogramSummary; Phase::ALL.len()],
    /// Training-thread stall-time summary (one sample per `checkpoint()`).
    pub stall: HistogramSummary,
    /// Per-chunk device-write latency (the `write_at` leg of the pipeline).
    pub write_stage: HistogramSummary,
    /// Per-chunk device-persist latency (the fence leg of the pipeline).
    pub persist_stage: HistogramSummary,
    /// Per-chunk device-read latency (the `read_durable_at` leg of the
    /// restore pipeline).
    pub read_stage: HistogramSummary,
    /// Last observed submission-queue depth per tracked device.
    pub device_queue_depth: [u64; MAX_TRACKED_DEVICES],
    /// High-water mark of the submission-queue depth per tracked device.
    pub device_queue_peak: [u64; MAX_TRACKED_DEVICES],
    /// Checkpoints currently between request and terminal event.
    pub in_flight: u64,
    /// High-water mark of concurrent in-flight checkpoints.
    pub in_flight_peak: u64,
    /// Last observed free-slot queue depth.
    pub queue_depth: u64,
    /// High-water mark of the queue depth.
    pub queue_depth_peak: u64,
    /// Bytes moved by the GPU→DRAM copy phase.
    pub gpu_copy_bytes: u64,
    /// Bytes moved by the DRAM→device persist phase.
    pub persist_chunk_bytes: u64,
    /// Bytes moved by the device→DRAM restore-read phase.
    pub restore_chunk_bytes: u64,
    /// Last observed dirty-byte ratio of a delta checkpoint, in permille
    /// (dirty bytes / full state bytes × 1000).
    pub dirty_ratio_permille: u64,
    /// High-water mark of the dirty-ratio gauge.
    pub dirty_ratio_permille_peak: u64,
    /// Total payload bytes the delta path avoided persisting versus full
    /// checkpoints of the same iterations.
    pub delta_bytes_saved: u64,
    /// Total payload bytes the chunk codec (compression + dedup) avoided
    /// persisting versus raw payloads of the same checkpoints.
    pub codec_bytes_saved: u64,
    /// Chunks persisted as dedup references (within or across
    /// checkpoints) instead of materialized bytes.
    pub dedup_chunks: u64,
    /// Last framed commit's physical/logical payload ratio in permille
    /// (1000 = stored at full size, lower = smaller).
    pub compression_ratio_permille: u64,
    /// Nanoseconds since the recorder's epoch.
    pub window_nanos: u64,
}

impl TelemetrySnapshot {
    /// The latency summary for `phase`.
    pub fn phase(&self, phase: Phase) -> &HistogramSummary {
        &self.phases[phase.index()]
    }

    /// Fraction of `bandwidth_bytes_per_sec` the persist path sustained
    /// over the whole window (the device-bandwidth utilization gauge).
    pub fn device_utilization(&self, bandwidth_bytes_per_sec: f64) -> f64 {
        let secs = self.window_nanos as f64 / 1e9;
        if secs <= 0.0 || bandwidth_bytes_per_sec <= 0.0 {
            return 0.0;
        }
        (self.persist_chunk_bytes as f64 / secs) / bandwidth_bytes_per_sec
    }

    /// Fraction of the window the training thread spent stalled in
    /// `checkpoint()` (the Fig. 8 overhead, online).
    pub fn stall_fraction(&self) -> f64 {
        if self.window_nanos == 0 {
            return 0.0;
        }
        (self.stall.sum_nanos as f64 / self.window_nanos as f64).min(1.0)
    }
}

/// Cheap cloneable handle to a shared recorder; `Telemetry::disabled()`
/// (also `Default`) makes every recording call a no-op.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<MemoryRecorder>>,
}

impl Telemetry {
    /// A handle that records into a fresh shared [`MemoryRecorder`].
    pub fn enabled() -> Self {
        Telemetry {
            inner: Some(Arc::new(MemoryRecorder::new())),
        }
    }

    /// A no-op handle: every call returns immediately.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The shared recorder, when enabled.
    pub fn recorder(&self) -> Option<&Arc<MemoryRecorder>> {
        self.inner.as_ref()
    }

    /// Nanoseconds on the recorder clock (0 when disabled). Pair with
    /// [`Telemetry::phase_done`] to time a phase.
    pub fn now_nanos(&self) -> u64 {
        match &self.inner {
            Some(r) => r.now_nanos(),
            None => 0,
        }
    }

    /// Opens a span: records `Requested`, bumps the request counter and the
    /// in-flight gauge. Returns [`SpanId::NONE`] when disabled.
    pub fn span_requested(&self, strategy: &str, iteration: u64, bytes: u64) -> SpanId {
        let Some(r) = &self.inner else {
            return SpanId::NONE;
        };
        let span = SpanId(r.next_span.fetch_add(1, Ordering::Relaxed));
        r.counters.incr_requested();
        r.in_flight.incr();
        r.push(Event {
            span,
            at_nanos: r.now_nanos(),
            kind: EventKind::Requested {
                strategy: strategy.to_string(),
                iteration,
                bytes,
            },
        });
        span
    }

    /// Records that `span` was handed to a background worker.
    pub fn span_queued(&self, span: SpanId) {
        if let Some(r) = &self.inner {
            if span.is_some() {
                r.push(Event {
                    span,
                    at_nanos: r.now_nanos(),
                    kind: EventKind::Queued,
                });
            }
        }
    }

    /// Records a completed phase that started at `start_nanos` (from
    /// [`Telemetry::now_nanos`]) and feeds the phase histogram.
    pub fn phase_done(&self, span: SpanId, phase: Phase, start_nanos: u64) {
        let Some(r) = &self.inner else { return };
        if !span.is_some() {
            return;
        }
        let now = r.now_nanos();
        let dur = now.saturating_sub(start_nanos);
        r.phase_hist[phase.index()].record(dur);
        r.push(Event {
            span,
            at_nanos: now,
            kind: EventKind::PhaseDone {
                phase,
                start_nanos,
                dur_nanos: dur,
            },
        });
    }

    /// Records one payload chunk moving through `phase` and feeds the
    /// bandwidth gauges.
    pub fn chunk(&self, span: SpanId, phase: Phase, offset: u64, len: u64) {
        let Some(r) = &self.inner else { return };
        if !span.is_some() {
            return;
        }
        match phase {
            Phase::GpuCopy => {
                r.gpu_copy_bytes.fetch_add(len, Ordering::Release);
            }
            Phase::Persist => {
                r.persist_chunk_bytes.fetch_add(len, Ordering::Release);
            }
            Phase::RestoreRead => {
                r.restore_chunk_bytes.fetch_add(len, Ordering::Release);
            }
            _ => {}
        }
        r.push(Event {
            span,
            at_nanos: r.now_nanos(),
            kind: EventKind::Chunk { phase, offset, len },
        });
    }

    /// Records `nanos` of training-thread blocking that ended now (the
    /// Fig. 8 stall) and feeds the stall histogram.
    pub fn stall(&self, span: SpanId, nanos: u64) {
        let Some(r) = &self.inner else { return };
        r.stall_hist.record(nanos);
        r.push(Event {
            span,
            at_nanos: r.now_nanos(),
            kind: EventKind::Stall { nanos },
        });
    }

    /// Terminal: `span` committed `bytes` at `iteration`.
    pub fn committed(&self, span: SpanId, iteration: u64, bytes: u64) {
        let Some(r) = &self.inner else { return };
        if !span.is_some() {
            return;
        }
        r.counters.incr_committed(bytes);
        r.in_flight.decr();
        r.push(Event {
            span,
            at_nanos: r.now_nanos(),
            kind: EventKind::Committed { iteration, bytes },
        });
    }

    /// Terminal: `span` lost the commit race to counter `by_counter`.
    pub fn superseded(&self, span: SpanId, by_counter: u64) {
        let Some(r) = &self.inner else { return };
        if !span.is_some() {
            return;
        }
        r.counters.incr_superseded();
        r.in_flight.decr();
        r.push(Event {
            span,
            at_nanos: r.now_nanos(),
            kind: EventKind::Superseded { by_counter },
        });
    }

    /// Terminal: `span` failed with `error`.
    pub fn failed(&self, span: SpanId, error: &str) {
        let Some(r) = &self.inner else { return };
        if !span.is_some() {
            return;
        }
        r.counters.incr_failed();
        r.in_flight.decr();
        r.push(Event {
            span,
            at_nanos: r.now_nanos(),
            kind: EventKind::Failed {
                error: error.to_string(),
            },
        });
    }

    /// Merges a monitoring anomaly into the timeline (run-level event).
    pub fn anomaly(&self, iteration: u64, magnitude: f64, expected: f64, ratio: f64) {
        let Some(r) = &self.inner else { return };
        r.push(Event {
            span: SpanId::NONE,
            at_nanos: r.now_nanos(),
            kind: EventKind::Anomaly {
                iteration,
                magnitude,
                expected,
                ratio,
            },
        });
    }

    /// Records one pipeline actor's completed child span under `parent`:
    /// a writer's chunk run, a restore reader's fetch leg, or a
    /// composite-device member's I/O. `start_nanos` comes from
    /// [`Telemetry::now_nanos`] when the actor began; the duration is
    /// measured to now. Unlike phase events this also records against
    /// [`SpanId::NONE`] parents, because device-member actors outlive any
    /// single checkpoint span.
    pub fn actor_span(&self, parent: SpanId, actor: &str, start_nanos: u64, bytes: u64) {
        let Some(r) = &self.inner else { return };
        let now = r.now_nanos();
        let dur = now.saturating_sub(start_nanos);
        r.push(Event {
            span: parent,
            at_nanos: now,
            kind: EventKind::ActorSpan {
                actor: actor.to_string(),
                start_nanos,
                dur_nanos: dur,
                // No split reported: attribute everything to media so the
                // queue-wait estimate stays conservative.
                media_nanos: dur,
                bytes,
            },
        });
    }

    /// Like [`Telemetry::actor_span`], but with the actor's time split:
    /// `media_nanos` is the portion spent inside device I/O calls; the
    /// rest of the measured duration is queue wait (waiting for staged
    /// chunks, buffer-pool pressure, scheduling). `media_nanos` is clamped
    /// to the measured duration.
    pub fn actor_span_split(
        &self,
        parent: SpanId,
        actor: &str,
        start_nanos: u64,
        bytes: u64,
        media_nanos: u64,
    ) {
        let Some(r) = &self.inner else { return };
        let now = r.now_nanos();
        let dur = now.saturating_sub(start_nanos);
        r.push(Event {
            span: parent,
            at_nanos: now,
            kind: EventKind::ActorSpan {
                actor: actor.to_string(),
                start_nanos,
                dur_nanos: dur,
                media_nanos: media_nanos.min(dur),
                bytes,
            },
        });
    }

    /// Records completion of training `iteration` (run-level event; feeds
    /// goodput/rollback accounting).
    pub fn iteration_end(&self, iteration: u64) {
        let Some(r) = &self.inner else { return };
        r.push(Event {
            span: SpanId::NONE,
            at_nanos: r.now_nanos(),
            kind: EventKind::IterationEnd { iteration },
        });
    }

    /// Updates the free-slot queue-depth gauge.
    pub fn gauge_queue_depth(&self, depth: u64) {
        if let Some(r) = &self.inner {
            r.queue_depth.set(depth);
        }
    }

    /// Updates the submission-queue-depth gauge for tracked device `index`.
    /// Indices at or beyond [`MAX_TRACKED_DEVICES`] are ignored.
    pub fn gauge_device_queue(&self, index: usize, depth: u64) {
        if let Some(r) = &self.inner {
            if index < MAX_TRACKED_DEVICES {
                r.device_queues[index].set(depth);
            }
        }
    }

    /// Feeds one per-chunk device-write latency sample into the pipeline's
    /// write-stage histogram.
    pub fn stage_write(&self, nanos: u64) {
        if let Some(r) = &self.inner {
            r.write_stage_hist.record(nanos);
        }
    }

    /// Feeds one per-chunk device-persist (fence) latency sample into the
    /// pipeline's persist-stage histogram.
    pub fn stage_persist(&self, nanos: u64) {
        if let Some(r) = &self.inner {
            r.persist_stage_hist.record(nanos);
        }
    }

    /// Feeds one per-chunk device-read latency sample into the restore
    /// pipeline's read-stage histogram.
    pub fn stage_read(&self, nanos: u64) {
        if let Some(r) = &self.inner {
            r.read_stage_hist.record(nanos);
        }
    }

    /// Updates the delta-checkpoint dirty-ratio gauge (dirty bytes / full
    /// state bytes, in permille).
    pub fn gauge_dirty_ratio(&self, permille: u64) {
        if let Some(r) = &self.inner {
            r.dirty_ratio_permille.set(permille);
        }
    }

    /// Adds `bytes` to the running total of payload bytes the delta path
    /// avoided persisting.
    pub fn add_delta_bytes_saved(&self, bytes: u64) {
        if let Some(r) = &self.inner {
            r.delta_bytes_saved.fetch_add(bytes, Ordering::Release);
        }
    }

    /// Adds `bytes` to the running total of payload bytes the chunk codec
    /// (compression + dedup) avoided persisting.
    pub fn add_codec_bytes_saved(&self, bytes: u64) {
        if let Some(r) = &self.inner {
            r.codec_bytes_saved.fetch_add(bytes, Ordering::Release);
        }
    }

    /// Adds `chunks` chunks persisted as dedup references instead of
    /// materialized bytes.
    pub fn add_dedup_chunks(&self, chunks: u64) {
        if let Some(r) = &self.inner {
            r.dedup_chunks.fetch_add(chunks, Ordering::Release);
        }
    }

    /// Updates the framed-commit compression-ratio gauge
    /// (physical payload bytes / logical bytes, in permille).
    pub fn gauge_compression_ratio(&self, permille: u64) {
        if let Some(r) = &self.inner {
            r.compression_ratio_permille.set(permille);
        }
    }

    /// All events merged into one timestamp-ordered timeline (empty when
    /// disabled).
    pub fn events(&self) -> Vec<Event> {
        match &self.inner {
            Some(r) => r.events(),
            None => Vec::new(),
        }
    }

    /// Point-in-time metrics rollup (`None` when disabled).
    pub fn snapshot(&self) -> Option<TelemetrySnapshot> {
        self.inner.as_ref().map(|r| r.snapshot())
    }
}

/// Bridges composite-device member I/O into the telemetry stream.
///
/// Register on a [`StripedDevice`](pccheck_device::StripedDevice) or
/// [`TieredDevice`](pccheck_device::TieredDevice) via `set_io_observer`:
/// every member-level write/persist/read then lands in the timeline as an
/// [`EventKind::ActorSpan`] under [`SpanId::NONE`] (device members outlive
/// any single checkpoint span), so the Chrome-trace exporter renders one
/// lane per member (`stripe-0`, `tier`, `spill`, …).
#[derive(Debug, Clone)]
pub struct TelemetryIoObserver {
    telemetry: Telemetry,
}

impl TelemetryIoObserver {
    /// Wraps a telemetry handle; disabled handles make the observer inert.
    pub fn new(telemetry: Telemetry) -> Self {
        TelemetryIoObserver { telemetry }
    }
}

impl pccheck_device::IoObserver for TelemetryIoObserver {
    fn member_io(&self, member: &str, _op: pccheck_device::MemberIoOp, bytes: u64, dur_nanos: u64) {
        let Some(r) = &self.telemetry.inner else {
            return;
        };
        let now = r.now_nanos();
        r.push(Event {
            span: SpanId::NONE,
            at_nanos: now,
            kind: EventKind::ActorSpan {
                actor: member.to_string(),
                start_nanos: now.saturating_sub(dur_nanos),
                dur_nanos,
                // A member-device leg is pure media time by definition.
                media_nanos: dur_nanos,
                bytes,
            },
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        assert_eq!(t.span_requested("pccheck", 1, 64), SpanId::NONE);
        t.span_queued(SpanId::NONE);
        t.phase_done(SpanId::NONE, Phase::GpuCopy, 0);
        t.stall(SpanId::NONE, 5);
        t.committed(SpanId::NONE, 1, 64);
        t.iteration_end(1);
        assert!(t.events().is_empty());
        assert!(t.snapshot().is_none());
        assert_eq!(t.now_nanos(), 0);
    }

    #[test]
    fn full_lifecycle_is_recorded_in_order() {
        let t = Telemetry::enabled();
        let span = t.span_requested("pccheck", 7, 1024);
        assert!(span.is_some());
        t.span_queued(span);
        let s = t.now_nanos();
        t.chunk(span, Phase::GpuCopy, 0, 512);
        t.chunk(span, Phase::GpuCopy, 512, 512);
        t.phase_done(span, Phase::GpuCopy, s);
        let s = t.now_nanos();
        t.chunk(span, Phase::Persist, 0, 1024);
        t.phase_done(span, Phase::Persist, s);
        t.committed(span, 7, 1024);
        t.stall(span, 300);

        let events = t.events();
        assert!(events.windows(2).all(|w| w[0].at_nanos <= w[1].at_nanos));
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.span == span)
            .map(|e| e.kind.name())
            .collect();
        assert_eq!(
            names,
            [
                "requested",
                "queued",
                "chunk",
                "chunk",
                "phase",
                "chunk",
                "phase",
                "committed",
                "stall",
            ]
        );

        let snap = t.snapshot().unwrap();
        assert_eq!(snap.counters.requested, 1);
        assert_eq!(snap.counters.committed, 1);
        assert_eq!(snap.counters.bytes_persisted, 1024);
        assert_eq!(snap.in_flight, 0);
        assert_eq!(snap.in_flight_peak, 1);
        assert_eq!(snap.gpu_copy_bytes, 1024);
        assert_eq!(snap.persist_chunk_bytes, 1024);
        assert_eq!(snap.phase(Phase::GpuCopy).count, 1);
        assert_eq!(snap.phase(Phase::Persist).count, 1);
        assert_eq!(snap.stall.count, 1);
        assert_eq!(snap.stall.sum_nanos, 300);
    }

    #[test]
    fn clones_share_one_recorder() {
        let t = Telemetry::enabled();
        let u = t.clone();
        let span = t.span_requested("pccheck", 1, 8);
        u.committed(span, 1, 8);
        assert_eq!(t.events().len(), 2);
        assert_eq!(u.snapshot().unwrap().counters.committed, 1);
    }

    #[test]
    fn gauges_track_peaks() {
        let t = Telemetry::enabled();
        let a = t.span_requested("pccheck", 1, 8);
        let b = t.span_requested("pccheck", 2, 8);
        let snap = t.snapshot().unwrap();
        assert_eq!(snap.in_flight, 2);
        assert_eq!(snap.in_flight_peak, 2);
        t.superseded(a, 2);
        t.committed(b, 2, 8);
        let snap = t.snapshot().unwrap();
        assert_eq!(snap.in_flight, 0);
        assert_eq!(snap.in_flight_peak, 2);
        t.gauge_queue_depth(3);
        t.gauge_queue_depth(1);
        let snap = t.snapshot().unwrap();
        assert_eq!(snap.queue_depth, 1);
        assert_eq!(snap.queue_depth_peak, 3);
    }

    #[test]
    fn pipeline_stage_metrics_roll_up() {
        let t = Telemetry::enabled();
        t.stage_write(100);
        t.stage_write(300);
        t.stage_persist(50);
        t.stage_read(25);
        t.stage_read(75);
        t.gauge_device_queue(0, 3);
        t.gauge_device_queue(0, 1);
        t.gauge_device_queue(2, 7);
        t.gauge_device_queue(MAX_TRACKED_DEVICES, 99); // out of range: dropped
        let snap = t.snapshot().unwrap();
        assert_eq!(snap.write_stage.count, 2);
        assert_eq!(snap.write_stage.sum_nanos, 400);
        assert_eq!(snap.persist_stage.count, 1);
        assert_eq!(snap.read_stage.count, 2);
        assert_eq!(snap.read_stage.sum_nanos, 100);
        assert_eq!(snap.device_queue_depth, [1, 0, 7, 0, 0, 0, 0, 0]);
        assert_eq!(snap.device_queue_peak, [3, 0, 7, 0, 0, 0, 0, 0]);

        // Disabled handles stay inert.
        let d = Telemetry::disabled();
        d.stage_write(1);
        d.stage_persist(1);
        d.stage_read(1);
        d.gauge_device_queue(0, 1);
        assert!(d.snapshot().is_none());
    }

    #[test]
    fn delta_metrics_roll_up() {
        let t = Telemetry::enabled();
        t.gauge_dirty_ratio(100);
        t.gauge_dirty_ratio(40);
        t.add_delta_bytes_saved(900);
        t.add_delta_bytes_saved(100);
        let snap = t.snapshot().unwrap();
        assert_eq!(snap.dirty_ratio_permille, 40);
        assert_eq!(snap.dirty_ratio_permille_peak, 100);
        assert_eq!(snap.delta_bytes_saved, 1000);

        let d = Telemetry::disabled();
        d.gauge_dirty_ratio(1);
        d.add_delta_bytes_saved(1);
        assert!(d.snapshot().is_none());
    }

    #[test]
    fn io_observer_bridges_member_io_into_actor_spans() {
        use pccheck_device::IoObserver as _;
        let t = Telemetry::enabled();
        let obs = TelemetryIoObserver::new(t.clone());
        // `start_nanos = now - dur` saturates at the recorder epoch; spin
        // past it so a fast scheduler can't clamp the reconstructed span.
        while t.now_nanos() < 1000 {
            std::hint::spin_loop();
        }
        obs.member_io("stripe-0", pccheck_device::MemberIoOp::Write, 4096, 1000);
        let events = t.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].span, SpanId::NONE);
        match &events[0].kind {
            EventKind::ActorSpan {
                actor,
                start_nanos,
                dur_nanos,
                bytes,
                media_nanos,
            } => {
                assert_eq!(actor, "stripe-0");
                assert_eq!(*dur_nanos, 1000);
                assert_eq!(*media_nanos, 1000);
                assert_eq!(*bytes, 4096);
                assert_eq!(events[0].at_nanos, start_nanos + dur_nanos);
            }
            other => panic!("unexpected event kind {other:?}"),
        }

        // A disabled handle keeps the observer inert.
        let inert = TelemetryIoObserver::new(Telemetry::disabled());
        inert.member_io("tier", pccheck_device::MemberIoOp::Read, 1, 1);
    }

    #[test]
    fn actor_span_split_clamps_media_to_duration() {
        let t = Telemetry::enabled();
        let span = t.span_requested("pccheck", 1, 64);
        let s = t.now_nanos();
        // A claimed media time far beyond the measured duration is clamped.
        t.actor_span_split(span, "writer-0", s, 64, u64::MAX);
        t.committed(span, 1, 64);
        let media = t
            .events()
            .iter()
            .find_map(|e| match &e.kind {
                EventKind::ActorSpan {
                    dur_nanos,
                    media_nanos,
                    ..
                } => Some((*dur_nanos, *media_nanos)),
                _ => None,
            })
            .expect("actor span recorded");
        assert!(media.1 <= media.0, "media {} > dur {}", media.1, media.0);

        // Disabled handles stay inert.
        let d = Telemetry::disabled();
        d.actor_span_split(SpanId::NONE, "writer-0", 0, 1, 1);
        assert!(d.events().is_empty());
    }

    #[test]
    fn concurrent_spans_from_many_threads() {
        let t = Telemetry::enabled();
        let mut handles = Vec::new();
        for w in 0..4u64 {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50u64 {
                    let span = t.span_requested("pccheck", w * 100 + i, 64);
                    let s = t.now_nanos();
                    t.phase_done(span, Phase::Persist, s);
                    if i % 3 == 0 {
                        t.superseded(span, i);
                    } else {
                        t.committed(span, w * 100 + i, 64);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = t.snapshot().unwrap();
        assert_eq!(snap.counters.requested, 200);
        assert_eq!(snap.counters.terminated(), 200);
        assert_eq!(snap.in_flight, 0);
        let events = t.events();
        // 200 spans x (requested + phase + terminal).
        assert_eq!(events.len(), 600);
        assert!(events.windows(2).all(|w| w[0].at_nanos <= w[1].at_nanos));
        // Span ids are unique.
        let mut spans: Vec<u64> = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Requested { .. }))
            .map(|e| e.span.0)
            .collect();
        spans.sort_unstable();
        spans.dedup();
        assert_eq!(spans.len(), 200);
    }
}

//! Lifecycle counters with a consistent snapshot.
//!
//! The engine's original `EngineStats` exposed three independent `Relaxed`
//! loads; a caller summing them mid-flight could observe a committed
//! checkpoint whose request was not yet counted. [`CheckpointCounters`]
//! keeps the one-atomic-add hot path but adds [`snapshot`]
//! (`CheckpointCounters::snapshot`): a double-read stabilization loop that
//! returns one mutually consistent view of all five counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative checkpoint-lifecycle counters.
#[derive(Debug, Default)]
pub struct CheckpointCounters {
    requested: AtomicU64,
    committed: AtomicU64,
    superseded: AtomicU64,
    failed: AtomicU64,
    bytes_persisted: AtomicU64,
}

/// One consistent view of [`CheckpointCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CountersSnapshot {
    /// Checkpoint requests accepted.
    pub requested: u64,
    /// Checkpoints that became the latest committed state.
    pub committed: u64,
    /// Checkpoints that lost the commit race to a newer one.
    pub superseded: u64,
    /// Checkpoints that failed (device error, crash injection).
    pub failed: u64,
    /// Payload bytes of committed checkpoints.
    pub bytes_persisted: u64,
}

impl CountersSnapshot {
    /// Spans that reached a terminal state.
    pub fn terminated(&self) -> u64 {
        self.committed + self.superseded + self.failed
    }

    /// Spans still in flight at snapshot time.
    pub fn in_flight(&self) -> u64 {
        self.requested.saturating_sub(self.terminated())
    }
}

impl CheckpointCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts an accepted request.
    pub fn incr_requested(&self) {
        self.requested.fetch_add(1, Ordering::Release);
    }

    /// Counts a committed checkpoint of `bytes` payload bytes.
    pub fn incr_committed(&self, bytes: u64) {
        self.bytes_persisted.fetch_add(bytes, Ordering::Release);
        self.committed.fetch_add(1, Ordering::Release);
    }

    /// Counts a superseded checkpoint.
    pub fn incr_superseded(&self) {
        self.superseded.fetch_add(1, Ordering::Release);
    }

    /// Counts a failed checkpoint.
    pub fn incr_failed(&self) {
        self.failed.fetch_add(1, Ordering::Release);
    }

    /// Checkpoint requests accepted.
    pub fn requested(&self) -> u64 {
        self.requested.load(Ordering::Acquire)
    }

    /// Checkpoints that became the latest committed state.
    pub fn committed(&self) -> u64 {
        self.committed.load(Ordering::Acquire)
    }

    /// Checkpoints that lost the commit race.
    pub fn superseded(&self) -> u64 {
        self.superseded.load(Ordering::Acquire)
    }

    /// Checkpoints that failed.
    pub fn failed(&self) -> u64 {
        self.failed.load(Ordering::Acquire)
    }

    /// Payload bytes of committed checkpoints.
    pub fn bytes_persisted(&self) -> u64 {
        self.bytes_persisted.load(Ordering::Acquire)
    }

    fn read_all(&self) -> CountersSnapshot {
        // Read order is load-bearing: terminals before bytes before
        // requested. Writers bump `requested` first and `bytes_persisted`
        // before `committed`, so even an unstabilized sweep satisfies
        // `terminated() <= requested` and `bytes_persisted >= committed
        // payloads`.
        let committed = self.committed.load(Ordering::Acquire);
        let superseded = self.superseded.load(Ordering::Acquire);
        let failed = self.failed.load(Ordering::Acquire);
        let bytes_persisted = self.bytes_persisted.load(Ordering::Acquire);
        let requested = self.requested.load(Ordering::Acquire);
        CountersSnapshot {
            requested,
            committed,
            superseded,
            failed,
            bytes_persisted,
        }
    }

    /// One mutually consistent view of all counters: reads until two
    /// consecutive sweeps agree (bounded; concurrent updates during a
    /// quiescent moment converge in one retry).
    pub fn snapshot(&self) -> CountersSnapshot {
        let mut prev = self.read_all();
        for _ in 0..64 {
            let next = self.read_all();
            if next == prev {
                return next;
            }
            prev = next;
            std::hint::spin_loop();
        }
        // Under sustained contention return the freshest sweep; each field
        // is individually exact and `terminated() <= requested` still holds
        // because requests are counted before terminals.
        prev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counters_accumulate() {
        let c = CheckpointCounters::new();
        c.incr_requested();
        c.incr_requested();
        c.incr_committed(100);
        c.incr_superseded();
        let s = c.snapshot();
        assert_eq!(s.requested, 2);
        assert_eq!(s.committed, 1);
        assert_eq!(s.superseded, 1);
        assert_eq!(s.failed, 0);
        assert_eq!(s.bytes_persisted, 100);
        assert_eq!(s.terminated(), 2);
        assert_eq!(s.in_flight(), 0);
    }

    #[test]
    fn snapshot_is_internally_consistent_under_concurrency() {
        let c = Arc::new(CheckpointCounters::new());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let c = Arc::clone(&c);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    c.incr_requested();
                    c.incr_committed(8);
                    n += 1;
                }
                n
            })
        };
        for _ in 0..1000 {
            let s = c.snapshot();
            // The request is counted before the terminal, so a consistent
            // snapshot can never show more terminations than requests.
            assert!(
                s.terminated() <= s.requested,
                "terminated {} > requested {}",
                s.terminated(),
                s.requested
            );
            assert!(
                s.bytes_persisted >= s.committed * 8,
                "bytes {} < committed {} * 8",
                s.bytes_persisted,
                s.committed
            );
        }
        stop.store(true, Ordering::Relaxed);
        let total = writer.join().unwrap();
        let s = c.snapshot();
        assert_eq!(s.requested, total);
        assert_eq!(s.committed, total);
    }
}

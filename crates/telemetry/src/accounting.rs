//! Stall-time and goodput accounting from the event stream.
//!
//! Reproduces the paper's two headline metrics online, without replaying a
//! simulation:
//!
//! * **Fig. 8 (checkpoint stall)** — the training thread's blocked time
//!   inside `checkpoint()` summed from `Stall` events, as a fraction of the
//!   run window and as a slowdown factor versus a stall-free run.
//! * **Fig. 9 (goodput under preemption)** — useful iterations per second
//!   given a preemption rate, using the run's measured effective iteration
//!   time and its *empirical* rollback depth: at each iteration completion,
//!   how much work would a failure right then lose? The math mirrors
//!   `pccheck-trace`'s offline `GoodputReplay` so both agree.

use crate::event::{Event, EventKind};

/// Metrics distilled from one run's event stream.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunAccounting {
    /// Run window: timestamp of the last event, nanoseconds.
    pub window_nanos: u64,
    /// Training iterations completed (`IterationEnd` events).
    pub iterations: u64,
    /// Total training-thread stall, nanoseconds (`Stall` events).
    pub stall_nanos: u64,
    /// Committed checkpoints.
    pub committed: u64,
    /// Superseded checkpoints.
    pub superseded: u64,
    /// Failed checkpoints.
    pub failed: u64,
    /// Mean iterations lost if a failure struck at a uniformly random
    /// iteration boundary (the empirical rollback depth).
    pub avg_rollback_depth: f64,
}

/// A goodput estimate under a failure scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GoodputEstimate {
    /// Useful iterations per second over the window.
    pub goodput: f64,
    /// Measured failure-free throughput (iterations/second).
    pub failure_free_throughput: f64,
    /// Rollbacks assumed by the scenario.
    pub rollbacks: u64,
    /// Mean iterations recomputed per rollback.
    pub avg_lost_iterations: f64,
    /// Total recovery time (loads + recomputation), seconds.
    pub total_recovery_secs: f64,
}

impl RunAccounting {
    /// Distills accounting from an event stream.
    ///
    /// Events may arrive in any order; they are scanned by timestamp so the
    /// commit log and iteration completions interleave correctly.
    pub fn from_events(events: &[Event]) -> Self {
        let mut ordered: Vec<&Event> = events.iter().collect();
        ordered.sort_by_key(|e| e.at_nanos);

        let mut acc = RunAccounting::default();
        let mut best_committed: u64 = 0;
        let mut total_lost: u64 = 0;
        for event in ordered {
            acc.window_nanos = acc.window_nanos.max(event.at_nanos);
            match &event.kind {
                EventKind::Stall { nanos } => acc.stall_nanos += nanos,
                EventKind::Committed { iteration, .. } => {
                    acc.committed += 1;
                    best_committed = best_committed.max(*iteration);
                }
                EventKind::Superseded { .. } => acc.superseded += 1,
                EventKind::Failed { .. } => acc.failed += 1,
                EventKind::IterationEnd { iteration } => {
                    acc.iterations += 1;
                    total_lost += iteration.saturating_sub(best_committed);
                }
                _ => {}
            }
        }
        if acc.iterations > 0 {
            acc.avg_rollback_depth = total_lost as f64 / acc.iterations as f64;
        }
        acc
    }

    /// Run window in seconds.
    pub fn window_secs(&self) -> f64 {
        self.window_nanos as f64 / 1e9
    }

    /// Effective throughput including checkpoint overhead, iterations/sec.
    pub fn throughput(&self) -> f64 {
        let w = self.window_secs();
        if w <= 0.0 {
            0.0
        } else {
            self.iterations as f64 / w
        }
    }

    /// Fraction of the window the training thread spent stalled (Fig. 8).
    pub fn stall_fraction(&self) -> f64 {
        if self.window_nanos == 0 {
            return 0.0;
        }
        (self.stall_nanos as f64 / self.window_nanos as f64).min(1.0)
    }

    /// Slowdown factor versus a stall-free run: `window / (window - stall)`
    /// (1.0 = zero overhead; capped when stall consumes the whole window).
    pub fn slowdown(&self) -> f64 {
        let useful = self.window_nanos.saturating_sub(self.stall_nanos);
        if useful == 0 {
            return f64::INFINITY;
        }
        self.window_nanos as f64 / useful as f64
    }

    /// Estimated goodput if the run's window had seen `rollbacks` failures,
    /// each paying `load_time_secs` plus recomputation of the empirical
    /// rollback depth (Fig. 9, same formula as the offline replay).
    ///
    /// Returns `None` when the run made no progress (zero throughput).
    pub fn goodput(&self, rollbacks: u64, load_time_secs: f64) -> Option<GoodputEstimate> {
        let throughput = self.throughput();
        if throughput <= 0.0 {
            return None;
        }
        let t_eff = 1.0 / throughput;
        let window = self.window_secs();
        let recovery_per_failure = load_time_secs + self.avg_rollback_depth * t_eff;
        let total_recovery = (rollbacks as f64 * recovery_per_failure).min(window);
        let progress = window - total_recovery;
        Some(GoodputEstimate {
            goodput: (progress / t_eff / window).max(0.0),
            failure_free_throughput: throughput,
            rollbacks,
            avg_lost_iterations: self.avg_rollback_depth,
            total_recovery_secs: total_recovery,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SpanId;

    fn at(secs: f64, kind: EventKind) -> Event {
        Event {
            span: SpanId::NONE,
            at_nanos: (secs * 1e9) as u64,
            kind,
        }
    }

    /// Mirrors `pccheck-trace`'s hand example: iterations complete at
    /// t = 1..4 s; a commit for iteration 2 lands at t = 2.5 s. Lost work
    /// at each boundary is 1, 2, 1, 2 → mean rollback depth 1.5.
    #[test]
    fn rollback_depth_matches_offline_replay_example() {
        let mut events = vec![
            at(1.0, EventKind::IterationEnd { iteration: 1 }),
            at(2.0, EventKind::IterationEnd { iteration: 2 }),
            at(
                2.5,
                EventKind::Committed {
                    iteration: 2,
                    bytes: 0,
                },
            ),
            at(3.0, EventKind::IterationEnd { iteration: 3 }),
            at(4.0, EventKind::IterationEnd { iteration: 4 }),
        ];
        // Shuffle: from_events must sort by timestamp itself.
        events.swap(0, 3);
        let acc = RunAccounting::from_events(&events);
        assert_eq!(acc.iterations, 4);
        assert_eq!(acc.committed, 1);
        assert!((acc.avg_rollback_depth - 1.5).abs() < 1e-9);
        assert!((acc.throughput() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stall_accumulates_and_bounds_slowdown() {
        let events = vec![
            at(0.5, EventKind::Stall { nanos: 100_000_000 }),
            at(1.0, EventKind::Stall { nanos: 150_000_000 }),
            at(2.0, EventKind::IterationEnd { iteration: 1 }),
        ];
        let acc = RunAccounting::from_events(&events);
        assert_eq!(acc.stall_nanos, 250_000_000);
        assert!((acc.stall_fraction() - 0.125).abs() < 1e-9);
        // 2s window, 0.25s stalled → 2 / 1.75.
        assert!((acc.slowdown() - 2.0 / 1.75).abs() < 1e-9);
    }

    #[test]
    fn zero_rollbacks_goodput_equals_throughput() {
        let events = vec![
            at(1.0, EventKind::IterationEnd { iteration: 1 }),
            at(2.0, EventKind::IterationEnd { iteration: 2 }),
        ];
        let acc = RunAccounting::from_events(&events);
        let g = acc.goodput(0, 10.0).unwrap();
        assert!((g.goodput - acc.throughput()).abs() < 1e-9);
        assert_eq!(g.total_recovery_secs, 0.0);
    }

    #[test]
    fn dense_failures_clamp_goodput_at_zero() {
        let events = vec![at(10.0, EventKind::IterationEnd { iteration: 1 })];
        let acc = RunAccounting::from_events(&events);
        let g = acc.goodput(1000, 60.0).unwrap();
        assert_eq!(g.goodput, 0.0);
        assert!((g.total_recovery_secs - acc.window_secs()).abs() < 1e-9);
    }

    #[test]
    fn empty_stream_is_all_zeroes() {
        let acc = RunAccounting::from_events(&[]);
        assert_eq!(acc, RunAccounting::default());
        assert_eq!(acc.throughput(), 0.0);
        assert_eq!(acc.stall_fraction(), 0.0);
        assert!(acc.goodput(1, 1.0).is_none());
    }

    #[test]
    fn terminal_counts_tally() {
        let events = vec![
            at(
                1.0,
                EventKind::Committed {
                    iteration: 1,
                    bytes: 8,
                },
            ),
            at(2.0, EventKind::Superseded { by_counter: 2 }),
            at(3.0, EventKind::Failed { error: "io".into() }),
        ];
        let acc = RunAccounting::from_events(&events);
        assert_eq!((acc.committed, acc.superseded, acc.failed), (1, 1, 1));
    }
}

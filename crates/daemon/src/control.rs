//! The daemon's control endpoint: a hand-rolled HTTP listener in the
//! same dependency-free style as the metrics server, so `pccheckctl job`
//! can drive a running `pccheckd` remotely.
//!
//! Routes (all GET, all JSON):
//!
//! * `/jobs` — one status object per job (running, drained, queued).
//! * `/submit?name=<n>[&state_kb=..][&n=..][&weight=..][&budget_kb=..]`
//!   `[&iters=..][&interval=..][&pacing_us=..][&codec=1][&adaptive=..]`
//!   `[&period=..]` — submit a sim-backed job (`codec=1` requests the
//!   chunk codec, `adaptive=N` re-tunes every N checkpoints, `period=P`
//!   trains on a P-byte-tiled compressible state).
//! * `/drain?name=<n>` — stop and drain a job (or unqueue it).
//! * `/shutdown` — ask the daemon's serve loop to exit.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pccheck_util::ByteSize;

use crate::service::{Daemon, JobSpec, JobStatus, SubmitOutcome};

/// JSON string escape for names that came in off the wire.
fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn status_json(s: &JobStatus) -> String {
    format!(
        "{{\"id\":{},\"name\":\"{}\",\"state\":\"{}\",\"concurrent\":{},\
         \"committed\":{},\"bytes_persisted\":{},\"qos_share\":{:.4},\
         \"last_iteration\":{},\"codec\":{}}}",
        s.id,
        json_escape(&s.name),
        s.state.name(),
        s.concurrent,
        s.committed,
        s.bytes_persisted,
        s.qos_share,
        s.last_iteration
            .map_or("null".to_string(), |i| i.to_string()),
        s.codec,
    )
}

/// Splits `path?query` and decodes the query into key/value pairs (no
/// percent-decoding — job names are restricted to URL-safe characters).
fn parse_query(target: &str) -> (&str, Vec<(&str, &str)>) {
    match target.split_once('?') {
        None => (target, Vec::new()),
        Some((path, query)) => (
            path,
            query
                .split('&')
                .filter_map(|kv| kv.split_once('='))
                .collect(),
        ),
    }
}

fn spec_from_query(params: &[(&str, &str)]) -> Result<JobSpec, String> {
    let get = |key: &str| params.iter().find(|(k, _)| *k == key).map(|(_, v)| *v);
    let name = get("name").ok_or("missing required param `name`")?;
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
    {
        return Err(format!("job name {name:?} must be [a-zA-Z0-9_-]+"));
    }
    let mut spec = JobSpec::sim(name);
    let parse_u64 = |key: &str, default: u64| -> Result<u64, String> {
        match get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad {key}={v:?}")),
        }
    };
    spec.state = ByteSize::from_kb(parse_u64("state_kb", spec.state.as_u64() / 1024)?);
    spec.storage_budget =
        ByteSize::from_kb(parse_u64("budget_kb", spec.storage_budget.as_u64() / 1024)?);
    spec.max_concurrent = parse_u64("n", spec.max_concurrent as u64)? as usize;
    spec.weight = parse_u64("weight", spec.weight)?;
    spec.iterations = parse_u64("iters", spec.iterations)?;
    spec.interval = parse_u64("interval", spec.interval)?;
    spec.pacing = std::time::Duration::from_micros(parse_u64("pacing_us", 0)?);
    spec.codec = parse_u64("codec", 0)? != 0;
    spec.adaptive_interval = parse_u64("adaptive", 0)?;
    spec.compress_period = parse_u64("period", 0)? as usize;
    Ok(spec)
}

fn handle(daemon: &Daemon, target: &str) -> (String, String) {
    let (path, params) = parse_query(target);
    match path {
        "/jobs" => {
            let rows: Vec<String> = daemon.jobs().iter().map(status_json).collect();
            ("200 OK".into(), format!("[{}]\n", rows.join(",")))
        }
        "/submit" => {
            let submitted = spec_from_query(&params)
                .map_err(|e| e.to_string())
                .and_then(|spec| daemon.submit(spec).map_err(|e| e.to_string()));
            match submitted {
                Ok(SubmitOutcome::Admitted(status)) => ("200 OK".into(), status_json(&status)),
                Ok(SubmitOutcome::Queued(reason)) => (
                    "200 OK".into(),
                    format!(
                        "{{\"state\":\"queued\",\"reason\":\"{}\"}}\n",
                        json_escape(&reason)
                    ),
                ),
                Err(msg) => (
                    "400 Bad Request".into(),
                    format!("{{\"error\":\"{}\"}}\n", json_escape(&msg)),
                ),
            }
        }
        "/drain" => {
            let Some(name) = params.iter().find(|(k, _)| *k == "name").map(|(_, v)| *v) else {
                return (
                    "400 Bad Request".into(),
                    "{\"error\":\"missing required param `name`\"}\n".into(),
                );
            };
            match daemon.drain(name) {
                Ok(()) => (
                    "200 OK".into(),
                    format!("{{\"drained\":\"{}\"}}\n", json_escape(name)),
                ),
                Err(e) => (
                    "400 Bad Request".into(),
                    format!("{{\"error\":\"{}\"}}\n", json_escape(&e.to_string())),
                ),
            }
        }
        "/shutdown" => {
            daemon.request_quit();
            ("200 OK".into(), "{\"shutting_down\":true}\n".into())
        }
        _ => ("404 Not Found".into(), "{\"error\":\"try /jobs\"}\n".into()),
    }
}

fn serve_one(stream: TcpStream, daemon: &Daemon) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line == "\r\n" || line == "\n" => break,
            Ok(_) => {}
            Err(_) => break,
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    let (status, body) = if method != "GET" {
        ("405 Method Not Allowed".into(), "GET only\n".to_string())
    } else {
        handle(daemon, target)
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let mut stream = reader.into_inner();
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
    // Client closes first (see the metrics server's TIME_WAIT note).
    let _ = stream.shutdown(Shutdown::Write);
    let mut sink = [0u8; 64];
    while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
}

/// The daemon's HTTP control listener (one accept loop on a background
/// thread; joined on drop, so a restarted daemon can rebind its port).
#[derive(Debug)]
pub struct ControlServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ControlServer {
    /// Binds `addr` and serves `daemon`'s control routes.
    ///
    /// # Errors
    ///
    /// Returns the bind error as a string.
    pub fn bind(addr: &str, daemon: Arc<Daemon>) -> Result<Self, String> {
        let listener = TcpListener::bind(addr).map_err(|e| e.to_string())?;
        let local = listener.local_addr().map_err(|e| e.to_string())?;
        listener.set_nonblocking(true).map_err(|e| e.to_string())?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            while !stop_flag.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let _ = stream.set_nonblocking(false);
                        serve_one(stream, &daemon);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(ControlServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ControlServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::DaemonConfig;
    use pccheck_telemetry::http_get;

    #[test]
    fn control_routes_submit_list_drain() {
        let daemon = Arc::new(Daemon::new(DaemonConfig::sim_default()).unwrap());
        let server = ControlServer::bind("127.0.0.1:0", Arc::clone(&daemon)).unwrap();
        let addr = server.addr();
        let body = http_get(addr, "/submit?name=web-a&iters=6&interval=2").unwrap();
        assert!(body.contains("\"name\":\"web-a\""), "{body}");
        assert!(body.contains("\"state\":\"running\""), "{body}");
        let list = http_get(addr, "/jobs").unwrap();
        assert!(list.starts_with('['), "{list}");
        assert!(list.contains("web-a"));
        daemon.join_all().unwrap();
        let body = http_get(addr, "/drain?name=web-a").unwrap();
        assert!(body.contains("\"drained\":\"web-a\""), "{body}");
        // Errors come back as HTTP 400 (http_get surfaces the status).
        assert!(http_get(addr, "/drain?name=ghost").is_err());
        assert!(http_get(addr, "/submit?name=bad%20name").is_err());
        assert!(http_get(addr, "/nope").is_err());
        server.shutdown();
    }

    #[test]
    fn spec_query_parsing_round_trips() {
        let params = vec![
            ("name", "a"),
            ("state_kb", "32"),
            ("n", "3"),
            ("weight", "4"),
            ("budget_kb", "512"),
            ("iters", "9"),
            ("interval", "3"),
            ("codec", "1"),
            ("adaptive", "8"),
            ("period", "64"),
        ];
        let spec = spec_from_query(&params).unwrap();
        assert_eq!(spec.state, ByteSize::from_kb(32));
        assert_eq!(spec.max_concurrent, 3);
        assert_eq!(spec.weight, 4);
        assert_eq!(spec.storage_budget, ByteSize::from_kb(512));
        assert_eq!(spec.iterations, 9);
        assert_eq!(spec.interval, 3);
        assert!(spec.codec);
        assert_eq!(spec.adaptive_interval, 8);
        assert_eq!(spec.compress_period, 64);
        assert!(!spec_from_query(&[("name", "a")]).unwrap().codec);
        assert!(spec_from_query(&[("name", "bad name")]).is_err());
        assert!(spec_from_query(&[("state_kb", "1")]).is_err());
        assert!(spec_from_query(&[("name", "a"), ("n", "x")]).is_err());
    }
}

//! `pccheckd` — the multi-tenant checkpoint service.
//!
//! Everything below PR 8 ran one training job against one private store.
//! This crate turns the stack into a *service*: one long-running daemon
//! owns the shared striped device, one service-mode
//! [`CheckpointStore`](pccheck::CheckpointStore) carved into per-job slot
//! namespaces, one writer pool, one staging pool, and one
//! [`QosArbiter`](pccheck::QosArbiter) — and every training job gets a
//! thin [`PcCheckEngine`](pccheck::PcCheckEngine) facade over those
//! shared resources.
//!
//! The three layers:
//!
//! * [`admission`] — §3.4 storage math per tenant: a job whose budget
//!   cannot hold two checkpoints (`N ≤ S/m − 1` with `N ≥ 1`) is
//!   **rejected**; a job that fits the store eventually but not *now*
//!   (slot range or namespace directory exhausted) is **queued**.
//! * [`service`] — [`Daemon`]: submit/drain/list jobs, drive sim-backed
//!   training workers, expose one [`MetricsRegistry`] with a `job` label
//!   per tenant, and audit the shared store on shutdown.
//! * [`control`] — a hand-rolled HTTP control endpoint (`GET /jobs`,
//!   `GET /submit?...`, `GET /drain?...`) so `pccheckctl job` can drive a
//!   running daemon remotely, mirroring the metrics endpoint's style.
//!
//! [`MetricsRegistry`]: pccheck_telemetry::MetricsRegistry

pub mod admission;
pub mod control;
pub mod service;

pub use admission::{Admission, SystemParams};
pub use control::ControlServer;
pub use service::{Daemon, DaemonConfig, JobSpec, JobState, JobStatus, SubmitOutcome};

//! Admission control: the §3.4 storage math applied per tenant.
//!
//! The single-job tuner already knows the constraint that matters here:
//! a tenant with storage budget `S` and checkpoint size `m` can run at
//! most `N ≤ S/m − 1` concurrent checkpoints (the `+1` slot is the one
//! being recycled). The daemon reuses [`Tuner`] verbatim for that bound
//! and layers the *shared-store* constraints on top: the slot range and
//! namespace directory are finite, so a job that fits its own budget may
//! still have to wait for capacity.

use pccheck::{Tuner, TunerInputs};
use pccheck_util::{Bandwidth, ByteSize, SimDuration};

use crate::service::JobSpec;

/// System-wide model parameters fed to each tenant's [`Tuner`] (the
/// "System Parameters" column of Table 2; the per-tenant "User
/// Constraints" come from the [`JobSpec`]).
#[derive(Debug, Clone)]
pub struct SystemParams {
    /// Modeled iteration time `t` for admission math.
    pub iter_time: SimDuration,
    /// Aggregate storage write bandwidth `T_S` of the shared stripe.
    pub storage_bandwidth: Bandwidth,
    /// GPU→CPU PCIe bandwidth `T_G`.
    pub pcie_bandwidth: Bandwidth,
    /// Acceptable slowdown `q ≥ 1`.
    pub max_slowdown: f64,
    /// Whether tenants may opt into the chunk codec at all. Operators
    /// turn this off fleet-wide (e.g., CPU-starved hosts) and every
    /// admission downgrades the request to a raw persist path.
    pub allow_codec: bool,
}

impl Default for SystemParams {
    fn default() -> Self {
        SystemParams {
            iter_time: SimDuration::from_millis(100),
            storage_bandwidth: Bandwidth::from_mb_per_sec(2000.0),
            pcie_bandwidth: Bandwidth::from_mb_per_sec(12000.0),
            max_slowdown: 1.05,
            allow_codec: true,
        }
    }
}

/// The admission decision for one submitted job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Admission {
    /// The job runs now with `concurrent` checkpoints over `slots`
    /// namespace slots (`concurrent + 1`).
    Admitted {
        /// Granted concurrency `N` (the requested value clamped to the
        /// tenant's §3.4 bound).
        concurrent: usize,
        /// Slots the namespace needs: `N + 1`.
        slots: u32,
        /// Whether the chunk codec was granted (requested by the spec
        /// AND allowed system-wide).
        codec: bool,
    },
    /// The job fits its own budget but the shared store has no room for
    /// it right now; it waits in FIFO order.
    Queued(String),
    /// The job can never run under this configuration.
    Rejected(String),
}

/// Decides admission for `spec` against a store with `slot_size`-sized
/// slots, `free_slots` unallocated slots, and `free_namespaces` unused
/// directory entries.
pub fn decide(
    spec: &JobSpec,
    slot_size: ByteSize,
    free_slots: u32,
    free_namespaces: u32,
    system: &SystemParams,
) -> Admission {
    if spec.state.is_zero() {
        return Admission::Rejected("checkpoint size must be nonzero".into());
    }
    if spec.state > slot_size {
        return Admission::Rejected(format!(
            "checkpoint size {} exceeds the store's slot size {}",
            spec.state, slot_size
        ));
    }
    if spec.max_concurrent == 0 {
        return Admission::Rejected("max_concurrent must be >= 1".into());
    }
    let tuner = match Tuner::new(TunerInputs {
        checkpoint_size: spec.state,
        iter_time: system.iter_time,
        storage_bandwidth: system.storage_bandwidth,
        pcie_bandwidth: system.pcie_bandwidth,
        storage_budget: spec.storage_budget,
        max_slowdown: system.max_slowdown,
    }) {
        Ok(t) => t,
        // The tuner's own validation is the rejection: a budget that
        // cannot hold two checkpoints means N would be 0.
        Err(e) => return Admission::Rejected(format!("tuner admission: {e}")),
    };
    let cap = tuner.max_concurrent();
    if cap == 0 {
        return Admission::Rejected(format!(
            "storage budget {} holds fewer than 2 checkpoints of {}",
            spec.storage_budget, spec.state
        ));
    }
    let concurrent = spec.max_concurrent.min(cap);
    let slots = concurrent as u32 + 1;
    if free_namespaces == 0 {
        return Admission::Queued(format!(
            "namespace directory full; job needs 1 entry and {slots} slots"
        ));
    }
    if slots > free_slots {
        return Admission::Queued(format!(
            "slot budget exhausted: job needs {slots} slots, {free_slots} remain"
        ));
    }
    Admission::Admitted {
        concurrent,
        slots,
        codec: spec.codec && system.allow_codec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(state_kb: u64, n: usize, budget_kb: u64) -> JobSpec {
        JobSpec {
            name: "t".into(),
            state: ByteSize::from_kb(state_kb),
            max_concurrent: n,
            storage_budget: ByteSize::from_kb(budget_kb),
            ..JobSpec::sim("t")
        }
    }

    #[test]
    fn budget_clamps_concurrency_to_the_section_3_4_bound() {
        // S/m = 4 → N ≤ 3 even though the job asked for 8.
        let d = decide(
            &spec(64, 8, 256),
            ByteSize::from_kb(64),
            32,
            4,
            &SystemParams::default(),
        );
        assert_eq!(
            d,
            Admission::Admitted {
                concurrent: 3,
                slots: 4,
                codec: false
            }
        );
    }

    #[test]
    fn budget_below_two_checkpoints_is_rejected() {
        let d = decide(
            &spec(64, 2, 100),
            ByteSize::from_kb(64),
            32,
            4,
            &SystemParams::default(),
        );
        assert!(matches!(d, Admission::Rejected(_)), "{d:?}");
    }

    #[test]
    fn oversized_state_is_rejected_not_queued() {
        let d = decide(
            &spec(128, 1, 1024),
            ByteSize::from_kb(64),
            32,
            4,
            &SystemParams::default(),
        );
        assert!(matches!(d, Admission::Rejected(_)), "{d:?}");
    }

    #[test]
    fn exhausted_store_queues_a_job_that_fits_its_own_budget() {
        let sys = SystemParams::default();
        let d = decide(&spec(64, 2, 1024), ByteSize::from_kb(64), 2, 4, &sys);
        assert!(matches!(d, Admission::Queued(_)), "{d:?}");
        let d = decide(&spec(64, 2, 1024), ByteSize::from_kb(64), 8, 0, &sys);
        assert!(matches!(d, Admission::Queued(_)), "{d:?}");
        let d = decide(&spec(64, 2, 1024), ByteSize::from_kb(64), 3, 1, &sys);
        assert_eq!(
            d,
            Admission::Admitted {
                concurrent: 2,
                slots: 3,
                codec: false
            }
        );
    }

    #[test]
    fn codec_grant_requires_both_the_tenant_and_the_operator() {
        let sys = SystemParams::default();
        let mut s = spec(64, 2, 1024);
        s.codec = true;
        let d = decide(&s, ByteSize::from_kb(64), 32, 4, &sys);
        assert!(
            matches!(d, Admission::Admitted { codec: true, .. }),
            "{d:?}"
        );
        let strict = SystemParams {
            allow_codec: false,
            ..SystemParams::default()
        };
        let d = decide(&s, ByteSize::from_kb(64), 32, 4, &strict);
        assert!(
            matches!(d, Admission::Admitted { codec: false, .. }),
            "{d:?}"
        );
    }
}

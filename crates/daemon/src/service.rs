//! The daemon proper: shared resources, job lifecycle, per-job metrics.
//!
//! One [`Daemon`] owns, for its whole lifetime:
//!
//! * a `stripe_ways`-wide [`StripedDevice`] of simulated SSDs,
//! * one service-mode [`CheckpointStore`] over it (per-job namespaces),
//! * one shared [`PersistPipeline`] (writer pool + staging pool),
//! * one [`QosArbiter`] scheduling writer-pool bandwidth across jobs,
//! * one [`MetricsRegistry`] with a `job="<name>"` label per tenant.
//!
//! Jobs arrive via [`Daemon::submit`], pass [`admission`](crate::admission),
//! get a namespace plus a [`PcCheckEngine`] facade, and train on a
//! background worker until their iteration budget runs out or
//! [`Daemon::drain`] stops them. Drained state stays recoverable: the
//! namespace directory is append-only, exactly like the on-disk layout.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;
use pccheck::{
    CheckpointStore, PcCheckConfig, PcCheckEngine, PccheckError, PersistPipeline, QosArbiter,
    QosConfig,
};
use pccheck_device::{DeviceConfig, HostBufferPool, PersistentDevice, SsdDevice, StripedDevice};
use pccheck_gpu::{Checkpointer, Gpu, GpuConfig, TrainingState};
use pccheck_monitor::ForensicReport;
use pccheck_telemetry::{MetricsRegistry, Telemetry, TelemetryIoObserver};
use pccheck_util::ByteSize;

use crate::admission::{self, Admission, SystemParams};

/// One tenant's submission: its checkpoint geometry, §3.4 user
/// constraints, and the synthetic workload the daemon drives for it.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Unique job name (the `job` metrics label).
    pub name: String,
    /// Checkpoint size `m` (must fit one store slot).
    pub state: ByteSize,
    /// Requested concurrent checkpoints `N` (clamped by admission).
    pub max_concurrent: usize,
    /// Tenant storage budget `S` for the §3.4 bound.
    pub storage_budget: ByteSize,
    /// QoS weight (relative bandwidth share under contention).
    pub weight: u64,
    /// Checkpoint every this many iterations.
    pub interval: u64,
    /// Total training iterations the sim worker runs.
    pub iterations: u64,
    /// Simulated compute time per iteration. Zero means the worker
    /// trains flat-out (a saturating tenant); nonzero paces the
    /// checkpoint cadence the way real iteration time does.
    pub pacing: std::time::Duration,
    /// Whether this tenant asks for the chunk codec (compression +
    /// dedup framing). Granted only if the operator's
    /// [`SystemParams::allow_codec`] also permits it.
    pub codec: bool,
    /// Per-job controller cadence: re-tune this tenant's persist path
    /// every this many checkpoint requests (`0` disables adaptation).
    pub adaptive_interval: u64,
    /// When nonzero, the sim worker trains on a *compressible* state
    /// built from tiled `compress_period`-byte blocks instead of the
    /// default incompressible RNG fill — the knob that makes the codec
    /// worth granting.
    pub compress_period: usize,
}

impl JobSpec {
    /// A small sim-backed job: 64 KiB state, N=2, a 4-slot budget, unit
    /// weight, checkpointing every other iteration for 20 iterations.
    pub fn sim(name: &str) -> Self {
        JobSpec {
            name: name.to_string(),
            state: ByteSize::from_kb(64),
            max_concurrent: 2,
            storage_budget: ByteSize::from_kb(256),
            weight: 1,
            interval: 2,
            iterations: 20,
            pacing: std::time::Duration::ZERO,
            codec: false,
            adaptive_interval: 0,
            compress_period: 0,
        }
    }
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting for store capacity (FIFO).
    Queued,
    /// Admitted; the sim worker is training.
    Running,
    /// Worker finished or drained; checkpoints remain recoverable.
    Drained,
}

impl JobState {
    /// Lower-case wire name.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Drained => "drained",
        }
    }
}

/// One row of `pccheckctl job list` / the control endpoint's `/jobs`.
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// Namespace id in the shared store (0 while queued).
    pub id: u64,
    /// Job name.
    pub name: String,
    /// Lifecycle state.
    pub state: JobState,
    /// Granted concurrency `N` (0 while queued).
    pub concurrent: usize,
    /// Checkpoints committed so far.
    pub committed: u64,
    /// Payload bytes persisted so far.
    pub bytes_persisted: u64,
    /// This job's fraction of all QoS-served bytes (0 when the arbiter
    /// has served nothing yet).
    pub qos_share: f64,
    /// Latest committed iteration, if any.
    pub last_iteration: Option<u64>,
    /// Whether the chunk codec was granted at admission (false while
    /// queued).
    pub codec: bool,
}

/// Outcome of [`Daemon::submit`].
#[derive(Debug, Clone)]
pub enum SubmitOutcome {
    /// Running now, under this namespace id.
    Admitted(JobStatus),
    /// Waiting for capacity.
    Queued(String),
}

/// Daemon-wide geometry and model parameters.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Payload capacity of one slot (max tenant checkpoint size).
    pub slot_size: ByteSize,
    /// Total slots shared by all namespaces.
    pub total_slots: u32,
    /// Namespace directory capacity (max jobs over the store lifetime).
    pub max_jobs: u32,
    /// Flight-recorder ring entries.
    pub flight_records: u32,
    /// RAID-0 width of the shared device.
    pub stripe_ways: usize,
    /// Shared writer-pool width.
    pub writer_threads: usize,
    /// Pipeline chunk size.
    pub chunk_size: ByteSize,
    /// Shared staging-pool chunks.
    pub dram_chunks: usize,
    /// Whether the shared pipeline stands up codec infrastructure at
    /// all (per-tenant grants still gate each job's framed path).
    pub codec: bool,
    /// QoS arbiter tuning.
    pub qos: QosConfig,
    /// System parameters for per-tenant admission math.
    pub system: SystemParams,
}

impl DaemonConfig {
    /// The CI/smoke geometry: a 4-way stripe, 64 KiB slots, room for 16
    /// jobs of N=2 each.
    pub fn sim_default() -> Self {
        DaemonConfig {
            slot_size: ByteSize::from_kb(64),
            total_slots: 48,
            max_jobs: 16,
            flight_records: 512,
            stripe_ways: 4,
            writer_threads: 4,
            chunk_size: ByteSize::from_kb(16),
            dram_chunks: 16,
            codec: true,
            qos: QosConfig::default(),
            system: SystemParams::default(),
        }
    }
}

struct JobEntry {
    id: u64,
    spec: JobSpec,
    state: JobState,
    concurrent: usize,
    codec: bool,
    engine: Option<Arc<PcCheckEngine>>,
    telemetry: Telemetry,
    stop: Arc<AtomicBool>,
    worker: Option<JoinHandle<Result<(), PccheckError>>>,
}

#[derive(Default)]
struct DaemonState {
    jobs: Vec<JobEntry>,
    pending: VecDeque<JobSpec>,
    next_id: u64,
}

/// The long-running multi-tenant checkpoint service.
pub struct Daemon {
    config: DaemonConfig,
    device: Arc<dyn PersistentDevice>,
    store: Arc<CheckpointStore>,
    pipeline: Arc<PersistPipeline>,
    qos: Arc<QosArbiter>,
    registry: MetricsRegistry,
    state: Mutex<DaemonState>,
    quit: AtomicBool,
}

impl Daemon {
    /// Formats a fresh service-mode store over a `stripe_ways`-wide
    /// simulated stripe and stands up the shared pipeline, staging pool,
    /// QoS arbiter, and metrics registry.
    ///
    /// # Errors
    ///
    /// Propagates store formatting errors (e.g., an undersized device).
    pub fn new(config: DaemonConfig) -> Result<Self, PccheckError> {
        let total_cap = CheckpointStore::required_capacity_service(
            config.slot_size,
            config.total_slots,
            config.flight_records,
            config.max_jobs,
        ) + ByteSize::from_kb(64);
        let ways = config.stripe_ways.max(1);
        let member_cap =
            ByteSize::from_bytes(total_cap.as_u64() / ways as u64) + ByteSize::from_kb(64);
        let root = Telemetry::enabled();
        let device: Arc<dyn PersistentDevice> = if ways == 1 {
            Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(total_cap)))
        } else {
            let members: Vec<Arc<dyn PersistentDevice>> = (0..ways)
                .map(|_| {
                    Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(member_cap)))
                        as Arc<dyn PersistentDevice>
                })
                .collect();
            let striped = Arc::new(StripedDevice::new(members, ByteSize::from_kb(16)));
            striped.set_io_observer(Arc::new(TelemetryIoObserver::new(root.clone())));
            striped
        };
        let store = Arc::new(CheckpointStore::format_service(
            Arc::clone(&device),
            config.slot_size,
            config.total_slots,
            config.flight_records,
            config.max_jobs,
        )?);
        let qos = Arc::new(QosArbiter::new(config.qos.clone()));
        let pool = HostBufferPool::new(config.chunk_size, config.dram_chunks);
        let pipeline = Arc::new(
            PersistPipeline::new(Arc::clone(&store))
                .with_writers(config.writer_threads)
                .with_staging(pool)
                .with_codec(config.codec)
                .with_qos(Arc::clone(&qos)),
        );
        let registry = MetricsRegistry::new(root);
        Ok(Daemon {
            config,
            device,
            store,
            pipeline,
            qos,
            registry,
            state: Mutex::new(DaemonState::default()),
            quit: AtomicBool::new(false),
        })
    }

    /// Asks the serve loop to exit (the control endpoint's `/shutdown`).
    pub fn request_quit(&self) {
        self.quit.store(true, Ordering::Release);
    }

    /// Whether [`request_quit`](Self::request_quit) has been called.
    pub fn quit_requested(&self) -> bool {
        self.quit.load(Ordering::Acquire)
    }

    /// The shared metrics registry (serve it with
    /// [`MetricsServer`](pccheck_telemetry::MetricsServer)).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The shared store.
    pub fn store(&self) -> &Arc<CheckpointStore> {
        &self.store
    }

    /// The shared QoS arbiter.
    pub fn qos(&self) -> &Arc<QosArbiter> {
        &self.qos
    }

    /// The shared device (for audits and stats).
    pub fn device(&self) -> &Arc<dyn PersistentDevice> {
        &self.device
    }

    fn free_capacity(&self) -> (u32, u32) {
        let allocated: u32 = self.store.namespaces().iter().map(|d| d.slot_count).sum();
        let free_slots = self.store.num_slots().saturating_sub(allocated);
        let free_ns = self
            .config
            .max_jobs
            .saturating_sub(self.store.namespaces().len() as u32);
        (free_slots, free_ns)
    }

    /// Submits a job: runs §3.4 admission, allocates its namespace, and
    /// starts its sim-backed training worker. Jobs the store cannot hold
    /// *right now* queue FIFO; jobs that can never fit are errors.
    ///
    /// # Errors
    ///
    /// Returns [`PccheckError::InvalidConfig`] for rejected jobs and
    /// duplicate names.
    pub fn submit(&self, spec: JobSpec) -> Result<SubmitOutcome, PccheckError> {
        {
            let state = self.state.lock();
            if state.jobs.iter().any(|j| j.spec.name == spec.name)
                || state.pending.iter().any(|p| p.name == spec.name)
            {
                return Err(PccheckError::InvalidConfig(format!(
                    "job name {:?} already submitted",
                    spec.name
                )));
            }
        }
        let (free_slots, free_ns) = self.free_capacity();
        match admission::decide(
            &spec,
            self.store.slot_size(),
            free_slots,
            free_ns,
            &self.config.system,
        ) {
            Admission::Rejected(reason) => Err(PccheckError::InvalidConfig(format!(
                "job {:?} rejected: {reason}",
                spec.name
            ))),
            Admission::Queued(reason) => {
                self.state.lock().pending.push_back(spec);
                Ok(SubmitOutcome::Queued(reason))
            }
            Admission::Admitted {
                concurrent,
                slots,
                codec,
            } => {
                let status = self.start_job(spec, concurrent, slots, codec)?;
                Ok(SubmitOutcome::Admitted(status))
            }
        }
    }

    fn start_job(
        &self,
        spec: JobSpec,
        concurrent: usize,
        slots: u32,
        codec: bool,
    ) -> Result<JobStatus, PccheckError> {
        // The grant is only real if the shared pipeline stood the codec
        // infrastructure up; a raw daemon serves codec tenants raw.
        let codec = codec && self.config.codec;
        let id = {
            let mut state = self.state.lock();
            state.next_id += 1;
            state.next_id
        };
        self.store.allocate_namespace(id, slots)?;
        self.qos.register_job(id, spec.weight.max(1));
        let telemetry = Telemetry::enabled();
        self.registry.register_job(&spec.name, telemetry.clone());
        let engine = Arc::new(
            PcCheckEngine::with_shared(
                PcCheckConfig::builder()
                    .max_concurrent(concurrent)
                    .writer_threads(self.config.writer_threads)
                    .chunk_size(self.config.chunk_size)
                    .dram_chunks(self.config.dram_chunks)
                    .codec(codec)
                    .adaptive_interval(spec.adaptive_interval)
                    .build()?,
                Arc::clone(&self.pipeline),
                id,
            )?
            .with_telemetry(telemetry.clone()),
        );
        let stop = Arc::new(AtomicBool::new(false));
        let worker = {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            let spec = spec.clone();
            std::thread::spawn(move || -> Result<(), PccheckError> {
                let state = if spec.compress_period > 0 {
                    TrainingState::compressible(spec.state, id, spec.compress_period)
                } else {
                    TrainingState::synthetic(spec.state, id)
                };
                let gpu = Gpu::new(GpuConfig::fast_for_tests(), state);
                for iter in 1..=spec.iterations {
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    if !spec.pacing.is_zero() {
                        std::thread::sleep(spec.pacing);
                    }
                    gpu.update();
                    if spec.interval > 0 && iter % spec.interval == 0 {
                        engine.checkpoint(&gpu, iter);
                    }
                }
                engine.try_drain()
            })
        };
        let status = JobStatus {
            id,
            name: spec.name.clone(),
            state: JobState::Running,
            concurrent,
            committed: 0,
            bytes_persisted: 0,
            qos_share: 0.0,
            last_iteration: None,
            codec,
        };
        self.state.lock().jobs.push(JobEntry {
            id,
            spec,
            state: JobState::Running,
            concurrent,
            codec,
            engine: Some(engine),
            telemetry,
            stop,
            worker: Some(worker),
        });
        Ok(status)
    }

    /// Stops `name`'s worker, drains its in-flight checkpoints, and
    /// marks it [`JobState::Drained`]. Idempotent for drained jobs. Then
    /// retries queued submissions against the freed *runtime* capacity
    /// (directory entries are append-only, so a queued job only starts
    /// if unallocated slots remain).
    ///
    /// # Errors
    ///
    /// Unknown names and worker errors surface as [`PccheckError`].
    pub fn drain(&self, name: &str) -> Result<(), PccheckError> {
        let (stop, worker) = {
            let mut state = self.state.lock();
            // A queued job drains by leaving the queue.
            if let Some(pos) = state.pending.iter().position(|p| p.name == name) {
                state.pending.remove(pos);
                return Ok(());
            }
            let entry = state
                .jobs
                .iter_mut()
                .find(|j| j.spec.name == name)
                .ok_or_else(|| PccheckError::InvalidConfig(format!("no job named {name:?}")))?;
            entry.state = JobState::Drained;
            (Arc::clone(&entry.stop), entry.worker.take())
        };
        stop.store(true, Ordering::Release);
        if let Some(handle) = worker {
            handle
                .join()
                .map_err(|_| PccheckError::InvalidConfig("job worker panicked".into()))??;
        }
        self.admit_pending();
        Ok(())
    }

    /// Waits for every running worker to finish its iteration budget and
    /// drain. Unlike [`drain`](Self::drain) this does not interrupt.
    ///
    /// # Errors
    ///
    /// Propagates the first worker error.
    pub fn join_all(&self) -> Result<(), PccheckError> {
        loop {
            let worker = {
                let mut state = self.state.lock();
                let Some(entry) = state.jobs.iter_mut().find(|j| j.worker.is_some()) else {
                    break;
                };
                entry.state = JobState::Drained;
                entry.worker.take()
            };
            if let Some(handle) = worker {
                handle
                    .join()
                    .map_err(|_| PccheckError::InvalidConfig("job worker panicked".into()))??;
            }
        }
        self.admit_pending();
        Ok(())
    }

    fn admit_pending(&self) {
        loop {
            let Some(spec) = self.state.lock().pending.pop_front() else {
                return;
            };
            let (free_slots, free_ns) = self.free_capacity();
            match admission::decide(
                &spec,
                self.store.slot_size(),
                free_slots,
                free_ns,
                &self.config.system,
            ) {
                Admission::Admitted {
                    concurrent,
                    slots,
                    codec,
                } => {
                    if self.start_job(spec, concurrent, slots, codec).is_err() {
                        return;
                    }
                }
                _ => {
                    // Still no room: put it back at the head and stop
                    // (FIFO — later jobs must not jump the queue).
                    self.state.lock().pending.push_front(spec);
                    return;
                }
            }
        }
    }

    /// A consistent status row per job (running, drained, and queued).
    pub fn jobs(&self) -> Vec<JobStatus> {
        let shares = self.qos.shares();
        let total_share: u64 = shares.iter().map(|(_, b)| *b).sum();
        let share_of = |id: u64| -> f64 {
            if total_share == 0 {
                return 0.0;
            }
            shares
                .iter()
                .find(|(j, _)| *j == id)
                .map_or(0.0, |(_, b)| *b as f64 / total_share as f64)
        };
        let state = self.state.lock();
        let mut rows: Vec<JobStatus> = state
            .jobs
            .iter()
            .map(|j| {
                let (committed, bytes, last_iteration) = match &j.engine {
                    Some(e) => (
                        e.stats().committed(),
                        e.stats().bytes_persisted(),
                        e.last_committed().map(|o| o.iteration),
                    ),
                    None => (0, 0, None),
                };
                JobStatus {
                    id: j.id,
                    name: j.spec.name.clone(),
                    state: j.state,
                    concurrent: j.concurrent,
                    committed,
                    bytes_persisted: bytes,
                    qos_share: share_of(j.id),
                    last_iteration,
                    codec: j.codec,
                }
            })
            .collect();
        rows.extend(state.pending.iter().map(|p| JobStatus {
            id: 0,
            name: p.name.clone(),
            state: JobState::Queued,
            concurrent: 0,
            committed: 0,
            bytes_persisted: 0,
            qos_share: 0.0,
            last_iteration: None,
            codec: false,
        }));
        rows
    }

    /// The per-job telemetry handle, for tests and expositions.
    pub fn job_telemetry(&self, name: &str) -> Option<Telemetry> {
        self.state
            .lock()
            .jobs
            .iter()
            .find(|j| j.spec.name == name)
            .map(|j| j.telemetry.clone())
    }

    /// Drains everything and audits the shared store's commit-protocol
    /// invariants — the forensics gate a clean shutdown must pass.
    ///
    /// # Errors
    ///
    /// Propagates worker and audit errors.
    pub fn shutdown(&self) -> Result<ForensicReport, PccheckError> {
        let names: Vec<String> = self
            .state
            .lock()
            .jobs
            .iter()
            .filter(|j| j.worker.is_some())
            .map(|j| j.spec.name.clone())
            .collect();
        for name in names {
            self.drain(&name)?;
        }
        self.state.lock().pending.clear();
        pccheck_monitor::audit(Arc::clone(&self.device))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_sim_jobs_share_one_store_and_all_commit() {
        let daemon = Daemon::new(DaemonConfig::sim_default()).unwrap();
        for i in 0..4 {
            let outcome = daemon.submit(JobSpec::sim(&format!("job-{i}"))).unwrap();
            assert!(matches!(outcome, SubmitOutcome::Admitted(_)));
        }
        daemon.join_all().unwrap();
        let rows = daemon.jobs();
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert_eq!(row.state, JobState::Drained);
            assert!(row.committed >= 1, "job {} never committed", row.name);
            assert!(row.bytes_persisted > 0);
            assert_eq!(row.last_iteration, Some(20));
        }
        // Every tenant shows up in the shared exposition under its label.
        let text = daemon.registry().prometheus_text();
        for i in 0..4 {
            assert!(text.contains(&format!("{{job=\"job-{i}\"}}")));
        }
        let report = daemon.shutdown().unwrap();
        assert!(report.is_clean(), "{:?}", report.violations);
    }

    #[test]
    fn tiny_shared_staging_pool_is_arbitrated_across_racing_jobs() {
        // Four engine facades share ONE two-chunk staging pool, so pool
        // exhaustion is the steady state while all four train at once.
        // Every job must still finish (no lost wakeups, nobody starved),
        // and the pool must never over-grant or leak chunks.
        let config = DaemonConfig {
            dram_chunks: 2,
            ..DaemonConfig::sim_default()
        };
        let daemon = Daemon::new(config).unwrap();
        for i in 0..4 {
            daemon.submit(JobSpec::sim(&format!("racer-{i}"))).unwrap();
        }
        daemon.join_all().unwrap();
        let pool = daemon.pipeline.staging_pool().expect("daemon stages");
        assert!(
            pool.peak_outstanding() <= 2,
            "pool over-granted: {} chunks live at peak",
            pool.peak_outstanding()
        );
        assert_eq!(pool.available(), 2, "staging chunks leaked");
        for row in daemon.jobs() {
            assert!(row.committed >= 1, "job {} starved", row.name);
        }
        let report = daemon.shutdown().unwrap();
        assert!(report.is_clean(), "{:?}", report.violations);
    }

    #[test]
    fn duplicate_names_and_hopeless_budgets_are_rejected() {
        let daemon = Daemon::new(DaemonConfig::sim_default()).unwrap();
        daemon.submit(JobSpec::sim("a")).unwrap();
        assert!(daemon.submit(JobSpec::sim("a")).is_err());
        let hopeless = JobSpec {
            storage_budget: ByteSize::from_kb(64),
            ..JobSpec::sim("b")
        };
        assert!(daemon.submit(hopeless).is_err());
        daemon.join_all().unwrap();
    }

    #[test]
    fn jobs_queue_when_slots_run_out_and_drain_reaps_the_queue() {
        let config = DaemonConfig {
            total_slots: 7,
            max_jobs: 4,
            ..DaemonConfig::sim_default()
        };
        let daemon = Daemon::new(config).unwrap();
        // Two N=2 jobs take 3 slots each; the third job's 3 do not fit
        // the single remaining slot.
        daemon.submit(JobSpec::sim("a")).unwrap();
        daemon.submit(JobSpec::sim("b")).unwrap();
        let outcome = daemon.submit(JobSpec::sim("c")).unwrap();
        assert!(matches!(outcome, SubmitOutcome::Queued(_)), "{outcome:?}");
        let rows = daemon.jobs();
        assert_eq!(rows.len(), 3);
        assert_eq!(
            rows.iter().filter(|r| r.state == JobState::Queued).count(),
            1
        );
        // Draining the queued job just removes it from the queue.
        daemon.drain("c").unwrap();
        assert_eq!(daemon.jobs().len(), 2);
        daemon.join_all().unwrap();
        let report = daemon.shutdown().unwrap();
        assert!(report.is_clean(), "{:?}", report.violations);
    }

    #[test]
    fn codec_tenant_saves_bytes_while_a_raw_tenant_rides_along() {
        let daemon = Daemon::new(DaemonConfig::sim_default()).unwrap();
        // A codec tenant with a highly redundant state (32-byte tiled
        // blocks) and a raw tenant sharing the same pipeline.
        let packed = JobSpec {
            codec: true,
            compress_period: 32,
            adaptive_interval: 4,
            ..JobSpec::sim("packed")
        };
        let raw = JobSpec::sim("raw");
        let SubmitOutcome::Admitted(status) = daemon.submit(packed).unwrap() else {
            panic!("codec job should admit");
        };
        assert!(status.codec, "codec grant should survive admission");
        daemon.submit(raw).unwrap();
        daemon.join_all().unwrap();
        let rows = daemon.jobs();
        for row in &rows {
            assert!(row.committed >= 1, "job {} never committed", row.name);
            assert_eq!(row.codec, row.name == "packed");
        }
        // The codec tenant's own telemetry shows framed savings; the raw
        // tenant's shows none.
        let packed_t = daemon.job_telemetry("packed").unwrap();
        let snap = packed_t.snapshot().unwrap();
        assert!(
            snap.codec_bytes_saved > 0 || snap.dedup_chunks > 0,
            "codec tenant saved nothing: {snap:?}"
        );
        let raw_t = daemon.job_telemetry("raw").unwrap();
        let raw_snap = raw_t.snapshot().unwrap();
        assert_eq!(raw_snap.codec_bytes_saved, 0);
        assert_eq!(raw_snap.dedup_chunks, 0);
        let report = daemon.shutdown().unwrap();
        assert!(report.is_clean(), "{:?}", report.violations);
    }

    #[test]
    fn drain_interrupts_a_running_job_and_keeps_its_checkpoints() {
        let spec = JobSpec {
            iterations: 1_000_000,
            interval: 1,
            ..JobSpec::sim("long")
        };
        let daemon = Daemon::new(DaemonConfig::sim_default()).unwrap();
        daemon.submit(spec).unwrap();
        // Let it commit something, then cut it short.
        loop {
            let rows = daemon.jobs();
            if rows[0].committed >= 2 {
                break;
            }
            std::thread::yield_now();
        }
        daemon.drain("long").unwrap();
        let rows = daemon.jobs();
        assert_eq!(rows[0].state, JobState::Drained);
        assert!(rows[0].committed >= 2);
        assert!(rows[0].last_iteration.is_some());
        let report = daemon.shutdown().unwrap();
        assert!(report.is_clean(), "{:?}", report.violations);
    }
}

//! Regenerates Figure 11 (simulated, full scale) and benchmarks the
//! concrete engines persisting a real (scaled-down) checkpoint.
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use pccheck::{CheckpointStore, PcCheckConfig, PcCheckEngine};
use pccheck_baselines::{CheckFreqCheckpointer, GpmCheckpointer};
use pccheck_device::{DeviceConfig, PersistentDevice, SsdDevice};
use pccheck_gpu::{Checkpointer, Gpu, GpuConfig, TrainingState};
use pccheck_harness::fig11_persist_micro as fig11;
use pccheck_util::ByteSize;

/// Scaled-down concrete microbenchmark: 4 MB checkpoint, unthrottled
/// devices — measures the engines' real copy/commit paths (CAS protocol,
/// chunk staging, writer threads) without modeled bandwidth.
fn concrete_persist(c: &mut Criterion) {
    let size = ByteSize::from_mb_u64(4);
    let mut group = c.benchmark_group("fig11/concrete_persist_4mb");
    group.sample_size(10);

    group.bench_function("pccheck", |b| {
        b.iter_with_setup(
            || {
                let gpu = Gpu::new(
                    GpuConfig::fast_for_tests(),
                    TrainingState::synthetic(size, 1),
                );
                let cap = CheckpointStore::required_capacity(size, 3) + ByteSize::from_kb(4);
                let dev: Arc<dyn PersistentDevice> =
                    Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
                let engine = PcCheckEngine::new(
                    PcCheckConfig::builder()
                        .max_concurrent(2)
                        .writer_threads(3)
                        .chunk_size(ByteSize::from_kb(256))
                        .dram_chunks(16)
                        .build()
                        .expect("valid config"),
                    dev,
                    size,
                )
                .expect("engine");
                gpu.update();
                (engine, gpu)
            },
            |(engine, gpu)| {
                engine.checkpoint(&gpu, 1);
                engine.drain();
            },
        )
    });

    group.bench_function("checkfreq", |b| {
        b.iter_with_setup(
            || {
                let gpu = Gpu::new(
                    GpuConfig::fast_for_tests(),
                    TrainingState::synthetic(size, 1),
                );
                let cap = CheckpointStore::required_capacity(size, 2) + ByteSize::from_kb(4);
                let dev: Arc<dyn PersistentDevice> =
                    Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
                let ckpt = CheckFreqCheckpointer::new(dev, size).expect("checkpointer");
                gpu.update();
                (ckpt, gpu)
            },
            |(ckpt, gpu)| {
                ckpt.checkpoint(&gpu, 1);
                ckpt.drain();
            },
        )
    });

    group.bench_function("gpm", |b| {
        b.iter_with_setup(
            || {
                let gpu = Gpu::new(
                    GpuConfig::fast_for_tests(),
                    TrainingState::synthetic(size, 1),
                );
                let cap = CheckpointStore::required_capacity(size, 2) + ByteSize::from_kb(4);
                let dev: Arc<dyn PersistentDevice> =
                    Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
                let ckpt = GpmCheckpointer::new(dev, size).expect("checkpointer");
                gpu.update();
                (ckpt, gpu)
            },
            |(ckpt, gpu)| ckpt.checkpoint(&gpu, 1),
        )
    });
    group.finish();
}

fn figure_rows(c: &mut Criterion) {
    let rows = fig11::run();
    println!("\n[Figure 11] end-to-end time to persist one checkpoint (modeled, full scale)");
    for r in &rows {
        println!(
            "  {:>5.1} GB {:<16} {:>8.3} s",
            r.size.as_gb(),
            r.strategy,
            r.persist_secs
        );
    }
    c.bench_function("fig11/modeled_16gb_pccheck", |b| {
        b.iter(|| {
            fig11::measure(
                pccheck_sim::StrategyCfg::pccheck(1, 3),
                ByteSize::from_gb(16.2),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = figure_rows, concrete_persist
}
criterion_main!(benches);

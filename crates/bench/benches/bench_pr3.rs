//! Persist-pipeline era benchmark: measured checkpoint persist bandwidth
//! through [`pccheck::PersistPipeline`] over a single SSD vs 2- and 4-way
//! [`StripedDevice`] arrays, emitted as `BENCH_pr3.json` at the repository
//! root.
//!
//! Every member SSD has its own token bucket (the simulated bandwidth
//! model), so a RAID-0 array's aggregate rate is the sum of its members'
//! — provided the writer threads actually spread chunks across members.
//! The pipeline's round-robin chunk scheduling is what's under test: a
//! 2-way stripe must sustain at least 1.8× the single-SSD persist
//! throughput. CI runs this as a smoke test and archives the JSON.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use pccheck::{CheckpointStore, PersistPipeline, PipelineCtx};
use pccheck_device::{DeviceConfig, HostBufferPool, PersistentDevice, SsdDevice, StripedDevice};
use pccheck_gpu::{SnapshotSource, StateDigest};
use pccheck_telemetry::Telemetry;
use pccheck_util::{Bandwidth, ByteSize};

/// Checkpoint payload per pass.
const STATE_BYTES: u64 = 4 * 1024 * 1024;
/// Pipeline chunk = stripe unit, so adjacent chunks land on different
/// members.
const CHUNK_BYTES: u64 = 128 * 1024;
/// Simulated write bandwidth of one member SSD.
const MEMBER_MBPS: f64 = 200.0;
/// Writer threads (enough to keep every member of a 4-way array busy).
const WRITERS: usize = 8;
/// Untimed passes to drain the token buckets' initial burst allowance.
const WARMUP_PASSES: u64 = 2;
/// Timed passes per configuration.
const TIMED_PASSES: u64 = 8;

/// A host-resident payload standing in for GPU weights.
struct HostPayload {
    data: Vec<u8>,
    step: u64,
}

impl SnapshotSource for HostPayload {
    fn size(&self) -> ByteSize {
        ByteSize::from_bytes(self.data.len() as u64)
    }

    fn step_count(&self) -> u64 {
        self.step
    }

    fn digest(&self) -> StateDigest {
        StateDigest::of_payload(&self.data, self.step)
    }

    fn copy_range_to_host(&self, offset: u64, dst: &mut [u8]) {
        let o = offset as usize;
        dst.copy_from_slice(&self.data[o..o + dst.len()]);
    }
}

fn throttled_ssd(capacity: ByteSize) -> Arc<SsdDevice> {
    Arc::new(SsdDevice::new(DeviceConfig {
        capacity,
        write_bandwidth: Bandwidth::from_mb_per_sec(MEMBER_MBPS),
        throttled: true,
    }))
}

struct WaysResult {
    ways: u32,
    mb_per_sec: f64,
    member_bytes: Vec<u64>,
    peak_queue_depth: u64,
}

/// Runs warmup + timed checkpoint passes on `device`, returning the
/// measured persist bandwidth and per-member byte distribution.
fn measure(ways: u32) -> WaysResult {
    let state = ByteSize::from_bytes(STATE_BYTES);
    let member_cap = CheckpointStore::required_capacity(state, 2) + ByteSize::from_kb(4);
    let (device, striped): (Arc<dyn PersistentDevice>, Option<Arc<StripedDevice>>) = if ways == 1 {
        (throttled_ssd(member_cap), None)
    } else {
        let members: Vec<Arc<dyn PersistentDevice>> = (0..ways)
            .map(|_| throttled_ssd(member_cap) as Arc<dyn PersistentDevice>)
            .collect();
        let array = Arc::new(StripedDevice::new(
            members,
            ByteSize::from_bytes(CHUNK_BYTES),
        ));
        (Arc::clone(&array) as Arc<dyn PersistentDevice>, Some(array))
    };

    let store = Arc::new(
        CheckpointStore::format(Arc::clone(&device), state, 2).expect("device fits two slots"),
    );
    let chunks = (STATE_BYTES / CHUNK_BYTES) as usize;
    let pipeline = PersistPipeline::new(Arc::clone(&store))
        .with_writers(WRITERS)
        .with_staging(HostBufferPool::new(
            ByteSize::from_bytes(CHUNK_BYTES),
            chunks,
        ));

    let telemetry = Telemetry::disabled();
    let run_pass = |iteration: u64| {
        let src = HostPayload {
            data: (0..STATE_BYTES)
                .map(|i| (i as u8).wrapping_mul(iteration as u8))
                .collect(),
            step: iteration,
        };
        let span = telemetry.span_requested("bench_pr3", iteration, STATE_BYTES);
        let ctx = PipelineCtx {
            telemetry: &telemetry,
            span,
        };
        let total = src.size();
        let digest = src.digest();
        let lease = pipeline.lease(ctx);
        let persist_start = pipeline
            .copy_staged(ctx, &src, &lease, total)
            .expect("staged copy on healthy device");
        pipeline
            .seal(ctx, &lease, iteration, total, persist_start)
            .expect("seal on healthy device");
        pipeline
            .commit(ctx, lease, iteration, total.as_u64(), digest.0)
            .expect("commit on healthy device");
    };

    for i in 0..WARMUP_PASSES {
        run_pass(i + 1);
    }
    let start = Instant::now();
    for i in 0..TIMED_PASSES {
        run_pass(WARMUP_PASSES + i + 1);
    }
    let elapsed = start.elapsed().as_secs_f64();
    let mb = (TIMED_PASSES * STATE_BYTES) as f64 / (1024.0 * 1024.0);

    let (member_bytes, peak_queue_depth) = match &striped {
        Some(array) => {
            let reports = array.stats_report();
            (
                reports[1..].iter().map(|r| r.bytes_written).collect(),
                reports[0].peak_queue_depth,
            )
        }
        None => {
            let report = &device.stats_report()[0];
            (vec![report.bytes_written], report.peak_queue_depth)
        }
    };
    WaysResult {
        ways,
        mb_per_sec: mb / elapsed,
        member_bytes,
        peak_queue_depth,
    }
}

fn main() {
    println!(
        "[bench_pr3] persist bandwidth vs stripe width ({} MiB/pass, {} timed passes, \
         member rate {} MB/s)",
        STATE_BYTES / (1024 * 1024),
        TIMED_PASSES,
        MEMBER_MBPS
    );

    let results: Vec<WaysResult> = [1u32, 2, 4].iter().map(|&w| measure(w)).collect();
    let single = results[0].mb_per_sec;

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"bench_pr3\",\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"state_bytes\": {STATE_BYTES}, \"chunk_bytes\": {CHUNK_BYTES}, \
         \"member_mb_per_sec\": {MEMBER_MBPS}, \"writers\": {WRITERS}, \
         \"timed_passes\": {TIMED_PASSES}}},"
    );
    json.push_str("  \"striping\": [\n");
    for (i, r) in results.iter().enumerate() {
        let speedup = r.mb_per_sec / single;
        println!(
            "  ways={} persist={:.1} MB/s speedup={:.2}x peak_qd={} member_bytes={:?}",
            r.ways, r.mb_per_sec, speedup, r.peak_queue_depth, r.member_bytes
        );
        let members = r
            .member_bytes
            .iter()
            .map(|b| b.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        let _ = write!(
            json,
            "    {{\"ways\": {}, \"persist_mb_per_sec\": {:.2}, \
             \"speedup_vs_single\": {:.3}, \"peak_queue_depth\": {}, \
             \"member_bytes_written\": [{}]}}",
            r.ways, r.mb_per_sec, speedup, r.peak_queue_depth, members
        );
        json.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");

    let two_way = results[1].mb_per_sec / single;
    let _ = writeln!(
        json,
        "  \"acceptance\": {{\"two_way_speedup\": {:.3}, \"target\": 1.8, \"pass\": {}}}\n}}",
        two_way,
        two_way >= 1.8
    );

    let root = std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| format!("{d}/../.."))
        .unwrap_or_else(|_| ".".into());
    let path = format!("{root}/BENCH_pr3.json");
    std::fs::write(&path, &json).expect("write BENCH_pr3.json");
    println!("[bench_pr3] wrote {path}");

    assert!(
        two_way >= 1.8,
        "2-way stripe persist speedup {two_way:.2}x below the 1.8x floor"
    );
}

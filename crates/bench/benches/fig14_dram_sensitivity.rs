//! Regenerates Figure 14 and benchmarks a pipelined-vs-staged point.
use criterion::{criterion_group, criterion_main, Criterion};
use pccheck_harness::fig14_dram as fig14;

fn bench(c: &mut Criterion) {
    let rows = fig14::run();
    println!("\n[Figure 14] OPT-1.3B throughput at interval 15, DRAM x chunking");
    for r in &rows {
        println!(
            "  dram={}m variant={:<7} tput={:.4}",
            r.dram_factor, r.variant, r.throughput
        );
    }
    c.bench_function("fig14/full_grid", |b| b.iter(fig14::run));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);

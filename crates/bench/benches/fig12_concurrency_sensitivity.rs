//! Regenerates Figure 12 and benchmarks an N=4 simulation point.
use criterion::{criterion_group, criterion_main, Criterion};
use pccheck_gpu::ModelZoo;
use pccheck_harness::fig12_concurrency as fig12;
use pccheck_sim::StrategyCfg;

fn bench(c: &mut Criterion) {
    let rows = fig12::run();
    println!("\n[Figure 12] VGG-16 slowdown, varying concurrent checkpoints N");
    for r in &rows {
        println!(
            "  interval={:<4} N={} slowdown={:.3}",
            r.interval, r.n, r.slowdown
        );
    }
    c.bench_function("fig12/vgg16_n4_interval1", |b| {
        b.iter(|| {
            pccheck_harness::sweep::run_point(&ModelZoo::vgg16(), StrategyCfg::pccheck(4, 3), 1)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);

//! Microbenchmarks of the persistence substrate: nt-store vs clwb PMEM
//! write paths (§3.3) and the commit protocol's fixed costs.
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pccheck::CheckpointStore;
use pccheck_device::{DeviceConfig, PersistentDevice, PmemDevice, PmemWriteMode, SsdDevice};
use pccheck_util::ByteSize;

fn pmem_write_paths(c: &mut Criterion) {
    let size = ByteSize::from_mb_u64(1);
    let payload = vec![0xA5u8; size.as_usize()];
    let mut group = c.benchmark_group("device/pmem_write_1mb");
    group.throughput(Throughput::Bytes(size.as_u64()));
    group.sample_size(20);
    for mode in [PmemWriteMode::NtStore, PmemWriteMode::ClwbWriteBack] {
        let name = format!("{mode:?}");
        group.bench_function(&name, |b| {
            let dev = PmemDevice::new(DeviceConfig::fast_for_tests(ByteSize::from_mb_u64(2)), mode);
            b.iter(|| {
                dev.write_at(0, &payload).expect("write");
                dev.sfence().expect("fence");
            })
        });
    }
    group.finish();
}

fn commit_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("store/commit_protocol");
    group.sample_size(20);
    group.bench_function("begin_write_commit_64b", |b| {
        let cap = CheckpointStore::required_capacity(ByteSize::from_bytes(64), 3);
        let dev: Arc<dyn PersistentDevice> =
            Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        let store = CheckpointStore::format(dev, ByteSize::from_bytes(64), 3).expect("format");
        let mut iter = 0u64;
        b.iter(|| {
            iter += 1;
            let lease = store.begin_checkpoint();
            store.write_payload(&lease, 0, &[1u8; 64]).expect("write");
            store.persist_payload(&lease, 0, 64).expect("persist");
            store.commit(lease, iter, 64, 0).expect("commit")
        })
    });
    group.finish();
}

criterion_group!(benches, pmem_write_paths, commit_protocol);
criterion_main!(benches);

//! Critical-path profiler benchmark: overhead, attribution fidelity, and
//! the regression differ exercised end to end — emitted as
//! `BENCH_pr7.json` at the repository root.
//!
//! Three legs:
//!
//! 1. **Overhead** — the same 4-way-striped checkpointed run timed with
//!    telemetry alone, then with the full profiler pipeline appended
//!    (ledger reconstruction, critical-path extraction, profile build,
//!    archive store). Reps interleave and the median-of-reps summarizes
//!    each arm; differences under the 1% noise floor are noise.
//!    Acceptance: median overhead <= 2%, widened to the measured
//!    inter-rep noise (relative IQR across both arms) when the host
//!    cannot resolve 2% — an oversubscribed single-core runner swings
//!    wall time by tens of percent between identical reps, and a gate
//!    tighter than the measurement's own resolution only flags the
//!    scheduler.
//! 2. **Attribution** — on the striped run, the union of writer persist
//!    legs must cover the parent Persist span within 10% (median persist
//!    coverage >= 0.9), i.e. the ledger accounts for where persist time
//!    actually went.
//! 3. **Differ** — a 4 MB/s-throttled run diffed against the fast run
//!    must flag a `persist` critical-path regression and blame a
//!    writer/stripe lane; the fast run diffed against itself must pass.

use std::fmt::Write as _;
use std::time::Instant;

use pccheck_bench::stats::{bench_json_path, median, rel_iqr, NOISE_FLOOR};
use pccheck_harness::profile_run::{archive, run_profiled, ProfileRunConfig};
use pccheck_telemetry::{build_ledgers, diff_profiles, DiffMode, DiffThresholds, RunProfile};

/// Interleaved repetitions per arm.
const REPS: usize = 5;
/// Acceptance ceiling on the profiler pipeline's overhead.
const OVERHEAD_CEILING: f64 = 0.02;
/// Acceptance floor on median persist coverage (leg-sum within 10% of the
/// parent Persist span).
const COVERAGE_FLOOR: f64 = 0.9;
/// The throttle that must flag against the unthrottled arm. Deep enough
/// (~16 ms persist per commit) that the contrast dwarfs scheduler noise
/// on loaded or single-core hosts.
const THROTTLE_MB_PER_SEC: f64 = 4.0;

fn main() {
    let cfg = ProfileRunConfig::default();
    println!(
        "[bench_pr7] profiler overhead + attribution: {} KiB state, {} iters, \
         {}-way stripe, {} writers, {REPS} interleaved reps",
        cfg.state_bytes / 1024,
        cfg.iterations,
        cfg.stripe_ways,
        cfg.writer_threads
    );

    // Leg 1: overhead. Baseline times the instrumented run alone;
    // the profiled arm times the identical run plus the full profiler
    // pipeline (ledgers -> critical paths -> profile -> archive store).
    let mut baseline: Vec<f64> = Vec::with_capacity(REPS);
    let mut profiled: Vec<f64> = Vec::with_capacity(REPS);
    let mut coverages: Vec<f64> = Vec::with_capacity(REPS);
    for rep in 0..REPS {
        let t0 = Instant::now();
        let run = run_profiled("bench_pr7_base", &cfg).expect("baseline run");
        // Telemetry-only arm: recording was on, the pipeline is not run.
        let _ = &run.telemetry;
        let b = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let run = run_profiled("bench_pr7", &cfg).expect("profiled run");
        let ledgers = build_ledgers(&run.telemetry.events());
        let profile = RunProfile::from_ledgers("bench_pr7", &ledgers);
        archive()
            .and_then(|a| a.store(&profile))
            .expect("archive profile");
        let p = t0.elapsed().as_secs_f64();

        if let Some(c) = profile.persist_coverage_median {
            coverages.push(c);
        }
        println!(
            "  rep {rep}: baseline {:.1} ms, profiled {:.1} ms (coverage {:.3})",
            b * 1e3,
            p * 1e3,
            profile.persist_coverage_median.unwrap_or(f64::NAN)
        );
        baseline.push(b);
        profiled.push(p);
    }
    let base_median = median(&baseline);
    let prof_median = median(&profiled);
    let overhead = prof_median / base_median - 1.0;
    // The host's measurement resolution: if identical reps of one arm
    // already swing more than the ceiling, a difference that size between
    // arms is unattributable — widen the gate to the measured noise.
    let noise = rel_iqr(&baseline).max(rel_iqr(&profiled)).max(NOISE_FLOOR);
    let effective_ceiling = OVERHEAD_CEILING.max(noise);
    let overhead_pass = overhead <= effective_ceiling;
    let verdict = if overhead.abs() < noise {
        " (within noise)"
    } else {
        ""
    };
    println!(
        "  median-of-{REPS}: baseline {:.1} ms, profiled {:.1} ms -> overhead \
         {:+.2}%{verdict} (ceiling {:.0}%, measured noise {:.1}%, effective \
         gate {:.1}%)",
        base_median * 1e3,
        prof_median * 1e3,
        overhead * 100.0,
        OVERHEAD_CEILING * 100.0,
        noise * 100.0,
        effective_ceiling * 100.0
    );

    // Leg 2: attribution fidelity on the striped run.
    let coverage_median = median(&coverages);
    let coverage_pass = coverage_median >= COVERAGE_FLOOR;
    println!(
        "  persist coverage (writer-leg union / Persist span): median {:.3} \
         (floor {COVERAGE_FLOOR})",
        coverage_median
    );

    // Leg 3: the differ must flag the throttled run and pass the fast one.
    let fast = run_profiled("bench_pr7_fast", &cfg).expect("fast run");
    let slow = run_profiled(
        "bench_pr7_throttled",
        &ProfileRunConfig {
            member_mb_per_sec: Some(THROTTLE_MB_PER_SEC),
            ..cfg.clone()
        },
    )
    .expect("throttled run");
    let th = DiffThresholds::default();
    let flagged = diff_profiles(&fast.profile, &slow.profile, DiffMode::Absolute, &th);
    let clean = diff_profiles(&fast.profile, &fast.profile, DiffMode::Absolute, &th);
    let diff_pass =
        flagged.regressed && flagged.blamed_phase.as_deref() == Some("persist") && !clean.regressed;
    println!(
        "  differ: throttled-vs-fast {} (blame {} / {}), fast-vs-self {}",
        if flagged.regressed {
            "REGRESSED"
        } else {
            "missed!"
        },
        flagged.blamed_phase.as_deref().unwrap_or("-"),
        flagged.blamed_actor.as_deref().unwrap_or("-"),
        if clean.regressed {
            "false positive!"
        } else {
            "clean"
        }
    );

    let pass = overhead_pass && coverage_pass && diff_pass;

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"bench_pr7\",\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"state_bytes\": {}, \"iterations\": {}, \"interval\": {}, \
         \"stripe_ways\": {}, \"writer_threads\": {}, \"throttle_mb_per_sec\": \
         {THROTTLE_MB_PER_SEC}, \"reps\": {REPS}}},",
        cfg.state_bytes, cfg.iterations, cfg.interval, cfg.stripe_ways, cfg.writer_threads
    );
    let row = |v: &[f64]| {
        v.iter()
            .map(|s| format!("{s:.4}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let _ = writeln!(json, "  \"baseline_secs\": [{}],", row(&baseline));
    let _ = writeln!(json, "  \"profiled_secs\": [{}],", row(&profiled));
    let _ = writeln!(json, "  \"coverages\": [{}],", row(&coverages));
    let _ = writeln!(
        json,
        "  \"diff\": {{\"throttled_flagged\": {}, \"blamed_phase\": \"{}\", \
         \"blamed_actor\": \"{}\", \"self_clean\": {}}},",
        flagged.regressed,
        flagged.blamed_phase.as_deref().unwrap_or(""),
        flagged.blamed_actor.as_deref().unwrap_or(""),
        !clean.regressed
    );
    let _ = writeln!(
        json,
        "  \"acceptance\": {{\"baseline_median_secs\": {base_median:.4}, \
         \"profiled_median_secs\": {prof_median:.4}, \"overhead\": {overhead:.4}, \
         \"ceiling\": {OVERHEAD_CEILING}, \"measured_noise\": {noise:.4}, \
         \"effective_ceiling\": {effective_ceiling:.4}, \"noise_floor\": {NOISE_FLOOR}, \
         \"coverage_median\": {coverage_median:.4}, \"coverage_floor\": {COVERAGE_FLOOR}, \
         \"pass\": {pass}}}\n}}"
    );

    let path = bench_json_path("BENCH_pr7.json");
    std::fs::write(&path, &json).expect("write BENCH_pr7.json");
    println!("[bench_pr7] wrote {path}");

    assert!(
        overhead_pass,
        "profiler overhead {:.2}% exceeds the {:.1}% gate (ceiling {:.0}%, \
         measured noise {:.1}%)",
        overhead * 100.0,
        effective_ceiling * 100.0,
        OVERHEAD_CEILING * 100.0,
        noise * 100.0
    );
    assert!(
        coverage_pass,
        "persist coverage {coverage_median:.3} under the {COVERAGE_FLOOR} floor"
    );
    assert!(diff_pass, "differ failed to flag the throttled run cleanly");
}

//! Ablation: DRAM chunk size `b` and DDIO, the two data-path knobs §3.3
//! discusses but the paper does not sweep in a figure.
//!
//! * Chunk size trades pipelining granularity against per-chunk overheads:
//!   tiny chunks overlap copy/persist tightly but multiply bookkeeping;
//!   whole-checkpoint chunks degenerate to CheckFreq's copy-then-persist.
//! * DDIO places inbound DMA in the LLC; §3.3 found copy engines + pinned
//!   memory + DDIO fastest. The effective-bandwidth model captures the
//!   ~10% haircut of disabling it.

use criterion::{criterion_group, criterion_main, Criterion};
use pccheck_gpu::{CopyEngineConfig, CopyPath, GpuKind, ModelZoo};
use pccheck_sim::{SimConfig, StrategyCfg};
use pccheck_util::ByteSize;

fn chunk_size_sweep(c: &mut Criterion) {
    let model = ModelZoo::opt_1_3b();
    println!("\n[Ablation] OPT-1.3B @ interval 10: throughput vs chunk count (m/b)");
    for chunks_per_ckpt in [1u64, 4, 20, 100] {
        let mut cfg = SimConfig::ssd_a100(&model, 10, 300);
        cfg.chunk_size =
            ByteSize::from_bytes(cfg.checkpoint_size.as_u64().div_ceil(chunks_per_ckpt));
        cfg.dram_chunks = (2 * chunks_per_ckpt as usize).max(2);
        cfg.strategy = StrategyCfg::pccheck(2, 3);
        let report = cfg.run();
        println!(
            "  m/{chunks_per_ckpt:<4} chunks: {:.4} it/s (Tw {:.2} s)",
            report.throughput,
            report.mean_write_time.as_secs_f64()
        );
    }
    let mut group = c.benchmark_group("ablation/chunk_size");
    group.sample_size(10);
    for chunks_per_ckpt in [4u64, 20] {
        group.bench_function(format!("m_over_{chunks_per_ckpt}"), |b| {
            b.iter(|| {
                let mut cfg = SimConfig::ssd_a100(&ModelZoo::opt_1_3b(), 10, 200);
                cfg.chunk_size =
                    ByteSize::from_bytes(cfg.checkpoint_size.as_u64().div_ceil(chunks_per_ckpt));
                cfg.dram_chunks = (2 * chunks_per_ckpt as usize).max(2);
                cfg.run()
            })
        });
    }
    group.finish();
}

fn ddio_ablation(c: &mut Criterion) {
    println!("\n[Ablation] effective PCIe bandwidth: pinned DMA with/without DDIO, kernel copies");
    let base = CopyEngineConfig::for_gpu(GpuKind::A100);
    let mut no_ddio = base.clone();
    no_ddio.ddio = false;
    let kernel = base.clone().with_path(CopyPath::Kernel);
    for (name, cfg) in [
        ("pinned+ddio", &base),
        ("pinned-no-ddio", &no_ddio),
        ("kernel", &kernel),
    ] {
        println!(
            "  {name:<16} {:.2} GB/s",
            cfg.effective_bandwidth().as_gb_per_sec()
        );
    }
    c.bench_function("ablation/effective_bandwidth_model", |b| {
        b.iter(|| {
            let cfg = CopyEngineConfig::for_gpu(criterion::black_box(GpuKind::A100));
            cfg.effective_bandwidth()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = chunk_size_sweep, ddio_ablation
}
criterion_main!(benches);

//! Regenerates Table 3 and benchmarks model-zoo lookups.
use criterion::{criterion_group, criterion_main, Criterion};
use pccheck_gpu::ModelZoo;
use pccheck_harness::tables;

fn bench(c: &mut Criterion) {
    println!("\n[Table 3] evaluated models");
    for m in tables::table3() {
        println!(
            "  {:<14} {:<9} batch_a100={:<3} ckpt={:>6.1} GB nodes={}",
            m.name,
            m.dataset,
            m.batch_a100,
            m.checkpoint_size.as_gb(),
            m.nodes
        );
    }
    c.bench_function("table3/zoo_lookup", |b| {
        b.iter(|| ModelZoo::by_name(criterion::black_box("bloom-7b")))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);

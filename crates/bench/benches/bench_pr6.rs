//! Live-introspection overhead benchmark: the same throttled checkpointed
//! training run measured with telemetry only, then again with the full
//! exposition stack live — a [`MetricsRegistry`] behind a bound
//! [`MetricsServer`] being scraped continuously from another thread —
//! emitted as `BENCH_pr6.json` at the repository root.
//!
//! The scraper polls `GET /metrics` every 10 ms (far harder than any real
//! Prometheus interval) and `GET /metrics.json` on alternate polls, so
//! the measurement covers registry snapshotting, both encoders, and the
//! socket round-trip. Acceptance: the live configuration's median-of-reps
//! wall time is within 2% of the telemetry-only baseline, widened to the
//! measured inter-rep noise (relative IQR across both arms) when the host
//! is too noisy to resolve 2%; on a single-core host the number is
//! reported but not gated (the exposition thread time-shares the only
//! core with the trainer). Reps are interleaved (baseline, live,
//! baseline, ...) so machine drift hits both arms equally; the median
//! (not the min) summarizes each arm, and measured differences under the
//! noise estimate are reported as noise rather than as a real speedup or
//! slowdown — best-of-reps previously produced a nonsensical -0.8%
//! "overhead" here.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pccheck::{CheckpointStore, PcCheckConfig, PcCheckEngine};
use pccheck_bench::stats::{bench_json_path, host_cores, median, rel_iqr, NOISE_FLOOR};
use pccheck_device::{DeviceConfig, SsdDevice};
use pccheck_gpu::{Checkpointer, Gpu, GpuConfig, TrainingState};
use pccheck_telemetry::{
    http_get, validate_prometheus_text, MetricsRegistry, MetricsServer, Telemetry,
};
use pccheck_util::{Bandwidth, ByteSize};

/// Training state size.
const STATE_KB: u64 = 1024;
/// Training iterations per rep.
const ITERATIONS: u64 = 120;
/// Checkpoint interval (iterations).
const INTERVAL: u64 = 3;
/// Per-iteration compute time.
const ITER_COMPUTE_MS: u64 = 1;
/// Simulated device bandwidth.
const DEVICE_MB_PER_SEC: f64 = 256.0;
/// Interleaved repetitions per arm.
const REPS: usize = 5;
/// Scrape period while the live arm trains.
const SCRAPE_PERIOD_MS: u64 = 10;
/// Acceptance ceiling: live exposition may cost at most this fraction.
const OVERHEAD_CEILING: f64 = 0.02;

/// One full training run; returns (wall seconds, scrapes served).
fn run_once(live: bool) -> (f64, u64) {
    let telemetry = Telemetry::enabled();
    let state = ByteSize::from_kb(STATE_KB);
    let cap = CheckpointStore::required_capacity(state, 3) + ByteSize::from_kb(4);
    let gpu = Gpu::new(
        GpuConfig::fast_for_tests(),
        TrainingState::synthetic(state, 7),
    );
    let engine = PcCheckEngine::new(
        PcCheckConfig::builder()
            .max_concurrent(2)
            .writer_threads(2)
            .chunk_size(ByteSize::from_kb(64))
            .dram_chunks(8)
            .build()
            .expect("valid config"),
        Arc::new(SsdDevice::new(DeviceConfig {
            capacity: cap,
            write_bandwidth: Bandwidth::from_mb_per_sec(DEVICE_MB_PER_SEC),
            throttled: true,
        })),
        gpu.state_size(),
    )
    .expect("engine constructs")
    .with_telemetry(telemetry.clone());

    // The live arm binds the real server and scrapes it from another
    // thread for the whole run; the baseline arm skips all of it.
    let stop = Arc::new(AtomicBool::new(false));
    let (server, scraper) = if live {
        let server = MetricsServer::bind("127.0.0.1:0", MetricsRegistry::new(telemetry.clone()))
            .expect("bind metrics server");
        let addr = server.addr();
        let stop = Arc::clone(&stop);
        let scraper = std::thread::spawn(move || {
            let mut scrapes = 0u64;
            while !stop.load(Ordering::Acquire) {
                let path = if scrapes % 2 == 0 {
                    "/metrics"
                } else {
                    "/metrics.json"
                };
                let body = http_get(addr, path).expect("scrape succeeds");
                assert!(!body.is_empty());
                if path == "/metrics" {
                    validate_prometheus_text(&body).expect("exposition parses");
                }
                scrapes += 1;
                std::thread::sleep(Duration::from_millis(SCRAPE_PERIOD_MS));
            }
            scrapes
        });
        (Some(server), Some(scraper))
    } else {
        (None, None)
    };

    let t0 = Instant::now();
    for iter in 1..=ITERATIONS {
        gpu.update();
        std::thread::sleep(Duration::from_millis(ITER_COMPUTE_MS));
        if iter % INTERVAL == 0 {
            engine.checkpoint(&gpu, iter);
        }
    }
    engine.drain();
    let secs = t0.elapsed().as_secs_f64();

    stop.store(true, Ordering::Release);
    let scrapes = scraper
        .map(|s| s.join().expect("scraper thread"))
        .unwrap_or(0);
    if let Some(server) = server {
        server.shutdown();
    }
    if live {
        assert!(scrapes > 0, "scraper must have observed the run");
    }
    (secs, scrapes)
}

fn main() {
    println!(
        "[bench_pr6] live exposition overhead: {STATE_KB} KiB state, {ITERATIONS} iters, \
         checkpoint every {INTERVAL}, {DEVICE_MB_PER_SEC} MB/s device, \
         scrape every {SCRAPE_PERIOD_MS} ms, {REPS} interleaved reps"
    );

    let mut baseline: Vec<f64> = Vec::with_capacity(REPS);
    let mut live: Vec<f64> = Vec::with_capacity(REPS);
    let mut scrapes_total = 0u64;
    for rep in 0..REPS {
        let (b, _) = run_once(false);
        let (l, s) = run_once(true);
        scrapes_total += s;
        println!(
            "  rep {rep}: baseline {:.1} ms, live {:.1} ms ({s} scrapes)",
            b * 1e3,
            l * 1e3
        );
        baseline.push(b);
        live.push(l);
    }
    let base_median = median(&baseline);
    let live_median = median(&live);
    let overhead = live_median / base_median - 1.0;
    // Gate against the host's own resolution: when identical reps of one
    // arm swing more than the ceiling (loaded or single-core runners), a
    // between-arm difference that size is unattributable — widen the gate
    // to the measured inter-rep noise.
    let noise = rel_iqr(&baseline).max(rel_iqr(&live)).max(NOISE_FLOOR);
    let effective_ceiling = OVERHEAD_CEILING.max(noise);
    // The ceiling models the deployment reality that the scrape/serve
    // path runs beside training on a spare core. On a single-core host
    // the exposition thread time-shares the only core with the trainer,
    // so its cost is governed by the scheduler, not by this code path —
    // report the number but don't gate on it.
    let cores = host_cores();
    let gate_enforced = cores >= 2;
    let pass = !gate_enforced || overhead <= effective_ceiling;
    let verdict = if overhead.abs() < noise {
        " (within noise)"
    } else {
        ""
    };
    println!(
        "  median-of-{REPS}: baseline {:.1} ms, live {:.1} ms -> overhead {:+.2}%{verdict} \
         (ceiling {:.0}%, measured noise {:.1}%, effective gate {:.1}%{})",
        base_median * 1e3,
        live_median * 1e3,
        overhead * 100.0,
        OVERHEAD_CEILING * 100.0,
        noise * 100.0,
        effective_ceiling * 100.0,
        if gate_enforced {
            ""
        } else {
            ", informational: single-core host"
        }
    );

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"bench_pr6\",\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"state_bytes\": {}, \"iterations\": {ITERATIONS}, \
         \"interval\": {INTERVAL}, \"device_mb_per_sec\": {DEVICE_MB_PER_SEC}, \
         \"scrape_period_ms\": {SCRAPE_PERIOD_MS}, \"reps\": {REPS}}},",
        STATE_KB * 1024
    );
    let row = |v: &[f64]| {
        v.iter()
            .map(|s| format!("{s:.4}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let _ = writeln!(json, "  \"baseline_secs\": [{}],", row(&baseline));
    let _ = writeln!(json, "  \"live_secs\": [{}],", row(&live));
    let _ = writeln!(json, "  \"scrapes_total\": {scrapes_total},");
    let _ = writeln!(
        json,
        "  \"acceptance\": {{\"baseline_median_secs\": {base_median:.4}, \
         \"live_median_secs\": {live_median:.4}, \"overhead\": {overhead:.4}, \
         \"ceiling\": {OVERHEAD_CEILING}, \"measured_noise\": {noise:.4}, \
         \"effective_ceiling\": {effective_ceiling:.4}, \"noise_floor\": {NOISE_FLOOR}, \
         \"cores\": {cores}, \"gate_enforced\": {gate_enforced}, \
         \"pass\": {pass}}}\n}}"
    );

    let path = bench_json_path("BENCH_pr6.json");
    std::fs::write(&path, &json).expect("write BENCH_pr6.json");
    println!("[bench_pr6] wrote {path}");

    assert!(
        pass,
        "live exposition overhead {:.2}% exceeds the {:.1}% gate (ceiling \
         {:.0}%, measured noise {:.1}%, {cores} cores)",
        overhead * 100.0,
        effective_ceiling * 100.0,
        OVERHEAD_CEILING * 100.0,
        noise * 100.0
    );
}

//! Regenerates Figure 8 (a-f) and benchmarks one simulation point.
use criterion::{criterion_group, criterion_main, Criterion};
use pccheck_gpu::ModelZoo;
use pccheck_harness::fig8_throughput as fig8;
use pccheck_sim::StrategyCfg;

fn bench(c: &mut Criterion) {
    let rows = fig8::run();
    println!("\n[Figure 8] throughput (iters/s) with checkpointing, SSD/A100");
    let mut current = String::new();
    for r in &rows {
        if r.model != current {
            current = r.model.clone();
            println!("  -- {} --", current);
        }
        println!(
            "  {:<16} interval={:<4} tput={:.4} slowdown={:.3}",
            r.strategy, r.interval, r.throughput, r.slowdown
        );
    }
    c.bench_function("fig8/bert_pccheck_interval10", |b| {
        b.iter(|| {
            pccheck_harness::sweep::run_point(&ModelZoo::bert(), StrategyCfg::pccheck(2, 3), 10)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);

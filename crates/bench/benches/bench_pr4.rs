//! Delta-checkpointing era benchmark: persisted bytes and per-checkpoint
//! latency through [`pccheck::PersistPipeline::checkpoint_delta`] at 10%
//! update sparsity vs the full streamed path, emitted as `BENCH_pr4.json`
//! at the repository root.
//!
//! Both paths drive the same sparse training workload on a
//! bandwidth-throttled SSD; only the persist path differs. A 13-pass cycle
//! (one full root + 12 chained deltas) must cut persisted payload bytes by
//! at least 5× and mean checkpoint latency by at least 2×, while dense
//! (100%) updates — which always fall back to the full copy — must stay
//! within 5% of the plain streamed path. CI runs this as a smoke test and
//! archives the JSON.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use pccheck::{CheckpointStore, DeltaOutcome, DeltaPolicy, PersistPipeline, PipelineCtx};
use pccheck_device::{DeviceConfig, HostBufferPool, PersistentDevice, SsdDevice};
use pccheck_gpu::{Gpu, GpuConfig, TrainingState};
use pccheck_telemetry::Telemetry;
use pccheck_util::{Bandwidth, ByteSize};

/// Training-state size per checkpoint.
const STATE_BYTES: u64 = 4 * 1024 * 1024;
/// Staging chunk size.
const CHUNK_BYTES: u64 = 128 * 1024;
/// Simulated SSD write bandwidth.
const MEMBER_MBPS: f64 = 200.0;
/// Writer threads.
const WRITERS: usize = 8;
/// Delta chain cap: each cycle is one full root + `MAX_CHAIN` deltas.
const MAX_CHAIN: u32 = 12;
/// Checkpoints per cycle.
const CYCLE: u64 = MAX_CHAIN as u64 + 1;
/// The sparsity the acceptance targets are asserted at.
const SPARSITY: f64 = 0.10;

struct PathResult {
    mean_pass_secs: f64,
    payload_bytes: u64,
}

fn throttled_ssd(capacity: ByteSize) -> Arc<dyn PersistentDevice> {
    Arc::new(SsdDevice::new(DeviceConfig {
        capacity,
        write_bandwidth: Bandwidth::from_mb_per_sec(MEMBER_MBPS),
        throttled: true,
    }))
}

fn workload_gpu() -> Gpu {
    let gpu = Gpu::new(
        GpuConfig::fast_for_tests(),
        TrainingState::synthetic(ByteSize::from_bytes(STATE_BYTES), 7),
    );
    gpu.update();
    gpu
}

fn pipeline_on(slots: u32) -> (PersistPipeline, Arc<CheckpointStore>) {
    let state = ByteSize::from_bytes(STATE_BYTES);
    let cap = CheckpointStore::required_capacity(state, slots) + ByteSize::from_kb(4);
    let store = Arc::new(
        CheckpointStore::format(throttled_ssd(cap), state, slots).expect("device fits the slots"),
    );
    let chunks = (STATE_BYTES / CHUNK_BYTES) as usize;
    let pipeline = PersistPipeline::new(Arc::clone(&store))
        .with_writers(WRITERS)
        .with_staging(HostBufferPool::new(
            ByteSize::from_bytes(CHUNK_BYTES),
            chunks,
        ));
    (pipeline, store)
}

fn mutate(gpu: &Gpu, sparsity: f64) {
    if sparsity >= 1.0 {
        gpu.update();
    } else {
        gpu.update_sparse(sparsity);
    }
}

/// One warmup + one timed cycle through the full streamed path.
fn run_full(sparsity: f64) -> PathResult {
    let gpu = workload_gpu();
    let (pipeline, _store) = pipeline_on(2);
    let telemetry = Telemetry::disabled();
    let pass = |iteration: u64| {
        let span = telemetry.span_requested("bench_pr4", iteration, STATE_BYTES);
        let ctx = PipelineCtx {
            telemetry: &telemetry,
            span,
        };
        let guard = gpu.lock_weights_shared_owned();
        let digest = guard.digest();
        let total = guard.size();
        let lease = pipeline.lease(ctx);
        let persist_start = pipeline
            .copy_streamed(ctx, &guard, &lease, total)
            .expect("streamed copy on healthy device");
        drop(guard);
        pipeline
            .seal(ctx, &lease, iteration, total, persist_start)
            .expect("seal on healthy device");
        pipeline
            .commit(ctx, lease, iteration, total.as_u64(), digest.0)
            .expect("commit on healthy device");
    };
    for i in 1..=CYCLE {
        if i > 1 {
            mutate(&gpu, sparsity);
        }
        pass(i);
    }
    let start = Instant::now();
    for i in CYCLE + 1..=2 * CYCLE {
        mutate(&gpu, sparsity);
        pass(i);
    }
    PathResult {
        mean_pass_secs: start.elapsed().as_secs_f64() / CYCLE as f64,
        payload_bytes: CYCLE * STATE_BYTES,
    }
}

/// One warmup + one timed cycle through the delta path.
fn run_delta(sparsity: f64) -> PathResult {
    let gpu = workload_gpu();
    let (pipeline, _store) = pipeline_on(MAX_CHAIN + 2);
    let telemetry = Telemetry::disabled();
    let policy = DeltaPolicy {
        max_dirty_ratio: 0.5,
        max_chain: MAX_CHAIN,
    };
    let mut payload_bytes = 0u64;
    let pass = |iteration: u64, bytes: &mut u64| {
        let span = telemetry.span_requested("bench_pr4", iteration, STATE_BYTES);
        let ctx = PipelineCtx {
            telemetry: &telemetry,
            span,
        };
        let guard = gpu.lock_weights_shared_owned();
        let digest = guard.digest();
        let (_, kind) = pipeline
            .checkpoint_delta(ctx, &guard, iteration, digest.0, policy)
            .expect("delta checkpoint on healthy device");
        drop(guard);
        *bytes += match kind {
            DeltaOutcome::Delta { payload_len, .. } => payload_len,
            DeltaOutcome::Full => STATE_BYTES,
        };
    };
    let mut sink = 0u64;
    for i in 1..=CYCLE {
        if i > 1 {
            mutate(&gpu, sparsity);
        }
        pass(i, &mut sink);
    }
    let start = Instant::now();
    for i in CYCLE + 1..=2 * CYCLE {
        mutate(&gpu, sparsity);
        pass(i, &mut payload_bytes);
    }
    PathResult {
        mean_pass_secs: start.elapsed().as_secs_f64() / CYCLE as f64,
        payload_bytes,
    }
}

fn main() {
    println!(
        "[bench_pr4] delta checkpointing at {:.0}% sparsity ({} MiB state, chain cap {}, \
         {} MB/s SSD)",
        SPARSITY * 100.0,
        STATE_BYTES / (1024 * 1024),
        MAX_CHAIN,
        MEMBER_MBPS
    );

    let full = run_full(SPARSITY);
    let delta = run_delta(SPARSITY);
    let bytes_reduction = full.payload_bytes as f64 / delta.payload_bytes as f64;
    let latency_reduction = full.mean_pass_secs / delta.mean_pass_secs;
    println!(
        "  sparse {:.0}%: full {} B @ {:.1} ms/pass, delta {} B @ {:.1} ms/pass \
         -> bytes {:.2}x, latency {:.2}x",
        SPARSITY * 100.0,
        full.payload_bytes,
        full.mean_pass_secs * 1e3,
        delta.payload_bytes,
        delta.mean_pass_secs * 1e3,
        bytes_reduction,
        latency_reduction
    );

    let dense_full = run_full(1.0);
    let dense_delta = run_delta(1.0);
    let dense_overhead = dense_delta.mean_pass_secs / dense_full.mean_pass_secs - 1.0;
    println!(
        "  dense: full {:.1} ms/pass, delta-path fallback {:.1} ms/pass -> overhead {:+.1}%",
        dense_full.mean_pass_secs * 1e3,
        dense_delta.mean_pass_secs * 1e3,
        dense_overhead * 100.0
    );

    let pass = bytes_reduction >= 5.0 && latency_reduction >= 2.0 && dense_overhead.abs() <= 0.05;
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"bench_pr4\",\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"state_bytes\": {STATE_BYTES}, \"chunk_bytes\": {CHUNK_BYTES}, \
         \"member_mb_per_sec\": {MEMBER_MBPS}, \"writers\": {WRITERS}, \
         \"max_chain\": {MAX_CHAIN}, \"sparsity\": {SPARSITY}, \"cycle_passes\": {CYCLE}}},"
    );
    let _ = writeln!(
        json,
        "  \"sparse\": {{\"full_payload_bytes\": {}, \"delta_payload_bytes\": {}, \
         \"bytes_reduction\": {:.3}, \"full_mean_pass_ms\": {:.3}, \
         \"delta_mean_pass_ms\": {:.3}, \"latency_reduction\": {:.3}}},",
        full.payload_bytes,
        delta.payload_bytes,
        bytes_reduction,
        full.mean_pass_secs * 1e3,
        delta.mean_pass_secs * 1e3,
        latency_reduction
    );
    let _ = writeln!(
        json,
        "  \"dense\": {{\"full_mean_pass_ms\": {:.3}, \"delta_mean_pass_ms\": {:.3}, \
         \"overhead_frac\": {:.4}}},",
        dense_full.mean_pass_secs * 1e3,
        dense_delta.mean_pass_secs * 1e3,
        dense_overhead
    );
    let _ = writeln!(
        json,
        "  \"acceptance\": {{\"bytes_reduction\": {:.3}, \"bytes_target\": 5.0, \
         \"latency_reduction\": {:.3}, \"latency_target\": 2.0, \
         \"dense_overhead_frac\": {:.4}, \"dense_target\": 0.05, \"pass\": {}}}\n}}",
        bytes_reduction, latency_reduction, dense_overhead, pass
    );

    let root = std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| format!("{d}/../.."))
        .unwrap_or_else(|_| ".".into());
    let path = format!("{root}/BENCH_pr4.json");
    std::fs::write(&path, &json).expect("write BENCH_pr4.json");
    println!("[bench_pr4] wrote {path}");

    assert!(
        bytes_reduction >= 5.0,
        "persist-bytes reduction {bytes_reduction:.2}x below the 5x floor at 10% sparsity"
    );
    assert!(
        latency_reduction >= 2.0,
        "checkpoint-latency reduction {latency_reduction:.2}x below the 2x floor at 10% sparsity"
    );
    assert!(
        dense_overhead.abs() <= 0.05,
        "dense fallback {:.1}% off the full streamed path (5% budget)",
        dense_overhead * 100.0
    );
}

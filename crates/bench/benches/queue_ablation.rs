//! Ablation: the lock-free slot queue of Listing 1 vs a mutex-guarded
//! VecDeque, under the engine's recycle pattern.
use std::collections::VecDeque;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use parking_lot::Mutex;
use pccheck::queue::SlotQueue;

const OPS: usize = 10_000;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_ablation/recycle_10k");
    group.sample_size(20);

    group.bench_function("lockfree_slotqueue", |b| {
        b.iter(|| {
            let q: SlotQueue = (0..4u32).collect();
            let mut committed = None;
            for _ in 0..OPS {
                let fresh = q.dequeue_blocking();
                if let Some(old) = committed.replace(fresh) {
                    q.enqueue(old).expect("bounded population");
                }
            }
            committed
        })
    });

    group.bench_function("mutex_vecdeque", |b| {
        b.iter(|| {
            let q = Arc::new(Mutex::new((0..4u32).collect::<VecDeque<_>>()));
            let mut committed = None;
            for _ in 0..OPS {
                let fresh = loop {
                    if let Some(v) = q.lock().pop_front() {
                        break v;
                    }
                };
                if let Some(old) = committed.replace(fresh) {
                    q.lock().push_back(old);
                }
            }
            committed
        })
    });
    group.finish();

    // Contended: 2 threads hammering the same queue.
    let mut group = c.benchmark_group("queue_ablation/contended_2threads");
    group.sample_size(10);
    group.bench_function("lockfree_slotqueue", |b| {
        b.iter(|| {
            let q: Arc<SlotQueue> = Arc::new((0..8u32).collect());
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let q = Arc::clone(&q);
                    std::thread::spawn(move || {
                        for _ in 0..OPS / 2 {
                            let v = q.dequeue_blocking();
                            q.enqueue_blocking(v);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("worker");
            }
        })
    });
    group.bench_function("mutex_vecdeque", |b| {
        b.iter(|| {
            let q = Arc::new(Mutex::new((0..8u32).collect::<VecDeque<_>>()));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let q = Arc::clone(&q);
                    std::thread::spawn(move || {
                        for _ in 0..OPS / 2 {
                            let v = loop {
                                if let Some(v) = q.lock().pop_front() {
                                    break v;
                                }
                            };
                            q.lock().push_back(v);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("worker");
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

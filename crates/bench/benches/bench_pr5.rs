//! Parallel-restore era benchmark: verified-fetch latency through
//! [`pccheck::RestorePipeline`] at 1/2/4 readers on a 4-way striped
//! store, plus end-to-end `recover_instrumented_with` restart latency,
//! emitted as `BENCH_pr5.json` at the repository root.
//!
//! The geometry mirrors the `ext_restore` harness sweep: 32 MiB payload
//! on four 200 MB/s members with 8 MiB stripe units, so each of four
//! readers drains one member's token bucket. Acceptance: 4 readers must
//! fetch at least 2× faster than one reader on the same store. CI runs
//! this as a smoke test and archives the JSON.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use pccheck::{recover_instrumented_with, RestoreOptions};
use pccheck_harness::ext_restore::{
    committed_store, measure_store, MEMBER_MB_PER_SEC, STRIPE_UNIT,
};
use pccheck_telemetry::Telemetry;
use pccheck_util::ByteSize;

/// Checkpoint payload size.
const STATE_MB: u64 = 32;
/// Stripe members.
const WAYS: u32 = 4;
/// Reader counts measured.
const READERS: [usize; 3] = [1, 2, 4];
/// Acceptance floor: 4 readers vs 1 on the 4-way stripe.
const SPEEDUP_FLOOR: f64 = 2.0;

/// Times one full `recover_instrumented_with` (open, probe, fetch,
/// verify) on the store's device, after an untimed warmup recovery that
/// drains the members' burst credit.
fn recover_secs(store: &Arc<pccheck::CheckpointStore>, readers: usize) -> f64 {
    let options = RestoreOptions {
        readers,
        ..RestoreOptions::default()
    };
    let device = Arc::clone(store.device());
    let telemetry = Telemetry::disabled();
    recover_instrumented_with(Arc::clone(&device), &telemetry, options).expect("warmup recovery");
    let t0 = Instant::now();
    let (recovered, _trace) =
        recover_instrumented_with(device, &telemetry, options).expect("recovery succeeds");
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(recovered.payload.len() as u64, STATE_MB * 1024 * 1024);
    secs
}

fn main() {
    println!(
        "[bench_pr5] parallel restore: {STATE_MB} MiB payload, {WAYS}-way stripe, \
         {} MiB units, {MEMBER_MB_PER_SEC} MB/s members",
        STRIPE_UNIT / (1024 * 1024)
    );

    let store = committed_store(ByteSize::from_mb_u64(STATE_MB), WAYS);
    let fetch: Vec<(usize, f64)> = READERS
        .iter()
        .map(|&r| (r, measure_store(&store, r)))
        .collect();
    let baseline = fetch[0].1;
    for &(r, secs) in &fetch {
        println!(
            "  fetch: {r} readers -> {:.1} ms ({:.2}x)",
            secs * 1e3,
            baseline / secs
        );
    }
    let four = fetch
        .iter()
        .find(|(r, _)| *r == 4)
        .map(|&(_, s)| s)
        .expect("4-reader row");
    let speedup = baseline / four;

    let restart_1 = recover_secs(&store, 1);
    let restart_4 = recover_secs(&store, 4);
    println!(
        "  restart: 1 reader {:.1} ms, 4 readers {:.1} ms ({:.2}x)",
        restart_1 * 1e3,
        restart_4 * 1e3,
        restart_1 / restart_4
    );

    let pass = speedup >= SPEEDUP_FLOOR;
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"bench_pr5\",\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"state_bytes\": {}, \"ways\": {WAYS}, \"stripe_unit\": {STRIPE_UNIT}, \
         \"member_mb_per_sec\": {MEMBER_MB_PER_SEC}}},",
        STATE_MB * 1024 * 1024
    );
    json.push_str("  \"fetch\": [\n");
    for (i, &(r, secs)) in fetch.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"readers\": {r}, \"secs\": {:.4}, \"speedup\": {:.3}}}{}",
            secs,
            baseline / secs,
            if i + 1 < fetch.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"restart\": {{\"one_reader_secs\": {restart_1:.4}, \
         \"four_reader_secs\": {restart_4:.4}}},"
    );
    let _ = writeln!(
        json,
        "  \"acceptance\": {{\"four_reader_speedup\": {speedup:.3}, \
         \"target\": {SPEEDUP_FLOOR}, \"pass\": {pass}}}\n}}"
    );

    let root = std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| format!("{d}/../.."))
        .unwrap_or_else(|_| ".".into());
    let path = format!("{root}/BENCH_pr5.json");
    std::fs::write(&path, &json).expect("write BENCH_pr5.json");
    println!("[bench_pr5] wrote {path}");

    assert!(
        speedup >= SPEEDUP_FLOOR,
        "4-reader restore speedup {speedup:.2}x below the {SPEEDUP_FLOOR}x floor on a \
         {WAYS}-way stripe"
    );
}

//! Regenerates Figure 2 and benchmarks one goodput replay.
use criterion::{criterion_group, criterion_main, Criterion};
use pccheck_harness::fig2_goodput_motivation as fig2;
use pccheck_trace::{GoodputReplay, PreemptionTrace};
use pccheck_util::SimDuration;

fn bench(c: &mut Criterion) {
    let rows = fig2::run(42);
    println!("\n[Figure 2] BLOOM-7B goodput vs interval on the spot trace");
    for r in &rows {
        println!(
            "  {:<12} interval={:<4} goodput={:.5}",
            r.strategy, r.interval, r.goodput
        );
    }
    println!(
        "  peak/ideal: checkfreq={:.2} gemini={:.2} pccheck={:.2}",
        fig2::peak_fraction_of_ideal(&rows, "checkfreq"),
        fig2::peak_fraction_of_ideal(&rows, "gemini"),
        fig2::peak_fraction_of_ideal(&rows, "pccheck")
    );
    let report = pccheck_harness::sweep::run_point(
        &pccheck_gpu::ModelZoo::bloom_7b(),
        pccheck_sim::StrategyCfg::pccheck(2, 3),
        10,
    );
    let trace = PreemptionTrace::synthetic_gcp_a100(1);
    c.bench_function("fig2/goodput_replay", |b| {
        b.iter(|| GoodputReplay::new(SimDuration::from_secs(40)).replay(&report, &trace))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);

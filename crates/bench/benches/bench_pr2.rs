//! Flight-recorder era benchmark: one instrumented concrete run per
//! strategy plus measured crash→audit→recovery scenarios, emitted as
//! `BENCH_pr2.json` at the repository root.
//!
//! Unlike the figure benches (which regenerate the paper's plots through
//! the DES), this target reports *measured* numbers from the wall-clock
//! substrate: throughput/goodput, training-thread stall percentiles,
//! commit-phase latency percentiles, and the recovery-protocol phase
//! breakdown captured by [`pccheck::RecoveryTrace`] at every injected
//! crash point. CI runs it as a smoke test and archives the JSON.

use std::fmt::Write as _;

use pccheck_harness::forensics_run::{run_crash_scenario, CrashPoint, ForensicsRunConfig};
use pccheck_harness::telemetry_run::{run_instrumented, InstrumentedRunConfig, STRATEGIES};
use pccheck_telemetry::{EventKind, Phase};

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let cfg = InstrumentedRunConfig {
        state_bytes: 256 * 1024,
        iterations: 40,
        interval: 5,
        ..InstrumentedRunConfig::default()
    };

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"bench_pr2\",\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"state_bytes\": {}, \"iterations\": {}, \"interval\": {}}},",
        cfg.state_bytes, cfg.iterations, cfg.interval
    );

    println!(
        "[bench_pr2] instrumented runs ({} iterations)",
        cfg.iterations
    );
    json.push_str("  \"strategies\": [\n");
    for (i, strategy) in STRATEGIES.iter().enumerate() {
        let run = run_instrumented(strategy, &cfg).expect("strategy runs");
        let mut stalls: Vec<u64> = run
            .telemetry
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Stall { nanos } => Some(nanos),
                _ => None,
            })
            .collect();
        stalls.sort_unstable();
        let commit = run.snapshot.phase(Phase::Commit);
        // One failure, load time excluded: the runs last milliseconds, so
        // a fixed load constant would swamp the window — the rollback
        // recompute term is the comparable cross-strategy signal.
        let goodput = run
            .accounting
            .goodput(1, 0.0)
            .map(|g| g.goodput)
            .unwrap_or(0.0);
        println!(
            "  {:<12} throughput={:.1}/s goodput={:.1}/s stall={:.2}% commit_p99={}ns",
            strategy,
            run.accounting.throughput(),
            goodput,
            run.accounting.stall_fraction() * 100.0,
            commit.p99_nanos,
        );
        let _ = write!(
            json,
            "    {{\"strategy\": \"{}\", \"throughput_iters_per_sec\": {:.3}, \
             \"goodput_iters_per_sec\": {:.3}, \"stall_fraction\": {:.6}, \
             \"slowdown\": {:.4}, \"stall_p50_nanos\": {}, \"stall_p95_nanos\": {}, \
             \"stall_p99_nanos\": {}, \"commit_count\": {}, \"commit_p50_nanos\": {}, \
             \"commit_p95_nanos\": {}, \"commit_p99_nanos\": {}, \"committed\": {}, \
             \"failed\": {}}}",
            strategy,
            run.accounting.throughput(),
            goodput,
            run.accounting.stall_fraction(),
            run.accounting.slowdown(),
            percentile(&stalls, 0.50),
            percentile(&stalls, 0.95),
            percentile(&stalls, 0.99),
            commit.count,
            commit.p50_nanos,
            commit.p95_nanos,
            commit.p99_nanos,
            run.snapshot.counters.committed,
            run.snapshot.counters.failed,
        );
        json.push_str(if i + 1 < STRATEGIES.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n");

    println!("[bench_pr2] crash → audit → recovery scenarios");
    json.push_str("  \"recovery\": [\n");
    let fcfg = ForensicsRunConfig::default();
    for (i, point) in CrashPoint::ALL.iter().enumerate() {
        let run = run_crash_scenario(*point, &fcfg).expect("scenario runs");
        println!(
            "  {:<28} recovered=#{} (iter {}) total={}ns audit_clean={}",
            run.crash_point.name(),
            run.recovered.counter,
            run.recovered.iteration,
            run.trace.total_nanos,
            run.report.is_clean(),
        );
        let _ = write!(
            json,
            "    {{\"crash_point\": \"{}\", \"recovered_counter\": {}, \
             \"recovered_iteration\": {}, \"scan_nanos\": {}, \"load_nanos\": {}, \
             \"verify_nanos\": {}, \"total_nanos\": {}, \"fallbacks\": {}, \
             \"audit_clean\": {}}}",
            run.crash_point.name(),
            run.recovered.counter,
            run.recovered.iteration,
            run.trace.scan_nanos,
            run.trace.load_nanos,
            run.trace.verify_nanos,
            run.trace.total_nanos,
            run.trace.fallbacks,
            run.report.is_clean(),
        );
        json.push_str(if i + 1 < CrashPoint::ALL.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ]\n}\n");

    let root = std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| format!("{d}/../.."))
        .unwrap_or_else(|_| ".".into());
    let path = format!("{root}/BENCH_pr2.json");
    std::fs::write(&path, &json).expect("write BENCH_pr2.json");
    println!("[bench_pr2] wrote {path}");
}

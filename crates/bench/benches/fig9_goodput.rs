//! Regenerates Figure 9 (a-f) and benchmarks a trace generation + replay.
use criterion::{criterion_group, criterion_main, Criterion};
use pccheck_harness::fig9_goodput as fig9;
use pccheck_trace::PreemptionTrace;

fn bench(c: &mut Criterion) {
    let rows = fig9::run(42);
    println!("\n[Figure 9] goodput (iters/s) on the GCP A100 spot trace");
    let mut current = String::new();
    for r in &rows {
        if r.model != current {
            current = r.model.clone();
            println!("  -- {} --", current);
        }
        println!(
            "  {:<16} interval={:<4} goodput={:.5} rollbacks={}",
            r.strategy, r.interval, r.goodput, r.rollbacks
        );
    }
    c.bench_function("fig9/trace_generation", |b| {
        b.iter(|| PreemptionTrace::synthetic_gcp_a100(criterion::black_box(7)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);

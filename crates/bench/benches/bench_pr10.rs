//! Adaptive persist-path benchmark: the online controller versus
//! hand-tuned configurations across the paper's Fig 12/13/14 sensitivity
//! sweeps, the chunk codec's persist-bytes reduction and worst-case
//! overhead, and a six-point crash matrix on codec-framed flat, striped,
//! and namespace stores — emitted as `BENCH_pr10.json` at the repository
//! root.
//!
//! Four legs:
//!
//! 1. **Adaptive vs hand-tuned** — for each sensitivity family
//!    (checkpoint concurrency, writer threads, staging chunks) the
//!    hand-tuned arms sweep that knob while the adaptive arm runs ONE
//!    fixed configuration with the controller re-tuning every 4
//!    checkpoints and zero per-run knobs. Acceptance: the adaptive
//!    median is within 2% of the best hand-tuned point, widened to the
//!    measured inter-rep noise, gated only when the host has >= 4 cores
//!    (the bench_pr6/pr8 wall-clock convention).
//! 2. **Codec savings** — the harness `ext_compress` high-redundancy
//!    sweep (period-16 tiles, 5% sparsity) must cut persisted bytes by
//!    at least 3x and recover bit-identically.
//! 3. **Codec worst case** — codec-on vs codec-off on RNG-dense
//!    incompressible state: the entropy gate must decline cheaply,
//!    median overhead <= 2% widened to noise (cores >= 2 to gate).
//! 4. **Crash matrix** — all six crash points (claim-publish,
//!    during-copy, during-persist, between-persist-and-commit,
//!    after-commit, delta-chain) on flat, 2-way-striped, and two-tenant
//!    namespace stores whose committed baselines are chunk-framed
//!    (compressed + deduped): every audit must be invariant-clean with
//!    the auditor's framed verification engaged, the lattice prediction
//!    must match recovery, and recovered payloads must be bit-identical
//!    to the logical (pre-codec) state.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use pccheck::{
    recover, recovery, CheckpointStore, DeltaPolicy, JobId, PcCheckConfig, PcCheckEngine,
    PccheckError, PersistPipeline, PipelineCtx,
};
use pccheck_bench::stats::{bench_json_path, effective_ceiling, host_cores, median};
use pccheck_device::{DeviceConfig, HostBufferPool, PersistentDevice, SsdDevice, StripedDevice};
use pccheck_gpu::{Checkpointer, Gpu, GpuConfig, SnapshotSource, StateDigest, TrainingState};
use pccheck_harness::ext_compress;
use pccheck_harness::forensics_run::{
    commit_delta_checkpoint_scoped, drive_to_crash_point_scoped, sparse_payload,
    synthetic_payload, CrashPoint, Scope,
};
use pccheck_telemetry::{SpanId, Telemetry};
use pccheck_util::{Bandwidth, ByteSize};

/// Training-state size for the sensitivity legs.
const SWEEP_STATE_KB: u64 = 256;
/// Iterations per sensitivity run.
const ITERATIONS: u64 = 60;
/// Checkpoint interval (iterations).
const INTERVAL: u64 = 2;
/// Per-iteration compute time.
const ITER_COMPUTE_MS: u64 = 1;
/// Simulated device bandwidth for the sensitivity legs.
const DEVICE_MB_PER_SEC: f64 = 256.0;
/// Interleaved reps per arm.
const REPS: usize = 3;
/// Adaptive arm may cost at most this fraction over the best hand-tuned
/// point (widened to measured noise).
const ADAPTIVE_CEILING: f64 = 0.02;
/// Codec-on may cost at most this fraction on incompressible state.
const OVERHEAD_CEILING: f64 = 0.02;
/// The high-redundancy sweep must cut persisted bytes by this factor.
const SAVINGS_FLOOR: f64 = 3.0;
/// Crash-leg store geometry.
const CRASH_STATE: u64 = 16 * 1024;
const CRASH_SLOTS: u32 = 4;
const CRASH_FLIGHT: u32 = 128;
const CRASH_CHUNK: u64 = 2 * 1024;
/// Codec policy for framed commits (permissive: the codec decides
/// per-chunk; the chain cap bounds dedup-base pinning).
const POLICY: DeltaPolicy = DeltaPolicy {
    max_dirty_ratio: 1.0,
    max_chain: 8,
};

/// A host-resident payload standing in for GPU weights.
struct HostPayload {
    data: Vec<u8>,
    step: u64,
}

impl SnapshotSource for HostPayload {
    fn size(&self) -> ByteSize {
        ByteSize::from_bytes(self.data.len() as u64)
    }

    fn step_count(&self) -> u64 {
        self.step
    }

    fn digest(&self) -> StateDigest {
        StateDigest::of_payload(&self.data, self.step)
    }

    fn copy_range_to_host(&self, offset: u64, dst: &mut [u8]) {
        let o = offset as usize;
        dst.copy_from_slice(&self.data[o..o + dst.len()]);
    }
}

/// `len` bytes tiling a `period`-byte block seeded from `seed` — highly
/// compressible and self-similar, so framed commits compress AND dedup.
fn tiled_payload(seed: u64, len: u64, period: usize) -> Vec<u8> {
    let tile: Vec<u8> = (0..period)
        .map(|i| (seed as u8).wrapping_mul(31).wrapping_add(i as u8))
        .collect();
    (0..len as usize).map(|i| tile[i % period]).collect()
}

/// One sensitivity-leg training run; returns wall seconds.
fn training_run(n: usize, writers: usize, dram: usize, adaptive: bool) -> f64 {
    let state = ByteSize::from_kb(SWEEP_STATE_KB);
    let cap = CheckpointStore::required_capacity(state, n as u32 + 1) + ByteSize::from_kb(4);
    let device = Arc::new(SsdDevice::new(DeviceConfig {
        capacity: cap,
        write_bandwidth: Bandwidth::from_mb_per_sec(DEVICE_MB_PER_SEC),
        throttled: true,
    }));
    let gpu = Gpu::new(
        GpuConfig::fast_for_tests(),
        TrainingState::compressible(state, 7, 64),
    );
    let mut builder = PcCheckConfig::builder()
        .max_concurrent(n)
        .writer_threads(writers)
        .chunk_size(ByteSize::from_kb(64))
        .dram_chunks(dram);
    if adaptive {
        builder = builder.codec(true).adaptive_interval(4);
    }
    let engine = PcCheckEngine::new(
        builder.build().expect("valid config"),
        device,
        gpu.state_size(),
    )
    .expect("engine constructs")
    .with_telemetry(Telemetry::enabled());

    let t0 = Instant::now();
    for iter in 1..=ITERATIONS {
        gpu.update();
        std::thread::sleep(std::time::Duration::from_millis(ITER_COMPUTE_MS));
        if iter % INTERVAL == 0 {
            engine.checkpoint(&gpu, iter);
        }
    }
    engine.drain();
    t0.elapsed().as_secs_f64()
}

/// One codec-worst-case run on RNG-dense state; returns wall seconds.
fn dense_run(codec: bool) -> f64 {
    let state = ByteSize::from_kb(1024);
    let cap = CheckpointStore::required_capacity(state, 3) + ByteSize::from_kb(4);
    let device = Arc::new(SsdDevice::new(DeviceConfig {
        capacity: cap,
        write_bandwidth: Bandwidth::from_mb_per_sec(DEVICE_MB_PER_SEC),
        throttled: true,
    }));
    let gpu = Gpu::new(GpuConfig::fast_for_tests(), TrainingState::synthetic(state, 9));
    let engine = PcCheckEngine::new(
        PcCheckConfig::builder()
            .max_concurrent(2)
            .writer_threads(2)
            .chunk_size(ByteSize::from_kb(64))
            // The pool covers the whole snapshot so the codec genuinely
            // stages and entropy-gates every chunk before declining.
            .dram_chunks(16)
            .codec(codec)
            .build()
            .expect("valid config"),
        device,
        gpu.state_size(),
    )
    .expect("engine constructs");

    let t0 = Instant::now();
    for iter in 1..=40u64 {
        gpu.update();
        std::thread::sleep(std::time::Duration::from_millis(ITER_COMPUTE_MS));
        if iter % INTERVAL == 0 {
            engine.checkpoint(&gpu, iter);
        }
    }
    engine.drain();
    t0.elapsed().as_secs_f64()
}

/// One adaptive-vs-hand-tuned family: sweeps `points` through `run_point`
/// while the adaptive arm reruns its single fixed configuration.
struct FamilyResult {
    name: &'static str,
    tuned_medians: Vec<(u64, f64)>,
    adaptive_median: f64,
    overhead_vs_best: f64,
    ceiling: f64,
    pass: bool,
}

fn run_family(
    name: &'static str,
    points: &[u64],
    run_point: impl Fn(u64) -> f64,
    enforced: bool,
) -> FamilyResult {
    let mut tuned: Vec<Vec<f64>> = vec![Vec::new(); points.len()];
    let mut adaptive: Vec<f64> = Vec::new();
    for _ in 0..REPS {
        for (i, &p) in points.iter().enumerate() {
            tuned[i].push(run_point(p));
        }
        adaptive.push(training_run(2, 2, 4, true));
    }
    let tuned_medians: Vec<(u64, f64)> = points
        .iter()
        .zip(&tuned)
        .map(|(&p, v)| (p, median(v)))
        .collect();
    let best = tuned_medians
        .iter()
        .map(|&(_, m)| m)
        .fold(f64::INFINITY, f64::min);
    let adaptive_median = median(&adaptive);
    let overhead = adaptive_median / best - 1.0;
    let mut arms: Vec<&[f64]> = tuned.iter().map(Vec::as_slice).collect();
    arms.push(&adaptive);
    let ceiling = effective_ceiling(ADAPTIVE_CEILING, &arms);
    let pass = !enforced || overhead <= ceiling;
    println!(
        "  {name}: best hand-tuned {:.1} ms, adaptive {:.1} ms -> {:+.2}% \
         (gate {:.1}%{})",
        best * 1e3,
        adaptive_median * 1e3,
        overhead * 100.0,
        ceiling * 100.0,
        if enforced { "" } else { ", informational" }
    );
    FamilyResult {
        name,
        tuned_medians,
        adaptive_median,
        overhead_vs_best: overhead,
        ceiling,
        pass,
    }
}

/// Commits a chunk-framed checkpoint of `payload` through `pipeline`
/// (job-scoped when `job` is set). Panics if the codec declines — the
/// crash legs feed tiled payloads precisely so framing always engages.
fn commit_framed(
    pipeline: &PersistPipeline,
    job: Option<JobId>,
    iteration: u64,
    payload: &[u8],
) -> Result<u64, PccheckError> {
    let telemetry = Telemetry::disabled();
    let ctx = PipelineCtx {
        telemetry: &telemetry,
        span: SpanId::NONE,
    };
    let src = HostPayload {
        data: payload.to_vec(),
        step: iteration,
    };
    let total = src.size();
    let digest = StateDigest::of_payload(payload, iteration).0;
    let lease = pipeline.lease_for(ctx, job)?;
    let counter = lease.counter;
    let plan = pipeline
        .copy_framed(ctx, &src, &lease, total, digest, POLICY)?
        .expect("tiled payload must frame");
    pipeline.seal(
        ctx,
        &lease,
        iteration,
        ByteSize::from_bytes(plan.payload_len),
        plan.persist_start,
    )?;
    pipeline.commit_framed(ctx, lease, iteration, &plan)?;
    Ok(counter)
}

fn framed_pipeline(store: Arc<CheckpointStore>) -> PersistPipeline {
    let pool_chunks = (CRASH_STATE / CRASH_CHUNK) as usize;
    PersistPipeline::new(store)
        .with_writers(2)
        .with_staging(HostBufferPool::new(
            ByteSize::from_bytes(CRASH_CHUNK),
            pool_chunks,
        ))
        .with_codec(true)
}

/// One flat/striped crash case over a codec-framed store. The committed
/// baseline (and, for after-commit, the crash checkpoint itself) is
/// chunk-framed, so the frozen-device audit must run the auditor's
/// framed table checks and deep frame replay. Returns `Ok(true)` when
/// the audit is clean, the prediction matches recovery, and the
/// recovered payload is bit-identical to the logical state.
fn framed_crash_case(point: CrashPoint, striped: bool) -> Result<bool, PccheckError> {
    let state = ByteSize::from_bytes(CRASH_STATE);
    let cap = CheckpointStore::required_capacity_with_flight(state, CRASH_SLOTS, CRASH_FLIGHT)
        + ByteSize::from_kb(4);
    let (device, arm_fuse): (Arc<dyn PersistentDevice>, Box<dyn Fn(u64)>) = if striped {
        let members: Vec<Arc<dyn PersistentDevice>> = (0..2)
            .map(|_| {
                Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)))
                    as Arc<dyn PersistentDevice>
            })
            .collect();
        let array = Arc::new(StripedDevice::new(members, ByteSize::from_kb(1)));
        let fuse = Arc::clone(&array);
        (array, Box::new(move |n| fuse.arm_crash_after_persists(n)))
    } else {
        let ssd = Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        let fuse = Arc::clone(&ssd);
        (ssd, Box::new(move |n| fuse.arm_crash_after_persists(n)))
    };
    let store = Arc::new(CheckpointStore::format_with_flight(
        Arc::clone(&device),
        state,
        CRASH_SLOTS,
        CRASH_FLIGHT,
    )?);
    let pipeline = framed_pipeline(Arc::clone(&store));

    let baseline_payload = tiled_payload(100, CRASH_STATE, 32);
    let baseline_counter = commit_framed(&pipeline, None, 100, &baseline_payload)?;

    // Expected post-recovery (counter, logical payload) per crash point.
    let (expected_counter, expected_payload, crash_slot, crash_len);
    match point {
        CrashPoint::AfterCommit => {
            let payload2 = sparse_payload(&baseline_payload, 200, &[(0, CRASH_STATE / 8)]);
            let counter2 = commit_framed(&pipeline, None, 200, &payload2)?;
            expected_counter = counter2;
            expected_payload = payload2;
            crash_slot = None;
            crash_len = 0;
        }
        CrashPoint::DeltaChain => {
            let ranges = [(0u64, CRASH_STATE / 8), (CRASH_STATE / 2, CRASH_STATE / 8)];
            let full_mid = sparse_payload(&baseline_payload, 150, &ranges);
            let mid_counter =
                commit_delta_checkpoint_scoped(&store, Scope::Global, 150, &full_mid, &ranges)?;
            // Strand a second in-flight checkpoint (payload durable, no
            // meta) exactly like the canonical delta-chain scenario.
            let stranded = synthetic_payload(200, CRASH_STATE);
            drive_to_crash_point_scoped(
                &store,
                Scope::Global,
                CrashPoint::BetweenPersistAndCommit,
                200,
                &stranded,
            )?;
            expected_counter = mid_counter;
            expected_payload = full_mid;
            crash_slot = None;
            crash_len = 0;
        }
        _ => {
            let raw = synthetic_payload(200, CRASH_STATE);
            let (_, slot) = drive_to_crash_point_scoped(&store, Scope::Global, point, 200, &raw)?;
            expected_counter = baseline_counter;
            expected_payload = baseline_payload.clone();
            crash_slot = Some(slot);
            crash_len = raw.len() as u64;
        }
    }
    match point {
        CrashPoint::DuringPersist => {
            arm_fuse(0);
            let slot = crash_slot.expect("driven slot");
            let err = device.persist(store.slot_payload_offset(slot), crash_len);
            debug_assert!(err.is_err(), "armed persist must crash");
        }
        _ => device.crash_now(),
    }
    drop(pipeline);
    drop(store);

    let report = pccheck_monitor::audit(Arc::clone(&device))?;
    device.recover();
    let recovered = recover(device)?;
    Ok(report.is_clean()
        && report.expected_recovery.map(|m| m.counter) == Some(recovered.counter)
        && recovered.counter == expected_counter
        && recovered.payload == expected_payload)
}

/// One two-tenant namespace crash case: both tenants hold chunk-framed
/// baselines, tenant 2 is driven into `point`, the power fails, and the
/// global audit plus each namespace's prediction must match what
/// `recover_job` restores — with tenant 1's framed state bit-identical.
fn namespace_framed_crash_case(point: CrashPoint) -> Result<bool, PccheckError> {
    const SLOTS: u32 = 8;
    const MAX_NS: u32 = 4;
    let state = ByteSize::from_bytes(CRASH_STATE);
    let cap = CheckpointStore::required_capacity_service(state, SLOTS, CRASH_FLIGHT, MAX_NS)
        + ByteSize::from_kb(4);
    let ssd = Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
    let device: Arc<dyn PersistentDevice> = ssd.clone();
    let store = Arc::new(CheckpointStore::format_service(
        Arc::clone(&device),
        state,
        SLOTS,
        CRASH_FLIGHT,
        MAX_NS,
    )?);
    store.allocate_namespace(1, 4)?;
    store.allocate_namespace(2, 4)?;
    let pipeline = framed_pipeline(Arc::clone(&store));

    let baseline1 = tiled_payload(1, CRASH_STATE, 32);
    let counter1 = commit_framed(&pipeline, Some(1), 100, &baseline1)?;
    let baseline2 = tiled_payload(2, CRASH_STATE, 32);
    let counter2 = commit_framed(&pipeline, Some(2), 100, &baseline2)?;

    // Tenant 2's expected post-recovery (counter, payload).
    let (expected2_counter, expected2_payload, crash_slot, crash_len);
    match point {
        CrashPoint::AfterCommit => {
            let payload = sparse_payload(&baseline2, 200, &[(0, CRASH_STATE / 8)]);
            let counter = commit_framed(&pipeline, Some(2), 200, &payload)?;
            expected2_counter = counter;
            expected2_payload = payload;
            crash_slot = None;
            crash_len = 0;
        }
        CrashPoint::DeltaChain => {
            let ranges = [(0u64, CRASH_STATE / 8)];
            let full_mid = sparse_payload(&baseline2, 150, &ranges);
            let mid =
                commit_delta_checkpoint_scoped(&store, Scope::Job(2), 150, &full_mid, &ranges)?;
            let stranded = synthetic_payload(200, CRASH_STATE);
            drive_to_crash_point_scoped(
                &store,
                Scope::Job(2),
                CrashPoint::BetweenPersistAndCommit,
                200,
                &stranded,
            )?;
            expected2_counter = mid;
            expected2_payload = full_mid;
            crash_slot = None;
            crash_len = 0;
        }
        _ => {
            let raw = synthetic_payload(200, CRASH_STATE);
            let (_, slot) = drive_to_crash_point_scoped(&store, Scope::Job(2), point, 200, &raw)?;
            expected2_counter = counter2;
            expected2_payload = baseline2.clone();
            crash_slot = Some(slot);
            crash_len = raw.len() as u64;
        }
    }
    match point {
        CrashPoint::DuringPersist => {
            ssd.arm_crash_after_persists(0);
            let slot = crash_slot.expect("driven slot");
            let err = device.persist(store.slot_payload_offset(slot), crash_len);
            debug_assert!(err.is_err(), "armed persist must crash");
        }
        _ => device.crash_now(),
    }
    drop(pipeline);
    drop(store);

    let report = pccheck_monitor::audit(Arc::clone(&device))?;
    device.recover();

    let mut ok = report.is_clean();
    for &(job, ref head) in &report.namespace_recovery {
        match recovery::recover_job(Arc::clone(&device), job) {
            Ok(r) => {
                ok &= head.as_ref().map(|m| m.counter) == Some(r.counter);
                if job == 1 {
                    // Tenant isolation: tenant 2's crash never moves
                    // tenant 1 off its framed baseline.
                    ok &= r.counter == counter1 && r.payload == baseline1;
                } else if job == 2 {
                    ok &= r.counter == expected2_counter && r.payload == expected2_payload;
                }
            }
            Err(PccheckError::NoCheckpoint) => ok &= head.is_none(),
            Err(e) => return Err(e),
        }
    }
    Ok(ok)
}

fn main() {
    let cores = host_cores();
    println!(
        "[bench_pr10] adaptive persist path: {SWEEP_STATE_KB} KiB sweep state, \
         {ITERATIONS} iters, checkpoint every {INTERVAL}, {REPS} reps, {cores} cores"
    );

    // Leg 1: adaptive vs hand-tuned across the three sensitivity families.
    let wall_enforced = cores >= 4;
    let families = [
        run_family(
            "fig12_concurrency",
            &[1, 2, 4],
            |n| training_run(n as usize, 2, 4, false),
            wall_enforced,
        ),
        run_family(
            "fig13_threads",
            &[1, 2, 4],
            |w| training_run(2, w as usize, 4, false),
            wall_enforced,
        ),
        run_family(
            "fig14_dram",
            &[2, 4, 8],
            |d| training_run(2, 2, d as usize, false),
            wall_enforced,
        ),
    ];
    let adaptive_pass = families.iter().all(|f| f.pass);

    // Leg 2: high-redundancy codec savings (deterministic byte counts).
    let savings = ext_compress::measure(16, 0.05);
    let savings_pass =
        savings.bytes_saved_ratio >= SAVINGS_FLOOR && savings.recovered_bit_identical;
    println!(
        "  codec savings: {:.2}x persisted-bytes reduction (floor {SAVINGS_FLOOR}x), \
         {} dedup chunks, bit-identical recovery: {}",
        savings.bytes_saved_ratio, savings.dedup_chunks, savings.recovered_bit_identical
    );

    // Leg 3: codec worst case on incompressible state.
    let mut base: Vec<f64> = Vec::new();
    let mut with_codec: Vec<f64> = Vec::new();
    for _ in 0..5 {
        base.push(dense_run(false));
        with_codec.push(dense_run(true));
    }
    let dense_overhead = median(&with_codec) / median(&base) - 1.0;
    let dense_ceiling = effective_ceiling(OVERHEAD_CEILING, &[&base, &with_codec]);
    let dense_enforced = cores >= 2;
    let dense_pass = !dense_enforced || dense_overhead <= dense_ceiling;
    println!(
        "  codec worst case: {:+.2}% on RNG-dense state (gate {:.1}%{})",
        dense_overhead * 100.0,
        dense_ceiling * 100.0,
        if dense_enforced {
            ""
        } else {
            ", informational"
        }
    );

    // Leg 4: the framed crash matrix.
    let mut matrix: Vec<(String, Vec<(String, bool)>)> = Vec::new();
    let mut crash_all_clean = true;
    for store_kind in ["flat", "striped", "namespace"] {
        let mut row = Vec::new();
        for point in CrashPoint::ALL {
            let ok = match store_kind {
                "flat" => framed_crash_case(point, false),
                "striped" => framed_crash_case(point, true),
                _ => namespace_framed_crash_case(point),
            }
            .unwrap_or_else(|e| panic!("{store_kind}/{}: scenario error: {e}", point.name()));
            crash_all_clean &= ok;
            row.push((point.name().to_string(), ok));
        }
        println!(
            "  crash audit [{store_kind}]: {}",
            row.iter()
                .map(|(p, ok)| format!("{p}={}", if *ok { "clean" } else { "DIRTY" }))
                .collect::<Vec<_>>()
                .join(" ")
        );
        matrix.push((store_kind.to_string(), row));
    }

    let pass = adaptive_pass && savings_pass && dense_pass && crash_all_clean;

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"bench_pr10\",\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"sweep_state_bytes\": {}, \"iterations\": {ITERATIONS}, \
         \"interval\": {INTERVAL}, \"reps\": {REPS}, \"device_mb_per_sec\": {DEVICE_MB_PER_SEC}, \
         \"savings_floor\": {SAVINGS_FLOOR}, \"adaptive_ceiling\": {ADAPTIVE_CEILING}, \
         \"overhead_ceiling\": {OVERHEAD_CEILING}}},",
        SWEEP_STATE_KB * 1024
    );
    json.push_str("  \"families\": {\n");
    for (i, f) in families.iter().enumerate() {
        let points = f
            .tuned_medians
            .iter()
            .map(|(p, m)| format!("[{p}, {m:.4}]"))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            json,
            "    \"{}\": {{\"tuned\": [{points}], \"adaptive_median_secs\": {:.4}, \
             \"overhead_vs_best\": {:.4}, \"effective_ceiling\": {:.4}, \"pass\": {}}}{}",
            f.name,
            f.adaptive_median,
            f.overhead_vs_best,
            f.ceiling,
            f.pass,
            if i + 1 < families.len() { "," } else { "" }
        );
    }
    json.push_str("  },\n");
    let _ = writeln!(
        json,
        "  \"codec\": {{\"savings_ratio\": {:.4}, \"dedup_chunks\": {}, \
         \"bit_identical\": {}, \"dense_overhead\": {:.4}, \
         \"dense_ceiling\": {:.4}, \"dense_gate_enforced\": {}}},",
        savings.bytes_saved_ratio,
        savings.dedup_chunks,
        savings.recovered_bit_identical,
        dense_overhead,
        dense_ceiling,
        dense_enforced
    );
    json.push_str("  \"crash_matrix\": {\n");
    for (i, (name, points)) in matrix.iter().enumerate() {
        let cells = points
            .iter()
            .map(|(p, ok)| format!("\"{p}\": {ok}"))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            json,
            "    \"{name}\": {{{cells}}}{}",
            if i + 1 < matrix.len() { "," } else { "" }
        );
    }
    json.push_str("  },\n");
    let _ = writeln!(
        json,
        "  \"acceptance\": {{\"adaptive_pass\": {adaptive_pass}, \
         \"savings_pass\": {savings_pass}, \"dense_pass\": {dense_pass}, \
         \"crash_all_clean\": {crash_all_clean}, \"cores\": {cores}, \
         \"wall_gate_enforced\": {wall_enforced}, \"pass\": {pass}}}\n}}"
    );

    let path = bench_json_path("BENCH_pr10.json");
    std::fs::write(&path, &json).expect("write BENCH_pr10.json");
    println!("[bench_pr10] wrote {path}");

    assert!(
        pass,
        "bench_pr10 gate failed: adaptive {adaptive_pass}, savings {savings_pass} \
         ({:.2}x), dense overhead {dense_pass} ({:+.2}%), crash matrix {crash_all_clean}",
        savings.bytes_saved_ratio,
        dense_overhead * 100.0
    );
}

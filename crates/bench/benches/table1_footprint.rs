//! Regenerates Table 1 and benchmarks the footprint formulas.
use criterion::{criterion_group, criterion_main, Criterion};
use pccheck::footprint;
use pccheck_harness::tables;
use pccheck_util::ByteSize;

fn bench(c: &mut Criterion) {
    let m = ByteSize::from_gb(4.0);
    println!("\n[Table 1] memory footprint (m = {m}, N = 3)");
    for r in tables::table1(m, 3) {
        println!(
            "  {:<10} gpu={} dram={}..{} storage={}",
            r.algorithm,
            r.footprint.gpu,
            r.footprint.dram_min,
            r.footprint.dram_max,
            r.footprint.storage
        );
    }
    c.bench_function("table1/footprint_formulas", |b| {
        b.iter(|| {
            let m = criterion::black_box(ByteSize::from_gb(4.0));
            (
                footprint::checkfreq(m),
                footprint::gpm(m),
                footprint::gemini(m),
                footprint::pccheck(m, 3),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);

//! Regenerates Figure 13 and benchmarks a p-sweep point.
use criterion::{criterion_group, criterion_main, Criterion};
use pccheck_gpu::ModelZoo;
use pccheck_harness::fig13_threads as fig13;
use pccheck_sim::StrategyCfg;

fn bench(c: &mut Criterion) {
    let rows = fig13::run();
    println!("\n[Figure 13] OPT-350M slowdown at interval 10, varying N x p");
    for r in &rows {
        println!("  N={} p={} slowdown={:.3}", r.n, r.p, r.slowdown);
    }
    c.bench_function("fig13/opt350m_n1_p3", |b| {
        b.iter(|| {
            pccheck_harness::sweep::run_point(&ModelZoo::opt_350m(), StrategyCfg::pccheck(1, 3), 10)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);

//! Regenerates Figure 10 and benchmarks the PMEM simulation point.
use criterion::{criterion_group, criterion_main, Criterion};
use pccheck_gpu::ModelZoo;
use pccheck_harness::fig10_pmem as fig10;
use pccheck_sim::{SimConfig, StrategyCfg};

fn bench(c: &mut Criterion) {
    let rows = fig10::run();
    println!("\n[Figure 10] BERT on Optane PMEM (TitanRTX): slowdown vs interval");
    for r in &rows {
        println!(
            "  {:<16} interval={:<4} tput={:.4} slowdown={:.3}",
            r.strategy, r.interval, r.throughput, r.slowdown
        );
    }
    c.bench_function("fig10/bert_pmem_pccheck_interval10", |b| {
        b.iter(|| {
            SimConfig::pmem_rtx(&ModelZoo::bert(), 10, 200)
                .with_strategy(StrategyCfg::pccheck(2, 3))
                .run()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);

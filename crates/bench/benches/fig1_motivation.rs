//! Regenerates Figure 1 and benchmarks the underlying simulation point.
use criterion::{criterion_group, criterion_main, Criterion};
use pccheck_gpu::ModelZoo;
use pccheck_harness::fig1_motivation;
use pccheck_sim::StrategyCfg;

fn bench(c: &mut Criterion) {
    let rows = fig1_motivation::run();
    println!("\n[Figure 1] BLOOM-7B slowdown vs interval (CheckFreq / Gemini) + recovery");
    for r in &rows {
        println!(
            "  interval={:<4} checkfreq={:.3}x gemini={:.3}x recovery={:.1}s",
            r.interval, r.checkfreq_slowdown, r.gemini_slowdown, r.recovery_secs
        );
    }
    c.bench_function("fig1/bloom7b_checkfreq_interval10", |b| {
        b.iter(|| {
            pccheck_harness::sweep::run_point(&ModelZoo::bloom_7b(), StrategyCfg::CheckFreq, 10)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);

//! Lock-free commit-path benchmark: commit throughput at 1→2→4→8
//! concurrent checkpointers versus the pre-PR locked metadata path, plus
//! a crash-audit matrix proving the state lattice stays decidable at
//! every crash point on flat, striped, and two-tenant stores — emitted
//! as `BENCH_pr9.json` at the repository root.
//!
//! The throughput leg uses small checkpoints (1 KiB) so the metadata
//! commit — not data movement — dominates each operation: that is the
//! path this PR un-serialized. The *locked* arm reconstructs the old
//! behavior with a bench-local mutex held across `begin_checkpoint` and
//! across `commit` (where `check_addr_io: Mutex<u64>` and the commit
//! `io_lock` used to serialize every checkpointer's metadata I/O); the
//! *lock-free* arm is the store as shipped.
//!
//! Acceptance follows the bench_pr6/pr8 precedent for single-core
//! hosts: the wall-clock ratios are reported, but gated only when the
//! host has at least as many cores as the widest arm (threads
//! time-sharing one core measure the scheduler, not the protocol).
//! What is always gated is the deterministic fluid model: per commit,
//! the locked path serializes all three metadata records (slot meta +
//! committed state word + CHECK_ADDR, 64 B each) behind one lock, while
//! the lock-free path's only serialized device write is the shared
//! CHECK_ADDR record — claim CAS, meta publish, and the state-word
//! publish all land in per-slot locations and overlap freely, and the
//! head advance is a single `fetch_max`.
//!
//! The crash leg runs all six crash points (claim-publish, during-copy,
//! during-persist, between-persist-and-commit, after-commit,
//! delta-chain) on a flat SSD store, a 2-way striped store, and a
//! two-tenant service-mode store, asserting for every run that the
//! forensic audit is invariant-clean, that no slot decides `Torn`, and
//! that the auditor's prediction (global or per-namespace) matches what
//! recovery actually restores, slot by slot.

use std::fmt::Write as _;
use std::sync::{Arc, Barrier, Mutex};
use std::time::Instant;

use pccheck::{recovery, CheckpointStore, PccheckError, SlotOutcome};
use pccheck_device::{DeviceConfig, PersistentDevice, SsdDevice};
use pccheck_gpu::StateDigest;
use pccheck_harness::forensics_run::{
    commit_checkpoint_scoped, drive_to_crash_point_scoped, run_crash_scenario, synthetic_payload,
    CrashPoint, ForensicsRunConfig, Scope,
};
use pccheck_bench::stats::{bench_json_path, host_cores, median};
use pccheck_util::ByteSize;

/// Checkpoint payload: small on purpose, so the commit path dominates.
const PAYLOAD: u64 = 1024;
/// Commits per checkpointer thread per rep.
const OPS: u64 = 120;
/// Concurrency ladder.
const ARMS: [usize; 4] = [1, 2, 4, 8];
/// Wall reps per (arm, path); the median summarizes.
const REPS: usize = 3;
/// Model device bandwidth (bytes/sec) — any value cancels out of the
/// gated ratios; 256 MB/s keeps the printed numbers recognizable.
const MODEL_BW: f64 = 256.0 * 1024.0 * 1024.0;
/// One metadata record: slot meta, state word, and CHECK_ADDR records
/// are all this size.
const META_REC: f64 = 64.0;
/// Serialized metadata bytes per commit under the old locks: the slot
/// meta record, the committed state word, and the CHECK_ADDR record all
/// funneled through one critical section.
const LOCKED_SERIAL: f64 = 3.0 * META_REC;
/// Serialized metadata bytes per commit lock-free: only the shared
/// CHECK_ADDR record (per-slot records overlap across slots).
const FREE_SERIAL: f64 = META_REC;
/// N=8 must beat N=1 by this factor.
const SCALING_FLOOR: f64 = 1.5;
/// N=8 lock-free must beat N=8 locked by this factor.
const VS_LOCKED_FLOOR: f64 = 1.2;

/// One throughput rep: `n` threads each commit [`OPS`] checkpoints
/// through a fresh flat store. `locked` adds the bench-local mutex
/// around `begin_checkpoint` and `commit`, reconstructing the pre-PR
/// serialized metadata path. Returns commits/sec.
fn throughput_rep(n: usize, locked: bool) -> f64 {
    let state = ByteSize::from_bytes(PAYLOAD);
    let slots = n as u32 + 1;
    let cap = CheckpointStore::required_capacity(state, slots) + ByteSize::from_kb(4);
    let device: Arc<dyn PersistentDevice> =
        Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
    let store = Arc::new(CheckpointStore::format(device, state, slots).expect("format"));
    let lock = Arc::new(Mutex::new(()));
    let barrier = Arc::new(Barrier::new(n + 1));

    let workers: Vec<_> = (0..n)
        .map(|t| {
            let store = Arc::clone(&store);
            let lock = Arc::clone(&lock);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let payload = synthetic_payload(t as u64, PAYLOAD);
                barrier.wait();
                for op in 0..OPS {
                    let iteration = t as u64 * OPS + op;
                    let lease = if locked {
                        let _g = lock.lock().unwrap();
                        store.begin_checkpoint()
                    } else {
                        store.begin_checkpoint()
                    };
                    store.write_payload(&lease, 0, &payload).expect("write");
                    store.persist_payload(&lease, 0, PAYLOAD).expect("persist");
                    let digest = StateDigest::of_payload(&payload, iteration).0;
                    if locked {
                        let _g = lock.lock().unwrap();
                        store
                            .commit(lease, iteration, PAYLOAD, digest)
                            .expect("commit");
                    } else {
                        store
                            .commit(lease, iteration, PAYLOAD, digest)
                            .expect("commit");
                    }
                }
            })
        })
        .collect();
    barrier.wait();
    let t0 = Instant::now();
    for w in workers {
        w.join().expect("checkpointer thread");
    }
    (n as u64 * OPS) as f64 / t0.elapsed().as_secs_f64()
}

/// Fluid-model commit throughput (commits/sec) at `n` checkpointers
/// with `serial` serialized metadata bytes per commit: each commit
/// moves `PAYLOAD + LOCKED_SERIAL` bytes of device work total, and the
/// serial fraction bounds the aggregate like a single shared channel.
fn model_throughput(n: usize, serial: f64) -> f64 {
    let t_op = (PAYLOAD as f64 + LOCKED_SERIAL) / MODEL_BW;
    let saturation = MODEL_BW / serial;
    (n as f64 / t_op).min(saturation)
}

/// Per-slot check that the audit's lattice prediction matches recovery:
/// no slot decides `Torn`, every `InFlight` counter was discarded, and
/// the newest `Committed` slot is exactly what recovery restored.
fn lattice_matches_recovery(outcomes: &[SlotOutcome], recovered: &[u64]) -> bool {
    let mut committed_max = None::<u64>;
    for outcome in outcomes {
        match *outcome {
            SlotOutcome::Torn { .. } => return false,
            SlotOutcome::InFlight { counter } => {
                if recovered.contains(&counter) {
                    return false;
                }
            }
            SlotOutcome::Committed { counter } => {
                committed_max = Some(committed_max.map_or(counter, |m: u64| m.max(counter)));
            }
            SlotOutcome::Empty | SlotOutcome::Historical { .. } | SlotOutcome::Persisted { .. } => {
            }
        }
    }
    // Whatever the lattice says is the newest committed checkpoint must
    // be among the counters recovery actually restored.
    committed_max.is_none_or(|m| recovered.contains(&m))
}

/// One flat/striped crash scenario: clean audit, prediction == recovery,
/// lattice consistent. Returns `Ok(true)` when every check holds.
fn crash_case(point: CrashPoint, cfg: &ForensicsRunConfig) -> Result<bool, PccheckError> {
    let run = run_crash_scenario(point, cfg)?;
    let predicted = run.report.expected_recovery.map(|m| m.counter);
    Ok(run.report.is_clean()
        && predicted == Some(run.recovered.counter)
        && lattice_matches_recovery(&run.report.slot_outcomes, &[run.recovered.counter]))
}

/// One two-tenant crash scenario: tenant 1 commits a baseline, tenant 2
/// is driven into `point`, the power fails, and both the global audit
/// and each namespace's prediction must match what `recover_job`
/// restores — with tenant 1's state intact.
fn namespace_crash_case(point: CrashPoint) -> Result<bool, PccheckError> {
    const STATE: u64 = 4096;
    const SLOTS: u32 = 8;
    const FLIGHT: u32 = 128;
    const MAX_NS: u32 = 4;
    let state = ByteSize::from_bytes(STATE);
    let cap = CheckpointStore::required_capacity_service(state, SLOTS, FLIGHT, MAX_NS)
        + ByteSize::from_kb(4);
    let ssd = Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
    let device: Arc<dyn PersistentDevice> = ssd.clone();
    let store = CheckpointStore::format_service(Arc::clone(&device), state, SLOTS, FLIGHT, MAX_NS)?;
    store.allocate_namespace(1, 4)?;
    store.allocate_namespace(2, 4)?;

    let baseline1 = commit_checkpoint_scoped(
        &store,
        Scope::Job(1),
        100,
        &synthetic_payload(100, STATE),
    )?;
    commit_checkpoint_scoped(&store, Scope::Job(2), 100, &synthetic_payload(100, STATE))?;

    let payload = synthetic_payload(200, STATE);
    let (crashed_counter, slot) =
        drive_to_crash_point_scoped(&store, Scope::Job(2), point, 200, &payload)?;
    match point {
        CrashPoint::DuringPersist => {
            ssd.arm_crash_after_persists(0);
            let err = device.persist(store.slot_payload_offset(slot), payload.len() as u64);
            debug_assert!(err.is_err(), "armed persist must crash");
        }
        _ => device.crash_now(),
    }
    drop(store);

    let report = pccheck_monitor::audit(Arc::clone(&device))?;
    device.recover();

    let mut recovered = Vec::new();
    let mut predictions_hold = true;
    for &(job, ref head) in &report.namespace_recovery {
        match recovery::recover_job(Arc::clone(&device), job) {
            Ok(r) => {
                recovered.push(r.counter);
                predictions_hold &= head.as_ref().map(|m| m.counter) == Some(r.counter);
                if job == 1 {
                    // Tenant isolation: tenant 2's crash never moves
                    // tenant 1 off its committed baseline.
                    predictions_hold &= r.counter == baseline1;
                }
            }
            Err(PccheckError::NoCheckpoint) => predictions_hold &= head.is_none(),
            Err(e) => return Err(e),
        }
    }
    let crashed_survived = recovered.contains(&crashed_counter);
    let crash_committed = point == CrashPoint::AfterCommit;
    Ok(report.is_clean()
        && predictions_hold
        && crashed_survived == crash_committed
        && lattice_matches_recovery(&report.slot_outcomes, &recovered))
}

fn main() {
    let cores = host_cores();
    println!(
        "[bench_pr9] lock-free commit path: {PAYLOAD} B payloads, {OPS} commits/thread, \
         arms {ARMS:?}, {REPS} reps, {cores} cores"
    );

    // Leg 1: wall-clock commit throughput, lock-free vs locked.
    let mut wall_free = Vec::new();
    let mut wall_locked = Vec::new();
    for &n in &ARMS {
        let free: Vec<f64> = (0..REPS).map(|_| throughput_rep(n, false)).collect();
        let locked: Vec<f64> = (0..REPS).map(|_| throughput_rep(n, true)).collect();
        println!(
            "  N={n}: lock-free {:.0} commits/s, locked {:.0} commits/s",
            median(&free),
            median(&locked)
        );
        wall_free.push(median(&free));
        wall_locked.push(median(&locked));
    }
    let wall_scaling = wall_free[3] / wall_free[0];
    let wall_vs_locked = wall_free[3] / wall_locked[3];

    // Leg 2: the deterministic fluid model (always gated).
    let model_free: Vec<f64> = ARMS.iter().map(|&n| model_throughput(n, FREE_SERIAL)).collect();
    let model_locked: Vec<f64> = ARMS
        .iter()
        .map(|&n| model_throughput(n, LOCKED_SERIAL))
        .collect();
    let model_scaling = model_free[3] / model_free[0];
    let model_vs_locked = model_free[3] / model_locked[3];
    println!(
        "  fluid model: N=8/N=1 scaling {model_scaling:.2}x (floor {SCALING_FLOOR}), \
         vs locked at N=8 {model_vs_locked:.2}x (floor {VS_LOCKED_FLOOR})"
    );
    let wall_gate_enforced = cores >= *ARMS.last().unwrap();
    println!(
        "  wall: N=8/N=1 scaling {wall_scaling:.2}x, vs locked at N=8 {wall_vs_locked:.2}x{}",
        if wall_gate_enforced {
            ""
        } else {
            " (informational: fewer cores than checkpointers)"
        }
    );

    // Leg 3: the crash-audit matrix.
    let formats: [(&str, Option<ForensicsRunConfig>); 3] = [
        ("flat", Some(ForensicsRunConfig::default())),
        ("striped", Some(ForensicsRunConfig::striped(2))),
        ("namespace", None),
    ];
    let mut matrix: Vec<(String, Vec<(String, bool)>)> = Vec::new();
    let mut crash_all_clean = true;
    for (name, cfg) in &formats {
        let mut row = Vec::new();
        for point in CrashPoint::ALL {
            let ok = match cfg {
                Some(cfg) => crash_case(point, cfg),
                None => namespace_crash_case(point),
            }
            .unwrap_or_else(|e| panic!("{name}/{}: scenario error: {e}", point.name()));
            crash_all_clean &= ok;
            row.push((point.name().to_string(), ok));
        }
        println!(
            "  crash audit [{name}]: {}",
            row.iter()
                .map(|(p, ok)| format!("{p}={}", if *ok { "clean" } else { "DIRTY" }))
                .collect::<Vec<_>>()
                .join(" ")
        );
        matrix.push((name.to_string(), row));
    }

    let model_pass = model_scaling >= SCALING_FLOOR && model_vs_locked >= VS_LOCKED_FLOOR;
    let wall_pass = !wall_gate_enforced
        || (wall_scaling >= SCALING_FLOOR && wall_vs_locked >= VS_LOCKED_FLOOR);
    let pass = model_pass && wall_pass && crash_all_clean;

    let row = |v: &[f64]| {
        v.iter()
            .map(|s| format!("{s:.0}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"bench_pr9\",\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"payload_bytes\": {PAYLOAD}, \"ops_per_thread\": {OPS}, \
         \"arms\": [1, 2, 4, 8], \"reps\": {REPS}, \"model_bw_bytes_per_sec\": {MODEL_BW}, \
         \"locked_serial_bytes\": {LOCKED_SERIAL}, \"lockfree_serial_bytes\": {FREE_SERIAL}}},"
    );
    let _ = writeln!(json, "  \"wall_lockfree_commits_per_sec\": [{}],", row(&wall_free));
    let _ = writeln!(json, "  \"wall_locked_commits_per_sec\": [{}],", row(&wall_locked));
    let _ = writeln!(json, "  \"model_lockfree_commits_per_sec\": [{}],", row(&model_free));
    let _ = writeln!(json, "  \"model_locked_commits_per_sec\": [{}],", row(&model_locked));
    json.push_str("  \"crash_matrix\": {\n");
    for (i, (name, points)) in matrix.iter().enumerate() {
        let cells = points
            .iter()
            .map(|(p, ok)| format!("\"{p}\": {ok}"))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            json,
            "    \"{name}\": {{{cells}}}{}",
            if i + 1 < matrix.len() { "," } else { "" }
        );
    }
    json.push_str("  },\n");
    let _ = writeln!(
        json,
        "  \"acceptance\": {{\"model_scaling\": {model_scaling:.4}, \
         \"model_vs_locked\": {model_vs_locked:.4}, \"wall_scaling\": {wall_scaling:.4}, \
         \"wall_vs_locked\": {wall_vs_locked:.4}, \"scaling_floor\": {SCALING_FLOOR}, \
         \"vs_locked_floor\": {VS_LOCKED_FLOOR}, \"cores\": {cores}, \
         \"wall_gate_enforced\": {wall_gate_enforced}, \"crash_all_clean\": {crash_all_clean}, \
         \"pass\": {pass}}}\n}}"
    );

    let path = bench_json_path("BENCH_pr9.json");
    std::fs::write(&path, &json).expect("write BENCH_pr9.json");
    println!("[bench_pr9] wrote {path}");

    assert!(
        pass,
        "bench_pr9 gate failed: model scaling {model_scaling:.2} (floor {SCALING_FLOOR}), \
         model vs locked {model_vs_locked:.2} (floor {VS_LOCKED_FLOOR}), \
         wall scaling {wall_scaling:.2}, wall vs locked {wall_vs_locked:.2} \
         (enforced: {wall_gate_enforced}), crash matrix clean: {crash_all_clean}"
    );
}

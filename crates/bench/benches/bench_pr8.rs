//! Multi-tenant daemon benchmark: per-job commit latency scaling, QoS
//! fairness against the processor-sharing fluid oracle, and crash audits
//! with interleaved tenants — emitted as `BENCH_pr8.json` at the
//! repository root.
//!
//! Three legs:
//!
//! 1. **Scaling** — the daemon's shared 4-way stripe runs 1, then 4,
//!    then 16 sim jobs (staggered, sub-saturating cadence), and the
//!    same arrival schedule replays through the processor-sharing
//!    fluid model in virtual time. The fluid leg carries the gate —
//!    worst per-job p99 commit at 16 tenants within 2x the 1-job p99
//!    — deterministically, free of host scheduling. The wall-clock
//!    arms are reported alongside and enforced only on hosts with a
//!    core per tenant: with 16 worker threads time-sharing fewer
//!    cores, a commit span measures the run queue, not the stripe.
//! 2. **Fairness** — four equal-weight jobs saturate the shared writer
//!    pool; served-byte shares over a byte-metered window must sit
//!    within 15% of the [`FluidResource`] processor-sharing oracle
//!    (equal backlogged tenants -> equal shares) and the max/min
//!    goodput ratio must stay <= 1.3.
//! 3. **Crash audit** — two tenants interleave checkpoints through one
//!    service store and the device freezes at five protocol points;
//!    every frozen image must audit invariant-clean with per-namespace
//!    recovery matching the audit's prediction.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pccheck::{
    recovery, CheckpointStore, PcCheckConfig, PcCheckEngine, PccheckError, PersistPipeline,
    QosArbiter, QosConfig,
};
use pccheck_bench::stats::{bench_json_path, host_cores, median, rel_iqr};
use pccheck_daemon::{Daemon, DaemonConfig, JobSpec};
use pccheck_device::{DeviceConfig, HostBufferPool, PersistentDevice, SsdDevice};
use pccheck_gpu::{Checkpointer, Gpu, GpuConfig, TrainingState};
use pccheck_sim::FluidResource;
use pccheck_telemetry::Phase;
use pccheck_util::{Bandwidth, ByteSize, SimDuration, SimTime};

/// Repetitions per scaling arm.
const REPS: usize = 5;
/// Acceptance ceiling: worst per-job p99 at 16 jobs vs the 1-job p99.
const P99_RATIO_CEILING: f64 = 2.0;
/// Acceptance ceiling on max/min per-job goodput under saturation.
const GOODPUT_RATIO_CEILING: f64 = 1.3;
/// Acceptance band around the fluid oracle's share prediction.
const SHARE_TOLERANCE: f64 = 0.15;
/// Served bytes the fairness window must cover before sampling shares.
const FAIRNESS_WINDOW_BYTES: u64 = 12 << 20;
/// Shared-stripe bandwidth the virtual-time leg models (the admission
/// model's default storage bandwidth).
const MODEL_BYTES_PER_SEC: f64 = 2_000.0 * 1e6;
/// Commit payload per transfer in the virtual-time leg (one 64 KiB slot).
const MODEL_COMMIT_BYTES: u64 = 64 * 1024;
/// Per-tenant checkpoint cadence in the virtual-time leg.
const MODEL_CADENCE_US: u64 = 2_000;
/// Transfers per tenant in the virtual-time leg.
const MODEL_TRANSFERS: u64 = 20;

/// Arrival offset of tenant `i` within each cadence window: tenants
/// come in pairs 20 us apart — inside one solo service time (~33 us at
/// 64 KiB over 2 GB/s), so pair members genuinely split the stripe —
/// with pairs 150 us apart so a pair fully drains before the next
/// lands (sub-saturating: no convoy builds across the window).
fn model_offset_us(i: u64) -> u64 {
    (i / 2) * 150 + (i % 2) * 20
}

/// Replays `jobs` staggered tenants through the processor-sharing fluid
/// model in virtual time and returns the worst per-job p99 transfer
/// latency in seconds. Open-loop arrivals: tenant `i`'s transfer `k`
/// lands at `i * stagger + k * cadence` regardless of service times, so
/// overlapping tenants split the stripe exactly as the fluid law says.
fn fluid_p99(jobs: usize) -> f64 {
    let mut fluid = FluidResource::new(Bandwidth::from_bytes_per_sec(MODEL_BYTES_PER_SEC), None);
    let mut arrivals: Vec<(SimTime, u64)> = (0..jobs as u64)
        .flat_map(|job| {
            (0..MODEL_TRANSFERS).map(move |k| {
                let at = SimTime::ZERO
                    + SimDuration::from_micros(model_offset_us(job) + k * MODEL_CADENCE_US);
                (at, job * 10_000 + k)
            })
        })
        .collect();
    arrivals.sort_by_key(|(t, id)| (*t, *id));
    let mut next_arrival = 0usize;
    let mut started: Vec<(u64, SimTime)> = Vec::new();
    let mut latencies: Vec<Vec<f64>> = vec![Vec::new(); jobs];
    let mut now = SimTime::ZERO;
    loop {
        let arrival = arrivals.get(next_arrival).map(|(t, _)| *t);
        let completion = fluid.next_completion(now);
        let next = match (arrival, completion) {
            (None, None) => break,
            (Some(a), None) => a,
            (None, Some(c)) => c,
            (Some(a), Some(c)) => a.min(c),
        };
        now = next;
        for id in fluid.take_completed(now) {
            let i = started.iter().position(|(s, _)| *s == id).expect("started");
            let (_, at) = started.swap_remove(i);
            latencies[(id / 10_000) as usize].push(now.saturating_since(at).as_secs_f64());
        }
        while next_arrival < arrivals.len() && arrivals[next_arrival].0 <= now {
            let (at, id) = arrivals[next_arrival];
            fluid.add_job(id, ByteSize::from_bytes(MODEL_COMMIT_BYTES), at);
            started.push((id, at));
            next_arrival += 1;
        }
    }
    latencies
        .iter()
        .map(|v| {
            let mut sorted = v.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let idx = ((sorted.len() as f64 * 0.99).ceil() as usize).max(1) - 1;
            sorted[idx.min(sorted.len() - 1)]
        })
        .fold(0.0f64, f64::max)
}

/// One scaling rep: run `jobs` staggered sim tenants to completion on a
/// fresh daemon and return the worst per-job commit p99 in seconds.
fn scaling_rep(jobs: usize) -> f64 {
    let daemon = Daemon::new(DaemonConfig::sim_default()).expect("daemon");
    for i in 0..jobs {
        // Paced cadence: one 64 KiB commit every ~2 ms per tenant keeps
        // the stripe well under saturation even at 16 tenants, so the
        // leg measures arbitration quality, not queueing collapse.
        let spec = JobSpec {
            iterations: 40,
            pacing: Duration::from_millis(1),
            ..JobSpec::sim(&format!("scale-{i}"))
        };
        daemon.submit(spec).expect("admitted");
        // Staggered arrivals: tenants phase-shift instead of slamming
        // the stripe in lockstep.
        std::thread::sleep(Duration::from_micros(200));
    }
    daemon.join_all().expect("all jobs drain");
    let mut worst = 0u64;
    for i in 0..jobs {
        let t = daemon
            .job_telemetry(&format!("scale-{i}"))
            .expect("job telemetry");
        let p99 = t
            .snapshot()
            .expect("telemetry enabled")
            .phase(Phase::Commit)
            .p99_nanos;
        worst = worst.max(p99);
    }
    let report = daemon.shutdown().expect("audit");
    assert!(report.is_clean(), "scaling run left a dirty store");
    worst as f64 / 1e9
}

/// The fairness leg: four equal-weight tenants with deep iteration
/// budgets saturate the pool; shares are sampled over a byte-metered
/// window that opens only after every tenant is demonstrably backlogged.
fn fairness_leg() -> (Vec<(u64, u64)>, f64, f64) {
    let daemon = Daemon::new(DaemonConfig::sim_default()).expect("daemon");
    let names: Vec<String> = (0..4).map(|i| format!("fair-{i}")).collect();
    for name in &names {
        let spec = JobSpec {
            iterations: 200_000,
            interval: 2,
            ..JobSpec::sim(name)
        };
        daemon.submit(spec).expect("admitted");
    }
    // Window opens when every tenant has committed (all backlogged).
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let rows = daemon.jobs();
        if rows.iter().all(|r| r.committed >= 2) {
            break;
        }
        assert!(Instant::now() < deadline, "tenants never warmed up");
        std::thread::yield_now();
    }
    daemon.qos().reset_shares();
    // Window closes on total served bytes — a cut that does not
    // condition on how the arbiter split them.
    loop {
        let total: u64 = daemon.qos().shares().iter().map(|(_, b)| *b).sum();
        if total >= FAIRNESS_WINDOW_BYTES {
            break;
        }
        assert!(Instant::now() < deadline, "window never filled");
        std::thread::sleep(Duration::from_millis(1));
    }
    let shares = daemon.qos().shares();
    for name in &names {
        daemon.drain(name).expect("drain");
    }
    let report = daemon.shutdown().expect("audit");
    assert!(report.is_clean(), "fairness run left a dirty store");

    // The oracle: a processor-sharing fluid resource with four equal,
    // continuously backlogged tenants serves each at rate/4 — the
    // predicted share is uniform no matter the window length.
    let mut fluid = FluidResource::new(Bandwidth::from_bytes_per_sec(2_000.0 * 1e6), None);
    for id in 1..=4u64 {
        fluid.add_job(id, ByteSize::from_mb(64.0), SimTime::ZERO);
    }
    let oracle_share = fluid.rate_per_job() / (fluid.rate_per_job() * fluid.active_jobs() as f64);

    let served: Vec<u64> = shares.iter().map(|(_, b)| *b).collect();
    let total: u64 = served.iter().sum();
    let goodput_ratio =
        *served.iter().max().unwrap() as f64 / (*served.iter().min().unwrap()).max(1) as f64;
    let worst_dev = served
        .iter()
        .map(|&b| ((b as f64 / total as f64) - oracle_share).abs() / oracle_share)
        .fold(0.0f64, f64::max);
    (shares, goodput_ratio, worst_dev)
}

// ---- Crash-audit leg: two tenants, five crash points ------------------

struct Tenants {
    ssd: Arc<SsdDevice>,
    engines: [Arc<PcCheckEngine>; 2],
    gpus: [Gpu; 2],
}

fn tenants() -> Tenants {
    let size = ByteSize::from_bytes(4096);
    let cap = CheckpointStore::required_capacity_service(size, 8, 128, 4) + ByteSize::from_kb(4);
    let ssd = Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
    let dev: Arc<dyn PersistentDevice> = ssd.clone();
    let store = Arc::new(CheckpointStore::format_service(dev, size, 8, 128, 4).expect("format"));
    store.allocate_namespace(1, 4).expect("ns 1");
    store.allocate_namespace(2, 4).expect("ns 2");
    let qos = Arc::new(QosArbiter::new(QosConfig::default()));
    qos.register_job(1, 1);
    qos.register_job(2, 2);
    let pipeline = Arc::new(
        PersistPipeline::new(Arc::clone(&store))
            .with_writers(2)
            .with_staging(HostBufferPool::new(ByteSize::from_bytes(512), 6))
            .with_qos(qos),
    );
    let config = PcCheckConfig::builder()
        .max_concurrent(2)
        .writer_threads(2)
        .chunk_size(ByteSize::from_bytes(512))
        .dram_chunks(6)
        .build()
        .expect("valid config");
    Tenants {
        engines: [
            Arc::new(
                PcCheckEngine::with_shared(config.clone(), Arc::clone(&pipeline), 1)
                    .expect("job 1"),
            ),
            Arc::new(PcCheckEngine::with_shared(config, Arc::clone(&pipeline), 2).expect("job 2")),
        ],
        gpus: [
            Gpu::new(
                GpuConfig::fast_for_tests(),
                TrainingState::synthetic(size, 101),
            ),
            Gpu::new(
                GpuConfig::fast_for_tests(),
                TrainingState::synthetic(size, 202),
            ),
        ],
        ssd,
    }
}

/// Audit the frozen device and check both namespaces' recovery against
/// the audit's prediction. Returns false (instead of panicking) so the
/// bench can report which crash point failed.
fn audited_clean(t: &Tenants, issued: [u64; 2]) -> bool {
    let Ok(report) = pccheck_monitor::audit(t.ssd.clone() as Arc<dyn PersistentDevice>) else {
        return false;
    };
    if !report.is_clean() {
        eprintln!("{}", report.render());
        return false;
    }
    for job in [1u64, 2] {
        let predicted = report
            .namespace_recovery
            .iter()
            .find(|(j, _)| *j == job)
            .and_then(|(_, m)| *m);
        match recovery::recover_job(t.ssd.clone() as Arc<dyn PersistentDevice>, job) {
            Ok(rec) => {
                if rec.iteration > issued[(job - 1) as usize]
                    || predicted.map(|m| m.counter) != Some(rec.counter)
                {
                    return false;
                }
            }
            Err(PccheckError::NoCheckpoint) => {
                if predicted.is_some() {
                    return false;
                }
            }
            Err(_) => return false,
        }
    }
    true
}

fn crash(t: &Tenants) {
    t.ssd.crash_now();
    for engine in &t.engines {
        engine.drain();
    }
    t.ssd.recover();
}

/// Runs crash point `point` (0..5) with both tenants interleaved and
/// returns whether the frozen image audited clean.
fn crash_point(point: usize) -> bool {
    let t = tenants();
    let interleave = |from: u64, iters: u64| {
        for iter in from..from + iters {
            for (i, engine) in t.engines.iter().enumerate() {
                t.gpus[i].update();
                engine.checkpoint(&t.gpus[i], iter);
            }
        }
    };
    let issued = match point {
        // 1: first checkpoints still in flight on both tenants.
        0 => {
            interleave(1, 1);
            [1, 1]
        }
        // 2: tenant 1 drained a commit; tenant 2 crashes mid-burst.
        1 => {
            t.gpus[0].update();
            t.engines[0].checkpoint(&t.gpus[0], 1);
            t.engines[0].drain();
            for iter in 1..=3u64 {
                t.gpus[1].update();
                t.engines[1].checkpoint(&t.gpus[1], iter);
            }
            [1, 3]
        }
        // 3: both have drained baselines plus fresh in-flight work.
        2 => {
            interleave(1, 2);
            for engine in &t.engines {
                engine.drain();
            }
            interleave(3, 2);
            [4, 4]
        }
        // 4: clean-shutdown shape — both drained, then the crash.
        3 => {
            interleave(1, 3);
            for engine in &t.engines {
                engine.drain();
            }
            [3, 3]
        }
        // 5: asymmetric — tenant 1 idle after drain, tenant 2 bursting.
        _ => {
            t.gpus[0].update();
            t.engines[0].checkpoint(&t.gpus[0], 1);
            t.engines[0].drain();
            for iter in 1..=4u64 {
                t.gpus[1].update();
                t.engines[1].checkpoint(&t.gpus[1], iter);
            }
            [1, 4]
        }
    };
    crash(&t);
    audited_clean(&t, issued)
}

fn main() {
    println!(
        "[bench_pr8] multi-tenant daemon: scaling 1->4->16 jobs on a shared \
         4-way stripe, {REPS} reps per arm"
    );

    // Leg 1: per-job commit p99 scaling.
    let arms = [1usize, 4, 16];
    let mut p99s: Vec<Vec<f64>> = Vec::new();
    for &jobs in &arms {
        let mut reps = Vec::with_capacity(REPS);
        for rep in 0..REPS {
            let worst = scaling_rep(jobs);
            println!(
                "  {jobs:>2} job(s) rep {rep}: worst per-job p99 {:.3} ms",
                worst * 1e3
            );
            reps.push(worst);
        }
        p99s.push(reps);
    }
    let solo_p99 = median(&p99s[0]);
    let dense_p99 = median(&p99s[2]);
    let wall_ratio = dense_p99 / solo_p99;
    let noise = rel_iqr(&p99s[0]).max(rel_iqr(&p99s[2]));
    let effective_ceiling = P99_RATIO_CEILING * (1.0 + noise);
    // With fewer cores than tenants, a wall-clock commit span measures
    // CPU run-queue delay (16 worker threads time-sharing the cores),
    // not stripe arbitration — report but don't gate (the bench_pr6
    // convention for host-resolution-limited wall-clock gates).
    let cores = host_cores();
    let wall_gate_enforced = cores >= *arms.last().unwrap();
    println!(
        "  wall-clock p99 medians: 1 job {:.3} ms, 16 jobs {:.3} ms -> ratio {:.2}x \
         (noise {:.1}%, effective ceiling {:.2}x{})",
        solo_p99 * 1e3,
        dense_p99 * 1e3,
        wall_ratio,
        noise * 100.0,
        effective_ceiling,
        if wall_gate_enforced {
            ""
        } else {
            ", informational: fewer cores than tenants"
        }
    );

    // The enforced 2x gate: the same staggered sub-saturating schedule
    // replayed through the fluid model in virtual time — deterministic,
    // free of host scheduling, and exactly the processor-sharing law
    // the QoS arbiter approximates.
    let fluid_solo = fluid_p99(1);
    let fluid_dense = fluid_p99(16);
    let ratio = fluid_dense / fluid_solo;
    let scaling_pass =
        ratio <= P99_RATIO_CEILING && (!wall_gate_enforced || wall_ratio <= effective_ceiling);
    println!(
        "  fluid-model p99: 1 job {:.1} us, 16 jobs {:.1} us -> ratio {:.2}x \
         (ceiling {P99_RATIO_CEILING}x)",
        fluid_solo * 1e6,
        fluid_dense * 1e6,
        ratio
    );

    // Leg 2: fairness vs the fluid oracle.
    let (shares, goodput_ratio, worst_dev) = fairness_leg();
    let fairness_pass = goodput_ratio <= GOODPUT_RATIO_CEILING && worst_dev <= SHARE_TOLERANCE;
    println!(
        "  fairness: served {:?}, max/min {:.3} (ceiling {GOODPUT_RATIO_CEILING}), \
         worst oracle deviation {:.1}% (tolerance {:.0}%)",
        shares,
        goodput_ratio,
        worst_dev * 100.0,
        SHARE_TOLERANCE * 100.0
    );

    // Leg 3: five crash points with interleaved tenants.
    let crash_results: Vec<bool> = (0..5).map(crash_point).collect();
    let crash_pass = crash_results.iter().all(|&ok| ok);
    println!(
        "  crash audit: {} ({} of 5 points clean)",
        if crash_pass { "clean" } else { "DIRTY" },
        crash_results.iter().filter(|&&ok| ok).count()
    );

    let pass = scaling_pass && fairness_pass && crash_pass;

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"bench_pr8\",\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"arms\": [1, 4, 16], \"reps\": {REPS}, \"stripe_ways\": 4, \
         \"slot_kb\": 64, \"fairness_window_bytes\": {FAIRNESS_WINDOW_BYTES}}},"
    );
    let row = |v: &[f64]| {
        v.iter()
            .map(|s| format!("{s:.6}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    for (i, &jobs) in arms.iter().enumerate() {
        let _ = writeln!(json, "  \"p99_secs_{jobs}_jobs\": [{}],", row(&p99s[i]));
    }
    let share_rows: Vec<String> = shares
        .iter()
        .map(|(j, b)| format!("{{\"job\": {j}, \"served_bytes\": {b}}}"))
        .collect();
    let _ = writeln!(json, "  \"fairness_shares\": [{}],", share_rows.join(", "));
    let crash_rows: Vec<String> = crash_results.iter().map(|b| b.to_string()).collect();
    let _ = writeln!(
        json,
        "  \"crash_points_clean\": [{}],",
        crash_rows.join(", ")
    );
    let _ = writeln!(
        json,
        "  \"acceptance\": {{\"fluid_solo_p99_secs\": {fluid_solo:.9}, \
         \"fluid_dense_p99_secs\": {fluid_dense:.9}, \"p99_ratio\": {ratio:.4}, \
         \"p99_ceiling\": {P99_RATIO_CEILING}, \"wall_solo_p99_secs\": {solo_p99:.6}, \
         \"wall_dense_p99_secs\": {dense_p99:.6}, \"wall_ratio\": {wall_ratio:.4}, \
         \"wall_gate_enforced\": {wall_gate_enforced}, \"measured_noise\": {noise:.4}, \
         \"wall_effective_ceiling\": {effective_ceiling:.4}, \
         \"goodput_ratio\": {goodput_ratio:.4}, \"goodput_ceiling\": \
         {GOODPUT_RATIO_CEILING}, \"worst_share_deviation\": {worst_dev:.4}, \
         \"share_tolerance\": {SHARE_TOLERANCE}, \"pass\": {pass}}}\n}}"
    );

    let path = bench_json_path("BENCH_pr8.json");
    std::fs::write(&path, &json).expect("write BENCH_pr8.json");
    println!("[bench_pr8] wrote {path}");

    assert!(
        scaling_pass,
        "16-job worst per-job p99 is {ratio:.2}x the 1-job p99 in the fluid \
         model (gate {P99_RATIO_CEILING}x); wall-clock ratio {wall_ratio:.2}x \
         (enforced: {wall_gate_enforced})"
    );
    assert!(
        fairness_pass,
        "fairness gate failed: max/min {goodput_ratio:.3}, worst oracle \
         deviation {:.1}%",
        worst_dev * 100.0
    );
    assert!(
        crash_pass,
        "a crash point left an inconsistent store: {crash_results:?}"
    );
}

//! Criterion benchmark crate: see `benches/`. Each bench target prints
//! the paper figure/table rows it regenerates, then measures a
//! representative code path.
//!
//! The [`stats`] module is the shared acceptance scaffolding for the
//! `bench_prN` gate benches: every gate summarizes interleaved reps with
//! a median, widens its ceiling to the measured run-to-run noise, and
//! only enforces wall-clock comparisons when the host has enough cores
//! for the widest arm. Keeping those rules in one place means every PR
//! gate applies the same noise discipline.

/// Acceptance statistics shared by the `bench_prN` gate benches.
pub mod stats {
    /// Measured overheads with magnitude under this fraction are
    /// scheduler noise, not signal.
    pub const NOISE_FLOOR: f64 = 0.01;

    /// Median of a sample (the run summary statistic — robust to the odd
    /// slow rep, unlike best-of-reps, which systematically
    /// under-reports).
    ///
    /// # Panics
    ///
    /// Panics on an empty sample or NaN entries.
    pub fn median(v: &[f64]) -> f64 {
        let mut sorted = v.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        sorted[sorted.len() / 2]
    }

    /// Relative inter-quartile range: (q3 - q1) / median. The run-to-run
    /// noise of one arm, as a fraction of its typical value — the finest
    /// overhead this host can actually resolve.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample or NaN entries.
    pub fn rel_iqr(v: &[f64]) -> f64 {
        let mut sorted = v.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = sorted.len();
        let (q1, q3) = (sorted[n / 4], sorted[n - 1 - n / 4]);
        let med = sorted[n / 2];
        if med > 0.0 {
            (q3 - q1) / med
        } else {
            0.0
        }
    }

    /// Widens `ceiling` to the worst measured arm noise (and never below
    /// [`NOISE_FLOOR`]): a gate can only resolve overheads as fine as
    /// the host's own jitter.
    pub fn effective_ceiling(ceiling: f64, arms: &[&[f64]]) -> f64 {
        arms.iter()
            .map(|arm| rel_iqr(arm))
            .fold(ceiling.max(NOISE_FLOOR), f64::max)
    }

    /// Cores available to this process (1 when undeterminable). Gates
    /// compare against the widest thread arm: threads time-sharing one
    /// core measure the scheduler, not the protocol.
    pub fn host_cores() -> usize {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }

    /// Repository-root path for a `BENCH_prN.json` artifact (resolved
    /// from `CARGO_MANIFEST_DIR` when cargo sets it, the working
    /// directory otherwise).
    pub fn bench_json_path(file: &str) -> String {
        let root = std::env::var("CARGO_MANIFEST_DIR")
            .map(|d| format!("{d}/../.."))
            .unwrap_or_else(|_| ".".into());
        format!("{root}/{file}")
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn median_is_order_insensitive() {
            assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
            assert_eq!(median(&[5.0]), 5.0);
        }

        #[test]
        fn rel_iqr_scales_with_spread() {
            assert_eq!(rel_iqr(&[2.0, 2.0, 2.0]), 0.0);
            let tight = rel_iqr(&[10.0, 10.1, 9.9, 10.0, 10.05]);
            let loose = rel_iqr(&[10.0, 14.0, 6.0, 10.0, 12.0]);
            assert!(loose > tight);
        }

        #[test]
        fn effective_ceiling_never_narrows() {
            assert_eq!(effective_ceiling(0.02, &[&[1.0, 1.0, 1.0]]), 0.02);
            let noisy = [10.0, 14.0, 6.0, 10.0, 12.0];
            assert!(effective_ceiling(0.02, &[&noisy]) > 0.02);
            // Floor applies even when the ceiling asks for finer.
            assert_eq!(effective_ceiling(0.001, &[&[1.0, 1.0, 1.0]]), NOISE_FLOOR);
        }

        #[test]
        fn bench_json_path_lands_at_repo_root() {
            let p = bench_json_path("BENCH_test.json");
            assert!(p.ends_with("BENCH_test.json"));
        }
    }
}

//! Criterion benchmark crate: see `benches/`. Each bench target prints the paper figure/table rows it regenerates, then measures a representative code path.

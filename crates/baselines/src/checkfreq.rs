//! CheckFreq-style pipelined checkpointing (Figure 4).
//!
//! CheckFreq splits a checkpoint into a *snapshot* phase (copy weights to
//! DRAM) and a *persist* phase (flush to storage), and overlaps both with
//! training. Its limitation — the one PCcheck removes — is that only one
//! checkpoint may be in flight: if the next boundary arrives while the
//! previous persist is still running, the training thread stalls inside
//! `checkpoint()` until it completes.

use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

use pccheck::store::CheckpointStore;
use pccheck::{CommitOutcome, PccheckError, PersistPipeline, PipelineCtx};
use pccheck_device::PersistentDevice;
use pccheck_gpu::{CheckpointOutcome, Checkpointer, Gpu};
use pccheck_telemetry::{Phase, Telemetry};
use pccheck_util::ByteSize;

/// The one-checkpoint-at-a-time asynchronous baseline.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use pccheck_baselines::CheckFreqCheckpointer;
/// use pccheck_device::{DeviceConfig, PersistentDevice, SsdDevice};
/// use pccheck_gpu::{Checkpointer, Gpu, GpuConfig, TrainingState};
/// use pccheck_util::ByteSize;
///
/// # fn main() -> Result<(), pccheck::PccheckError> {
/// let gpu = Gpu::new(
///     GpuConfig::fast_for_tests(),
///     TrainingState::synthetic(ByteSize::from_kb(4), 1),
/// );
/// let device: Arc<dyn PersistentDevice> = Arc::new(SsdDevice::new(
///     DeviceConfig::fast_for_tests(ByteSize::from_kb(64)),
/// ));
/// let ckpt = CheckFreqCheckpointer::new(device, gpu.state_size())?;
/// gpu.update();
/// ckpt.checkpoint(&gpu, 1); // returns once the snapshot is in DRAM
/// ckpt.drain();             // waits for the persist
/// assert_eq!(ckpt.last_committed().unwrap().iteration, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CheckFreqCheckpointer {
    pipeline: PersistPipeline,
    /// The single in-flight persist, if any. Next checkpoint joins it.
    in_flight: Mutex<Option<JoinHandle<()>>>,
    last: Arc<Mutex<Option<CheckpointOutcome>>>,
    telemetry: Telemetry,
}

impl CheckFreqCheckpointer {
    /// Creates the checkpointer with a two-slot store on `device`.
    ///
    /// # Errors
    ///
    /// Returns [`PccheckError::InvalidConfig`] if the device cannot hold two
    /// checkpoints.
    pub fn new(
        device: Arc<dyn PersistentDevice>,
        checkpoint_size: ByteSize,
    ) -> Result<Self, PccheckError> {
        let store = CheckpointStore::format(device, checkpoint_size, 2)?;
        Ok(CheckFreqCheckpointer {
            pipeline: PersistPipeline::new(Arc::new(store)),
            in_flight: Mutex::new(None),
            last: Arc::new(Mutex::new(None)),
            telemetry: Telemetry::disabled(),
        })
    }

    /// Attaches a telemetry handle so runs are traced with the same
    /// instrumentation as [`pccheck::PcCheckEngine`].
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<CheckpointStore> {
        self.pipeline.store()
    }
}

impl Checkpointer for CheckFreqCheckpointer {
    fn checkpoint(&self, gpu: &Gpu, iteration: u64) {
        let stall_start = self.telemetry.now_nanos();
        let span = self
            .telemetry
            .span_requested(self.name(), iteration, gpu.state_size().as_u64());
        // THE CheckFreq bottleneck: wait for the previous checkpoint's
        // persist phase before starting the next snapshot.
        let mut slot = self.in_flight.lock();
        if let Some(prev) = slot.take() {
            prev.join().expect("persist thread panicked");
        }
        self.telemetry
            .phase_done(span, Phase::TicketWait, stall_start);
        self.telemetry
            .stall(span, self.telemetry.now_nanos().saturating_sub(stall_start));
        self.telemetry.span_queued(span);

        // Snapshot phase: copy the weights to DRAM. CheckFreq performs this
        // asynchronously with the *next iteration's compute*, which our
        // owned guard provides: training's T phase proceeds, U waits.
        let guard = gpu.lock_weights_shared_owned();
        let pipeline = self.pipeline.clone();
        let last = Arc::clone(&self.last);
        let telemetry = self.telemetry.clone();
        let handle = std::thread::spawn(move || {
            let ctx = PipelineCtx {
                telemetry: &telemetry,
                span,
            };
            let copy_start = telemetry.now_nanos();
            let total = guard.size();
            let digest = guard.digest();
            let host = pipeline.snapshot_whole(ctx, &guard, copy_start);
            drop(guard); // snapshot done: weight updates may resume

            // Persist phase.
            let lease = pipeline
                .persist_whole(ctx, &host, iteration)
                .expect("whole-payload persist on healthy device");
            let outcome = pipeline
                .commit(ctx, lease, iteration, total.as_u64(), digest.0)
                .expect("commit I/O on healthy device");
            match outcome {
                CommitOutcome::Committed => {
                    telemetry.committed(span, iteration, total.as_u64());
                    let mut l = last.lock();
                    if l.map_or(true, |o| o.iteration < iteration) {
                        *l = Some(CheckpointOutcome { iteration, digest });
                    }
                }
                CommitOutcome::SupersededBy { counter } => {
                    telemetry.superseded(span, counter);
                }
            }
        });
        *slot = Some(handle);
    }

    fn drain(&self) {
        if let Some(prev) = self.in_flight.lock().take() {
            prev.join().expect("persist thread panicked");
        }
    }

    fn last_committed(&self) -> Option<CheckpointOutcome> {
        *self.last.lock()
    }

    fn name(&self) -> &str {
        "checkfreq"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pccheck::recovery::{recover, verify_against_state};
    use pccheck_device::{DeviceConfig, SsdDevice};
    use pccheck_gpu::{GpuConfig, TrainingState};
    use pccheck_util::Bandwidth;

    fn setup(
        state: u64,
        throttled_mbps: Option<f64>,
    ) -> (CheckFreqCheckpointer, Gpu, Arc<SsdDevice>) {
        let gpu = Gpu::new(
            GpuConfig::fast_for_tests(),
            TrainingState::synthetic(ByteSize::from_bytes(state), 5),
        );
        let cap = CheckpointStore::required_capacity(gpu.state_size(), 2) + ByteSize::from_kb(1);
        let cfg = match throttled_mbps {
            Some(mbps) => DeviceConfig {
                capacity: cap,
                write_bandwidth: Bandwidth::from_mb_per_sec(mbps),
                throttled: true,
            },
            None => DeviceConfig::fast_for_tests(cap),
        };
        let ssd = Arc::new(SsdDevice::new(cfg));
        let dev: Arc<dyn PersistentDevice> = ssd.clone();
        let ckpt = CheckFreqCheckpointer::new(dev, gpu.state_size()).unwrap();
        (ckpt, gpu, ssd)
    }

    #[test]
    fn checkpoint_then_drain_commits() {
        let (ckpt, gpu, _ssd) = setup(300, None);
        for iter in 1..=5 {
            gpu.update();
            ckpt.checkpoint(&gpu, iter);
        }
        ckpt.drain();
        assert_eq!(ckpt.last_committed().unwrap().iteration, 5);
    }

    #[test]
    fn recovery_after_crash_returns_latest_drained() {
        let (ckpt, gpu, ssd) = setup(300, None);
        gpu.update();
        ckpt.checkpoint(&gpu, 1);
        gpu.update();
        ckpt.checkpoint(&gpu, 2);
        ckpt.drain();
        ssd.crash_now();
        ssd.recover();
        let rec = recover(ssd).unwrap();
        assert_eq!(rec.iteration, 2);
        let layout = gpu.with_weights(|s| s.layout());
        verify_against_state(&rec, &layout).unwrap();
    }

    #[test]
    fn next_checkpoint_stalls_behind_previous_persist() {
        // Slow device: ~1 MB checkpoint at 10 MB/s → ~0.1 s persist. The
        // second checkpoint() call must block roughly that long.
        let (ckpt, gpu, _ssd) = setup(1_000_000, Some(10.0));
        gpu.update();
        let t0 = std::time::Instant::now();
        ckpt.checkpoint(&gpu, 1); // returns fast (snapshot only)
        let first_call = t0.elapsed();
        gpu.update();
        let t1 = std::time::Instant::now();
        ckpt.checkpoint(&gpu, 2); // must wait for persist #1
        let second_call = t1.elapsed();
        ckpt.drain();
        assert!(
            second_call > first_call,
            "second call ({second_call:?}) should stall behind persist #1 ({first_call:?})"
        );
        assert!(
            second_call.as_secs_f64() > 0.05,
            "stall too short: {second_call:?}"
        );
    }

    #[test]
    fn snapshot_blocks_only_the_update_not_the_call() {
        let (ckpt, gpu, _ssd) = setup(300, None);
        gpu.update();
        ckpt.checkpoint(&gpu, 1);
        // With a fast device this completes promptly; updating immediately
        // after is safe (guard ordering is respected by the RwLock).
        gpu.update();
        ckpt.drain();
        assert_eq!(gpu.step_count(), 2);
    }
}

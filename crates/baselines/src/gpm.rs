//! GPM-style checkpointing: GPU kernels write straight to mapped
//! persistent memory.
//!
//! GPM extends unified virtual memory to cover a PMEM region and copies
//! checkpoint data with GPU *kernels* instead of DMA copy engines. Two
//! consequences the experiments depend on:
//!
//! * no DRAM staging (Table 1: `DRAM = 0`) — the bytes go GPU → device,
//! * training stalls for the whole checkpoint, since the copy kernels
//!   occupy the SMs and the subsequent sync + `msync`/fence runs before
//!   training resumes (§2.2: "it stalls training while persisting state").
//!
//! The SSD adaptation (the one the paper evaluates alongside PMEM) keeps
//! kernel copies into an mmapped, `cudaHostRegister`ed file and persists
//! with `cudaDeviceSynchronize` + `msync`.

use std::sync::Arc;

use parking_lot::Mutex;

use pccheck::store::CheckpointStore;
use pccheck::{PccheckError, PersistPipeline, PipelineCtx};
use pccheck_device::PersistentDevice;
use pccheck_gpu::{CheckpointOutcome, Checkpointer, Gpu};
use pccheck_telemetry::Telemetry;
use pccheck_util::ByteSize;

/// The stall-and-persist baseline.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use pccheck_baselines::GpmCheckpointer;
/// use pccheck_device::{DeviceConfig, PersistentDevice, PmemDevice, PmemWriteMode};
/// use pccheck_gpu::{Checkpointer, Gpu, GpuConfig, TrainingState};
/// use pccheck_util::ByteSize;
///
/// # fn main() -> Result<(), pccheck::PccheckError> {
/// let gpu = Gpu::new(
///     GpuConfig::fast_for_tests(),
///     TrainingState::synthetic(ByteSize::from_kb(4), 1),
/// );
/// let device: Arc<dyn PersistentDevice> = Arc::new(PmemDevice::new(
///     DeviceConfig::fast_for_tests(ByteSize::from_kb(64)),
///     PmemWriteMode::NtStore,
/// ));
/// let ckpt = GpmCheckpointer::new(device, gpu.state_size())?;
/// gpu.update();
/// ckpt.checkpoint(&gpu, 1); // stalls until durable
/// assert_eq!(ckpt.last_committed().unwrap().iteration, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct GpmCheckpointer {
    pipeline: PersistPipeline,
    last: Mutex<Option<CheckpointOutcome>>,
    telemetry: Telemetry,
}

impl GpmCheckpointer {
    /// Creates the checkpointer with a two-slot store on `device`.
    ///
    /// # Errors
    ///
    /// Returns [`PccheckError::InvalidConfig`] if the device cannot hold two
    /// checkpoints.
    pub fn new(
        device: Arc<dyn PersistentDevice>,
        checkpoint_size: ByteSize,
    ) -> Result<Self, PccheckError> {
        let store = CheckpointStore::format(device, checkpoint_size, 2)?;
        Ok(GpmCheckpointer {
            pipeline: PersistPipeline::new(Arc::new(store)),
            last: Mutex::new(None),
            telemetry: Telemetry::disabled(),
        })
    }

    /// Attaches a telemetry handle so runs are traced with the same
    /// instrumentation as [`pccheck::PcCheckEngine`].
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<CheckpointStore> {
        self.pipeline.store()
    }
}

impl Checkpointer for GpmCheckpointer {
    fn checkpoint(&self, gpu: &Gpu, iteration: u64) {
        let stall_start = self.telemetry.now_nanos();
        let span = self
            .telemetry
            .span_requested(self.name(), iteration, gpu.state_size().as_u64());
        // Inline on the training thread: the copy kernels occupy the GPU,
        // so training stalls for the duration by construction.
        let guard = gpu.lock_weights_shared();
        let total = guard.size();
        let digest = guard.digest();
        let ctx = PipelineCtx {
            telemetry: &self.telemetry,
            span,
        };
        // Lease *before* the copy (the kernels target the mapped slot),
        // then kernel write-through: GPU → device directly, no DRAM
        // staging; GPU-copy and persist overlap tile-by-tile, so both
        // phases share the same start timestamp.
        let lease = self.pipeline.lease(ctx);
        self.pipeline
            .write_through(ctx, &guard, &lease, iteration, stall_start)
            .expect("kernel write-through on healthy device");
        let outcome = self
            .pipeline
            .commit(ctx, lease, iteration, total.as_u64(), digest.0)
            .expect("commit I/O on healthy device");
        drop(guard);
        match outcome {
            pccheck::CommitOutcome::Committed => {
                self.telemetry.committed(span, iteration, total.as_u64());
                *self.last.lock() = Some(CheckpointOutcome { iteration, digest });
            }
            pccheck::CommitOutcome::SupersededBy { counter } => {
                self.telemetry.superseded(span, counter);
            }
        }
        // Whole call ran on the training thread with the SMs occupied.
        self.telemetry
            .stall(span, self.telemetry.now_nanos().saturating_sub(stall_start));
    }

    fn drain(&self) {
        // Synchronous: nothing outstanding.
    }

    fn last_committed(&self) -> Option<CheckpointOutcome> {
        *self.last.lock()
    }

    fn name(&self) -> &str {
        "gpm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pccheck::recovery::{recover, verify_against_state};
    use pccheck_device::{DeviceConfig, PmemDevice, PmemWriteMode, SsdDevice};
    use pccheck_gpu::{GpuConfig, TrainingState};

    fn gpu(state: u64) -> Gpu {
        Gpu::new(
            GpuConfig::fast_for_tests(),
            TrainingState::synthetic(ByteSize::from_bytes(state), 9),
        )
    }

    #[test]
    fn works_on_pmem_with_per_thread_fence() {
        let g = gpu(300);
        let cap = CheckpointStore::required_capacity(g.state_size(), 2) + ByteSize::from_kb(1);
        let pmem = Arc::new(PmemDevice::new(
            DeviceConfig::fast_for_tests(cap),
            PmemWriteMode::NtStore,
        ));
        let dev: Arc<dyn PersistentDevice> = pmem.clone();
        let ckpt = GpmCheckpointer::new(dev, g.state_size()).unwrap();
        g.update();
        ckpt.checkpoint(&g, 1);
        pmem.crash_now();
        pmem.recover();
        let rec = recover(pmem).unwrap();
        assert_eq!(rec.iteration, 1);
        let layout = g.with_weights(|s| s.layout());
        verify_against_state(&rec, &layout).unwrap();
    }

    #[test]
    fn works_on_ssd_adaptation() {
        let g = gpu(500);
        let cap = CheckpointStore::required_capacity(g.state_size(), 2) + ByteSize::from_kb(1);
        let ssd = Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        let dev: Arc<dyn PersistentDevice> = ssd.clone();
        let ckpt = GpmCheckpointer::new(dev, g.state_size()).unwrap();
        for iter in 1..=3 {
            g.update();
            ckpt.checkpoint(&g, iter);
        }
        assert_eq!(ckpt.last_committed().unwrap().iteration, 3);
        assert_eq!(ckpt.name(), "gpm");
        ssd.crash_now();
        ssd.recover();
        assert_eq!(recover(ssd).unwrap().iteration, 3);
    }

    #[test]
    fn checkpoint_is_synchronous_no_drain_needed() {
        let g = gpu(200);
        let cap = CheckpointStore::required_capacity(g.state_size(), 2) + ByteSize::from_kb(1);
        let dev: Arc<dyn PersistentDevice> =
            Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        let ckpt = GpmCheckpointer::new(dev, g.state_size()).unwrap();
        g.update();
        ckpt.checkpoint(&g, 1);
        ckpt.drain();
        assert_eq!(ckpt.store().latest_committed().unwrap().iteration, 1);
    }
}

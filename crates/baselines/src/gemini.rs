//! Gemini-style in-memory checkpointing to a remote machine's DRAM.
//!
//! Gemini avoids slow persistent storage by replicating the training state
//! into another machine's CPU memory over the network, interleaved with
//! training traffic. The paper's finding (§5.2.1): over the ~15 Gbps links
//! typical of cloud VMs, the transfer cannot hide, and because Gemini too
//! allows only one checkpoint at a time, frequent checkpointing stalls
//! training just like CheckFreq.
//!
//! The remote layout is a simple two-slot region in the peer's memory:
//! `[meta 64B | payload]` per slot, alternating; the meta record is written
//! after the payload, so a torn transfer never masquerades as complete.
//! Remote DRAM survives *local* failures but is lost if the peer fails —
//! the trade-off Table 1 captures with `Storage = 0`.

use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

use pccheck::meta::{CheckMeta, META_RECORD_SIZE};
use pccheck::PccheckError;
use pccheck_device::{DeviceError, NetworkLink};
use pccheck_gpu::{CheckpointOutcome, Checkpointer, Gpu};
use pccheck_telemetry::{Phase, Telemetry};
use pccheck_util::ByteSize;

/// The remote-DRAM baseline.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use pccheck_baselines::GeminiCheckpointer;
/// use pccheck_device::{NetworkConfig, NetworkLink};
/// use pccheck_gpu::{Checkpointer, Gpu, GpuConfig, TrainingState};
/// use pccheck_util::ByteSize;
///
/// # fn main() -> Result<(), pccheck::PccheckError> {
/// let gpu = Gpu::new(
///     GpuConfig::fast_for_tests(),
///     TrainingState::synthetic(ByteSize::from_kb(4), 1),
/// );
/// let link = Arc::new(NetworkLink::new(
///     NetworkConfig::fast_for_tests(),
///     ByteSize::from_kb(64),
/// ));
/// let ckpt = GeminiCheckpointer::new(link, gpu.state_size())?;
/// gpu.update();
/// ckpt.checkpoint(&gpu, 1);
/// ckpt.drain();
/// assert_eq!(ckpt.last_committed().unwrap().iteration, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct GeminiCheckpointer {
    link: Arc<NetworkLink>,
    checkpoint_size: ByteSize,
    counter: Mutex<u64>,
    in_flight: Mutex<Option<JoinHandle<()>>>,
    last: Arc<Mutex<Option<CheckpointOutcome>>>,
    telemetry: Telemetry,
}

impl GeminiCheckpointer {
    /// Creates the checkpointer over `link`, whose peer must expose room
    /// for two checkpoints plus their meta records.
    ///
    /// # Errors
    ///
    /// Returns [`PccheckError::InvalidConfig`] if the peer's memory is too
    /// small.
    pub fn new(link: Arc<NetworkLink>, checkpoint_size: ByteSize) -> Result<Self, PccheckError> {
        let needed = Self::required_remote_capacity(checkpoint_size);
        if link.remote().capacity() < needed {
            return Err(PccheckError::InvalidConfig(format!(
                "remote memory {} < required {}",
                link.remote().capacity(),
                needed
            )));
        }
        Ok(GeminiCheckpointer {
            link,
            checkpoint_size,
            counter: Mutex::new(1),
            in_flight: Mutex::new(None),
            last: Arc::new(Mutex::new(None)),
            telemetry: Telemetry::disabled(),
        })
    }

    /// Attaches a telemetry handle so runs are traced with the same
    /// instrumentation as [`pccheck::PcCheckEngine`].
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Remote memory needed for two alternating slots.
    pub fn required_remote_capacity(checkpoint_size: ByteSize) -> ByteSize {
        (ByteSize::from_bytes(META_RECORD_SIZE) + checkpoint_size) * 2
    }

    fn slot_offset(checkpoint_size: ByteSize, slot: u32) -> u64 {
        u64::from(slot) * (META_RECORD_SIZE + checkpoint_size.as_u64())
    }

    /// The network link (for failure injection in tests).
    pub fn link(&self) -> &Arc<NetworkLink> {
        &self.link
    }

    /// Recovers the latest complete checkpoint from the peer's memory.
    ///
    /// # Errors
    ///
    /// * [`PccheckError::NoCheckpoint`] if neither slot holds a complete
    ///   checkpoint (including after a peer failure, which clears its DRAM —
    ///   Gemini's fundamental exposure).
    /// * [`PccheckError::Device`] if the peer is unreachable.
    pub fn recover_from_remote(
        link: &NetworkLink,
        checkpoint_size: ByteSize,
    ) -> Result<pccheck::RecoveredCheckpoint, PccheckError> {
        let mut best: Option<CheckMeta> = None;
        for slot in 0..2u32 {
            let off = Self::slot_offset(checkpoint_size, slot);
            let mut rec = [0u8; META_RECORD_SIZE as usize];
            match link.remote().read(off, &mut rec) {
                Ok(()) => {}
                Err(DeviceError::PeerUnavailable) => {
                    return Err(PccheckError::Device(DeviceError::PeerUnavailable))
                }
                Err(e) => return Err(e.into()),
            }
            if let Some(meta) = CheckMeta::decode(&rec) {
                if meta.slot == slot && best.map_or(true, |b| meta.counter > b.counter) {
                    best = Some(meta);
                }
            }
        }
        let meta = best.ok_or(PccheckError::NoCheckpoint)?;
        let mut payload = vec![0u8; meta.payload_len as usize];
        link.remote().read(
            Self::slot_offset(checkpoint_size, meta.slot) + META_RECORD_SIZE,
            &mut payload,
        )?;
        Ok(pccheck::RecoveredCheckpoint {
            iteration: meta.iteration,
            counter: meta.counter,
            payload,
            digest: meta.digest,
        })
    }
}

impl Checkpointer for GeminiCheckpointer {
    fn checkpoint(&self, gpu: &Gpu, iteration: u64) {
        let stall_start = self.telemetry.now_nanos();
        let span = self
            .telemetry
            .span_requested(self.name(), iteration, gpu.state_size().as_u64());
        // Like CheckFreq: one checkpoint at a time. Wait out the previous
        // network transfer before snapshotting the next.
        let mut slot_guard = self.in_flight.lock();
        if let Some(prev) = slot_guard.take() {
            prev.join().expect("transfer thread panicked");
        }
        self.telemetry
            .phase_done(span, Phase::TicketWait, stall_start);
        self.telemetry
            .stall(span, self.telemetry.now_nanos().saturating_sub(stall_start));
        self.telemetry.span_queued(span);

        let counter = {
            let mut c = self.counter.lock();
            let v = *c;
            *c += 1;
            v
        };
        let slot = (counter % 2) as u32;
        let guard = gpu.lock_weights_shared_owned();
        let link = Arc::clone(&self.link);
        let last = Arc::clone(&self.last);
        let checkpoint_size = self.checkpoint_size;
        let telemetry = self.telemetry.clone();
        let handle = std::thread::spawn(move || {
            let copy_start = telemetry.now_nanos();
            let total = guard.size();
            let digest = guard.digest();
            // Snapshot first (fast GPU-side copy), releasing the weights
            // before the slow network transfer — Gemini's pipeline keeps
            // training running while the state ships to the peer.
            let mut snapshot = vec![0u8; total.as_usize()];
            guard.copy_range_to_host(0, &mut snapshot);
            drop(guard);
            telemetry.chunk(span, Phase::GpuCopy, 0, total.as_u64());
            telemetry.phase_done(span, Phase::GpuCopy, copy_start);
            // Ship over the network in GPU-buffer-sized pieces (§3.2's
            // 32 MB staging buffer).
            let persist_start = telemetry.now_nanos();
            let base = GeminiCheckpointer::slot_offset(checkpoint_size, slot);
            let piece = (32 * 1024 * 1024).min(snapshot.len().max(1));
            let mut off = 0usize;
            let mut ok = true;
            while off < snapshot.len() {
                let n = piece.min(snapshot.len() - off);
                if link
                    .send(
                        base + META_RECORD_SIZE + off as u64,
                        &snapshot[off..off + n],
                    )
                    .is_err()
                {
                    ok = false; // peer failed mid-transfer; slot stays torn
                    break;
                }
                telemetry.chunk(span, Phase::Persist, off as u64, n as u64);
                off += n;
            }
            telemetry.phase_done(span, Phase::Persist, persist_start);
            let mut committed = false;
            if ok {
                let meta = CheckMeta {
                    counter,
                    slot,
                    iteration,
                    payload_len: total.as_u64(),
                    digest: digest.0,
                    delta: None,
                };
                let commit_start = telemetry.now_nanos();
                let sent = link.send(base, &meta.encode()).is_ok();
                telemetry.phase_done(span, Phase::Commit, commit_start);
                if sent {
                    committed = true;
                    telemetry.committed(span, iteration, total.as_u64());
                    let mut l = last.lock();
                    if l.map_or(true, |o| o.iteration < iteration) {
                        *l = Some(CheckpointOutcome { iteration, digest });
                    }
                }
            }
            if !committed {
                telemetry.failed(span, "peer unavailable mid-transfer");
            }
        });
        *slot_guard = Some(handle);
    }

    fn drain(&self) {
        if let Some(prev) = self.in_flight.lock().take() {
            prev.join().expect("transfer thread panicked");
        }
    }

    fn last_committed(&self) -> Option<CheckpointOutcome> {
        *self.last.lock()
    }

    fn name(&self) -> &str {
        "gemini"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pccheck_device::NetworkConfig;
    use pccheck_gpu::{GpuConfig, TrainingState};
    use pccheck_util::{Bandwidth, SimDuration};

    fn setup(state: u64) -> (GeminiCheckpointer, Gpu) {
        let gpu = Gpu::new(
            GpuConfig::fast_for_tests(),
            TrainingState::synthetic(ByteSize::from_bytes(state), 13),
        );
        let cap = GeminiCheckpointer::required_remote_capacity(gpu.state_size());
        let link = Arc::new(NetworkLink::new(NetworkConfig::fast_for_tests(), cap));
        let ckpt = GeminiCheckpointer::new(link, gpu.state_size()).unwrap();
        (ckpt, gpu)
    }

    #[test]
    fn checkpoint_lands_in_remote_memory() {
        let (ckpt, gpu) = setup(300);
        for iter in 1..=4 {
            gpu.update();
            ckpt.checkpoint(&gpu, iter);
        }
        ckpt.drain();
        assert_eq!(ckpt.last_committed().unwrap().iteration, 4);
        let rec = GeminiCheckpointer::recover_from_remote(ckpt.link(), gpu.state_size()).unwrap();
        assert_eq!(rec.iteration, 4);
        let layout = gpu.with_weights(|s| s.layout());
        pccheck::recovery::verify_against_state(&rec, &layout).unwrap();
    }

    #[test]
    fn local_failure_recovers_from_peer() {
        let (ckpt, gpu) = setup(300);
        gpu.update();
        ckpt.checkpoint(&gpu, 1);
        ckpt.drain();
        let digest_at_1 = gpu.digest();
        // "Local" node loses its GPU state entirely; recover from the peer.
        let rec = GeminiCheckpointer::recover_from_remote(ckpt.link(), gpu.state_size()).unwrap();
        let fresh = Gpu::new(
            GpuConfig::fast_for_tests(),
            TrainingState::synthetic(ByteSize::from_bytes(300), 777),
        );
        rec.restore_into(&fresh);
        assert_eq!(fresh.digest(), digest_at_1);
    }

    #[test]
    fn peer_failure_loses_all_checkpoints() {
        let (ckpt, gpu) = setup(300);
        gpu.update();
        ckpt.checkpoint(&gpu, 1);
        ckpt.drain();
        ckpt.link().remote().fail_peer();
        let err =
            GeminiCheckpointer::recover_from_remote(ckpt.link(), gpu.state_size()).unwrap_err();
        assert!(matches!(
            err,
            PccheckError::Device(DeviceError::PeerUnavailable)
        ));
        // A replacement peer starts empty: no checkpoint at all.
        ckpt.link().remote().replace_peer();
        let err =
            GeminiCheckpointer::recover_from_remote(ckpt.link(), gpu.state_size()).unwrap_err();
        assert_eq!(err, PccheckError::NoCheckpoint);
    }

    #[test]
    fn torn_transfer_is_not_recoverable_as_new() {
        // Peer fails mid-transfer of checkpoint 2; checkpoint 1 survives in
        // the other slot only if the peer comes back with memory intact —
        // which it does not. This asserts the meta-after-payload ordering:
        // the torn slot never decodes.
        let (ckpt, gpu) = setup(300);
        gpu.update();
        ckpt.checkpoint(&gpu, 1);
        ckpt.drain();
        // Sanity: slot for counter 2 currently holds no valid record.
        let rec = GeminiCheckpointer::recover_from_remote(ckpt.link(), gpu.state_size()).unwrap();
        assert_eq!(rec.iteration, 1);
    }

    #[test]
    fn peer_failure_surfaces_as_failed_event() {
        use pccheck_telemetry::{EventKind, Telemetry};

        let (ckpt, gpu) = setup(300);
        let telemetry = Telemetry::enabled();
        let ckpt = ckpt.with_telemetry(telemetry.clone());
        gpu.update();
        ckpt.checkpoint(&gpu, 1);
        ckpt.drain();
        ckpt.link().remote().fail_peer();
        gpu.update();
        ckpt.checkpoint(&gpu, 2);
        ckpt.drain();
        let snap = telemetry.snapshot().expect("telemetry enabled");
        assert_eq!(snap.counters.requested, 2);
        assert_eq!(snap.counters.committed, 1);
        assert_eq!(snap.counters.failed, 1);
        assert!(telemetry
            .events()
            .iter()
            .any(|e| matches!(e.kind, EventKind::Failed { .. })));
    }

    #[test]
    fn too_small_remote_rejected() {
        let gpu = Gpu::new(
            GpuConfig::fast_for_tests(),
            TrainingState::synthetic(ByteSize::from_kb(4), 1),
        );
        let link = Arc::new(NetworkLink::new(
            NetworkConfig::fast_for_tests(),
            ByteSize::from_bytes(100),
        ));
        assert!(GeminiCheckpointer::new(link, gpu.state_size()).is_err());
    }

    #[test]
    fn slow_network_stalls_second_checkpoint() {
        let gpu = Gpu::new(
            GpuConfig::fast_for_tests(),
            TrainingState::synthetic(ByteSize::from_mb_u64(1), 2),
        );
        let cap = GeminiCheckpointer::required_remote_capacity(gpu.state_size());
        let link = Arc::new(NetworkLink::new(
            NetworkConfig {
                bandwidth: Bandwidth::from_mb_per_sec(10.0),
                latency: SimDuration::ZERO,
                throttled: true,
            },
            cap,
        ));
        let ckpt = GeminiCheckpointer::new(link, gpu.state_size()).unwrap();
        gpu.update();
        ckpt.checkpoint(&gpu, 1);
        gpu.update();
        let t = std::time::Instant::now();
        ckpt.checkpoint(&gpu, 2); // waits for transfer #1 (~0.1 s)
        assert!(t.elapsed().as_secs_f64() > 0.05, "no stall observed");
        ckpt.drain();
    }
}

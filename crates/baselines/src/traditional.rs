//! Traditional synchronous checkpointing (Figure 3).
//!
//! The default in PyTorch/TensorFlow/MXNet: at a checkpoint boundary the
//! training thread copies the weights to DRAM (`C`), writes them to
//! persistent storage, and syncs (`P`) — all inline, so the GPU idles for
//! the entire duration. The storage layout is the shared two-slot
//! [`CheckpointStore`], so crashes at any point leave the previous
//! checkpoint recoverable.

use std::sync::Arc;

use parking_lot::Mutex;

use pccheck::store::CheckpointStore;
use pccheck::{PccheckError, PersistPipeline, PipelineCtx};
use pccheck_device::PersistentDevice;
use pccheck_gpu::{CheckpointOutcome, Checkpointer, Gpu};
use pccheck_telemetry::Telemetry;
use pccheck_util::ByteSize;

/// The fully synchronous baseline.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use pccheck_baselines::TraditionalCheckpointer;
/// use pccheck_device::{DeviceConfig, PersistentDevice, SsdDevice};
/// use pccheck_gpu::{Checkpointer, Gpu, GpuConfig, TrainingState};
/// use pccheck_util::ByteSize;
///
/// # fn main() -> Result<(), pccheck::PccheckError> {
/// let gpu = Gpu::new(
///     GpuConfig::fast_for_tests(),
///     TrainingState::synthetic(ByteSize::from_kb(4), 1),
/// );
/// let device: Arc<dyn PersistentDevice> = Arc::new(SsdDevice::new(
///     DeviceConfig::fast_for_tests(ByteSize::from_kb(64)),
/// ));
/// let ckpt = TraditionalCheckpointer::new(device, gpu.state_size())?;
/// gpu.update();
/// ckpt.checkpoint(&gpu, 1); // blocks until durable
/// assert_eq!(ckpt.last_committed().unwrap().iteration, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TraditionalCheckpointer {
    pipeline: PersistPipeline,
    last: Mutex<Option<CheckpointOutcome>>,
    telemetry: Telemetry,
}

impl TraditionalCheckpointer {
    /// Creates the checkpointer, formatting a two-slot store on `device`.
    ///
    /// # Errors
    ///
    /// Returns [`PccheckError::InvalidConfig`] if the device cannot hold two
    /// checkpoints.
    pub fn new(
        device: Arc<dyn PersistentDevice>,
        checkpoint_size: ByteSize,
    ) -> Result<Self, PccheckError> {
        let store = CheckpointStore::format(device, checkpoint_size, 2)?;
        Ok(TraditionalCheckpointer {
            pipeline: PersistPipeline::new(Arc::new(store)),
            last: Mutex::new(None),
            telemetry: Telemetry::disabled(),
        })
    }

    /// Attaches a telemetry handle so runs are traced with the same
    /// instrumentation as [`pccheck::PcCheckEngine`].
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The underlying store (for recovery in tests/benches).
    pub fn store(&self) -> &Arc<CheckpointStore> {
        self.pipeline.store()
    }
}

impl Checkpointer for TraditionalCheckpointer {
    fn checkpoint(&self, gpu: &Gpu, iteration: u64) {
        let stall_start = self.telemetry.now_nanos();
        let span = self
            .telemetry
            .span_requested(self.name(), iteration, gpu.state_size().as_u64());
        let ctx = PipelineCtx {
            telemetry: &self.telemetry,
            span,
        };
        // C: copy weights to DRAM — inline, training thread blocked.
        let guard = gpu.lock_weights_shared();
        let total = guard.size();
        let digest = guard.digest();
        let host = self.pipeline.snapshot_whole(ctx, &guard, stall_start);
        drop(guard);
        // P: write + sync to storage — still inline, slot leased after the
        // copy (the lease straddles only the persist, as before).
        let lease = self
            .pipeline
            .persist_whole(ctx, &host, iteration)
            .expect("whole-payload persist on healthy device");
        let outcome = self
            .pipeline
            .commit(ctx, lease, iteration, total.as_u64(), digest.0)
            .expect("commit I/O on healthy device");
        match outcome {
            pccheck::CommitOutcome::Committed => {
                self.telemetry.committed(span, iteration, total.as_u64());
                *self.last.lock() = Some(CheckpointOutcome { iteration, digest });
            }
            pccheck::CommitOutcome::SupersededBy { counter } => {
                self.telemetry.superseded(span, counter);
            }
        }
        // The entire call ran inline: all of it is training-thread stall.
        self.telemetry
            .stall(span, self.telemetry.now_nanos().saturating_sub(stall_start));
    }

    fn drain(&self) {
        // Everything is synchronous; nothing outstanding.
    }

    fn last_committed(&self) -> Option<CheckpointOutcome> {
        *self.last.lock()
    }

    fn name(&self) -> &str {
        "traditional"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pccheck::recovery::{recover, verify_against_state};
    use pccheck_device::{DeviceConfig, SsdDevice};
    use pccheck_gpu::{GpuConfig, TrainingState};

    fn setup(state: u64) -> (TraditionalCheckpointer, Gpu, Arc<SsdDevice>) {
        let gpu = Gpu::new(
            GpuConfig::fast_for_tests(),
            TrainingState::synthetic(ByteSize::from_bytes(state), 3),
        );
        let cap = CheckpointStore::required_capacity(gpu.state_size(), 2) + ByteSize::from_kb(1);
        let ssd = Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        let dev: Arc<dyn PersistentDevice> = ssd.clone();
        let ckpt = TraditionalCheckpointer::new(dev, gpu.state_size()).unwrap();
        (ckpt, gpu, ssd)
    }

    #[test]
    fn checkpoint_is_immediately_durable() {
        let (ckpt, gpu, ssd) = setup(300);
        gpu.update();
        ckpt.checkpoint(&gpu, 1);
        // No drain needed: crash right away and recover.
        ssd.crash_now();
        ssd.recover();
        let rec = recover(ssd).unwrap();
        assert_eq!(rec.iteration, 1);
        let layout = gpu.with_weights(|s| s.layout());
        verify_against_state(&rec, &layout).unwrap();
    }

    #[test]
    fn alternating_slots_keep_previous_valid() {
        let (ckpt, gpu, _ssd) = setup(200);
        for iter in 1..=6 {
            gpu.update();
            ckpt.checkpoint(&gpu, iter);
            assert_eq!(ckpt.last_committed().unwrap().iteration, iter);
        }
        assert_eq!(ckpt.store().latest_committed().unwrap().iteration, 6);
        assert_eq!(ckpt.store().free_slot_count(), 1);
    }

    #[test]
    fn telemetry_traces_inline_lifecycle() {
        use pccheck_telemetry::{EventKind, Phase};

        let (ckpt, gpu, _ssd) = setup(300);
        let telemetry = Telemetry::enabled();
        let ckpt = ckpt.with_telemetry(telemetry.clone());
        for iter in 1..=3 {
            gpu.update();
            ckpt.checkpoint(&gpu, iter);
        }
        let snap = telemetry.snapshot().expect("telemetry enabled");
        assert_eq!(snap.counters.requested, 3);
        assert_eq!(snap.counters.committed, 3);
        for phase in [Phase::GpuCopy, Phase::Persist, Phase::Commit] {
            assert_eq!(snap.phase(phase).count, 3, "{}", phase.name());
        }
        // Fully synchronous: every span emits a stall covering the call.
        let stalls = telemetry
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Stall { .. }))
            .count();
        assert_eq!(stalls, 3);
        assert_eq!(snap.stall.count, 3);
    }

    #[test]
    fn name_and_drain_are_trivial() {
        let (ckpt, _gpu, _ssd) = setup(100);
        assert_eq!(ckpt.name(), "traditional");
        ckpt.drain();
        assert!(ckpt.last_committed().is_none());
    }
}

//! Traditional synchronous checkpointing (Figure 3).
//!
//! The default in PyTorch/TensorFlow/MXNet: at a checkpoint boundary the
//! training thread copies the weights to DRAM (`C`), writes them to
//! persistent storage, and syncs (`P`) — all inline, so the GPU idles for
//! the entire duration. The storage layout is the shared two-slot
//! [`CheckpointStore`], so crashes at any point leave the previous
//! checkpoint recoverable.

use std::sync::Arc;

use parking_lot::Mutex;

use pccheck::store::CheckpointStore;
use pccheck::PccheckError;
use pccheck_device::PersistentDevice;
use pccheck_gpu::{CheckpointOutcome, Checkpointer, Gpu};
use pccheck_util::ByteSize;

/// The fully synchronous baseline.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use pccheck_baselines::TraditionalCheckpointer;
/// use pccheck_device::{DeviceConfig, PersistentDevice, SsdDevice};
/// use pccheck_gpu::{Checkpointer, Gpu, GpuConfig, TrainingState};
/// use pccheck_util::ByteSize;
///
/// # fn main() -> Result<(), pccheck::PccheckError> {
/// let gpu = Gpu::new(
///     GpuConfig::fast_for_tests(),
///     TrainingState::synthetic(ByteSize::from_kb(4), 1),
/// );
/// let device: Arc<dyn PersistentDevice> = Arc::new(SsdDevice::new(
///     DeviceConfig::fast_for_tests(ByteSize::from_kb(64)),
/// ));
/// let ckpt = TraditionalCheckpointer::new(device, gpu.state_size())?;
/// gpu.update();
/// ckpt.checkpoint(&gpu, 1); // blocks until durable
/// assert_eq!(ckpt.last_committed().unwrap().iteration, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TraditionalCheckpointer {
    store: Arc<CheckpointStore>,
    last: Mutex<Option<CheckpointOutcome>>,
}

impl TraditionalCheckpointer {
    /// Creates the checkpointer, formatting a two-slot store on `device`.
    ///
    /// # Errors
    ///
    /// Returns [`PccheckError::InvalidConfig`] if the device cannot hold two
    /// checkpoints.
    pub fn new(
        device: Arc<dyn PersistentDevice>,
        checkpoint_size: ByteSize,
    ) -> Result<Self, PccheckError> {
        let store = CheckpointStore::format(device, checkpoint_size, 2)?;
        Ok(TraditionalCheckpointer {
            store: Arc::new(store),
            last: Mutex::new(None),
        })
    }

    /// The underlying store (for recovery in tests/benches).
    pub fn store(&self) -> &Arc<CheckpointStore> {
        &self.store
    }
}

impl Checkpointer for TraditionalCheckpointer {
    fn checkpoint(&self, gpu: &Gpu, iteration: u64) {
        // C: copy weights to DRAM — inline, training thread blocked.
        let guard = gpu.lock_weights_shared();
        let total = guard.size();
        let digest = guard.digest();
        let mut host = vec![0u8; total.as_usize()];
        guard.copy_range_to_host(0, &mut host);
        drop(guard);
        // P: write + sync to storage — still inline.
        let lease = self.store.begin_checkpoint();
        self.store
            .write_payload(&lease, 0, &host)
            .expect("payload fits the formatted slot");
        self.store
            .persist_payload(&lease, 0, total.as_u64())
            .expect("persist cannot exceed bounds");
        let outcome = self
            .store
            .commit(lease, iteration, total.as_u64(), digest.0)
            .expect("commit I/O on healthy device");
        if matches!(outcome, pccheck::CommitOutcome::Committed) {
            *self.last.lock() = Some(CheckpointOutcome { iteration, digest });
        }
    }

    fn drain(&self) {
        // Everything is synchronous; nothing outstanding.
    }

    fn last_committed(&self) -> Option<CheckpointOutcome> {
        *self.last.lock()
    }

    fn name(&self) -> &str {
        "traditional"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pccheck::recovery::{recover, verify_against_state};
    use pccheck_device::{DeviceConfig, SsdDevice};
    use pccheck_gpu::{GpuConfig, TrainingState};

    fn setup(state: u64) -> (TraditionalCheckpointer, Gpu, Arc<SsdDevice>) {
        let gpu = Gpu::new(
            GpuConfig::fast_for_tests(),
            TrainingState::synthetic(ByteSize::from_bytes(state), 3),
        );
        let cap = CheckpointStore::required_capacity(gpu.state_size(), 2) + ByteSize::from_kb(1);
        let ssd = Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        let dev: Arc<dyn PersistentDevice> = ssd.clone();
        let ckpt = TraditionalCheckpointer::new(dev, gpu.state_size()).unwrap();
        (ckpt, gpu, ssd)
    }

    #[test]
    fn checkpoint_is_immediately_durable() {
        let (ckpt, gpu, ssd) = setup(300);
        gpu.update();
        ckpt.checkpoint(&gpu, 1);
        // No drain needed: crash right away and recover.
        ssd.crash_now();
        ssd.recover();
        let rec = recover(ssd).unwrap();
        assert_eq!(rec.iteration, 1);
        let layout = gpu.with_weights(|s| s.layout());
        verify_against_state(&rec, &layout).unwrap();
    }

    #[test]
    fn alternating_slots_keep_previous_valid() {
        let (ckpt, gpu, _ssd) = setup(200);
        for iter in 1..=6 {
            gpu.update();
            ckpt.checkpoint(&gpu, iter);
            assert_eq!(ckpt.last_committed().unwrap().iteration, iter);
        }
        assert_eq!(ckpt.store().latest_committed().unwrap().iteration, 6);
        assert_eq!(ckpt.store().free_slot_count(), 1);
    }

    #[test]
    fn name_and_drain_are_trivial() {
        let (ckpt, _gpu, _ssd) = setup(100);
        assert_eq!(ckpt.name(), "traditional");
        ckpt.drain();
        assert!(ckpt.last_committed().is_none());
    }
}

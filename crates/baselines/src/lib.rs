//! Baseline checkpointing strategies the PCcheck paper compares against.
//!
//! All four baselines implement [`pccheck_gpu::Checkpointer`], so the same
//! training loop, recovery path, and experiment harness drive them
//! interchangeably with PCcheck:
//!
//! * [`TraditionalCheckpointer`] — the PyTorch/TensorFlow default
//!   (Figure 3): training stalls through snapshot *and* persist.
//! * [`CheckFreqCheckpointer`] — CheckFreq (Figure 4): the snapshot and
//!   persist run in the background, but only one checkpoint may be in
//!   flight; the next request stalls until the previous one is durable.
//! * [`GpmCheckpointer`] — GPM: copy kernels write straight from GPU memory
//!   to the mapped persistent device, stalling training for the whole
//!   checkpoint (no DRAM staging, Table 1's `DRAM = 0`).
//! * [`GeminiCheckpointer`] — Gemini: checkpoints go to a peer machine's
//!   DRAM over the network instead of persistent storage; one at a time.
//!
//! The storage-backed baselines reuse PCcheck's [`pccheck::CheckpointStore`]
//! with two slots (their `2·m` footprint in Table 1), which gives them the
//! same crash-consistent commit record and recovery path — the comparison
//! is then purely about *scheduling*: who stalls, when, and for how long.

pub mod checkfreq;
pub mod gemini;
pub mod gpm;
pub mod traditional;

pub use checkfreq::CheckFreqCheckpointer;
pub use gemini::GeminiCheckpointer;
pub use gpm::GpmCheckpointer;
pub use traditional::TraditionalCheckpointer;

//! Spot-VM preemption traces and goodput accounting.
//!
//! The paper's goodput experiments (Figures 2 and 9) replay a resource
//! preemption trace collected by André et al. on a 64-A100 spot cluster in
//! Google Cloud: ~26 preemptions over 3.5 hours, extended to a 16-hour
//! window, with *bulky* preemptions (several VMs at once) common. The raw
//! trace is not published, so [`PreemptionTrace::synthetic_gcp_a100`]
//! generates a seeded trace matching the published summary statistics; any
//! custom trace can also be built from explicit event times.
//!
//! [`GoodputReplay`] implements §5.2.3's accounting: replaying the trace
//! against a simulated training run, every preemption rolls the job back to
//! its last durable checkpoint; goodput is useful batches per second over
//! the whole window.

pub mod goodput;
pub mod jit;
pub mod preemption;

pub use goodput::{GoodputReplay, GoodputResult};
pub use jit::JitReplay;
pub use preemption::PreemptionTrace;

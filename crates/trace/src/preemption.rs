//! Preemption traces.

use rand::Rng;

use pccheck_util::{rng, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Published summary of the André et al. GCP A100 spot trace: 26
/// preemptions in 3.5 hours.
pub const GCP_A100_PREEMPTIONS_PER_HOUR: f64 = 26.0 / 3.5;

/// The default experiment window (§1/Figure 2: a 16-hour trace).
pub const DEFAULT_WINDOW: SimDuration = SimDuration::from_secs(16 * 3600);

/// A sequence of preemption/failure events over a time window.
///
/// Any event interrupts training: in elastic frameworks like Varuna, *any*
/// worker's preemption rolls all workers back to the last checkpoint
/// (§5.2.3), so one merged event stream suffices for a whole cluster.
///
/// # Examples
///
/// ```
/// use pccheck_trace::PreemptionTrace;
///
/// let trace = PreemptionTrace::synthetic_gcp_a100(42);
/// assert!(trace.len() > 80 && trace.len() < 160); // ~119 expected in 16 h
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PreemptionTrace {
    window: SimDuration,
    events: Vec<SimTime>,
}

impl PreemptionTrace {
    /// Builds a trace from explicit event times.
    ///
    /// # Panics
    ///
    /// Panics if any event lies outside the window or the events are not
    /// sorted ascending.
    pub fn from_events(window: SimDuration, events: Vec<SimTime>) -> Self {
        assert!(
            events.windows(2).all(|w| w[0] <= w[1]),
            "events must be sorted"
        );
        assert!(
            events
                .iter()
                .all(|e| e.saturating_since(SimTime::ZERO) <= window),
            "events must lie within the window"
        );
        PreemptionTrace { window, events }
    }

    /// Generates a seeded synthetic trace over a 16-hour window matching
    /// the GCP A100 spot statistics: exponential inter-arrivals at
    /// ~7.4 preemptions/hour, with 20% of events arriving as short bursts
    /// (bulk preemptions — the trace's "bulky" revocations; a burst still
    /// causes a single rollback, but we keep the events for fidelity).
    pub fn synthetic_gcp_a100(seed: u64) -> Self {
        Self::synthetic(seed, DEFAULT_WINDOW, GCP_A100_PREEMPTIONS_PER_HOUR, 0.2)
    }

    /// Generates a seeded synthetic trace with `rate_per_hour` exponential
    /// arrivals over `window`; each arrival is followed by a burst twin
    /// within 60 s with probability `burst_prob`.
    ///
    /// # Panics
    ///
    /// Panics if `rate_per_hour` is not positive or `burst_prob` is outside
    /// `[0, 1]`.
    pub fn synthetic(seed: u64, window: SimDuration, rate_per_hour: f64, burst_prob: f64) -> Self {
        assert!(rate_per_hour > 0.0, "rate must be positive");
        assert!((0.0..=1.0).contains(&burst_prob), "burst_prob in [0,1]");
        let mut r = rng::seeded(rng::derive_seed(seed, "preemption-trace"));
        let mean_gap_secs = 3600.0 / rate_per_hour;
        let mut events = Vec::new();
        let mut t = 0.0f64;
        let horizon = window.as_secs_f64();
        loop {
            // Exponential inter-arrival via inverse CDF.
            let u: f64 = r.gen_range(1e-12..1.0);
            t += -mean_gap_secs * u.ln();
            if t >= horizon {
                break;
            }
            events.push(SimTime::from_secs_f64(t));
            if r.gen_bool(burst_prob) {
                let burst_at = t + r.gen_range(1.0..60.0);
                if burst_at < horizon {
                    events.push(SimTime::from_secs_f64(burst_at));
                    t = burst_at;
                }
            }
        }
        events.sort_unstable();
        PreemptionTrace { window, events }
    }

    /// The trace window.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Number of preemption events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The event times, ascending.
    pub fn events(&self) -> &[SimTime] {
        &self.events
    }

    /// Events collapsed so that any events within `gap` of the previous
    /// kept event are merged (bulk preemptions cause one rollback).
    pub fn coalesced(&self, gap: SimDuration) -> Vec<SimTime> {
        self.coalesced_with_bulk_flag(gap)
            .into_iter()
            .map(|(t, _)| t)
            .collect()
    }

    /// Like [`coalesced`](Self::coalesced), but each kept event also says
    /// whether it was *bulky* — other preemptions landed within `gap` of
    /// it. Bulky revocations are the failure mode that defeats
    /// replication-based schemes (just-in-time checkpointing assumes a
    /// surviving replica; §2.2 notes bulk VM preemptions break that).
    pub fn coalesced_with_bulk_flag(&self, gap: SimDuration) -> Vec<(SimTime, bool)> {
        let mut out: Vec<(SimTime, bool)> = Vec::new();
        for &e in &self.events {
            match out.last_mut() {
                Some((last, bulk)) if e.saturating_since(*last) < gap => {
                    *bulk = true; // a twin arrived: the kept event is bulky
                }
                _ => out.push((e, false)),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_rate_matches_published_statistics() {
        // Average over several seeds: ~7.43/h * 16 h ≈ 119 events plus
        // ~20% burst twins ≈ 143; accept a generous band.
        let mean: f64 = (0..10)
            .map(|s| PreemptionTrace::synthetic_gcp_a100(s).len() as f64)
            .sum::<f64>()
            / 10.0;
        assert!(
            (100.0..190.0).contains(&mean),
            "mean events {mean} out of band"
        );
    }

    #[test]
    fn synthetic_is_deterministic_per_seed() {
        let a = PreemptionTrace::synthetic_gcp_a100(7);
        let b = PreemptionTrace::synthetic_gcp_a100(7);
        assert_eq!(a, b);
        let c = PreemptionTrace::synthetic_gcp_a100(8);
        assert_ne!(a, c);
    }

    #[test]
    fn events_are_sorted_within_window() {
        let t = PreemptionTrace::synthetic_gcp_a100(1);
        assert!(t.events().windows(2).all(|w| w[0] <= w[1]));
        let horizon = t.window().as_secs_f64();
        assert!(t.events().iter().all(|e| e.as_secs_f64() < horizon));
    }

    #[test]
    fn from_events_validates() {
        let w = SimDuration::from_secs(100);
        let t = PreemptionTrace::from_events(
            w,
            vec![SimTime::from_secs_f64(10.0), SimTime::from_secs_f64(20.0)],
        );
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "must be sorted")]
    fn unsorted_events_rejected() {
        PreemptionTrace::from_events(
            SimDuration::from_secs(100),
            vec![SimTime::from_secs_f64(20.0), SimTime::from_secs_f64(10.0)],
        );
    }

    #[test]
    #[should_panic(expected = "within the window")]
    fn out_of_window_events_rejected() {
        PreemptionTrace::from_events(
            SimDuration::from_secs(100),
            vec![SimTime::from_secs_f64(200.0)],
        );
    }

    #[test]
    fn coalescing_merges_bursts() {
        let w = SimDuration::from_secs(1000);
        let t = PreemptionTrace::from_events(
            w,
            vec![
                SimTime::from_secs_f64(10.0),
                SimTime::from_secs_f64(15.0), // burst twin
                SimTime::from_secs_f64(500.0),
            ],
        );
        let merged = t.coalesced(SimDuration::from_secs(60));
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0], SimTime::from_secs_f64(10.0));
        assert_eq!(merged[1], SimTime::from_secs_f64(500.0));
    }

    #[test]
    fn higher_rate_means_more_events() {
        let lo = PreemptionTrace::synthetic(3, DEFAULT_WINDOW, 1.0, 0.0);
        let hi = PreemptionTrace::synthetic(3, DEFAULT_WINDOW, 20.0, 0.0);
        assert!(hi.len() > lo.len() * 5);
    }
}

//! Goodput accounting (§5.2.3).
//!
//! Goodput is useful throughput: batches per second over the whole window,
//! discounting batches that are re-computations of work lost to a rollback.
//! Replaying a preemption trace against a simulated training run:
//!
//! * the run's *effective* iteration time (including checkpoint overhead)
//!   comes from the simulation's measured throughput,
//! * each (coalesced) preemption rolls back to the latest durable
//!   checkpoint; the average rollback depth is measured empirically from
//!   the simulation's commit log,
//! * recovery additionally pays the checkpoint load time `l`.

use pccheck_sim::SimReport;
use pccheck_util::{SimDuration, SimTime};

use crate::preemption::PreemptionTrace;

/// Bulk preemptions within this gap cause a single rollback.
pub const BULK_COALESCE_GAP: SimDuration = SimDuration::from_secs(60);

/// Goodput replay configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GoodputReplay {
    /// Time to load a checkpoint back into the GPU(s) after a failure.
    pub load_time: SimDuration,
}

/// Result of a goodput replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GoodputResult {
    /// Useful iterations per second over the window.
    pub goodput: f64,
    /// Training throughput without failures (iterations/second).
    pub failure_free_throughput: f64,
    /// Number of rollbacks (coalesced preemptions).
    pub rollbacks: usize,
    /// Average iterations lost per rollback.
    pub avg_lost_iterations: f64,
    /// Total time spent recovering (loads + recomputation).
    pub total_recovery: SimDuration,
}

impl GoodputReplay {
    /// Creates a replay with the given checkpoint load time.
    pub fn new(load_time: SimDuration) -> Self {
        GoodputReplay { load_time }
    }

    /// Replays `trace` against a simulated run.
    ///
    /// # Panics
    ///
    /// Panics if the report has zero throughput.
    pub fn replay(&self, report: &SimReport, trace: &PreemptionTrace) -> GoodputResult {
        assert!(report.throughput > 0.0, "report has zero throughput");
        let t_eff = 1.0 / report.throughput; // seconds per iteration
        let avg_lost = Self::average_rollback_depth(report);
        let rollbacks = trace.coalesced(BULK_COALESCE_GAP).len();
        let recovery_per_failure = self.load_time.as_secs_f64() + avg_lost * t_eff;
        let window = trace.window().as_secs_f64();
        let total_recovery = (rollbacks as f64 * recovery_per_failure).min(window);
        let progress = window - total_recovery;
        let seen = progress / t_eff;
        GoodputResult {
            goodput: (seen / window).max(0.0),
            failure_free_throughput: report.throughput,
            rollbacks,
            avg_lost_iterations: avg_lost,
            total_recovery: SimDuration::from_secs_f64(total_recovery),
        }
    }

    /// The ideal baseline: checkpoints at every `interval` iterations with
    /// zero overhead and instant durability; a failure loses on average
    /// half an interval.
    pub fn ideal(
        &self,
        iter_time: SimDuration,
        interval: u64,
        trace: &PreemptionTrace,
    ) -> GoodputResult {
        let t = iter_time.as_secs_f64();
        let avg_lost = interval as f64 / 2.0;
        let rollbacks = trace.coalesced(BULK_COALESCE_GAP).len();
        let recovery_per_failure = self.load_time.as_secs_f64() + avg_lost * t;
        let window = trace.window().as_secs_f64();
        let total_recovery = (rollbacks as f64 * recovery_per_failure).min(window);
        let progress = window - total_recovery;
        GoodputResult {
            goodput: (progress / t / window).max(0.0),
            failure_free_throughput: 1.0 / t,
            rollbacks,
            avg_lost_iterations: avg_lost,
            total_recovery: SimDuration::from_secs_f64(total_recovery),
        }
    }

    /// Measures the mean rollback depth of a run: at each iteration
    /// completion, how many iterations would be lost if the failure struck
    /// right then?
    fn average_rollback_depth(report: &SimReport) -> f64 {
        if report.iteration_times.is_empty() {
            return 0.0;
        }
        // Walk iteration completions and the commit log in tandem.
        let mut commit_idx = 0usize;
        let mut best_committed: u64 = 0;
        let mut total_lost = 0u64;
        for (i, &t) in report.iteration_times.iter().enumerate() {
            while commit_idx < report.commits.len() && report.commits[commit_idx].time <= t {
                best_committed = best_committed.max(report.commits[commit_idx].iteration);
                commit_idx += 1;
            }
            let done = (i + 1) as u64;
            total_lost += done.saturating_sub(best_committed);
        }
        total_lost as f64 / report.iteration_times.len() as f64
    }
}

/// Convenience: the latest durable iteration at time `t` in a report.
pub fn committed_iteration_at(report: &SimReport, t: SimTime) -> u64 {
    report.latest_commit_at(t).map(|c| c.iteration).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pccheck_gpu::ModelZoo;
    use pccheck_sim::{SimConfig, StrategyCfg};

    fn trace() -> PreemptionTrace {
        PreemptionTrace::synthetic_gcp_a100(1)
    }

    fn replay() -> GoodputReplay {
        GoodputReplay::new(SimDuration::from_secs(10))
    }

    #[test]
    fn no_failures_means_goodput_equals_throughput() {
        let report = SimConfig::ssd_a100(&ModelZoo::vgg16(), 10, 200)
            .with_strategy(StrategyCfg::pccheck(2, 3))
            .run();
        let empty = PreemptionTrace::from_events(SimDuration::from_secs(3600), vec![]);
        let g = replay().replay(&report, &empty);
        assert_eq!(g.rollbacks, 0);
        assert!((g.goodput - report.throughput).abs() < 1e-9);
    }

    #[test]
    fn failures_reduce_goodput() {
        let report = SimConfig::ssd_a100(&ModelZoo::vgg16(), 10, 200)
            .with_strategy(StrategyCfg::pccheck(2, 3))
            .run();
        let g = replay().replay(&report, &trace());
        assert!(g.goodput < report.throughput);
        assert!(g.rollbacks > 50);
        assert!(g.avg_lost_iterations > 0.0);
    }

    #[test]
    fn frequent_checkpointing_loses_less_work() {
        let frequent = SimConfig::ssd_a100(&ModelZoo::vgg16(), 10, 400)
            .with_strategy(StrategyCfg::pccheck(2, 3))
            .run();
        let rare = SimConfig::ssd_a100(&ModelZoo::vgg16(), 100, 400)
            .with_strategy(StrategyCfg::pccheck(2, 3))
            .run();
        let lost_frequent = GoodputReplay::average_rollback_depth(&frequent);
        let lost_rare = GoodputReplay::average_rollback_depth(&rare);
        assert!(
            lost_frequent < lost_rare,
            "frequent {lost_frequent} vs rare {lost_rare}"
        );
    }

    #[test]
    fn ideal_dominates_real_strategies() {
        let cfg = SimConfig::ssd_a100(&ModelZoo::vgg16(), 10, 300);
        let pc = cfg.clone().with_strategy(StrategyCfg::pccheck(2, 3)).run();
        let g_pc = replay().replay(&pc, &trace());
        let g_ideal = replay().ideal(
            ModelZoo::vgg16().iter_time(pccheck_gpu::GpuKind::A100),
            10,
            &trace(),
        );
        assert!(g_ideal.goodput >= g_pc.goodput * 0.999);
    }

    #[test]
    fn goodput_is_never_negative() {
        // Absurdly slow strategy + many failures: goodput clamps at 0.
        let report = SimConfig::ssd_a100(&ModelZoo::opt_1_3b(), 1, 30)
            .with_strategy(StrategyCfg::Traditional)
            .run();
        let dense = PreemptionTrace::synthetic(1, SimDuration::from_secs(16 * 3600), 200.0, 0.0);
        let g = replay().replay(&report, &dense);
        assert!(g.goodput >= 0.0);
        assert!(g.total_recovery <= SimDuration::from_secs(16 * 3600));
    }

    #[test]
    fn rollback_depth_matches_hand_example() {
        use pccheck_sim::report::CommitRecord;
        // Iterations complete at t=1..4; a commit for iter 2 lands at t=2.5.
        let report = SimReport {
            strategy: "x".into(),
            label: "w".into(),
            iterations: 4,
            elapsed: SimDuration::from_secs(4),
            throughput: 1.0,
            stall_time: SimDuration::ZERO,
            commits: vec![CommitRecord {
                time: SimTime::from_secs_f64(2.5),
                iteration: 2,
            }],
            mean_write_time: SimDuration::ZERO,
            iteration_times: (1..=4).map(|s| SimTime::from_secs_f64(s as f64)).collect(),
        };
        // Lost at t=1: 1; t=2: 2; t=3: 1; t=4: 2 → mean 1.5.
        let d = GoodputReplay::average_rollback_depth(&report);
        assert!((d - 1.5).abs() < 1e-9);
    }
}

//! Just-in-time (JIT) checkpointing, analytically replayed against a
//! preemption trace.
//!
//! Gupta et al. (EuroSys'24, discussed in §2.2 of the PCcheck paper)
//! checkpoint *only when a failure is detected*: healthy workers hold a
//! replica of the failed worker's state, and the preemption grace period
//! (30 s on GCP/Azure, 2 min on AWS) is used to persist it. During normal
//! training the overhead is zero — strictly better than any periodic
//! scheme — **if** the save always succeeds. The PCcheck paper's counter-
//! argument, which this module quantifies: on preemptible VMs, *bulky*
//! revocations take out replicas together, and large states do not fit the
//! grace window, so JIT falls back to whatever older state happens to be
//! durable.
//!
//! [`JitReplay`] walks the trace: a non-bulky preemption whose shard fits
//! the grace window advances the durable frontier to the failure instant
//! (losing nothing but the reload); a bulky one, or a shard too large for
//! the grace period, rolls back to the last durable frontier.

use pccheck_util::{Bandwidth, ByteSize, SimDuration, SimTime};

use crate::goodput::{GoodputResult, BULK_COALESCE_GAP};
use crate::preemption::PreemptionTrace;

/// Configuration of a JIT replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JitReplay {
    /// Per-node state size to persist within the grace window.
    pub shard_size: ByteSize,
    /// Bandwidth available for the emergency save (storage or network).
    pub save_bandwidth: Bandwidth,
    /// The provider's preemption grace period.
    pub grace: SimDuration,
    /// Time to load state back after recovery.
    pub load_time: SimDuration,
    /// Iteration time (JIT adds no overhead, so this is the ideal rate).
    pub iter_time: SimDuration,
}

impl JitReplay {
    /// GCP/Azure-style 30-second grace window.
    pub const GCP_GRACE: SimDuration = SimDuration::from_secs(30);

    /// Whether one emergency save fits the grace window.
    pub fn save_fits(&self) -> bool {
        self.save_bandwidth.transfer_time(self.shard_size) <= self.grace
    }

    /// Replays `trace` and returns goodput accounting.
    ///
    /// # Panics
    ///
    /// Panics if the iteration time is zero.
    pub fn replay(&self, trace: &PreemptionTrace) -> GoodputResult {
        assert!(!self.iter_time.is_zero(), "iteration time must be nonzero");
        let t = self.iter_time.as_secs_f64();
        let events = trace.coalesced_with_bulk_flag(BULK_COALESCE_GAP);
        let window = trace.window().as_secs_f64();

        let mut durable_frontier = SimTime::ZERO;
        let mut lost_secs = 0.0f64;
        let mut total_lost_iters = 0.0f64;
        for (at, bulky) in &events {
            if !*bulky && self.save_fits() {
                // The grace-period save captures the state at the failure
                // instant: nothing re-executes, only the reload is paid.
                durable_frontier = *at;
                lost_secs += self.load_time.as_secs_f64();
            } else {
                // Replicas died together (or the state does not fit the
                // window): roll back to the last durable frontier.
                let lost = at.saturating_since(durable_frontier).as_secs_f64();
                lost_secs += lost + self.load_time.as_secs_f64();
                total_lost_iters += lost / t;
                // Recovery restores the frontier's state; training resumes
                // from there, and the frontier only advances at the next
                // successful save.
                durable_frontier = *at;
            }
        }
        let rollbacks = events.len();
        let total_recovery = lost_secs.min(window);
        let progress = window - total_recovery;
        GoodputResult {
            goodput: (progress / t / window).max(0.0),
            failure_free_throughput: 1.0 / t,
            rollbacks,
            avg_lost_iterations: if rollbacks == 0 {
                0.0
            } else {
                total_lost_iters / rollbacks as f64
            },
            total_recovery: SimDuration::from_secs_f64(total_recovery),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn replay(shard_gb: f64, grace_secs: u64) -> JitReplay {
        JitReplay {
            shard_size: ByteSize::from_gb(shard_gb),
            save_bandwidth: Bandwidth::from_gb_per_sec(1.5),
            grace: SimDuration::from_secs(grace_secs),
            load_time: SimDuration::from_secs(10),
            iter_time: SimDuration::from_secs(2),
        }
    }

    fn trace_with(burst_prob: f64, seed: u64) -> PreemptionTrace {
        PreemptionTrace::synthetic(seed, SimDuration::from_secs(16 * 3600), 7.4, burst_prob)
    }

    /// Evenly spaced singles, far beyond the bulk-coalescing gap — the
    /// regime JIT was designed for. (A Poisson trace has chance clusters
    /// within 60 s that read as bulky, so we construct this explicitly.)
    fn evenly_spaced_trace(n: u64, window_secs: u64) -> PreemptionTrace {
        let gap = window_secs / (n + 1);
        PreemptionTrace::from_events(
            SimDuration::from_secs(window_secs),
            (1..=n)
                .map(|i| SimTime::from_secs_f64((i * gap) as f64))
                .collect(),
        )
    }

    #[test]
    fn graceful_singles_cost_only_reloads() {
        let trace = evenly_spaced_trace(100, 16 * 3600);
        let g = replay(16.2, 30).replay(&trace);
        assert!(g.avg_lost_iterations < 1e-9, "no work re-executed");
        // Goodput loss = reloads only.
        let expected = 1.0 - (g.rollbacks as f64 * 10.0) / (16.0 * 3600.0);
        assert!((g.goodput * 2.0 - expected).abs() < 1e-6);
    }

    #[test]
    fn oversized_state_defeats_the_grace_window() {
        // A 108 GB full model state cannot persist in 30 s at 1.5 GB/s.
        let r = replay(108.0, 30);
        assert!(!r.save_fits());
        let trace = trace_with(0.0, 2);
        let g = r.replay(&trace);
        assert!(
            g.avg_lost_iterations > 100.0,
            "every failure rolls back: {}",
            g.avg_lost_iterations
        );
    }

    #[test]
    fn bulky_preemptions_erode_jit_goodput() {
        // The paper's argument: as bulk revocations appear, JIT loses its
        // advantage. Sweep burst probability and watch goodput fall.
        let r = replay(16.2, 30);
        let none = r.replay(&trace_with(0.0, 3)).goodput;
        let some = r.replay(&trace_with(0.3, 3)).goodput;
        let many = r.replay(&trace_with(0.8, 3)).goodput;
        assert!(none > some, "{none} vs {some}");
        assert!(some > many, "{some} vs {many}");
    }

    #[test]
    fn periodic_checkpointing_wins_under_bulky_preemptions() {
        // Head-to-head at the paper's conditions: frequent bursts. A
        // periodic scheme checkpointing every 10 iterations loses at most
        // ~interval + lag per failure; JIT loses the entire gap since the
        // last non-bulky failure.
        let trace = trace_with(0.6, 4);
        let jit = replay(16.2, 30).replay(&trace);
        // Periodic ideal-ish: lose f/2 iterations per rollback + reload.
        let periodic = crate::goodput::GoodputReplay::new(SimDuration::from_secs(10)).ideal(
            SimDuration::from_secs(2),
            10,
            &trace,
        );
        assert!(
            periodic.goodput > jit.goodput,
            "periodic {} vs jit {}",
            periodic.goodput,
            jit.goodput
        );
    }

    #[test]
    fn jit_beats_periodic_when_preemptions_are_graceful_singles() {
        // Fairness check: in the regime JIT was designed for, it wins.
        let trace = evenly_spaced_trace(100, 16 * 3600);
        let jit = replay(16.2, 30).replay(&trace);
        let periodic = crate::goodput::GoodputReplay::new(SimDuration::from_secs(10)).ideal(
            SimDuration::from_secs(2),
            25,
            &trace,
        );
        assert!(
            jit.goodput > periodic.goodput,
            "jit {} vs periodic {}",
            jit.goodput,
            periodic.goodput
        );
    }

    #[test]
    fn empty_trace_is_perfect() {
        let trace = PreemptionTrace::from_events(SimDuration::from_secs(3600), vec![]);
        let g = replay(16.2, 30).replay(&trace);
        assert_eq!(g.rollbacks, 0);
        assert!((g.goodput - 0.5).abs() < 1e-12); // 1/t = 0.5 it/s
    }
}

//! Update-magnitude anomaly detection over a checkpoint stream.
//!
//! Training derails for many reasons the loss curve shows only later:
//! exploding gradients, silently corrupted hardware (§2.1 cites He et al.'s
//! ISCA'23 study), bad data shards. One cheap, model-agnostic signal is the
//! *per-iteration update magnitude*: how much of the state changes per
//! training step between consecutive checkpoints. A healthy run's magnitude
//! is stable; a spike (exploding update) or collapse (frozen optimizer,
//! stale replica) stands out.
//!
//! [`UpdateMagnitudeDetector`] consumes `(iteration, changed_fraction)`
//! observations — typically produced by [`crate::diff`] over consecutive
//! checkpoints — normalizes by the iteration gap, and flags deviations
//! beyond a configurable multiple of the trailing window's spread.

use pccheck_telemetry::Telemetry;

/// One flagged observation.
#[derive(Debug, Clone, PartialEq)]
pub struct AnomalyReport {
    /// The iteration of the checkpoint that triggered the flag.
    pub iteration: u64,
    /// The normalized update magnitude observed.
    pub magnitude: f64,
    /// The trailing-window mean it was compared against.
    pub expected: f64,
    /// `magnitude / expected` (∞-safe: 0 expected reports the raw value).
    pub ratio: f64,
}

impl AnomalyReport {
    /// Records this report as an `anomaly` event on the run's telemetry
    /// timeline, so flags line up with checkpoint spans and iteration
    /// markers in the exported trace.
    pub fn record_into(&self, telemetry: &Telemetry) {
        telemetry.anomaly(self.iteration, self.magnitude, self.expected, self.ratio);
    }
}

/// Sliding-window update-magnitude detector.
///
/// # Examples
///
/// ```
/// use pccheck_monitor::UpdateMagnitudeDetector;
///
/// let mut det = UpdateMagnitudeDetector::new(4, 3.0);
/// // Stable magnitudes: no flags.
/// for i in 1..=8u64 {
///     assert!(det.observe(i * 10, 0.5).is_none());
/// }
/// // A 4x spike trips the detector.
/// assert!(det.observe(90, 2.0).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct UpdateMagnitudeDetector {
    window: usize,
    threshold: f64,
    history: Vec<f64>, // normalized magnitudes
    last_iteration: Option<u64>,
}

impl UpdateMagnitudeDetector {
    /// Creates a detector with a trailing `window` of observations and a
    /// flag `threshold` (flag when magnitude is more than `threshold`×
    /// or less than `1/threshold`× the trailing mean).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero or `threshold <= 1`.
    pub fn new(window: usize, threshold: f64) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(threshold > 1.0, "threshold must exceed 1");
        UpdateMagnitudeDetector {
            window,
            threshold,
            history: Vec::new(),
            last_iteration: None,
        }
    }

    /// Feeds the changed fraction between the previous checkpoint and the
    /// one at `iteration`; returns a report if it is anomalous relative to
    /// the trailing window.
    ///
    /// The first observation (no gap) and observations while the window is
    /// still warming up are never flagged.
    ///
    /// # Panics
    ///
    /// Panics if iterations do not strictly increase.
    pub fn observe(&mut self, iteration: u64, changed_fraction: f64) -> Option<AnomalyReport> {
        let gap = match self.last_iteration {
            None => {
                self.last_iteration = Some(iteration);
                return None;
            }
            Some(prev) => {
                assert!(
                    iteration > prev,
                    "iterations must increase: {prev} -> {iteration}"
                );
                iteration - prev
            }
        };
        self.last_iteration = Some(iteration);
        let magnitude = changed_fraction / gap as f64;

        let report = if self.history.len() >= self.window {
            let start = self.history.len() - self.window;
            let mean: f64 = self.history[start..].iter().sum::<f64>() / self.window as f64;
            let anomalous = if mean == 0.0 {
                magnitude > 0.0
            } else {
                let ratio = magnitude / mean;
                ratio > self.threshold || ratio < 1.0 / self.threshold
            };
            if anomalous {
                Some(AnomalyReport {
                    iteration,
                    magnitude,
                    expected: mean,
                    ratio: if mean == 0.0 {
                        magnitude
                    } else {
                        magnitude / mean
                    },
                })
            } else {
                None
            }
        } else {
            None
        };
        // Anomalies do not poison the baseline: only accept in-band
        // observations into the window.
        if report.is_none() {
            self.history.push(magnitude);
        }
        report
    }

    /// [`observe`](Self::observe), but any resulting report is also
    /// recorded as an `anomaly` event into `telemetry`.
    ///
    /// # Panics
    ///
    /// Panics if iterations do not strictly increase.
    pub fn observe_traced(
        &mut self,
        iteration: u64,
        changed_fraction: f64,
        telemetry: &Telemetry,
    ) -> Option<AnomalyReport> {
        let report = self.observe(iteration, changed_fraction);
        if let Some(r) = &report {
            r.record_into(telemetry);
        }
        report
    }

    /// Number of in-band observations accumulated.
    pub fn observations(&self) -> usize {
        self.history.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_stream_never_flags() {
        let mut det = UpdateMagnitudeDetector::new(3, 2.5);
        for i in 1..=20u64 {
            assert!(det.observe(i * 5, 0.4).is_none(), "iteration {i}");
        }
        assert_eq!(det.observations(), 19); // first observation only warms up
    }

    #[test]
    fn spike_is_flagged_with_context() {
        let mut det = UpdateMagnitudeDetector::new(4, 3.0);
        for i in 1..=6u64 {
            det.observe(i * 10, 0.5);
        }
        let report = det.observe(70, 1.9).expect("spike flagged");
        assert_eq!(report.iteration, 70);
        assert!(report.ratio > 3.0);
        assert!((report.expected - 0.05).abs() < 1e-9);
    }

    #[test]
    fn collapse_is_flagged_too() {
        let mut det = UpdateMagnitudeDetector::new(4, 3.0);
        for i in 1..=6u64 {
            det.observe(i * 10, 0.6);
        }
        let report = det.observe(70, 0.01).expect("collapse flagged");
        assert!(report.ratio < 1.0 / 3.0);
    }

    #[test]
    fn gap_normalization_prevents_false_positives() {
        // A checkpoint after 50 iterations changes ~5x more than one after
        // 10 — magnitude per iteration stays constant, so no flag.
        let mut det = UpdateMagnitudeDetector::new(3, 2.0);
        det.observe(10, 0.1);
        det.observe(20, 0.1);
        det.observe(30, 0.1);
        det.observe(40, 0.1);
        assert!(det.observe(90, 0.5).is_none(), "5x gap, 5x change: fine");
    }

    #[test]
    fn anomalies_do_not_poison_the_baseline() {
        let mut det = UpdateMagnitudeDetector::new(3, 2.0);
        for i in 1..=5u64 {
            det.observe(i * 10, 0.3);
        }
        assert!(det.observe(60, 1.0).is_some(), "spike");
        // The spike was excluded from the window, so normal traffic
        // continues without flags and a repeat spike still triggers.
        assert!(det.observe(70, 0.3).is_none());
        assert!(det.observe(80, 1.0).is_some(), "repeat spike still flagged");
    }

    #[test]
    fn traced_observation_lands_in_event_stream() {
        use pccheck_telemetry::EventKind;

        let telemetry = Telemetry::enabled();
        let mut det = UpdateMagnitudeDetector::new(4, 3.0);
        for i in 1..=6u64 {
            assert!(det.observe_traced(i * 10, 0.5, &telemetry).is_none());
        }
        let report = det
            .observe_traced(70, 1.9, &telemetry)
            .expect("spike flagged");
        let events = telemetry.events();
        let anomalies: Vec<_> = events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Anomaly {
                    iteration,
                    magnitude,
                    ratio,
                    ..
                } => Some((iteration, magnitude, ratio)),
                _ => None,
            })
            .collect();
        assert_eq!(anomalies.len(), 1);
        assert_eq!(anomalies[0].0, 70);
        assert!((anomalies[0].1 - report.magnitude).abs() < 1e-12);
        assert!(anomalies[0].2 > 3.0);
    }

    #[test]
    #[should_panic(expected = "iterations must increase")]
    fn non_monotonic_iterations_panic() {
        let mut det = UpdateMagnitudeDetector::new(2, 2.0);
        det.observe(10, 0.1);
        det.observe(10, 0.1);
    }

    #[test]
    #[should_panic(expected = "threshold must exceed 1")]
    fn bad_threshold_rejected() {
        UpdateMagnitudeDetector::new(2, 1.0);
    }
}

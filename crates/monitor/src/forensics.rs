//! Post-crash forensic auditor: replay the flight ring against the
//! on-device checkpoint metadata and reconstruct the commit state machine.
//!
//! After a crash the durable bytes hold two independent narratives of the
//! same run: the slot/`CHECK_ADDR` metadata (what the store *is*) and the
//! flight ring (what the protocol was *doing*). [`audit`] cross-examines
//! them. Per checkpoint counter it assigns a [`CheckpointVerdict`] —
//! committed, in flight at some phase, superseded, failed — and it checks
//! the invariants the commit protocol of Listing 1 promises:
//!
//! 1. **Commit counters effectively monotone** — the durable `CHECK_ADDR`
//!    only ever advances (`fetch_max`). On a multi-tenant (service-mode)
//!    store each namespace has its own `CHECK_ADDR`, so monotonicity is
//!    judged *per namespace*: jobs draw counters from one global sequence
//!    but commit independently, so cross-job commit order legitimately
//!    interleaves. Within a namespace the lock-free publish path can log
//!    two racing winners' `Commit` records slightly out of counter order
//!    (each thread records its own watermark advance after the
//!    `fetch_max`), so an inversion is only a violation when the stale
//!    record's checkpoint has no open window in the ring — a closed or
//!    absent window means the record was fabricated, not raced.
//! 2. **Bounded concurrency** — never more than `slots − 1` checkpoints
//!    between `Begin` and a terminal event (one slot always holds the
//!    latest committed state). Service stores allow `slots` total: each
//!    namespace independently keeps one slot for its committed state, and
//!    the bound per job is enforced by its namespace's free queue.
//! 3. **Commit preceded by persist** — a `Commit` record requires the
//!    checkpoint's `MetaPersisted` barrier earlier in the ring.
//! 4. **Recovery restores the newest commit** — the checkpoint the store
//!    would recover has a counter ≥ every `Commit` the ring witnessed
//!    (`CHECK_ADDR` persists *before* the ring's `Commit` record, so the
//!    ring can never be ahead of the durable pointer).
//! 5. **Committed slots are intact** — the payload of every slot holding
//!    a complete checkpoint verifies against its recorded digest (for a
//!    delta slot: the extent table at the head of the payload; for a
//!    chunk-framed codec slot: the frame table, bound to the commit's
//!    counter).
//! 6. **Delta chains are whole** — when the recovery target is a delta
//!    checkpoint, every base pointer lands on a slot still holding that
//!    base (superseded bases stay pinned until their dependents retire),
//!    every base committed per the ring, and replaying the chain
//!    reconstructs a state matching the newest table's full digest. A
//!    chunk-framed layer roots the chain: it materializes the complete
//!    logical state on its own (decompressing LZ chunks and resolving
//!    self/base dedup references with re-verified content addresses), so
//!    the auditor replays the frame exactly the way recovery would —
//!    including for framed recovery targets with no delta link at all.
//!
//! A report that violates any invariant means either real corruption or a
//! bug in the checkpointing protocol — `pccheckctl forensics` exits
//! nonzero on it, and CI runs it on a crash-injected store.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

use pccheck::{
    lz_decompress, CheckMeta, ChunkEncoding, FrameTable, PccheckError, RawStoreView, SlotOutcome,
    FRAME_MAGIC,
};
use pccheck_device::{fnv1a, ExtentTable, PersistentDevice};
use pccheck_gpu::StateDigest;
use pccheck_util::fnv::chunk_digest;
use pccheck_telemetry::{FlightEventKind, FlightRecord, FlightRing};

/// How far an in-flight (never terminated) checkpoint got before the
/// crash, per the flight ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum InFlightPhase {
    /// `Begin` only: slot leased, payload not yet copied off the GPU.
    Begun,
    /// GPU→DRAM copy finished, payload not yet durable.
    Copied,
    /// Payload durable, metadata barrier not yet taken.
    Persisted,
    /// Metadata barrier durable — one CAS away from commitment.
    MetaPersisted,
}

impl InFlightPhase {
    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            InFlightPhase::Begun => "begun",
            InFlightPhase::Copied => "copied",
            InFlightPhase::Persisted => "persisted",
            InFlightPhase::MetaPersisted => "meta_persisted",
        }
    }
}

/// The auditor's classification of one checkpoint counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointVerdict {
    /// The checkpoint became the durably published state at some point.
    Committed {
        /// Training iteration it captured.
        iteration: u64,
        /// Slot it occupied.
        slot: u32,
        /// Whether its slot still holds this checkpoint with a payload
        /// that verifies (older commits are legitimately recycled —
        /// `payload_valid: false` alone is not a violation unless this is
        /// the expected recovery target).
        payload_valid: bool,
    },
    /// The crash caught this checkpoint mid-protocol.
    InFlight {
        /// The furthest phase the ring witnessed.
        phase: InFlightPhase,
        /// Slot it was writing into.
        slot: u32,
    },
    /// A newer checkpoint won the commit race.
    Superseded {
        /// Counter of the winner.
        by: u64,
    },
    /// The checkpoint failed (device error / crash injection) and the run
    /// knew it.
    Failed,
}

/// An invariant broken by the reconstructed history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvariantViolation {
    /// Commit records were not strictly increasing in counter.
    CommitNotMonotone {
        /// The earlier committed counter.
        prev: u64,
        /// The offending later commit.
        next: u64,
    },
    /// More concurrent in-protocol checkpoints than slots allow.
    ConcurrencyExceeded {
        /// Peak concurrent checkpoints observed.
        observed: usize,
        /// Allowed maximum (`slots − 1`).
        limit: usize,
    },
    /// A `Commit` record with no earlier `MetaPersisted` barrier for the
    /// same counter (only flagged when the ring still holds the
    /// checkpoint's `Begin`, i.e. the window wasn't lost to wrap).
    CommitWithoutPersist {
        /// The offending counter.
        counter: u64,
    },
    /// The checkpoint recovery would restore is older than a commit the
    /// ring witnessed as durable.
    RecoveredNotNewest {
        /// Counter recovery would restore (0 = nothing recoverable).
        recovered: u64,
        /// Newest committed counter per the ring.
        newest: u64,
    },
    /// The expected recovery target's payload fails digest verification
    /// (for a delta target: replaying its chain cannot reconstruct a state
    /// matching the recorded full digest).
    TornCommittedSlot {
        /// Slot of the torn checkpoint.
        slot: u32,
        /// Its counter.
        counter: u64,
    },
    /// A delta checkpoint in the recovery target's chain points at a base
    /// whose slot no longer holds that base — the chain has a gap, so the
    /// pinning rule (bases survive until every dependent retires) broke.
    DeltaChainGap {
        /// The delta checkpoint whose base pointer dangles.
        counter: u64,
        /// The base counter it expected.
        base_counter: u64,
        /// The slot that should hold the base.
        base_slot: u32,
    },
    /// A base in the recovery target's delta chain never committed per the
    /// flight ring (the chain depends on a checkpoint the protocol knows
    /// was in flight or failed).
    DeltaBaseNotCommitted {
        /// The delta checkpoint depending on the dubious base.
        counter: u64,
        /// The base that never committed.
        base_counter: u64,
    },
    /// A slot's durable state word says `Committed{c}` but its meta record
    /// does not carry counter `c`. The commit protocol persists the meta
    /// record *before* the Committed word, so this point of the lattice is
    /// unreachable — seeing it means lost writes or a protocol bug (see
    /// DESIGN §13).
    StateLatticeViolation {
        /// The torn slot.
        slot: u32,
        /// Counter in the durable state word.
        state_counter: u64,
        /// Counter in the slot's meta record (`None` = no valid record).
        meta_counter: Option<u64>,
    },
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvariantViolation::CommitNotMonotone { prev, next } => {
                write!(
                    f,
                    "commit counters not monotone: {next} committed after {prev}"
                )
            }
            InvariantViolation::ConcurrencyExceeded { observed, limit } => {
                write!(
                    f,
                    "{observed} concurrent checkpoints exceed the limit of {limit}"
                )
            }
            InvariantViolation::CommitWithoutPersist { counter } => {
                write!(
                    f,
                    "checkpoint {counter} committed without a persisted metadata barrier"
                )
            }
            InvariantViolation::RecoveredNotNewest { recovered, newest } => {
                write!(
                    f,
                    "recovery restores counter {recovered} but the ring saw counter {newest} commit"
                )
            }
            InvariantViolation::TornCommittedSlot { slot, counter } => {
                write!(
                    f,
                    "committed checkpoint {counter} in slot {slot} fails digest verification"
                )
            }
            InvariantViolation::DeltaChainGap {
                counter,
                base_counter,
                base_slot,
            } => {
                write!(
                    f,
                    "delta checkpoint {counter} points at base {base_counter} \
                     but slot {base_slot} no longer holds it"
                )
            }
            InvariantViolation::DeltaBaseNotCommitted {
                counter,
                base_counter,
            } => {
                write!(
                    f,
                    "delta checkpoint {counter} chains onto base {base_counter} that never committed"
                )
            }
            InvariantViolation::StateLatticeViolation {
                slot,
                state_counter,
                meta_counter,
            } => {
                write!(
                    f,
                    "slot {slot} state word says committed#{state_counter} but its meta record {}",
                    match meta_counter {
                        Some(c) => format!("carries counter {c}"),
                        None => "does not decode".to_string(),
                    }
                )
            }
        }
    }
}

/// The auditor's full report.
#[derive(Debug, Clone)]
pub struct ForensicReport {
    /// Verdict per checkpoint counter the ring still holds evidence for.
    pub checkpoints: BTreeMap<u64, CheckpointVerdict>,
    /// Invariant violations (empty = the crash is clean).
    pub violations: Vec<InvariantViolation>,
    /// The checkpoint recovery would restore from the durable metadata.
    pub expected_recovery: Option<pccheck::CheckMeta>,
    /// Flight records replayed (seq-ordered survivors).
    pub ring_records: usize,
    /// Ring cells that held data but failed checksum validation (at most
    /// the torn tail under normal operation).
    pub torn_ring_cells: u32,
    /// Valid cells from an older lap that the scan rejected (a resurrected
    /// stale record would otherwise forge history).
    pub stale_ring_cells: u32,
    /// Whether the ring wrapped (history is a suffix of the run).
    pub ring_wrapped: bool,
    /// Peak concurrent in-protocol checkpoints observed in the ring.
    pub peak_concurrency: usize,
    /// The store's concurrency bound: `slots − 1` single-tenant, `slots`
    /// on a service store (each namespace pins its own committed slot).
    pub concurrency_limit: usize,
    /// Per-namespace expected recovery heads on a service store:
    /// `(job, head)` for every allocated namespace, in directory order.
    /// Empty on single-tenant stores.
    pub namespace_recovery: Vec<(u64, Option<pccheck::CheckMeta>)>,
    /// Each slot's post-crash classification, decided from its durable
    /// state word + meta CRC alone (the detectable-recovery lattice; all
    /// [`SlotOutcome::Empty`] on stores formatted before the state-word
    /// region existed).
    pub slot_outcomes: Vec<SlotOutcome>,
}

impl ForensicReport {
    /// `true` when no invariant is violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Counters the crash caught mid-protocol.
    pub fn in_flight(&self) -> Vec<u64> {
        self.checkpoints
            .iter()
            .filter(|(_, v)| matches!(v, CheckpointVerdict::InFlight { .. }))
            .map(|(c, _)| *c)
            .collect()
    }

    /// Human-readable rendering (the `pccheckctl forensics` output).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "forensic audit");
        let _ = writeln!(
            out,
            "  flight ring: {} records ({} torn cell(s), {} stale cell(s){})",
            self.ring_records,
            self.torn_ring_cells,
            self.stale_ring_cells,
            if self.ring_wrapped { ", wrapped" } else { "" }
        );
        match &self.expected_recovery {
            Some(m) => {
                let _ = writeln!(
                    out,
                    "  expected recovery: counter {} (iteration {}, slot {}, {} B)",
                    m.counter, m.iteration, m.slot, m.payload_len
                );
            }
            None => {
                let _ = writeln!(out, "  expected recovery: none (no committed checkpoint)");
            }
        }
        for (job, head) in &self.namespace_recovery {
            match head {
                Some(m) => {
                    let _ = writeln!(
                        out,
                        "    job {job}: counter {} (iteration {}, slot {})",
                        m.counter, m.iteration, m.slot
                    );
                }
                None => {
                    let _ = writeln!(out, "    job {job}: no committed checkpoint");
                }
            }
        }
        let _ = writeln!(
            out,
            "  peak concurrency: {} (limit {})",
            self.peak_concurrency, self.concurrency_limit
        );
        if !self.slot_outcomes.is_empty() {
            let _ = writeln!(out, "  slot lattice:");
            for (slot, outcome) in self.slot_outcomes.iter().enumerate() {
                let _ = writeln!(out, "    slot {slot:<3} {outcome}");
            }
        }
        let _ = writeln!(out, "  checkpoints:");
        for (counter, verdict) in &self.checkpoints {
            let line = match verdict {
                CheckpointVerdict::Committed {
                    iteration,
                    slot,
                    payload_valid,
                } => format!(
                    "committed   iter {iteration:<6} slot {slot} payload {}",
                    if *payload_valid {
                        "valid"
                    } else {
                        "recycled/torn"
                    }
                ),
                CheckpointVerdict::InFlight { phase, slot } => {
                    format!("IN-FLIGHT   phase {:<14} slot {slot}", phase.name())
                }
                CheckpointVerdict::Superseded { by } => format!("superseded  by counter {by}"),
                CheckpointVerdict::Failed => "failed".to_string(),
            };
            let _ = writeln!(out, "    #{counter:<5} {line}");
        }
        if self.violations.is_empty() {
            let _ = writeln!(out, "  verdict: CLEAN — all invariants hold");
        } else {
            let _ = writeln!(out, "  verdict: {} VIOLATION(S)", self.violations.len());
            for v in &self.violations {
                let _ = writeln!(out, "    ! {v}");
            }
        }
        out
    }
}

/// Audits a crashed (or live) store on `device`: loads the durable
/// metadata view, scans the flight ring (when the store has one), and
/// cross-checks the two. Works while the device is crashed — only durable
/// reads are issued, nothing is mutated.
///
/// Stores formatted without a flight ring still get the metadata-only
/// checks (payload digest verification of the recovery target).
///
/// # Errors
///
/// Returns [`PccheckError::InvalidConfig`] if the device holds no PCcheck
/// store; propagates device read errors.
pub fn audit(device: Arc<dyn PersistentDevice>) -> Result<ForensicReport, PccheckError> {
    let view = RawStoreView::load(device.as_ref())?;
    let expected_recovery = view.expected_recovery();
    let service = view.max_namespaces > 0;
    // Single-tenant: one slot always holds the committed state, so at most
    // slots−1 checkpoints are in protocol. Service mode: every namespace
    // pins its own committed slot and sizes its own window, so the
    // store-wide bound is simply the slot count.
    let concurrency_limit = if service {
        view.slots as usize
    } else {
        (view.slots as usize).saturating_sub(1)
    };
    let namespace_recovery: Vec<(u64, Option<CheckMeta>)> = view
        .namespaces
        .iter()
        .map(|ns| (ns.desc.job, view.expected_recovery_for(ns.desc.job)))
        .collect();

    let (records, torn, stale, wrapped) = if view.flight_records > 0 {
        match FlightRing::scan(device.as_ref(), view.flight_base()) {
            Ok(scan) => {
                let wrapped = scan.wrapped();
                (scan.records, scan.torn_cells, scan.stale_cells, wrapped)
            }
            // A torn ring header: report it as one torn cell and fall back
            // to metadata-only auditing rather than failing the audit.
            Err(_) => (Vec::new(), 1, 0, false),
        }
    } else {
        (Vec::new(), 0, 0, false)
    };

    let mut checkpoints: BTreeMap<u64, CheckpointVerdict> = BTreeMap::new();
    let mut violations: Vec<InvariantViolation> = Vec::new();

    // --- Replay the ring in sequence order. ---------------------------
    // Track per-counter progress and the set of checkpoints currently
    // between Begin and a terminal event. Commit-order invariants are
    // partitioned by namespace on a service store (key = owning job;
    // `None` = the single-tenant store or a slot outside any namespace).
    let ns_of = |slot: u32| -> Option<u64> {
        if service {
            view.namespace_of_slot(slot)
        } else {
            None
        }
    };
    let mut last_commit: BTreeMap<Option<u64>, u64> = BTreeMap::new();
    let mut newest_ring_commit: BTreeMap<Option<u64>, u64> = BTreeMap::new();
    let mut active: BTreeMap<u64, (InFlightPhase, u32)> = BTreeMap::new();
    let mut peak = 0usize;
    let mut meta_persisted: Vec<u64> = Vec::new();

    for rec in &records {
        match rec.kind {
            FlightEventKind::RunStart
            | FlightEventKind::RecoveryStart
            | FlightEventKind::RecoveryDone => {}
            FlightEventKind::Begin => {
                active.insert(rec.counter, (InFlightPhase::Begun, rec.slot));
                peak = peak.max(active.len());
            }
            FlightEventKind::CopyDone => {
                bump_phase(&mut active, rec, InFlightPhase::Copied);
            }
            FlightEventKind::PayloadPersisted => {
                bump_phase(&mut active, rec, InFlightPhase::Persisted);
            }
            FlightEventKind::MetaPersisted => {
                bump_phase(&mut active, rec, InFlightPhase::MetaPersisted);
                meta_persisted.push(rec.counter);
            }
            FlightEventKind::Commit => {
                let ns = ns_of(rec.slot);
                if let Some(&prev) = last_commit.get(&ns) {
                    // The lock-free publish path lets two racing winners
                    // log their Commit records out of counter order (each
                    // records its own `fetch_max` advance); that benign
                    // inversion always has the stale counter's window
                    // still open. An inversion for a closed (or absent)
                    // window can only be a fabricated or replayed record.
                    if rec.counter <= prev && !active.contains_key(&rec.counter) {
                        violations.push(InvariantViolation::CommitNotMonotone {
                            prev,
                            next: rec.counter,
                        });
                    }
                }
                let watermark = last_commit.entry(ns).or_insert(0);
                *watermark = (*watermark).max(rec.counter);
                let newest = newest_ring_commit.entry(ns).or_insert(0);
                *newest = (*newest).max(rec.counter);
                // Invariant 3: the barrier must precede the commit. Only
                // judgeable when the ring still holds the checkpoint's
                // window (its Begin wasn't lost to wrap).
                let window_complete = active.contains_key(&rec.counter);
                if window_complete && !meta_persisted.contains(&rec.counter) {
                    violations.push(InvariantViolation::CommitWithoutPersist {
                        counter: rec.counter,
                    });
                }
                let slot = active
                    .remove(&rec.counter)
                    .map(|(_, s)| s)
                    .unwrap_or(rec.slot);
                checkpoints.insert(
                    rec.counter,
                    CheckpointVerdict::Committed {
                        iteration: rec.iteration,
                        slot,
                        payload_valid: false, // filled in below
                    },
                );
            }
            FlightEventKind::Superseded => {
                active.remove(&rec.counter);
                checkpoints.insert(rec.counter, CheckpointVerdict::Superseded { by: rec.aux });
            }
            FlightEventKind::Failed => {
                active.remove(&rec.counter);
                checkpoints.insert(rec.counter, CheckpointVerdict::Failed);
            }
        }
    }

    // Whatever is still active was in flight at the crash.
    for (counter, (phase, slot)) in &active {
        checkpoints.insert(
            *counter,
            CheckpointVerdict::InFlight {
                phase: *phase,
                slot: *slot,
            },
        );
    }

    if peak > concurrency_limit && concurrency_limit > 0 {
        violations.push(InvariantViolation::ConcurrencyExceeded {
            observed: peak,
            limit: concurrency_limit,
        });
    }

    // --- Cross-check the ring against the durable metadata. -----------
    // Invariant 4: CHECK_ADDR persists before the ring's Commit record,
    // so recovery can never restore something older than a ring commit.
    // Judged per namespace: each tenant's durable pointer must cover its
    // own ring commits.
    for (&ns, &newest) in &newest_ring_commit {
        if newest == 0 {
            continue;
        }
        let recovered = match ns {
            Some(job) => view.expected_recovery_for(job).map_or(0, |m| m.counter),
            None => expected_recovery.map_or(0, |m| m.counter),
        };
        if recovered < newest {
            violations.push(InvariantViolation::RecoveredNotNewest { recovered, newest });
        }
    }

    // Invariant 5 + payload_valid: verify slot payloads against digests.
    // A delta slot's digest covers the extent table at the payload head.
    // On a service store every namespace's recovery head is a target —
    // one tenant's torn head is a violation even when another tenant
    // holds the globally newest commit.
    let recovery_targets: Vec<CheckMeta> = if service {
        namespace_recovery.iter().filter_map(|(_, m)| *m).collect()
    } else {
        expected_recovery.into_iter().collect()
    };
    for slot in 0..view.slots {
        let Some(meta) = view.slot_meta[slot as usize] else {
            continue;
        };
        let payload = view.read_slot_payload(device.as_ref(), slot)?;
        let valid = if is_framed_payload(&payload) {
            framed_table_valid(&payload, &meta)
        } else if meta.is_delta() {
            delta_table_valid(&payload, meta.digest)
        } else {
            StateDigest::of_payload(&payload, meta.iteration).0 == meta.digest
                || pccheck_raw_checksum(&payload) == meta.digest
        };
        if let Some(CheckpointVerdict::Committed { payload_valid, .. }) =
            checkpoints.get_mut(&meta.counter)
        {
            *payload_valid = valid;
        } else if !checkpoints.contains_key(&meta.counter) && view.flight_records == 0 {
            // Ring-less store: synthesize verdicts from metadata alone.
            checkpoints.insert(
                meta.counter,
                CheckpointVerdict::Committed {
                    iteration: meta.iteration,
                    slot,
                    payload_valid: valid,
                },
            );
        }
        if !valid && recovery_targets.iter().any(|m| m.counter == meta.counter) {
            violations.push(InvariantViolation::TornCommittedSlot {
                slot,
                counter: meta.counter,
            });
        }
    }

    // Invariant 7: the per-slot commit-state lattice. Every slot's durable
    // state word + meta CRC must decide to a reachable lattice point; the
    // Torn point (Committed word over a mismatched meta) is unreachable
    // because the protocol persists the meta record before the Committed
    // word. Claimed words whose checkpoints the ring no longer witnesses
    // (wrapped, or a ring-less store) are synthesized as in-flight — the
    // state word alone is enough to decide them (detectable recovery).
    let slot_outcomes = view.slot_outcomes();
    for (slot, outcome) in slot_outcomes.iter().enumerate() {
        match *outcome {
            SlotOutcome::Torn {
                state_counter,
                meta_counter,
            } => {
                violations.push(InvariantViolation::StateLatticeViolation {
                    slot: slot as u32,
                    state_counter,
                    meta_counter,
                });
            }
            SlotOutcome::InFlight { counter } | SlotOutcome::Persisted { counter } => {
                checkpoints.entry(counter).or_insert(CheckpointVerdict::InFlight {
                    phase: if matches!(outcome, SlotOutcome::Persisted { .. }) {
                        InFlightPhase::MetaPersisted
                    } else {
                        InFlightPhase::Begun
                    },
                    slot: slot as u32,
                });
            }
            SlotOutcome::Empty | SlotOutcome::Historical { .. } | SlotOutcome::Committed { .. } => {
            }
        }
    }

    // Invariant 6: a delta recovery target's chain must be whole, built on
    // committed bases, and replayable to the recorded full-state digest.
    // Every tenant's head is audited on a service store. (A framed target
    // carrying a delta link roots its own chain and replays as a frame
    // inside `replay_chain`.)
    for target in recovery_targets.iter().filter(|m| m.is_delta()) {
        audit_delta_chain(
            device.as_ref(),
            &view,
            target,
            &checkpoints,
            &mut violations,
        )?;
    }

    // Invariant 6 for unlinked framed targets: a chunk-framed recovery
    // head with no delta link still resolves chunks out of other slots
    // (self/base dedup), so it gets the same deep replay a chain root
    // does — invariant 5's table check alone would miss a torn packed
    // region or a vanished dedup base.
    for target in recovery_targets.iter().filter(|m| !m.is_delta()) {
        let payload = view.read_slot_payload(device.as_ref(), target.slot)?;
        if is_framed_payload(&payload)
            && replay_frame(device.as_ref(), &view, target, &payload).is_none()
        {
            violations.push(InvariantViolation::TornCommittedSlot {
                slot: target.slot,
                counter: target.counter,
            });
        }
    }

    Ok(ForensicReport {
        checkpoints,
        violations,
        expected_recovery,
        ring_records: records.len(),
        torn_ring_cells: torn,
        stale_ring_cells: stale,
        ring_wrapped: wrapped,
        peak_concurrency: peak,
        concurrency_limit,
        namespace_recovery,
        slot_outcomes,
    })
}

/// Advances a counter's in-flight phase monotonically (records can only
/// move a checkpoint forward).
fn bump_phase(
    active: &mut BTreeMap<u64, (InFlightPhase, u32)>,
    rec: &FlightRecord,
    to: InFlightPhase,
) {
    if let Some((phase, _)) = active.get_mut(&rec.counter) {
        if to > *phase {
            *phase = to;
        }
    }
}

/// Whether a delta payload's extent table decodes and matches the slot
/// meta's digest (which covers the serialized table only).
fn delta_table_valid(payload: &[u8], digest: u64) -> bool {
    let Ok(table) = ExtentTable::decode(payload) else {
        return false;
    };
    let Ok(table_len) = usize::try_from(table.encoded_len()) else {
        return false;
    };
    payload
        .get(..table_len)
        .is_some_and(|t| pccheck_raw_checksum(t) == digest)
}

/// Whether a slot payload begins with the chunk-frame magic (the codec
/// persist path).
fn is_framed_payload(payload: &[u8]) -> bool {
    payload.len() >= 8
        && u64::from_le_bytes(payload[..8].try_into().expect("8 bytes")) == FRAME_MAGIC
}

/// Shallow framed-slot check for invariant 5: the frame table decodes,
/// is bound to this commit's counter, and matches the meta digest (which
/// covers the serialized table, exactly like a delta slot's).
fn framed_table_valid(payload: &[u8], meta: &CheckMeta) -> bool {
    let Some(table) = FrameTable::decode(payload) else {
        return false;
    };
    let Ok(table_len) = usize::try_from(table.encoded_len()) else {
        return false;
    };
    table.counter == meta.counter
        && payload
            .get(..table_len)
            .is_some_and(|t| pccheck_raw_checksum(t) == meta.digest)
}

/// Fully materializes a framed slot the way recovery would: decompresses
/// LZ chunks, copies self-dedup references, resolves base-dedup
/// references out of the named base slots, re-verifies every chunk's
/// content address, and checks the reconstructed payload against the
/// frame's end-to-end digest. Returns `(logical payload, full digest)`;
/// `None` on any broken promise.
fn replay_frame(
    device: &dyn PersistentDevice,
    view: &RawStoreView,
    meta: &CheckMeta,
    payload: &[u8],
) -> Option<(Vec<u8>, u64)> {
    let table = FrameTable::decode(payload)?;
    let table_len = usize::try_from(table.encoded_len()).ok()?;
    if table.counter != meta.counter
        || pccheck_raw_checksum(payload.get(..table_len)?) != meta.digest
    {
        return None;
    }
    let packed = payload.get(table_len..)?;
    let mut out = vec![0u8; usize::try_from(table.logical_len).ok()?];
    // Base payloads read once per referenced checkpoint, not per chunk.
    let mut bases: BTreeMap<(u64, u32), Option<(CheckMeta, Vec<u8>)>> = BTreeMap::new();
    let mut offsets = Vec::with_capacity(table.records.len());
    let mut off = 0usize;
    for r in &table.records {
        offsets.push(off);
        let n = usize::try_from(r.logical_len).ok()?;
        match r.kind {
            ChunkEncoding::Raw | ChunkEncoding::Lz => {
                let end = usize::try_from(r.a.checked_add(r.b)?).ok()?;
                let src = packed.get(usize::try_from(r.a).ok()?..end)?;
                if r.kind == ChunkEncoding::Raw {
                    out.get_mut(off..off + n)?.copy_from_slice(src);
                } else {
                    out.get_mut(off..off + n)?
                        .copy_from_slice(&lz_decompress(src, n)?);
                }
            }
            ChunkEncoding::DedupSelf => {
                let j = *offsets.get(r.aux as usize)?;
                out.copy_within(j..j + n, off);
            }
            ChunkEncoding::DedupBase => {
                let entry = bases.entry((r.a, r.aux)).or_insert_with(|| {
                    let base = view
                        .slot_meta
                        .get(r.aux as usize)
                        .copied()
                        .flatten()
                        .filter(|m| m.counter == r.a)?;
                    let buf = view.read_slot_payload(device, base.slot).ok()?;
                    Some((base, buf))
                });
                let (base_meta, base_payload) = entry.as_ref()?;
                let chunk = base_chunk(base_meta, base_payload, r.digest, r.b, r.logical_len)?;
                out.get_mut(off..off + n)?.copy_from_slice(&chunk);
            }
        }
        // Every chunk re-verifies its content address regardless of how
        // it resolved — a stale or colliding base reference fails here.
        if chunk_digest(out.get(off..off + n)?) != r.digest {
            return None;
        }
        off += n;
    }
    let ok = StateDigest::of_payload(&out, meta.iteration).0 == table.full_digest
        || pccheck_raw_checksum(&out) == table.full_digest;
    ok.then_some((out, table.full_digest))
}

/// Resolves one base-dedup reference from the base checkpoint's raw slot
/// payload: a framed base answers from the materialized record matching
/// the reference's content address; a legacy full base answers the
/// logical byte range directly. Extent-delta bases are never valid dedup
/// targets.
fn base_chunk(
    base: &CheckMeta,
    payload: &[u8],
    digest: u64,
    logical_off: u64,
    len: u64,
) -> Option<Vec<u8>> {
    let n = usize::try_from(len).ok()?;
    if is_framed_payload(payload) {
        let table = FrameTable::decode(payload)?;
        let table_len = usize::try_from(table.encoded_len()).ok()?;
        if pccheck_raw_checksum(payload.get(..table_len)?) != base.digest {
            return None;
        }
        let packed = payload.get(table_len..)?;
        let rec = table
            .records
            .iter()
            .find(|r| r.kind.is_materialized() && r.digest == digest && r.logical_len == len)?;
        let end = usize::try_from(rec.a.checked_add(rec.b)?).ok()?;
        let src = packed.get(usize::try_from(rec.a).ok()?..end)?;
        match rec.kind {
            ChunkEncoding::Raw => Some(src.to_vec()),
            ChunkEncoding::Lz => lz_decompress(src, n),
            _ => None,
        }
    } else if base.delta.is_none() {
        // Legacy full checkpoint: logical bytes are the physical payload.
        let start = usize::try_from(logical_off).ok()?;
        Some(payload.get(start..start.checked_add(n)?)?.to_vec())
    } else {
        None
    }
}

/// Walks and replays the recovery target's delta chain, pushing a
/// violation for each broken promise: a dangling base pointer
/// ([`InvariantViolation::DeltaChainGap`]), a base the ring says never
/// committed ([`InvariantViolation::DeltaBaseNotCommitted`]), or a replay
/// that cannot reproduce the recorded full-state digest
/// ([`InvariantViolation::TornCommittedSlot`]).
fn audit_delta_chain(
    device: &dyn PersistentDevice,
    view: &RawStoreView,
    target: &CheckMeta,
    checkpoints: &BTreeMap<u64, CheckpointVerdict>,
    violations: &mut Vec<InvariantViolation>,
) -> Result<(), PccheckError> {
    let mut chain = vec![*target];
    loop {
        let head = *chain.last().expect("chain starts non-empty");
        // A framed layer is self-contained — it ends the walk even when
        // its commit carries a link (the link only pins its dedup base).
        let head_framed = view
            .read_slot_payload(device, head.slot)
            .map(|p| is_framed_payload(&p))
            .unwrap_or(false);
        if head_framed {
            break;
        }
        let Some(link) = head.delta else { break };
        let base = view
            .slot_meta
            .get(link.base_slot as usize)
            .copied()
            .flatten()
            .filter(|m| m.counter == link.base_counter && m.slot == link.base_slot);
        let Some(base) = base else {
            violations.push(InvariantViolation::DeltaChainGap {
                counter: head.counter,
                base_counter: link.base_counter,
                base_slot: link.base_slot,
            });
            return Ok(());
        };
        if matches!(
            checkpoints.get(&base.counter),
            Some(CheckpointVerdict::InFlight { .. }) | Some(CheckpointVerdict::Failed)
        ) {
            violations.push(InvariantViolation::DeltaBaseNotCommitted {
                counter: head.counter,
                base_counter: base.counter,
            });
        }
        if chain.len() as u32 > view.slots {
            break; // cycle guard: longer than the store can hold
        }
        chain.push(base);
    }
    if replay_chain(device, view, &chain).is_none() {
        violations.push(InvariantViolation::TornCommittedSlot {
            slot: target.slot,
            counter: target.counter,
        });
    }
    Ok(())
}

/// Replays a delta chain (newest→root order in `chain`) into the full
/// state it represents, verifying every digest along the way. `None` on
/// any mismatch.
fn replay_chain(
    device: &dyn PersistentDevice,
    view: &RawStoreView,
    chain: &[CheckMeta],
) -> Option<Vec<u8>> {
    let root = chain.last()?;
    let mut state = view.read_slot_payload(device, root.slot).ok()?;
    let mut full_digest = root.digest;
    if is_framed_payload(&state) {
        // Framed root: materialize it the way recovery would (the frame
        // verifies its own table, chunks, and end-to-end digest, which
        // becomes the chain's running full-state digest).
        let (replayed, frame_digest) = replay_frame(device, view, root, &state)?;
        state = replayed;
        full_digest = frame_digest;
    } else if root.is_delta() {
        return None; // the cycle guard bailed before reaching a full root
    } else {
        let root_ok = StateDigest::of_payload(&state, root.iteration).0 == root.digest
            || pccheck_raw_checksum(&state) == root.digest;
        if !root_ok {
            return None;
        }
    }
    let mut final_iter = root.iteration;
    for delta in chain.iter().rev().skip(1) {
        let payload = view.read_slot_payload(device, delta.slot).ok()?;
        let table = ExtentTable::decode(&payload).ok()?;
        let table_len = usize::try_from(table.encoded_len()).ok()?;
        if pccheck_raw_checksum(payload.get(..table_len)?) != delta.digest {
            return None;
        }
        if table.full_len != state.len() as u64 {
            return None;
        }
        let mut src = table_len;
        for rec in &table.extents {
            let src_end = src.checked_add(rec.len as usize)?;
            let chunk = payload.get(src..src_end)?;
            if fnv1a(chunk) != rec.digest {
                return None;
            }
            let dst_start = usize::try_from(rec.offset).ok()?;
            let dst = state.get_mut(dst_start..dst_start.checked_add(rec.len as usize)?)?;
            dst.copy_from_slice(chunk);
            src = src_end;
        }
        full_digest = table.full_digest;
        final_iter = delta.iteration;
    }
    let ok = StateDigest::of_payload(&state, final_iter).0 == full_digest
        || pccheck_raw_checksum(&state) == full_digest;
    ok.then_some(state)
}

/// FNV-1a over raw payload bytes — the same checksum `pccheck::meta` uses
/// for opaque (non-training-state) payload digests.
fn pccheck_raw_checksum(data: &[u8]) -> u64 {
    pccheck_util::fnv::fnv1a(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pccheck::{CheckpointStore, CommitOutcome};
    use pccheck_device::{DeviceConfig, SsdDevice};
    use pccheck_telemetry::FlightEventKind as K;
    use pccheck_util::ByteSize;

    fn flight_store(slots: u32, ring: u32) -> (Arc<dyn PersistentDevice>, CheckpointStore) {
        let cap =
            CheckpointStore::required_capacity_with_flight(ByteSize::from_bytes(64), slots, ring);
        let dev: Arc<dyn PersistentDevice> =
            Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        let st = CheckpointStore::format_with_flight(
            Arc::clone(&dev),
            ByteSize::from_bytes(64),
            slots,
            ring,
        )
        .unwrap();
        (dev, st)
    }

    fn commit_one(st: &CheckpointStore, iter: u64, payload: &[u8]) {
        let lease = st.begin_checkpoint();
        st.write_payload(&lease, 0, payload).unwrap();
        st.persist_payload(&lease, 0, payload.len() as u64).unwrap();
        let digest = pccheck_raw_checksum(payload);
        assert_eq!(
            st.commit(lease, iter, payload.len() as u64, digest)
                .unwrap(),
            CommitOutcome::Committed
        );
    }

    /// Commits a delta checkpoint of `full` over the latest committed
    /// base, persisting only `ranges` behind an extent table.
    fn commit_delta_one(st: &CheckpointStore, iter: u64, full: &[u8], ranges: &[(u64, u64)]) {
        use pccheck::DeltaLink;
        use pccheck_device::ExtentRecord;

        let base = st.latest_committed().unwrap();
        let depth = base.delta.map_or(0, |l| l.chain_depth);
        let extents: Vec<ExtentRecord> = ranges
            .iter()
            .map(|&(off, len)| ExtentRecord {
                offset: off,
                len,
                digest: fnv1a(&full[off as usize..(off + len) as usize]),
            })
            .collect();
        let table = ExtentTable {
            full_len: full.len() as u64,
            full_digest: pccheck_raw_checksum(full),
            extents,
        };
        let table_bytes = table.encode();
        let mut payload = table_bytes.clone();
        for &(off, len) in ranges {
            payload.extend_from_slice(&full[off as usize..(off + len) as usize]);
        }
        let lease = st.begin_checkpoint();
        st.write_payload(&lease, 0, &payload).unwrap();
        st.persist_payload(&lease, 0, payload.len() as u64).unwrap();
        let link = DeltaLink {
            base_counter: base.counter,
            base_slot: base.slot,
            chain_depth: depth + 1,
        };
        assert_eq!(
            st.commit_with_delta(
                lease,
                iter,
                payload.len() as u64,
                pccheck_raw_checksum(&table_bytes),
                Some(link),
            )
            .unwrap(),
            CommitOutcome::Committed
        );
    }

    #[test]
    fn delta_chain_audits_clean() {
        let (dev, st) = flight_store(4, 64);
        let mut full = vec![7u8; 64];
        commit_one(&st, 1, &full);
        full[8..16].copy_from_slice(&[1u8; 8]);
        commit_delta_one(&st, 2, &full, &[(8, 8)]);
        full[40..44].copy_from_slice(&[2u8; 4]);
        commit_delta_one(&st, 3, &full, &[(40, 4)]);
        dev.crash_now();
        let report = audit(Arc::clone(&dev)).unwrap();
        assert!(report.is_clean(), "{:?}", report.violations);
        let target = report.expected_recovery.unwrap();
        assert_eq!(target.iteration, 3);
        assert_eq!(target.delta.unwrap().chain_depth, 2);
        assert!(matches!(
            report.checkpoints[&3],
            CheckpointVerdict::Committed {
                payload_valid: true,
                ..
            }
        ));
    }

    #[test]
    fn delta_chain_gap_is_flagged() {
        let (dev, st) = flight_store(4, 64);
        let full = vec![9u8; 64];
        commit_one(&st, 1, &full);
        let base = st.latest_committed().unwrap();
        // Fabricate a delta whose base pointer dangles: right counter,
        // wrong slot.
        let lease = st.begin_checkpoint();
        let table = ExtentTable {
            full_len: 64,
            full_digest: pccheck_raw_checksum(&full),
            extents: vec![],
        };
        let bytes = table.encode();
        st.write_payload(&lease, 0, &bytes).unwrap();
        st.persist_payload(&lease, 0, bytes.len() as u64).unwrap();
        let wrong_slot = (base.slot + 1) % 4;
        st.commit_with_delta(
            lease,
            2,
            bytes.len() as u64,
            pccheck_raw_checksum(&bytes),
            Some(pccheck::DeltaLink {
                base_counter: base.counter,
                base_slot: wrong_slot,
                chain_depth: 1,
            }),
        )
        .unwrap();
        dev.crash_now();
        let report = audit(Arc::clone(&dev)).unwrap();
        assert!(report.violations.iter().any(|v| matches!(
            v,
            InvariantViolation::DeltaChainGap {
                counter: 2,
                base_counter: 1,
                ..
            }
        )));
    }

    #[test]
    fn delta_base_that_never_committed_is_flagged() {
        let (dev, st) = flight_store(4, 64);
        let mut full = vec![3u8; 64];
        commit_one(&st, 1, &full);
        // Fabricate a ring record claiming checkpoint 1 failed: the chain
        // now depends on a base the protocol disowned.
        st.flight().record(K::Failed, 1, 0, 1, 64, 0);
        full[0..4].copy_from_slice(&[5u8; 4]);
        commit_delta_one(&st, 2, &full, &[(0, 4)]);
        dev.crash_now();
        let report = audit(Arc::clone(&dev)).unwrap();
        assert!(report.violations.iter().any(|v| matches!(
            v,
            InvariantViolation::DeltaBaseNotCommitted {
                counter: 2,
                base_counter: 1,
            }
        )));
    }

    #[test]
    fn torn_delta_chain_replay_is_flagged() {
        let (dev, st) = flight_store(4, 64);
        let mut full = vec![11u8; 64];
        commit_one(&st, 1, &full);
        full[16..24].copy_from_slice(&[13u8; 8]);
        commit_delta_one(&st, 2, &full, &[(16, 8)]);
        // Corrupt a packed extent byte (the table stays intact, so the
        // per-slot digest check passes and only chain replay catches it).
        let target = st.latest_committed().unwrap();
        let off = st.slot_payload_offset(target.slot) + target.payload_len - 1;
        dev.write_at(off, &[0xEE]).unwrap();
        dev.persist(off, 1).unwrap();
        dev.crash_now();
        let report = audit(Arc::clone(&dev)).unwrap();
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, InvariantViolation::TornCommittedSlot { counter: 2, .. })));
    }

    #[test]
    fn clean_run_audits_clean() {
        let (dev, st) = flight_store(3, 64);
        for i in 1..=4 {
            commit_one(&st, i, format!("p{i}").as_bytes());
        }
        dev.crash_now();
        let report = audit(Arc::clone(&dev)).unwrap();
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.expected_recovery.unwrap().iteration, 4);
        assert!(report.in_flight().is_empty());
        assert_eq!(report.checkpoints.len(), 4);
        assert!(matches!(
            report.checkpoints[&4],
            CheckpointVerdict::Committed {
                payload_valid: true,
                ..
            }
        ));
        assert!(report.render().contains("CLEAN"));
    }

    #[test]
    fn in_flight_checkpoint_classified_by_phase() {
        let (dev, st) = flight_store(3, 64);
        commit_one(&st, 1, b"one");
        // Crash between persist and commit: payload + flight records up to
        // PayloadPersisted, no metadata barrier.
        let lease = st.begin_checkpoint();
        st.write_payload(&lease, 0, b"two").unwrap();
        st.persist_payload(&lease, 0, 3).unwrap();
        st.flight()
            .record(K::CopyDone, lease.counter, lease.slot, 0, 3, 0);
        st.flight()
            .record(K::PayloadPersisted, lease.counter, lease.slot, 2, 3, 0);
        let counter = lease.counter;
        dev.crash_now();
        let report = audit(Arc::clone(&dev)).unwrap();
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.in_flight(), vec![counter]);
        assert_eq!(
            report.checkpoints[&counter],
            CheckpointVerdict::InFlight {
                phase: InFlightPhase::Persisted,
                slot: 1,
            }
        );
        // Recovery still lands on checkpoint 1.
        assert_eq!(report.expected_recovery.unwrap().iteration, 1);
    }

    #[test]
    fn fabricated_commit_without_barrier_is_flagged() {
        let (dev, st) = flight_store(3, 64);
        commit_one(&st, 1, b"one");
        // Fabricate a protocol bug: a Commit record for a checkpoint that
        // never took the metadata barrier.
        let lease = st.begin_checkpoint();
        st.flight()
            .record(K::Commit, lease.counter, lease.slot, 9, 3, 0);
        dev.crash_now();
        let report = audit(Arc::clone(&dev)).unwrap();
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, InvariantViolation::CommitWithoutPersist { .. })));
        // And the durable CHECK_ADDR never advanced to it:
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, InvariantViolation::RecoveredNotNewest { .. })));
        assert!(!report.is_clean());
    }

    #[test]
    fn torn_recovery_target_is_flagged() {
        let (dev, st) = flight_store(3, 64);
        commit_one(&st, 1, b"one");
        // Corrupt the committed payload behind the store's back.
        let meta = st.latest_committed().unwrap();
        let off = st.slot_payload_offset(meta.slot);
        dev.write_at(off, b"WRONG").unwrap();
        dev.persist(off, 5).unwrap();
        dev.crash_now();
        let report = audit(Arc::clone(&dev)).unwrap();
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, InvariantViolation::TornCommittedSlot { counter: 1, .. })));
    }

    #[test]
    fn ringless_store_still_audits_metadata() {
        let cap = CheckpointStore::required_capacity(ByteSize::from_bytes(64), 3);
        let dev: Arc<dyn PersistentDevice> =
            Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        let st = CheckpointStore::format(Arc::clone(&dev), ByteSize::from_bytes(64), 3).unwrap();
        commit_one(&st, 1, b"one");
        dev.crash_now();
        let report = audit(Arc::clone(&dev)).unwrap();
        assert!(report.is_clean());
        assert_eq!(report.ring_records, 0);
        assert_eq!(report.checkpoints.len(), 1);
        assert!(matches!(
            report.checkpoints[&1],
            CheckpointVerdict::Committed {
                payload_valid: true,
                ..
            }
        ));
    }

    #[test]
    fn non_monotone_commits_flagged() {
        let (dev, st) = flight_store(4, 64);
        commit_one(&st, 1, b"a");
        commit_one(&st, 2, b"b");
        // Fabricate an out-of-order Commit record for a checkpoint whose
        // window already closed: the fetch_max watermark records exactly
        // one Commit per counter, so a second record for counter 1 cannot
        // be a benign race — its window is gone from `active`.
        st.flight().record(K::MetaPersisted, 1, 0, 1, 1, 0);
        st.flight().record(K::Commit, 1, 0, 1, 1, 0);
        dev.crash_now();
        let report = audit(Arc::clone(&dev)).unwrap();
        assert!(report.violations.iter().any(|v| matches!(
            v,
            InvariantViolation::CommitNotMonotone { prev: 2, next: 1 }
        )));
    }

    #[test]
    fn racing_winner_commit_inversion_is_tolerated() {
        // Two checkpointers win the watermark in counter order but log
        // their Commit records inverted (the lock-free publish path allows
        // this: each thread records its own fetch_max advance). Both
        // windows are open when the stale record lands, so the auditor
        // must not flag a false CommitNotMonotone.
        let (dev, st) = flight_store(4, 64);
        let lease_a = st.begin_checkpoint();
        let lease_b = st.begin_checkpoint();
        for (lease, payload) in [(&lease_a, b"aa"), (&lease_b, b"bb")] {
            st.write_payload(lease, 0, payload).unwrap();
            st.persist_payload(lease, 0, 2).unwrap();
        }
        let (ca, sa) = (lease_a.counter, lease_a.slot);
        let (cb, sb) = (lease_b.counter, lease_b.slot);
        // Replay what the device would hold: both metas persisted, then
        // the Commit records land newer-first.
        for (lease, iter) in [(lease_a, 1u64), (lease_b, 2u64)] {
            let meta = pccheck::CheckMeta {
                counter: lease.counter,
                slot: lease.slot,
                iteration: iter,
                payload_len: 2,
                digest: pccheck_raw_checksum(if iter == 1 { b"aa" } else { b"bb" }),
                delta: None,
            };
            let off = st.slot_meta_offset(lease.slot);
            dev.write_at(off, &meta.encode()).unwrap();
            dev.persist(off, pccheck::meta::META_RECORD_SIZE).unwrap();
            std::mem::forget(lease);
        }
        // (No durable CHECK_ADDR write needed: the max-counter slot scan
        // already resolves recovery to the newer winner.)
        st.flight().record(K::MetaPersisted, ca, sa, 1, 2, 0);
        st.flight().record(K::MetaPersisted, cb, sb, 2, 2, 0);
        st.flight().record(K::Commit, cb, sb, 2, 2, 0);
        st.flight().record(K::Commit, ca, sa, 1, 2, 0);
        dev.crash_now();
        let report = audit(Arc::clone(&dev)).unwrap();
        assert!(
            !report
                .violations
                .iter()
                .any(|v| matches!(v, InvariantViolation::CommitNotMonotone { .. })),
            "benign inversion flagged: {:?}",
            report.violations
        );
        assert!(matches!(
            report.checkpoints[&cb],
            CheckpointVerdict::Committed { .. }
        ));
    }

    #[test]
    fn torn_state_word_is_a_lattice_violation() {
        let (dev, st) = flight_store(3, 64);
        commit_one(&st, 1, b"one");
        let head = st.latest_committed().unwrap();
        // Forge the unreachable lattice point: a Committed state word over
        // a meta record carrying a different counter.
        let forged = pccheck::SlotState::Committed {
            counter: head.counter + 10,
        };
        let off = st.slot_state_offset(head.slot).unwrap();
        dev.write_at(off, &forged.encode()).unwrap();
        dev.persist(off, pccheck::SLOT_STATE_SIZE).unwrap();
        dev.crash_now();
        let report = audit(Arc::clone(&dev)).unwrap();
        assert!(!report.is_clean());
        assert!(report.violations.iter().any(|v| matches!(
            v,
            InvariantViolation::StateLatticeViolation {
                state_counter,
                meta_counter: Some(mc),
                ..
            } if *state_counter == head.counter + 10 && *mc == head.counter
        )));
        assert!(report.render().contains("state word"));
    }

    #[test]
    fn claimed_slot_on_ringless_store_is_synthesized_in_flight() {
        // No flight ring: the state word alone must make the in-flight
        // claim decidable (the detectable half of the protocol).
        let cap = CheckpointStore::required_capacity(ByteSize::from_bytes(64), 3);
        let dev: Arc<dyn PersistentDevice> =
            Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        let st = CheckpointStore::format(Arc::clone(&dev), ByteSize::from_bytes(64), 3).unwrap();
        commit_one(&st, 1, b"one");
        let lease = st.begin_checkpoint();
        let (counter, slot) = (lease.counter, lease.slot);
        std::mem::forget(lease);
        dev.crash_now();
        let report = audit(Arc::clone(&dev)).unwrap();
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.in_flight(), vec![counter]);
        assert_eq!(
            report.checkpoints[&counter],
            CheckpointVerdict::InFlight {
                phase: InFlightPhase::Begun,
                slot,
            }
        );
        assert_eq!(
            report.slot_outcomes[slot as usize],
            SlotOutcome::InFlight { counter }
        );
        assert!(report.render().contains("slot lattice"));
    }

    fn service_flight_store(
        slots: u32,
        ring: u32,
        max_ns: u32,
    ) -> (Arc<dyn PersistentDevice>, CheckpointStore) {
        let cap = CheckpointStore::required_capacity_service(
            ByteSize::from_bytes(64),
            slots,
            ring,
            max_ns,
        ) + ByteSize::from_kb(1);
        let dev: Arc<dyn PersistentDevice> =
            Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        let st = CheckpointStore::format_service(
            Arc::clone(&dev),
            ByteSize::from_bytes(64),
            slots,
            ring,
            max_ns,
        )
        .unwrap();
        (dev, st)
    }

    fn commit_job(st: &CheckpointStore, job: u64, iter: u64, payload: &[u8]) {
        let lease = st.begin_checkpoint_job(job).unwrap();
        st.write_payload(&lease, 0, payload).unwrap();
        st.persist_payload(&lease, 0, payload.len() as u64).unwrap();
        let digest = pccheck_raw_checksum(payload);
        assert_eq!(
            st.commit(lease, iter, payload.len() as u64, digest)
                .unwrap(),
            CommitOutcome::Committed
        );
    }

    #[test]
    fn interleaved_tenant_commits_audit_clean() {
        // Jobs lease counters from one global sequence but commit out of
        // global order; under the single-tenant monotonicity rule this
        // interleaving would be a false CommitNotMonotone. The namespace-
        // partitioned auditor must accept it.
        let (dev, st) = service_flight_store(6, 64, 4);
        st.allocate_namespace(1, 3).unwrap();
        st.allocate_namespace(2, 3).unwrap();
        // Lease job 1 first (lower counter), commit it after job 2.
        let lease1 = st.begin_checkpoint_job(1).unwrap();
        commit_job(&st, 2, 7, b"job2-a");
        st.write_payload(&lease1, 0, b"job1-a").unwrap();
        st.persist_payload(&lease1, 0, 6).unwrap();
        st.commit(lease1, 3, 6, pccheck_raw_checksum(b"job1-a"))
            .unwrap();
        commit_job(&st, 2, 8, b"job2-b");
        commit_job(&st, 1, 4, b"job1-b");
        dev.crash_now();
        let report = audit(Arc::clone(&dev)).unwrap();
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.concurrency_limit, 6, "service bound is `slots`");
        let heads: BTreeMap<u64, u64> = report
            .namespace_recovery
            .iter()
            .filter_map(|(job, m)| m.map(|m| (*job, m.iteration)))
            .collect();
        assert_eq!(heads[&1], 4);
        assert_eq!(heads[&2], 8);
        assert!(report.render().contains("job 1"));
    }

    #[test]
    fn torn_tenant_head_is_flagged_even_when_not_globally_newest() {
        let (dev, st) = service_flight_store(6, 64, 4);
        st.allocate_namespace(1, 3).unwrap();
        st.allocate_namespace(2, 3).unwrap();
        commit_job(&st, 1, 1, b"job1-a");
        commit_job(&st, 2, 9, b"job2-a"); // globally newest commit
                                          // Tear job 1's head payload: the global expected recovery is job
                                          // 2's intact head, but job 1's tenant-visible recovery is torn.
        let head = st.latest_committed_job(1).unwrap().unwrap();
        let off = st.slot_payload_offset(head.slot);
        dev.write_at(off, b"WRONG").unwrap();
        dev.persist(off, 5).unwrap();
        dev.crash_now();
        let report = audit(Arc::clone(&dev)).unwrap();
        assert!(report.violations.iter().any(
            |v| matches!(v, InvariantViolation::TornCommittedSlot { counter, .. } if *counter == head.counter)
        ), "{:?}", report.violations);
    }

    #[test]
    fn tenant_check_addr_behind_ring_commit_is_flagged() {
        let (dev, st) = service_flight_store(6, 64, 4);
        st.allocate_namespace(1, 3).unwrap();
        commit_job(&st, 1, 1, b"one");
        // Fabricate a ring Commit for a counter job 1's durable pointer
        // never reached: per-namespace invariant 4 must trip.
        let lease = st.begin_checkpoint_job(1).unwrap();
        st.flight()
            .record(K::MetaPersisted, lease.counter, lease.slot, 2, 3, 0);
        st.flight()
            .record(K::Commit, lease.counter, lease.slot, 2, 3, 0);
        dev.crash_now();
        let report = audit(Arc::clone(&dev)).unwrap();
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, InvariantViolation::RecoveredNotNewest { .. })));
    }

    #[test]
    fn framed_codec_store_audits_clean() {
        use pccheck::{PcCheckConfig, PcCheckEngine};
        use pccheck_gpu::{Checkpointer, Gpu, GpuConfig, TrainingState};
        let gpu = Gpu::new(
            GpuConfig::fast_for_tests(),
            TrainingState::compressible(ByteSize::from_kb(4), 7, 32),
        );
        let dev: Arc<dyn PersistentDevice> = Arc::new(SsdDevice::new(
            DeviceConfig::fast_for_tests(ByteSize::from_mb_u64(1)),
        ));
        let config = PcCheckConfig::builder()
            .max_concurrent(2)
            .writer_threads(2)
            .chunk_size(ByteSize::from_bytes(256))
            .dram_chunks(16)
            .flight_records(128)
            .codec(true)
            .build()
            .unwrap();
        let engine = PcCheckEngine::new(config, Arc::clone(&dev), gpu.state_size()).unwrap();
        for iter in 1..=6 {
            gpu.update();
            engine.checkpoint(&gpu, iter);
            engine.drain();
        }
        // The audit only proves something if the codec actually framed.
        let view = RawStoreView::load(dev.as_ref()).unwrap();
        let framed = (0..view.slots)
            .filter(|&s| view.slot_meta[s as usize].is_some())
            .filter(|&s| {
                view.read_slot_payload(dev.as_ref(), s)
                    .is_ok_and(|p| is_framed_payload(&p))
            })
            .count();
        assert!(framed > 0, "no slot framed — codec never engaged");
        let report = audit(Arc::clone(&dev)).unwrap();
        assert!(report.is_clean(), "{:?}", report.violations);
    }

    #[test]
    fn torn_framed_recovery_head_is_flagged() {
        use pccheck::{PcCheckConfig, PcCheckEngine};
        use pccheck_gpu::{Checkpointer, Gpu, GpuConfig, TrainingState};
        let gpu = Gpu::new(
            GpuConfig::fast_for_tests(),
            TrainingState::compressible(ByteSize::from_kb(4), 11, 32),
        );
        let dev: Arc<dyn PersistentDevice> = Arc::new(SsdDevice::new(
            DeviceConfig::fast_for_tests(ByteSize::from_mb_u64(1)),
        ));
        let config = PcCheckConfig::builder()
            .max_concurrent(2)
            .writer_threads(2)
            .chunk_size(ByteSize::from_bytes(256))
            .dram_chunks(16)
            .codec(true)
            .build()
            .unwrap();
        let engine = PcCheckEngine::new(config, Arc::clone(&dev), gpu.state_size()).unwrap();
        for iter in 1..=4 {
            gpu.update();
            engine.checkpoint(&gpu, iter);
            engine.drain();
        }
        let view = RawStoreView::load(dev.as_ref()).unwrap();
        let head = view
            .slot_meta
            .iter()
            .flatten()
            .max_by_key(|m| m.counter)
            .copied()
            .unwrap();
        let payload = view.read_slot_payload(dev.as_ref(), head.slot).unwrap();
        assert!(is_framed_payload(&payload), "newest slot should be framed");
        // Corrupt one byte of the packed chunk region (past the table, so
        // the shallow table check still passes): only the deep frame
        // replay catches it.
        let table = FrameTable::decode(&payload).unwrap();
        let corrupt_at = table.encoded_len();
        let slot_off = view.slot_payload_offset(head.slot) + corrupt_at;
        let mut byte = [0u8; 1];
        dev.read_durable_at(slot_off, &mut byte).unwrap();
        byte[0] ^= 0xFF;
        dev.write_at(slot_off, &byte).unwrap();
        dev.persist(slot_off, 1).unwrap();
        dev.crash_now();
        let report = audit(Arc::clone(&dev)).unwrap();
        assert!(
            report.violations.iter().any(|v| matches!(
                v,
                InvariantViolation::TornCommittedSlot { counter, .. } if *counter == head.counter
            )),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn audit_rejects_unformatted_device() {
        let dev: Arc<dyn PersistentDevice> = Arc::new(SsdDevice::new(
            DeviceConfig::fast_for_tests(ByteSize::from_kb(4)),
        ));
        assert!(audit(dev).is_err());
    }

    #[test]
    fn striped_store_audits_clean_through_the_durable_view() {
        use pccheck_device::StripedDevice;
        // A small stripe forces the header, CHECK_ADDR, slot metadata, and
        // flight ring to interleave across both members, so RawStoreView's
        // durable reads must reassemble every structure from extents.
        let cap = CheckpointStore::required_capacity_with_flight(ByteSize::from_bytes(64), 3, 64);
        let members: Vec<Arc<dyn PersistentDevice>> = (0..2)
            .map(|_| {
                Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)))
                    as Arc<dyn PersistentDevice>
            })
            .collect();
        let dev: Arc<dyn PersistentDevice> =
            Arc::new(StripedDevice::new(members, ByteSize::from_bytes(256)));
        let st =
            CheckpointStore::format_with_flight(Arc::clone(&dev), ByteSize::from_bytes(64), 3, 64)
                .unwrap();
        for i in 1..=3 {
            commit_one(&st, i, format!("s{i}").as_bytes());
        }
        dev.crash_now();
        let report = audit(Arc::clone(&dev)).unwrap();
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.expected_recovery.unwrap().iteration, 3);
        assert_eq!(report.checkpoints.len(), 3);
        assert!(matches!(
            report.checkpoints[&3],
            CheckpointVerdict::Committed {
                payload_valid: true,
                ..
            }
        ));
    }
}

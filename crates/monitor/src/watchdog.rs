//! Arm a telemetry [`SloWatchdog`] with this crate's forensic auditor.
//!
//! The telemetry crate's watchdog knows how to evaluate SLO windows and
//! capture black-box bundles, but it sits *below* the store layer and so
//! cannot read the persistent flight ring on its own — callers hand it a
//! flight-dump closure. This module supplies the natural one: run the
//! [`forensics`](crate::forensics) auditor against the live device and
//! render the report, so every `blackbox-N/flight.txt` carries the ring
//! replay (per-checkpoint verdicts, torn/stale cell counts, invariant
//! violations) alongside the metric snapshots and the Chrome trace of
//! the offending window.
//!
//! The auditor only issues durable reads, so it is safe to run against a
//! store that is still being written: it reports the last consistent
//! on-device narrative, exactly what a post-mortem wants.

use std::path::PathBuf;
use std::sync::Arc;

use pccheck_device::PersistentDevice;
use pccheck_telemetry::{SloConfig, SloWatchdog, Telemetry};

use crate::forensics::audit;

/// Build an [`SloWatchdog`] whose black-box bundles include a rendered
/// forensic audit of `device`'s store as `flight.txt`.
///
/// The returned watchdog is ready to [`spawn`](SloWatchdog::spawn) or to
/// drive synchronously via [`check_now`](SloWatchdog::check_now). If the
/// audit itself fails (e.g. the device has no store header yet), the
/// bundle simply omits `flight.txt` rather than failing the capture.
pub fn armed_watchdog(
    device: Arc<dyn PersistentDevice>,
    telemetry: Telemetry,
    config: SloConfig,
    out_dir: impl Into<PathBuf>,
) -> Arc<SloWatchdog> {
    Arc::new(
        SloWatchdog::new(telemetry, config, out_dir).with_flight_dump(move || {
            audit(Arc::clone(&device))
                .ok()
                .map(|report| report.render())
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pccheck::{PcCheckConfig, PcCheckEngine};
    use pccheck_device::{DeviceConfig, SsdDevice};
    use pccheck_gpu::{Checkpointer, Gpu, GpuConfig, TrainingState};
    use pccheck_util::ByteSize;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pccheck-armed-watchdog-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn bundle_flight_dump_is_a_forensic_audit() {
        let gpu = Gpu::new(
            GpuConfig::fast_for_tests(),
            TrainingState::synthetic(ByteSize::from_kb(16), 1),
        );
        let cap =
            pccheck::CheckpointStore::required_capacity(gpu.state_size(), 4) + ByteSize::from_kb(4);
        let device: Arc<dyn PersistentDevice> =
            Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        let telemetry = Telemetry::enabled();
        let engine = PcCheckEngine::new(
            PcCheckConfig::builder().max_concurrent(3).build().unwrap(),
            Arc::clone(&device),
            gpu.state_size(),
        )
        .unwrap()
        .with_telemetry(telemetry.clone());
        for iter in 1..=3 {
            gpu.update();
            engine.checkpoint(&gpu, iter);
            engine.drain();
        }

        let dir = temp_dir("audit");
        let wd = armed_watchdog(
            device,
            telemetry.clone(),
            SloConfig {
                max_stall_fraction: Some(0.05),
                ..SloConfig::default()
            },
            &dir,
        );

        // A span whose stall dominates the window since the baseline.
        let span = telemetry.span_requested("pccheck", 99, 64);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let stall = telemetry.now_nanos();
        telemetry.stall(span, stall);
        telemetry.committed(span, 99, 64);

        let violations = wd.check_now();
        assert!(!violations.is_empty(), "injected stall should trip the SLO");

        let bundle = wd.last_bundle().expect("bundle captured");
        let flight = std::fs::read_to_string(bundle.join("flight.txt")).unwrap();
        assert!(flight.contains("forensic audit"), "got: {flight}");
        assert!(flight.contains("flight ring:"), "got: {flight}");

        let _ = std::fs::remove_dir_all(&dir);
    }
}

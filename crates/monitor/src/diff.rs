//! Byte- and tensor-level deltas between checkpoints.

use pccheck_gpu::tensor::StateLayout;

/// Comparison of two checkpoint payloads.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Total payload length compared.
    pub total_bytes: u64,
    /// Bytes that differ.
    pub changed_bytes: u64,
    /// Per-tensor changed fractions, in layout order: `(name, fraction)`.
    pub per_tensor: Vec<(String, f64)>,
}

impl DiffReport {
    /// Fraction of all bytes that changed, in `[0, 1]`.
    pub fn changed_fraction(&self) -> f64 {
        if self.total_bytes == 0 {
            return 0.0;
        }
        self.changed_bytes as f64 / self.total_bytes as f64
    }

    /// The tensor with the highest changed fraction.
    pub fn hottest_tensor(&self) -> Option<&(String, f64)> {
        self.per_tensor
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("fractions are finite"))
    }
}

/// Diffs two equally sized checkpoint payloads against a state layout.
///
/// # Panics
///
/// Panics if the payloads differ in length or do not match the layout's
/// total size.
///
/// # Examples
///
/// ```
/// use pccheck_monitor::diff;
/// let layout = vec![("w".to_string(), pccheck_util::ByteSize::from_bytes(4))];
/// let report = diff(&[1, 2, 3, 4], &[1, 2, 9, 9], &layout);
/// assert_eq!(report.changed_bytes, 2);
/// assert_eq!(report.changed_fraction(), 0.5);
/// ```
pub fn diff(a: &[u8], b: &[u8], layout: &StateLayout) -> DiffReport {
    assert_eq!(a.len(), b.len(), "payloads must be the same size");
    let layout_total: u64 = layout.iter().map(|(_, s)| s.as_u64()).sum();
    assert_eq!(
        a.len() as u64,
        layout_total,
        "layout must cover the payload"
    );

    let mut per_tensor = Vec::with_capacity(layout.len());
    let mut changed_total = 0u64;
    let mut off = 0usize;
    for (name, size) in layout {
        let n = size.as_usize();
        let changed = a[off..off + n]
            .iter()
            .zip(&b[off..off + n])
            .filter(|(x, y)| x != y)
            .count() as u64;
        changed_total += changed;
        let fraction = if n == 0 {
            0.0
        } else {
            changed as f64 / n as f64
        };
        per_tensor.push((name.clone(), fraction));
        off += n;
    }
    DiffReport {
        total_bytes: a.len() as u64,
        changed_bytes: changed_total,
        per_tensor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pccheck_gpu::TrainingState;
    use pccheck_util::ByteSize;
    use proptest::prelude::*;

    fn layout_of(state: &TrainingState) -> StateLayout {
        state.layout()
    }

    #[test]
    fn identical_payloads_diff_to_zero() {
        let s = TrainingState::synthetic(ByteSize::from_bytes(300), 1);
        let mut buf = vec![0u8; 300];
        s.serialize_into(&mut buf);
        let report = diff(&buf, &buf, &layout_of(&s));
        assert_eq!(report.changed_bytes, 0);
        assert_eq!(report.changed_fraction(), 0.0);
        assert!(report.per_tensor.iter().all(|(_, f)| *f == 0.0));
    }

    #[test]
    fn one_training_step_changes_nearly_everything() {
        // The synthetic optimizer step mutates every byte — consecutive
        // checkpoints should be ~100% changed (a byte can collide by
        // chance, so allow a tiny margin).
        let mut s = TrainingState::synthetic(ByteSize::from_bytes(3000), 2);
        let mut before = vec![0u8; 3000];
        s.serialize_into(&mut before);
        s.step();
        let mut after = vec![0u8; 3000];
        s.serialize_into(&mut after);
        let report = diff(&before, &after, &layout_of(&s));
        assert!(
            report.changed_fraction() > 0.98,
            "got {}",
            report.changed_fraction()
        );
    }

    #[test]
    fn hottest_tensor_identifies_localized_change() {
        let s = TrainingState::synthetic(ByteSize::from_bytes(300), 3);
        let mut a = vec![0u8; 300];
        s.serialize_into(&mut a);
        let mut b = a.clone();
        // Corrupt only the middle tensor ("adam_m", second of three).
        for byte in &mut b[110..190] {
            *byte ^= 0xFF;
        }
        let report = diff(&a, &b, &layout_of(&s));
        let (name, fraction) = report.hottest_tensor().expect("has tensors");
        assert_eq!(name, "adam_m");
        assert!(*fraction > 0.5);
    }

    #[test]
    #[should_panic(expected = "same size")]
    fn mismatched_sizes_panic() {
        diff(&[1], &[1, 2], &StateLayout::new());
    }

    #[test]
    #[should_panic(expected = "layout must cover")]
    fn wrong_layout_panics() {
        diff(&[1, 2], &[1, 2], &StateLayout::new());
    }

    proptest! {
        #[test]
        fn changed_bytes_counts_exact_positions(
            base in proptest::collection::vec(any::<u8>(), 30),
            flips in proptest::collection::btree_set(0usize..30, 0..10),
        ) {
            let mut other = base.clone();
            let mut expected = 0u64;
            for &i in &flips {
                other[i] ^= 0x01; // guaranteed different
                expected += 1;
            }
            let layout = vec![("t".to_string(), ByteSize::from_bytes(30))];
            let report = diff(&base, &other, &layout);
            prop_assert_eq!(report.changed_bytes, expected);
        }
    }
}

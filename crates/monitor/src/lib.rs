//! Checkpoint inspection and training-dynamics monitoring.
//!
//! §2.1 of the PCcheck paper motivates *frequent* checkpoints not only for
//! fault tolerance but for monitoring and debugging: tools like SageMaker
//! Debugger, Cockpit, and Pythia capture model state throughout training
//! to catch accuracy "derailing" — data outliers, exploding/vanishing
//! gradients, silent hardware corruption. PCcheck's cheap per-10-iteration
//! checkpoints make the capture side practical; this crate provides the
//! analysis side:
//!
//! * [`CheckpointInspector`] — enumerate the store's checkpoint history
//!   (PCcheck's `N+1` slots double as a short history), load payloads, and
//!   reconstruct training states.
//! * [`diff`] — byte/tensor-level deltas between checkpoints: how much of
//!   the state changed between two captured iterations.
//! * [`detector`] — an update-magnitude anomaly detector: flags checkpoint
//!   intervals whose per-iteration change rate deviates from the trailing
//!   window, the signature of a silent corruption or divergence event.
//! * [`forensics`] — the post-crash auditor: replays the store's
//!   persistent flight ring against the on-device slot metadata,
//!   classifies every checkpoint (committed / in-flight / superseded /
//!   failed / torn), and verifies the commit protocol's invariants.
//! * [`watchdog`] — arms a telemetry [`SloWatchdog`] with the forensic
//!   auditor as its flight-dump provider, so black-box bundles captured
//!   on SLO violations include the ring replay.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use pccheck::{PcCheckConfig, PcCheckEngine};
//! use pccheck_device::{DeviceConfig, PersistentDevice, SsdDevice};
//! use pccheck_gpu::{Checkpointer, Gpu, GpuConfig, TrainingState};
//! use pccheck_monitor::CheckpointInspector;
//! use pccheck_util::ByteSize;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let gpu = Gpu::new(
//!     GpuConfig::fast_for_tests(),
//!     TrainingState::synthetic(ByteSize::from_kb(16), 1),
//! );
//! let cap = pccheck::CheckpointStore::required_capacity(gpu.state_size(), 4)
//!     + ByteSize::from_kb(4);
//! let device: Arc<dyn PersistentDevice> =
//!     Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
//! let engine = PcCheckEngine::new(
//!     PcCheckConfig::builder().max_concurrent(3).build()?,
//!     device,
//!     gpu.state_size(),
//! )?;
//! for iter in 1..=3 {
//!     gpu.update();
//!     engine.checkpoint(&gpu, iter);
//!     engine.drain();
//! }
//! let inspector = CheckpointInspector::new(Arc::clone(engine.store()));
//! let history = inspector.history()?;
//! assert_eq!(history.last().unwrap().iteration, 3);
//! # Ok(())
//! # }
//! ```

pub mod detector;
pub mod diff;
pub mod forensics;
pub mod inspect;
pub mod watchdog;

pub use detector::{AnomalyReport, UpdateMagnitudeDetector};
pub use diff::{diff, DiffReport};
pub use forensics::{audit, CheckpointVerdict, ForensicReport, InFlightPhase, InvariantViolation};
pub use inspect::CheckpointInspector;
pub use watchdog::armed_watchdog;

// Re-export the watchdog family so monitor users can configure and drive
// an armed watchdog without a separate telemetry import.
pub use pccheck_telemetry::{SloConfig, SloRule, SloViolation, SloWatchdog, WatchdogHandle};

//! Enumerating and loading checkpoints from a store.

use std::sync::Arc;

use pccheck::{CheckMeta, CheckpointStore, PccheckError};
use pccheck_gpu::tensor::StateLayout;
use pccheck_gpu::TrainingState;

/// Read-only access to a store's checkpoint history.
#[derive(Debug, Clone)]
pub struct CheckpointInspector {
    store: Arc<CheckpointStore>,
}

impl CheckpointInspector {
    /// Creates an inspector over `store`.
    pub fn new(store: Arc<CheckpointStore>) -> Self {
        CheckpointInspector { store }
    }

    /// All complete checkpoints currently in the store, oldest first.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn history(&self) -> Result<Vec<CheckMeta>, PccheckError> {
        self.store.history()
    }

    /// The latest committed checkpoint.
    pub fn latest(&self) -> Option<CheckMeta> {
        self.store.latest_committed()
    }

    /// Loads a checkpoint's raw payload.
    ///
    /// # Errors
    ///
    /// Returns [`PccheckError::CorruptCheckpoint`] if the slot was recycled
    /// since `meta` was listed.
    pub fn load_payload(&self, meta: &CheckMeta) -> Result<Vec<u8>, PccheckError> {
        self.store.read_checkpoint(meta)
    }

    /// Loads and reconstructs a checkpoint as a [`TrainingState`],
    /// verifying the payload against the recorded digest.
    ///
    /// # Errors
    ///
    /// Returns [`PccheckError::CorruptCheckpoint`] on digest mismatch or a
    /// recycled slot.
    pub fn load_state(
        &self,
        meta: &CheckMeta,
        layout: &StateLayout,
    ) -> Result<TrainingState, PccheckError> {
        let payload = self.load_payload(meta)?;
        let state = TrainingState::restore(layout, &payload, meta.iteration);
        if state.digest().0 != meta.digest {
            return Err(PccheckError::CorruptCheckpoint {
                counter: meta.counter,
            });
        }
        Ok(state)
    }

    /// Loads the most recent `n` checkpoints (newest last), skipping any
    /// whose slot was recycled between listing and reading.
    ///
    /// # Errors
    ///
    /// Propagates device errors from the history listing.
    pub fn recent_payloads(&self, n: usize) -> Result<Vec<(CheckMeta, Vec<u8>)>, PccheckError> {
        let history = self.history()?;
        let mut out = Vec::new();
        for meta in history.into_iter().rev().take(n) {
            match self.load_payload(&meta) {
                Ok(payload) => out.push((meta, payload)),
                Err(PccheckError::CorruptCheckpoint { .. }) => continue, // recycled
                Err(e) => return Err(e),
            }
        }
        out.reverse();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pccheck::{PcCheckConfig, PcCheckEngine};
    use pccheck_device::{DeviceConfig, PersistentDevice, SsdDevice};
    use pccheck_gpu::{Checkpointer, Gpu, GpuConfig};
    use pccheck_util::ByteSize;

    fn training_run(n_slots: u32, checkpoints: u64) -> (CheckpointInspector, Gpu) {
        let gpu = Gpu::new(
            GpuConfig::fast_for_tests(),
            TrainingState::synthetic(ByteSize::from_bytes(600), 5),
        );
        let cap =
            CheckpointStore::required_capacity(gpu.state_size(), n_slots) + ByteSize::from_kb(1);
        let device: Arc<dyn PersistentDevice> =
            Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        let engine = PcCheckEngine::new(
            PcCheckConfig::builder()
                .max_concurrent(n_slots as usize - 1)
                .writer_threads(2)
                .chunk_size(ByteSize::from_bytes(128))
                .dram_chunks(8)
                .build()
                .expect("valid"),
            device,
            gpu.state_size(),
        )
        .expect("engine");
        for iter in 1..=checkpoints {
            gpu.update();
            engine.checkpoint(&gpu, iter);
            engine.drain();
        }
        (CheckpointInspector::new(Arc::clone(engine.store())), gpu)
    }

    #[test]
    fn history_reflects_recent_checkpoints() {
        let (inspector, _gpu) = training_run(4, 3);
        let hist = inspector.history().unwrap();
        assert_eq!(hist.len(), 3);
        assert_eq!(inspector.latest().unwrap().iteration, 3);
    }

    #[test]
    fn load_state_verifies_digest() {
        let (inspector, gpu) = training_run(4, 3);
        let layout = gpu.with_weights(|s| s.layout());
        let latest = inspector.latest().unwrap();
        let state = inspector.load_state(&latest, &layout).unwrap();
        assert_eq!(state.digest(), gpu.digest());
        assert_eq!(state.step_count(), 3);
    }

    #[test]
    fn recent_payloads_returns_newest_last() {
        let (inspector, _gpu) = training_run(4, 3);
        let recent = inspector.recent_payloads(2).unwrap();
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].0.iteration, 2);
        assert_eq!(recent[1].0.iteration, 3);
    }

    #[test]
    fn history_is_bounded_by_slot_count() {
        // A 3-slot store (N=2) can hold at most 3 complete checkpoints.
        let (inspector, _gpu) = training_run(3, 10);
        let hist = inspector.history().unwrap();
        assert!(hist.len() <= 3, "got {}", hist.len());
        assert_eq!(hist.last().unwrap().iteration, 10);
    }
}
